file(REMOVE_RECURSE
  "CMakeFiles/csod_tools.dir/cli_commands.cc.o"
  "CMakeFiles/csod_tools.dir/cli_commands.cc.o.d"
  "libcsod_tools.a"
  "libcsod_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
