# Empty compiler generated dependencies file for csod_tools.
# This may be replaced when dependencies are built.
