file(REMOVE_RECURSE
  "libcsod_tools.a"
)
