# Empty compiler generated dependencies file for csod.
# This may be replaced when dependencies are built.
