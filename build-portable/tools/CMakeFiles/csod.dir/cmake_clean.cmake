file(REMOVE_RECURSE
  "CMakeFiles/csod.dir/csod_cli.cc.o"
  "CMakeFiles/csod.dir/csod_cli.cc.o.d"
  "csod"
  "csod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
