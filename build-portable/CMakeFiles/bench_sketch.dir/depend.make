# Empty dependencies file for bench_sketch.
# This may be replaced when dependencies are built.
