file(REMOVE_RECURSE
  "CMakeFiles/bench_sketch.dir/bench/bench_sketch.cc.o"
  "CMakeFiles/bench_sketch.dir/bench/bench_sketch.cc.o.d"
  "bench/bench_sketch"
  "bench/bench_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
