# Empty dependencies file for fig5_6_powerlaw_errors.
# This may be replaced when dependencies are built.
