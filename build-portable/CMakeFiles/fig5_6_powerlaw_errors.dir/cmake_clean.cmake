file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_powerlaw_errors.dir/bench/fig5_6_powerlaw_errors.cc.o"
  "CMakeFiles/fig5_6_powerlaw_errors.dir/bench/fig5_6_powerlaw_errors.cc.o.d"
  "bench/fig5_6_powerlaw_errors"
  "bench/fig5_6_powerlaw_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_powerlaw_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
