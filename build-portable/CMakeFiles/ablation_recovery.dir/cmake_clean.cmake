file(REMOVE_RECURSE
  "CMakeFiles/ablation_recovery.dir/bench/ablation_recovery.cc.o"
  "CMakeFiles/ablation_recovery.dir/bench/ablation_recovery.cc.o.d"
  "bench/ablation_recovery"
  "bench/ablation_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
