# Empty compiler generated dependencies file for conjectures.
# This may be replaced when dependencies are built.
