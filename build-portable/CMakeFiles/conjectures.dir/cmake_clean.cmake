file(REMOVE_RECURSE
  "CMakeFiles/conjectures.dir/bench/conjectures.cc.o"
  "CMakeFiles/conjectures.dir/bench/conjectures.cc.o.d"
  "bench/conjectures"
  "bench/conjectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
