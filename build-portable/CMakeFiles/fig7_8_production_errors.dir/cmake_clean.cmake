file(REMOVE_RECURSE
  "CMakeFiles/fig7_8_production_errors.dir/bench/fig7_8_production_errors.cc.o"
  "CMakeFiles/fig7_8_production_errors.dir/bench/fig7_8_production_errors.cc.o.d"
  "bench/fig7_8_production_errors"
  "bench/fig7_8_production_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_production_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
