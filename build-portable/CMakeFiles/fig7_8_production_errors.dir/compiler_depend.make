# Empty compiler generated dependencies file for fig7_8_production_errors.
# This may be replaced when dependencies are built.
