file(REMOVE_RECURSE
  "CMakeFiles/fig10_11_hadoop_endtoend.dir/bench/fig10_11_hadoop_endtoend.cc.o"
  "CMakeFiles/fig10_11_hadoop_endtoend.dir/bench/fig10_11_hadoop_endtoend.cc.o.d"
  "bench/fig10_11_hadoop_endtoend"
  "bench/fig10_11_hadoop_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_11_hadoop_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
