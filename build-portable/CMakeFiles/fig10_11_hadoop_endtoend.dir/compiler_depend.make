# Empty compiler generated dependencies file for fig10_11_hadoop_endtoend.
# This may be replaced when dependencies are built.
