# Empty compiler generated dependencies file for ablation_sketches.
# This may be replaced when dependencies are built.
