file(REMOVE_RECURSE
  "CMakeFiles/ablation_sketches.dir/bench/ablation_sketches.cc.o"
  "CMakeFiles/ablation_sketches.dir/bench/ablation_sketches.cc.o.d"
  "bench/ablation_sketches"
  "bench/ablation_sketches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sketches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
