file(REMOVE_RECURSE
  "CMakeFiles/fig12_key_scaling.dir/bench/fig12_key_scaling.cc.o"
  "CMakeFiles/fig12_key_scaling.dir/bench/fig12_key_scaling.cc.o.d"
  "bench/fig12_key_scaling"
  "bench/fig12_key_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_key_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
