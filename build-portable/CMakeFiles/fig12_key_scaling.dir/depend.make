# Empty dependencies file for fig12_key_scaling.
# This may be replaced when dependencies are built.
