file(REMOVE_RECURSE
  "CMakeFiles/ablation_noise.dir/bench/ablation_noise.cc.o"
  "CMakeFiles/ablation_noise.dir/bench/ablation_noise.cc.o.d"
  "bench/ablation_noise"
  "bench/ablation_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
