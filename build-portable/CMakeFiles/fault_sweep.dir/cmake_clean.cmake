file(REMOVE_RECURSE
  "CMakeFiles/fault_sweep.dir/bench/fault_sweep.cc.o"
  "CMakeFiles/fault_sweep.dir/bench/fault_sweep.cc.o.d"
  "bench/fault_sweep"
  "bench/fault_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
