# Empty dependencies file for fig4b_mode_trace.
# This may be replaced when dependencies are built.
