file(REMOVE_RECURSE
  "CMakeFiles/fig4b_mode_trace.dir/bench/fig4b_mode_trace.cc.o"
  "CMakeFiles/fig4b_mode_trace.dir/bench/fig4b_mode_trace.cc.o.d"
  "bench/fig4b_mode_trace"
  "bench/fig4b_mode_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_mode_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
