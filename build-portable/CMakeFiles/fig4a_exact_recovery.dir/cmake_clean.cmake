file(REMOVE_RECURSE
  "CMakeFiles/fig4a_exact_recovery.dir/bench/fig4a_exact_recovery.cc.o"
  "CMakeFiles/fig4a_exact_recovery.dir/bench/fig4a_exact_recovery.cc.o.d"
  "bench/fig4a_exact_recovery"
  "bench/fig4a_exact_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_exact_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
