# Empty compiler generated dependencies file for fig4a_exact_recovery.
# This may be replaced when dependencies are built.
