file(REMOVE_RECURSE
  "CMakeFiles/fig9_production_mode_trace.dir/bench/fig9_production_mode_trace.cc.o"
  "CMakeFiles/fig9_production_mode_trace.dir/bench/fig9_production_mode_trace.cc.o.d"
  "bench/fig9_production_mode_trace"
  "bench/fig9_production_mode_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_production_mode_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
