# Empty dependencies file for fig9_production_mode_trace.
# This may be replaced when dependencies are built.
