file(REMOVE_RECURSE
  "CMakeFiles/search_quality_analysis.dir/search_quality_analysis.cpp.o"
  "CMakeFiles/search_quality_analysis.dir/search_quality_analysis.cpp.o.d"
  "search_quality_analysis"
  "search_quality_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_quality_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
