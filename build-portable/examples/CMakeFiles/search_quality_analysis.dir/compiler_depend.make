# Empty compiler generated dependencies file for search_quality_analysis.
# This may be replaced when dependencies are built.
