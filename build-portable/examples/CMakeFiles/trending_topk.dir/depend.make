# Empty dependencies file for trending_topk.
# This may be replaced when dependencies are built.
