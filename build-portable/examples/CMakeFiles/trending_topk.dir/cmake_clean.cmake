file(REMOVE_RECURSE
  "CMakeFiles/trending_topk.dir/trending_topk.cpp.o"
  "CMakeFiles/trending_topk.dir/trending_topk.cpp.o.d"
  "trending_topk"
  "trending_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trending_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
