file(REMOVE_RECURSE
  "CMakeFiles/sliding_window_monitoring.dir/sliding_window_monitoring.cpp.o"
  "CMakeFiles/sliding_window_monitoring.dir/sliding_window_monitoring.cpp.o.d"
  "sliding_window_monitoring"
  "sliding_window_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
