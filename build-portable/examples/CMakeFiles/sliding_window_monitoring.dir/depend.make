# Empty dependencies file for sliding_window_monitoring.
# This may be replaced when dependencies are built.
