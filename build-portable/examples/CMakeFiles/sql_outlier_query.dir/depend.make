# Empty dependencies file for sql_outlier_query.
# This may be replaced when dependencies are built.
