file(REMOVE_RECURSE
  "CMakeFiles/sql_outlier_query.dir/sql_outlier_query.cpp.o"
  "CMakeFiles/sql_outlier_query.dir/sql_outlier_query.cpp.o.d"
  "sql_outlier_query"
  "sql_outlier_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_outlier_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
