file(REMOVE_RECURSE
  "CMakeFiles/telemetry_percentiles.dir/telemetry_percentiles.cpp.o"
  "CMakeFiles/telemetry_percentiles.dir/telemetry_percentiles.cpp.o.d"
  "telemetry_percentiles"
  "telemetry_percentiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
