# Empty dependencies file for telemetry_percentiles.
# This may be replaced when dependencies are built.
