# Empty compiler generated dependencies file for basis_pursuit_test.
# This may be replaced when dependencies are built.
