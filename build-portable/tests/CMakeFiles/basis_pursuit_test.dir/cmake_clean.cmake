file(REMOVE_RECURSE
  "CMakeFiles/basis_pursuit_test.dir/basis_pursuit_test.cc.o"
  "CMakeFiles/basis_pursuit_test.dir/basis_pursuit_test.cc.o.d"
  "basis_pursuit_test"
  "basis_pursuit_test.pdb"
  "basis_pursuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basis_pursuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
