file(REMOVE_RECURSE
  "CMakeFiles/adaptive_protocol_test.dir/adaptive_protocol_test.cc.o"
  "CMakeFiles/adaptive_protocol_test.dir/adaptive_protocol_test.cc.o.d"
  "adaptive_protocol_test"
  "adaptive_protocol_test.pdb"
  "adaptive_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
