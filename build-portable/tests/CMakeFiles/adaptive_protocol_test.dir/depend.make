# Empty dependencies file for adaptive_protocol_test.
# This may be replaced when dependencies are built.
