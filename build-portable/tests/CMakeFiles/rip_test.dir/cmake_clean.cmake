file(REMOVE_RECURSE
  "CMakeFiles/rip_test.dir/rip_test.cc.o"
  "CMakeFiles/rip_test.dir/rip_test.cc.o.d"
  "rip_test"
  "rip_test.pdb"
  "rip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
