# Empty compiler generated dependencies file for windowed_detector_test.
# This may be replaced when dependencies are built.
