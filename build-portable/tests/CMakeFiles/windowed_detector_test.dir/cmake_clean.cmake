file(REMOVE_RECURSE
  "CMakeFiles/windowed_detector_test.dir/windowed_detector_test.cc.o"
  "CMakeFiles/windowed_detector_test.dir/windowed_detector_test.cc.o.d"
  "windowed_detector_test"
  "windowed_detector_test.pdb"
  "windowed_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windowed_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
