# Empty dependencies file for measurement_matrix_test.
# This may be replaced when dependencies are built.
