file(REMOVE_RECURSE
  "CMakeFiles/measurement_matrix_test.dir/measurement_matrix_test.cc.o"
  "CMakeFiles/measurement_matrix_test.dir/measurement_matrix_test.cc.o.d"
  "measurement_matrix_test"
  "measurement_matrix_test.pdb"
  "measurement_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
