file(REMOVE_RECURSE
  "CMakeFiles/incremental_qr_test.dir/incremental_qr_test.cc.o"
  "CMakeFiles/incremental_qr_test.dir/incremental_qr_test.cc.o.d"
  "incremental_qr_test"
  "incremental_qr_test.pdb"
  "incremental_qr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_qr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
