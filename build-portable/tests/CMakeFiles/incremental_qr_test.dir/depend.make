# Empty dependencies file for incremental_qr_test.
# This may be replaced when dependencies are built.
