# Empty dependencies file for topk_protocols_test.
# This may be replaced when dependencies are built.
