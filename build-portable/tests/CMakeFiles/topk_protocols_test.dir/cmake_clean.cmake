file(REMOVE_RECURSE
  "CMakeFiles/topk_protocols_test.dir/topk_protocols_test.cc.o"
  "CMakeFiles/topk_protocols_test.dir/topk_protocols_test.cc.o.d"
  "topk_protocols_test"
  "topk_protocols_test.pdb"
  "topk_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
