file(REMOVE_RECURSE
  "CMakeFiles/simd_test.dir/simd_test.cc.o"
  "CMakeFiles/simd_test.dir/simd_test.cc.o.d"
  "simd_test"
  "simd_test.pdb"
  "simd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
