file(REMOVE_RECURSE
  "CMakeFiles/key_dictionary_test.dir/key_dictionary_test.cc.o"
  "CMakeFiles/key_dictionary_test.dir/key_dictionary_test.cc.o.d"
  "key_dictionary_test"
  "key_dictionary_test.pdb"
  "key_dictionary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
