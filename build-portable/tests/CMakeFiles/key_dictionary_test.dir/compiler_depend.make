# Empty compiler generated dependencies file for key_dictionary_test.
# This may be replaced when dependencies are built.
