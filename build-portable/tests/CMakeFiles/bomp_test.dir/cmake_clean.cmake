file(REMOVE_RECURSE
  "CMakeFiles/bomp_test.dir/bomp_test.cc.o"
  "CMakeFiles/bomp_test.dir/bomp_test.cc.o.d"
  "bomp_test"
  "bomp_test.pdb"
  "bomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
