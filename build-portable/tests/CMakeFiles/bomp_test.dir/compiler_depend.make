# Empty compiler generated dependencies file for bomp_test.
# This may be replaced when dependencies are built.
