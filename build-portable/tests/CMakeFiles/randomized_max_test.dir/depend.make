# Empty dependencies file for randomized_max_test.
# This may be replaced when dependencies are built.
