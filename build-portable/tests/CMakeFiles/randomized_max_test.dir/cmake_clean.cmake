file(REMOVE_RECURSE
  "CMakeFiles/randomized_max_test.dir/randomized_max_test.cc.o"
  "CMakeFiles/randomized_max_test.dir/randomized_max_test.cc.o.d"
  "randomized_max_test"
  "randomized_max_test.pdb"
  "randomized_max_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_max_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
