file(REMOVE_RECURSE
  "CMakeFiles/compressor_test.dir/compressor_test.cc.o"
  "CMakeFiles/compressor_test.dir/compressor_test.cc.o.d"
  "compressor_test"
  "compressor_test.pdb"
  "compressor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
