# Empty dependencies file for compressor_test.
# This may be replaced when dependencies are built.
