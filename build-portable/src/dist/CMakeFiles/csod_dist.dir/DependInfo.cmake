
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/adaptive_cs_protocol.cc" "src/dist/CMakeFiles/csod_dist.dir/adaptive_cs_protocol.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/adaptive_cs_protocol.cc.o.d"
  "/root/repo/src/dist/all_protocol.cc" "src/dist/CMakeFiles/csod_dist.dir/all_protocol.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/all_protocol.cc.o.d"
  "/root/repo/src/dist/cluster.cc" "src/dist/CMakeFiles/csod_dist.dir/cluster.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/cluster.cc.o.d"
  "/root/repo/src/dist/comm.cc" "src/dist/CMakeFiles/csod_dist.dir/comm.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/comm.cc.o.d"
  "/root/repo/src/dist/cs_protocol.cc" "src/dist/CMakeFiles/csod_dist.dir/cs_protocol.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/cs_protocol.cc.o.d"
  "/root/repo/src/dist/fault.cc" "src/dist/CMakeFiles/csod_dist.dir/fault.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/fault.cc.o.d"
  "/root/repo/src/dist/kplusdelta_protocol.cc" "src/dist/CMakeFiles/csod_dist.dir/kplusdelta_protocol.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/kplusdelta_protocol.cc.o.d"
  "/root/repo/src/dist/randomized_max.cc" "src/dist/CMakeFiles/csod_dist.dir/randomized_max.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/randomized_max.cc.o.d"
  "/root/repo/src/dist/topk_protocols.cc" "src/dist/CMakeFiles/csod_dist.dir/topk_protocols.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/topk_protocols.cc.o.d"
  "/root/repo/src/dist/wire_format.cc" "src/dist/CMakeFiles/csod_dist.dir/wire_format.cc.o" "gcc" "src/dist/CMakeFiles/csod_dist.dir/wire_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-portable/src/outlier/CMakeFiles/csod_outlier.dir/DependInfo.cmake"
  "/root/repo/build-portable/src/cs/CMakeFiles/csod_cs.dir/DependInfo.cmake"
  "/root/repo/build-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  "/root/repo/build-portable/src/la/CMakeFiles/csod_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
