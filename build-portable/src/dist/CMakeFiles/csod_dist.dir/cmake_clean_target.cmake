file(REMOVE_RECURSE
  "libcsod_dist.a"
)
