file(REMOVE_RECURSE
  "CMakeFiles/csod_dist.dir/adaptive_cs_protocol.cc.o"
  "CMakeFiles/csod_dist.dir/adaptive_cs_protocol.cc.o.d"
  "CMakeFiles/csod_dist.dir/all_protocol.cc.o"
  "CMakeFiles/csod_dist.dir/all_protocol.cc.o.d"
  "CMakeFiles/csod_dist.dir/cluster.cc.o"
  "CMakeFiles/csod_dist.dir/cluster.cc.o.d"
  "CMakeFiles/csod_dist.dir/comm.cc.o"
  "CMakeFiles/csod_dist.dir/comm.cc.o.d"
  "CMakeFiles/csod_dist.dir/cs_protocol.cc.o"
  "CMakeFiles/csod_dist.dir/cs_protocol.cc.o.d"
  "CMakeFiles/csod_dist.dir/fault.cc.o"
  "CMakeFiles/csod_dist.dir/fault.cc.o.d"
  "CMakeFiles/csod_dist.dir/kplusdelta_protocol.cc.o"
  "CMakeFiles/csod_dist.dir/kplusdelta_protocol.cc.o.d"
  "CMakeFiles/csod_dist.dir/randomized_max.cc.o"
  "CMakeFiles/csod_dist.dir/randomized_max.cc.o.d"
  "CMakeFiles/csod_dist.dir/topk_protocols.cc.o"
  "CMakeFiles/csod_dist.dir/topk_protocols.cc.o.d"
  "CMakeFiles/csod_dist.dir/wire_format.cc.o"
  "CMakeFiles/csod_dist.dir/wire_format.cc.o.d"
  "libcsod_dist.a"
  "libcsod_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
