# Empty dependencies file for csod_dist.
# This may be replaced when dependencies are built.
