file(REMOVE_RECURSE
  "libcsod_core.a"
)
