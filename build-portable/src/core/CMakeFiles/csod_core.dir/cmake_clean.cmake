file(REMOVE_RECURSE
  "CMakeFiles/csod_core.dir/detector.cc.o"
  "CMakeFiles/csod_core.dir/detector.cc.o.d"
  "CMakeFiles/csod_core.dir/windowed_detector.cc.o"
  "CMakeFiles/csod_core.dir/windowed_detector.cc.o.d"
  "libcsod_core.a"
  "libcsod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
