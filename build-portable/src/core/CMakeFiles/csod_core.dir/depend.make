# Empty dependencies file for csod_core.
# This may be replaced when dependencies are built.
