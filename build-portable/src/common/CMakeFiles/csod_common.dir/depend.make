# Empty dependencies file for csod_common.
# This may be replaced when dependencies are built.
