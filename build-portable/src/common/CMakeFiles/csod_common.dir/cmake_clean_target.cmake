file(REMOVE_RECURSE
  "libcsod_common.a"
)
