file(REMOVE_RECURSE
  "CMakeFiles/csod_common.dir/flags.cc.o"
  "CMakeFiles/csod_common.dir/flags.cc.o.d"
  "CMakeFiles/csod_common.dir/parallel.cc.o"
  "CMakeFiles/csod_common.dir/parallel.cc.o.d"
  "CMakeFiles/csod_common.dir/simd.cc.o"
  "CMakeFiles/csod_common.dir/simd.cc.o.d"
  "CMakeFiles/csod_common.dir/status.cc.o"
  "CMakeFiles/csod_common.dir/status.cc.o.d"
  "CMakeFiles/csod_common.dir/thread_pool.cc.o"
  "CMakeFiles/csod_common.dir/thread_pool.cc.o.d"
  "libcsod_common.a"
  "libcsod_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
