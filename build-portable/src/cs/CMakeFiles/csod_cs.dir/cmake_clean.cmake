file(REMOVE_RECURSE
  "CMakeFiles/csod_cs.dir/basis_pursuit.cc.o"
  "CMakeFiles/csod_cs.dir/basis_pursuit.cc.o.d"
  "CMakeFiles/csod_cs.dir/bomp.cc.o"
  "CMakeFiles/csod_cs.dir/bomp.cc.o.d"
  "CMakeFiles/csod_cs.dir/compressor.cc.o"
  "CMakeFiles/csod_cs.dir/compressor.cc.o.d"
  "CMakeFiles/csod_cs.dir/cosamp.cc.o"
  "CMakeFiles/csod_cs.dir/cosamp.cc.o.d"
  "CMakeFiles/csod_cs.dir/dictionary.cc.o"
  "CMakeFiles/csod_cs.dir/dictionary.cc.o.d"
  "CMakeFiles/csod_cs.dir/measurement_matrix.cc.o"
  "CMakeFiles/csod_cs.dir/measurement_matrix.cc.o.d"
  "CMakeFiles/csod_cs.dir/omp.cc.o"
  "CMakeFiles/csod_cs.dir/omp.cc.o.d"
  "CMakeFiles/csod_cs.dir/rip.cc.o"
  "CMakeFiles/csod_cs.dir/rip.cc.o.d"
  "libcsod_cs.a"
  "libcsod_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
