# Empty dependencies file for csod_cs.
# This may be replaced when dependencies are built.
