
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cs/basis_pursuit.cc" "src/cs/CMakeFiles/csod_cs.dir/basis_pursuit.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/basis_pursuit.cc.o.d"
  "/root/repo/src/cs/bomp.cc" "src/cs/CMakeFiles/csod_cs.dir/bomp.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/bomp.cc.o.d"
  "/root/repo/src/cs/compressor.cc" "src/cs/CMakeFiles/csod_cs.dir/compressor.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/compressor.cc.o.d"
  "/root/repo/src/cs/cosamp.cc" "src/cs/CMakeFiles/csod_cs.dir/cosamp.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/cosamp.cc.o.d"
  "/root/repo/src/cs/dictionary.cc" "src/cs/CMakeFiles/csod_cs.dir/dictionary.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/dictionary.cc.o.d"
  "/root/repo/src/cs/measurement_matrix.cc" "src/cs/CMakeFiles/csod_cs.dir/measurement_matrix.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/measurement_matrix.cc.o.d"
  "/root/repo/src/cs/omp.cc" "src/cs/CMakeFiles/csod_cs.dir/omp.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/omp.cc.o.d"
  "/root/repo/src/cs/rip.cc" "src/cs/CMakeFiles/csod_cs.dir/rip.cc.o" "gcc" "src/cs/CMakeFiles/csod_cs.dir/rip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-portable/src/la/CMakeFiles/csod_la.dir/DependInfo.cmake"
  "/root/repo/build-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
