file(REMOVE_RECURSE
  "libcsod_cs.a"
)
