file(REMOVE_RECURSE
  "libcsod_sketch.a"
)
