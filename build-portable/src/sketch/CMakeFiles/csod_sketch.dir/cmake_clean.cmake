file(REMOVE_RECURSE
  "CMakeFiles/csod_sketch.dir/count_min.cc.o"
  "CMakeFiles/csod_sketch.dir/count_min.cc.o.d"
  "CMakeFiles/csod_sketch.dir/count_sketch.cc.o"
  "CMakeFiles/csod_sketch.dir/count_sketch.cc.o.d"
  "CMakeFiles/csod_sketch.dir/hyperloglog.cc.o"
  "CMakeFiles/csod_sketch.dir/hyperloglog.cc.o.d"
  "CMakeFiles/csod_sketch.dir/sketch_protocols.cc.o"
  "CMakeFiles/csod_sketch.dir/sketch_protocols.cc.o.d"
  "libcsod_sketch.a"
  "libcsod_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
