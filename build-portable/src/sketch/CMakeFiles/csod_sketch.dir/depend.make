# Empty dependencies file for csod_sketch.
# This may be replaced when dependencies are built.
