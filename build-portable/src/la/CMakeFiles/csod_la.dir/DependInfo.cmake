
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/incremental_qr.cc" "src/la/CMakeFiles/csod_la.dir/incremental_qr.cc.o" "gcc" "src/la/CMakeFiles/csod_la.dir/incremental_qr.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/la/CMakeFiles/csod_la.dir/matrix.cc.o" "gcc" "src/la/CMakeFiles/csod_la.dir/matrix.cc.o.d"
  "/root/repo/src/la/vector_ops.cc" "src/la/CMakeFiles/csod_la.dir/vector_ops.cc.o" "gcc" "src/la/CMakeFiles/csod_la.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
