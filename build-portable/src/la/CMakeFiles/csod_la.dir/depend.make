# Empty dependencies file for csod_la.
# This may be replaced when dependencies are built.
