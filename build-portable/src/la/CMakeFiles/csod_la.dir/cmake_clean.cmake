file(REMOVE_RECURSE
  "CMakeFiles/csod_la.dir/incremental_qr.cc.o"
  "CMakeFiles/csod_la.dir/incremental_qr.cc.o.d"
  "CMakeFiles/csod_la.dir/matrix.cc.o"
  "CMakeFiles/csod_la.dir/matrix.cc.o.d"
  "CMakeFiles/csod_la.dir/vector_ops.cc.o"
  "CMakeFiles/csod_la.dir/vector_ops.cc.o.d"
  "libcsod_la.a"
  "libcsod_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
