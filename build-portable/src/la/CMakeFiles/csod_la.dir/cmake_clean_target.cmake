file(REMOVE_RECURSE
  "libcsod_la.a"
)
