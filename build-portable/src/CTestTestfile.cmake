# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-portable/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("la")
subdirs("cs")
subdirs("outlier")
subdirs("workload")
subdirs("dist")
subdirs("sketch")
subdirs("mapreduce")
subdirs("core")
subdirs("query")
