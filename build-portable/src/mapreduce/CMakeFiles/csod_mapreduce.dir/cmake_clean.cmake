file(REMOVE_RECURSE
  "CMakeFiles/csod_mapreduce.dir/cost_model.cc.o"
  "CMakeFiles/csod_mapreduce.dir/cost_model.cc.o.d"
  "CMakeFiles/csod_mapreduce.dir/jobs.cc.o"
  "CMakeFiles/csod_mapreduce.dir/jobs.cc.o.d"
  "libcsod_mapreduce.a"
  "libcsod_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
