# Empty dependencies file for csod_mapreduce.
# This may be replaced when dependencies are built.
