file(REMOVE_RECURSE
  "libcsod_mapreduce.a"
)
