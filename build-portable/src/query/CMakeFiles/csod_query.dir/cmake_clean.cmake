file(REMOVE_RECURSE
  "CMakeFiles/csod_query.dir/executor.cc.o"
  "CMakeFiles/csod_query.dir/executor.cc.o.d"
  "CMakeFiles/csod_query.dir/query.cc.o"
  "CMakeFiles/csod_query.dir/query.cc.o.d"
  "libcsod_query.a"
  "libcsod_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
