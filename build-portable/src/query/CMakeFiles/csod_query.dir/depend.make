# Empty dependencies file for csod_query.
# This may be replaced when dependencies are built.
