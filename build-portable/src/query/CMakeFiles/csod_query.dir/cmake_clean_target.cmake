file(REMOVE_RECURSE
  "libcsod_query.a"
)
