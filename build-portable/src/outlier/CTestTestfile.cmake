# CMake generated Testfile for 
# Source directory: /root/repo/src/outlier
# Build directory: /root/repo/build-portable/src/outlier
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
