
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/outlier/aggregates.cc" "src/outlier/CMakeFiles/csod_outlier.dir/aggregates.cc.o" "gcc" "src/outlier/CMakeFiles/csod_outlier.dir/aggregates.cc.o.d"
  "/root/repo/src/outlier/metrics.cc" "src/outlier/CMakeFiles/csod_outlier.dir/metrics.cc.o" "gcc" "src/outlier/CMakeFiles/csod_outlier.dir/metrics.cc.o.d"
  "/root/repo/src/outlier/outlier.cc" "src/outlier/CMakeFiles/csod_outlier.dir/outlier.cc.o" "gcc" "src/outlier/CMakeFiles/csod_outlier.dir/outlier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-portable/src/cs/CMakeFiles/csod_cs.dir/DependInfo.cmake"
  "/root/repo/build-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  "/root/repo/build-portable/src/la/CMakeFiles/csod_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
