# Empty dependencies file for csod_outlier.
# This may be replaced when dependencies are built.
