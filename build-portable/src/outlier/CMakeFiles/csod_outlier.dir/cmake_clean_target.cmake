file(REMOVE_RECURSE
  "libcsod_outlier.a"
)
