file(REMOVE_RECURSE
  "CMakeFiles/csod_outlier.dir/aggregates.cc.o"
  "CMakeFiles/csod_outlier.dir/aggregates.cc.o.d"
  "CMakeFiles/csod_outlier.dir/metrics.cc.o"
  "CMakeFiles/csod_outlier.dir/metrics.cc.o.d"
  "CMakeFiles/csod_outlier.dir/outlier.cc.o"
  "CMakeFiles/csod_outlier.dir/outlier.cc.o.d"
  "libcsod_outlier.a"
  "libcsod_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
