file(REMOVE_RECURSE
  "libcsod_workload.a"
)
