# Empty dependencies file for csod_workload.
# This may be replaced when dependencies are built.
