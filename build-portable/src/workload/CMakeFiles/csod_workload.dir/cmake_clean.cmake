file(REMOVE_RECURSE
  "CMakeFiles/csod_workload.dir/generators.cc.o"
  "CMakeFiles/csod_workload.dir/generators.cc.o.d"
  "CMakeFiles/csod_workload.dir/key_dictionary.cc.o"
  "CMakeFiles/csod_workload.dir/key_dictionary.cc.o.d"
  "CMakeFiles/csod_workload.dir/partitioner.cc.o"
  "CMakeFiles/csod_workload.dir/partitioner.cc.o.d"
  "libcsod_workload.a"
  "libcsod_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csod_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
