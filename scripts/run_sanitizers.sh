#!/usr/bin/env bash
# Builds the tree under a sanitizer and runs the tier-1 test suite.
# ThreadSanitizer is the default: it is the one that exercises the
# persistent thread pool's dispatch/park/steal protocol.
#
# Usage: scripts/run_sanitizers.sh [thread|address] [ctest_filter_regex]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SAN="${1:-thread}"
FILTER="${2:-}"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-${SAN}san}"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCSOD_SANITIZE="$SAN"
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
if [[ -n "$FILTER" ]]; then
  ctest --output-on-failure -j "$(nproc)" -R "$FILTER"
else
  ctest --output-on-failure -j "$(nproc)"
fi

# The fault-injection suite exercises the Channel/retry path that the CS
# protocols now share; rerun it explicitly so a filtered invocation still
# gets sanitizer coverage of the failure-handling code.
ctest --output-on-failure -j "$(nproc)" -R 'Fault|Degraded|RetryPolicy'

# Parallel MapReduce engine pass: map tasks, shuffle build, and reduce
# tasks all run concurrently on the pool now, so the engine/jobs suites
# (including the cross-thread-limit bit-identity sweeps) and the columnar
# shuffle substrate (arena pages, column chunks, interner, radix scatter —
# placement-new/manual-destruction code that ASan, not just TSan, must
# see) get an explicit rerun even when the main invocation was filtered.
ENGINE_FILTER='EngineTest|EngineDeterminism|EngineStress|DefaultPartition'
ENGINE_FILTER+='|CostModel|JobTest|Jobs|ParallelFor'
ENGINE_FILTER+='|Arena|ColumnChunks|KeyInterner|ReduceGroups|ScatterPartitions'
ctest --output-on-failure -j "$(nproc)" -R "$ENGINE_FILTER"

# Streaming service pass: the serve suite is the one place where reader
# threads (snapshot queries) race the ingest/advance path by design —
# swap-on-advance snapshot publication, the atomics backing
# current_epoch/version, the tenant-handle lifetime (RemoveTenant racing
# in-flight queries), and the CLI demo's analyst thread all need TSan eyes
# even when the main invocation was filtered. The wire surface rides along:
# NetServer is shared across connections (atomic counters), ServeConnection
# runs on its own thread in the socket tests, and checkpoint/restore copies
# detector state under the ingest mutex.
SERVE_FILTER='StreamingDetector|StreamingService|WindowedDetector'
SERVE_FILTER+='|CliServe|CliStreamDemo'
SERVE_FILTER+='|NetCodec|NetServer|NetEndToEnd|NetBackpressure|NetTornFrame'
SERVE_FILTER+='|SnapshotFollower|Checkpoint'
ctest --output-on-failure -j "$(nproc)" -R "$SERVE_FILTER"

# The same serve surface under the *other* sanitizer: the wire codecs do
# manual byte-level encode/decode (memcpy in and out of frames) and the
# checkpoint path deep-copies epoch rings, so an address-safety pass is
# required even when this invocation asked for TSan (and vice versa).
SERVE_OTHER_SAN=$([[ "${1:-thread}" == thread ]] && echo address || echo thread)
SERVE_OTHER_BUILD_DIR="${SERVE_OTHER_BUILD_DIR:-$ROOT/build-${SERVE_OTHER_SAN}san-serve}"
cmake -B "$SERVE_OTHER_BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCSOD_SANITIZE="$SERVE_OTHER_SAN"
cmake --build "$SERVE_OTHER_BUILD_DIR" -j "$(nproc)" --target \
  serve_test serve_net_test serve_checkpoint_test
(cd "$SERVE_OTHER_BUILD_DIR" &&
 ctest --output-on-failure -j "$(nproc)" -R "$SERVE_FILTER")

# The same engine suite under the *other* sanitizer: the arena hands out
# raw uninitialized pages and ColumnChunks runs element destructors by
# hand, so an address-safety pass is required even when this invocation
# asked for TSan (and vice versa — the engine is the one subsystem that
# always gets both).
OTHER_SAN=$([[ "$SAN" == thread ]] && echo address || echo thread)
OTHER_BUILD_DIR="${OTHER_BUILD_DIR:-$ROOT/build-${OTHER_SAN}san-engine}"
cmake -B "$OTHER_BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCSOD_SANITIZE="$OTHER_SAN"
cmake --build "$OTHER_BUILD_DIR" -j "$(nproc)" --target \
  engine_test shuffle_test jobs_test cost_model_test parallel_test
(cd "$OTHER_BUILD_DIR" &&
 ctest --output-on-failure -j "$(nproc)" -R "$ENGINE_FILTER")

# SIMD kernel + batch sketching tests again under the same sanitizer, but
# with the portable dispatch path forced at compile time, so both sides of
# the AVX2/portable split get sanitizer coverage.
PORTABLE_BUILD_DIR="${PORTABLE_BUILD_DIR:-$ROOT/build-${SAN}san-portable}"
cmake -B "$PORTABLE_BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCSOD_SANITIZE="$SAN" \
  -DCSOD_FORCE_PORTABLE_SIMD=ON
cmake --build "$PORTABLE_BUILD_DIR" -j "$(nproc)" --target \
  simd_test measurement_matrix_test compressor_test
(cd "$PORTABLE_BUILD_DIR" &&
 ctest --output-on-failure -j "$(nproc)" \
   -R 'Simd|MeasurementMatrix|Compressor|SparseSlice')

# Recovery-engine pass (DESIGN.md §14): the AMP kernel's ParallelFor
# matvecs, the cross-engine dispatch, the streaming DAMP protocol, and
# the two-phase sense-then-refine path all thread through the pool and
# the Channel — rerun their suites explicitly (and again with portable
# dispatch forced, mirroring the SIMD block above) so a filtered
# invocation still sanitizes both sides of every recovery engine.
RECOVERY_FILTER='AmpTest|BiasedAmpTest|SolverTest|SolverDifferential'
RECOVERY_FILTER+='|AmpProtocol|TwoPhaseProtocol|TelemetryIdentity'
ctest --output-on-failure -j "$(nproc)" -R "$RECOVERY_FILTER"
cmake --build "$PORTABLE_BUILD_DIR" -j "$(nproc)" --target \
  amp_test solver_differential_test
(cd "$PORTABLE_BUILD_DIR" &&
 ctest --output-on-failure -j "$(nproc)" \
   -R 'AmpTest|BiasedAmpTest|SolverTest|SolverDifferential')

# Simulation smoke pass: a small seeded sweep through the full harness
# (all nine scenario kinds, Buggify hooks hot, every scenario internally
# re-executed at a second thread limit) under the sanitizer. TSan is the
# interesting one — Buggify's section registry and the serve stall storm
# both poke shared state from pool threads. The sim_test suite and the
# regression corpus run as part of tier-1 above; this adds fresh seeds.
cmake --build "$BUILD_DIR" -j "$(nproc)" --target sim_driver
"$BUILD_DIR/tools/sim_driver" --scenarios=24 --seed0=4242

# Telemetry double-run determinism + CollectionReport cross-check, against
# the sanitizer build so the instrumented hot paths also get race coverage.
BUILD_DIR="$BUILD_DIR" "$ROOT/scripts/run_telemetry_check.sh" --quick

# Keep the documentation's cross-links honest while we're at it.
"$ROOT/scripts/check_docs_links.sh"
