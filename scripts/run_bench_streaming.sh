#!/usr/bin/env bash
# Runs the streaming service benchmark (BENCH_streaming.json at the repo
# root): sharded batch ingestion + epoch advance + concurrent snapshot
# queries at thread limits {1,2,8}, with an FNV-1a digest over every
# output bit (published window measurement, top-k keys/values, k-outlier
# keys/values/mode) checked across limits AND against a
# WindowedOutlierDetector reference fed the same per-(batch, shard)
# slices.
#
# The bench runs twice; timings differ run to run, so the determinism
# check (same pattern as run_bench_mapreduce.sh) diffs only the
# output_digest / reference_window_digest / bit_identical lines, which
# must be byte-identical — and the bench itself exits nonzero if any
# thread limit moves a single output bit or any query observes a snapshot
# older than the 1-epoch staleness bound.
#
# The script then gates:
#  - updates/sec at the widest limit with concurrent analysts: >= 100k/s
#    on >= 8 cores, >= 50k/s on 2-7 cores, >= 25k/s on a single core
#    (MIN_UPDATES_PER_SEC overrides);
#  - telemetry overhead: <= 2% ingest-wall cost for a live sink vs a null
#    sink (MAX_TELEMETRY_OVERHEAD_PCT overrides; best-of-trials on both
#    sides keeps the measurement below scheduler noise).
#
# Usage: scripts/run_bench_streaming.sh
#   BUILD_DIR=<dir>                  build directory (default: build)
#   STREAMING_FLAGS=<f>              extra bench flags (e.g. "--quick=true")
#   MIN_UPDATES_PER_SEC=<x>          override the throughput threshold
#   MAX_TELEMETRY_OVERHEAD_PCT=<x>   override the telemetry budget
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_streaming -j "$(nproc)"

TMP_A="$(mktemp)"
TMP_B="$(mktemp)"
trap 'rm -f "$TMP_A" "$TMP_B"' EXIT

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_streaming" --out="$TMP_A" ${STREAMING_FLAGS:-}
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_streaming" --out="$TMP_B" ${STREAMING_FLAGS:-} \
  >/dev/null

DIGEST_RE='output_digest|reference_window_digest|bit_identical'
if ! diff <(grep -E "$DIGEST_RE" "$TMP_A") \
          <(grep -E "$DIGEST_RE" "$TMP_B") >/dev/null; then
  echo "FAIL: two bench_streaming runs produced different output digests" >&2
  diff <(grep -E "$DIGEST_RE" "$TMP_A") \
       <(grep -E "$DIGEST_RE" "$TMP_B") >&2 || true
  exit 1
fi
echo "Streaming determinism check passed: digests identical across two runs."

# Throughput gate: committed thresholds by core count.
CORES="$(nproc)"
if [[ -z "${MIN_UPDATES_PER_SEC:-}" ]]; then
  if [[ "$CORES" -ge 8 ]]; then
    MIN_UPDATES_PER_SEC=100000
  elif [[ "$CORES" -ge 2 ]]; then
    MIN_UPDATES_PER_SEC=50000
  else
    MIN_UPDATES_PER_SEC=25000
  fi
fi
UPDATES="$(sed -n 's/.*"updates_per_sec": \([0-9.]*\).*/\1/p' "$TMP_A")"
if [[ -z "$UPDATES" ]]; then
  echo "FAIL: no updates_per_sec in bench output" >&2
  exit 1
fi
if ! awk -v u="$UPDATES" -v min="$MIN_UPDATES_PER_SEC" \
     'BEGIN {exit !(u >= min)}'; then
  echo "FAIL: updates_per_sec $UPDATES below threshold" \
       "$MIN_UPDATES_PER_SEC ($CORES cores)" >&2
  exit 1
fi
echo "Streaming throughput gate passed: ${UPDATES}/s >=" \
     "${MIN_UPDATES_PER_SEC}/s ($CORES cores)."

# Staleness gate: the bench exits nonzero itself, but assert the JSON too.
if ! grep -q '"staleness_bound_held": true' "$TMP_A"; then
  echo "FAIL: a query observed a snapshot older than 1 epoch" >&2
  exit 1
fi
echo "Streaming staleness gate passed: every query <= 1 epoch stale."

# Telemetry budget gate.
MAX_TELEMETRY_OVERHEAD_PCT="${MAX_TELEMETRY_OVERHEAD_PCT:-2.0}"
OVERHEAD="$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' "$TMP_A")"
if [[ -z "$OVERHEAD" ]]; then
  echo "FAIL: no overhead_pct in bench output" >&2
  exit 1
fi
if ! awk -v o="$OVERHEAD" -v max="$MAX_TELEMETRY_OVERHEAD_PCT" \
     'BEGIN {exit !(o <= max)}'; then
  echo "FAIL: telemetry overhead ${OVERHEAD}% above budget" \
       "${MAX_TELEMETRY_OVERHEAD_PCT}%" >&2
  exit 1
fi
echo "Streaming telemetry gate passed: ${OVERHEAD}% <=" \
     "${MAX_TELEMETRY_OVERHEAD_PCT}%."

cp "$TMP_A" "$ROOT/BENCH_streaming.json"
echo "Wrote $ROOT/BENCH_streaming.json"
