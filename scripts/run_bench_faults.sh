#!/usr/bin/env bash
# Runs the fault-injection sweep twice with a fixed fault seed, verifies
# the two BENCH_faults.json outputs are byte-identical (the determinism
# contract of docs/FAULT_MODEL.md), then installs the file at the repo
# root.
#
# Usage: scripts/run_bench_faults.sh [extra fault_sweep flags...]
#   BUILD_DIR=<dir>   build directory (default: build)
#   FAULT_SEED=<int>  fault seed (default: 1)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
SEED="${FAULT_SEED:-1}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target fault_sweep -j "$(nproc)"

TMP_A="$(mktemp)"
TMP_B="$(mktemp)"
trap 'rm -f "$TMP_A" "$TMP_B"' EXIT

"$BUILD_DIR/bench/fault_sweep" --seed="$SEED" --out="$TMP_A" "$@"
"$BUILD_DIR/bench/fault_sweep" --seed="$SEED" --out="$TMP_B" "$@" >/dev/null

if ! diff -q "$TMP_A" "$TMP_B" >/dev/null; then
  echo "FAIL: two runs with seed $SEED produced different BENCH_faults.json" >&2
  diff "$TMP_A" "$TMP_B" >&2 || true
  exit 1
fi
echo "Determinism check passed: two runs are byte-identical."

cp "$TMP_A" "$ROOT/BENCH_faults.json"
echo "Wrote $ROOT/BENCH_faults.json"
