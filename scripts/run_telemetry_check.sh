#!/usr/bin/env bash
# Telemetry determinism + cross-check (DESIGN.md §9):
#  1. Runs the seeded fault-injection sweep twice with --telemetry-json and
#     verifies the two deterministic snapshots are byte-identical (the same
#     double-run contract BENCH_faults.json already carries).
#  2. Cross-checks the snapshot's "comm.retries" / "comm.excluded_nodes"
#     counters against the "collection_totals" block of the sweep's JSON:
#     the telemetry layer and the CollectionReport plumbing count the same
#     events through entirely different code paths, so a mismatch means
#     one of them lost or double-counted an event.
#
# Usage: scripts/run_telemetry_check.sh [extra fault_sweep flags...]
#   BUILD_DIR=<dir>   build directory (default: build)
#   FAULT_SEED=<int>  fault seed (default: 1)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
SEED="${FAULT_SEED:-1}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target fault_sweep -j "$(nproc)"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD_DIR/bench/fault_sweep" --seed="$SEED" \
  --out="$TMP/bench_a.json" --telemetry-json="$TMP/tele_a.json" "$@"
"$BUILD_DIR/bench/fault_sweep" --seed="$SEED" \
  --out="$TMP/bench_b.json" --telemetry-json="$TMP/tele_b.json" "$@" \
  >/dev/null

if ! diff -q "$TMP/tele_a.json" "$TMP/tele_b.json" >/dev/null; then
  echo "FAIL: two seeded runs produced different telemetry snapshots" >&2
  diff "$TMP/tele_a.json" "$TMP/tele_b.json" >&2 || true
  exit 1
fi
echo "Telemetry determinism check passed: two runs are byte-identical."

# Pull one integer field out of a JSON file by key name.
json_int() {  # <file> <key>
  grep -o "\"$2\": [0-9]*" "$1" | head -n 1 | grep -o '[0-9]*$'
}

TELE_RETRIES="$(json_int "$TMP/tele_a.json" comm.retries || echo 0)"
TELE_EXCLUDED="$(json_int "$TMP/tele_a.json" comm.excluded_nodes || echo 0)"

# Read the totals from the collection_totals line specifically, dodging
# the per-point "retries" fields elsewhere in the sweep JSON.
TOTALS_LINE="$(grep '"collection_totals"' "$TMP/bench_a.json")"
REPORT_RETRIES="$(echo "$TOTALS_LINE" | grep -o '"retries": [0-9]*' | grep -o '[0-9]*$')"
REPORT_EXCLUDED="$(echo "$TOTALS_LINE" | grep -o '"excluded_nodes": [0-9]*' | grep -o '[0-9]*$')"

if [[ "$TELE_RETRIES" != "$REPORT_RETRIES" ]]; then
  echo "FAIL: telemetry comm.retries = $TELE_RETRIES but" \
       "collection_totals.retries = $REPORT_RETRIES" >&2
  exit 1
fi
if [[ "$TELE_EXCLUDED" != "$REPORT_EXCLUDED" ]]; then
  echo "FAIL: telemetry comm.excluded_nodes = $TELE_EXCLUDED but" \
       "collection_totals.excluded_nodes = $REPORT_EXCLUDED" >&2
  exit 1
fi
if [[ "$REPORT_RETRIES" == "0" ]]; then
  echo "FAIL: the fault sweep recorded zero retries — instrumentation" \
       "or fault injection is detached" >&2
  exit 1
fi
echo "Cross-check passed: comm.retries = $TELE_RETRIES and" \
     "comm.excluded_nodes = $TELE_EXCLUDED match collection_totals."
