#!/usr/bin/env bash
# Runs the wire-facing serve-surface benchmark (BENCH_serve_net.json at the
# repo root): framed ingest/advance/query over the loopback transport vs a
# bare in-process StreamingDetector fed the same stream, with an FNV-1a
# digest over every observable output (published window measurement bits,
# framed Outlier/Top query rows, mode, snapshot provenance) on both sides.
#
# The bench runs twice; timings differ run to run, so the determinism check
# (same pattern as run_bench_streaming.sh) diffs only the
# framed_digest / inprocess_digest / bit_identical / restore_bit_identical
# lines, which must be byte-identical — and the bench itself exits nonzero
# if the framed path diverges from the in-process path by a single bit, or
# if a checkpoint fetched over the wire fails to restore a bit-identical
# snapshot.
#
# The script then gates framed updates/sec: >= 100k/s on >= 8 cores,
# >= 50k/s on 2-7 cores, >= 25k/s on a single core (MIN_UPDATES_PER_SEC
# overrides). The framed path pays encode + checksum + decode per batch, so
# the thresholds match run_bench_streaming.sh — framing must never cost an
# order of magnitude.
#
# Usage: scripts/run_bench_serve_net.sh
#   BUILD_DIR=<dir>            build directory (default: build)
#   SERVE_NET_FLAGS=<f>        extra bench flags (e.g. "--quick=true")
#   MIN_UPDATES_PER_SEC=<x>    override the throughput threshold
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_serve_net -j "$(nproc)"

TMP_A="$(mktemp)"
TMP_B="$(mktemp)"
trap 'rm -f "$TMP_A" "$TMP_B"' EXIT

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_serve_net" --out="$TMP_A" ${SERVE_NET_FLAGS:-}
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_serve_net" --out="$TMP_B" ${SERVE_NET_FLAGS:-} \
  >/dev/null

DIGEST_RE='framed_digest|inprocess_digest|bit_identical|restore_bit_identical'
if ! diff <(grep -E "$DIGEST_RE" "$TMP_A") \
          <(grep -E "$DIGEST_RE" "$TMP_B") >/dev/null; then
  echo "FAIL: two bench_serve_net runs produced different digests" >&2
  diff <(grep -E "$DIGEST_RE" "$TMP_A") \
       <(grep -E "$DIGEST_RE" "$TMP_B") >&2 || true
  exit 1
fi
echo "Serve-net determinism check passed: digests identical across two runs."

# Exactness gates: the bench exits nonzero itself, but assert the JSON too.
if ! grep -q '"bit_identical": true' "$TMP_A"; then
  echo "FAIL: framed path diverged from the in-process path" >&2
  exit 1
fi
if ! grep -q '"restore_bit_identical": true' "$TMP_A"; then
  echo "FAIL: wire-fetched checkpoint did not restore bit-identically" >&2
  exit 1
fi
echo "Serve-net exactness gates passed: framed == in-process, restore" \
     "republishes bit-identically."

# Throughput gate: committed thresholds by core count.
CORES="$(nproc)"
if [[ -z "${MIN_UPDATES_PER_SEC:-}" ]]; then
  if [[ "$CORES" -ge 8 ]]; then
    MIN_UPDATES_PER_SEC=100000
  elif [[ "$CORES" -ge 2 ]]; then
    MIN_UPDATES_PER_SEC=50000
  else
    MIN_UPDATES_PER_SEC=25000
  fi
fi
# Anchor on the object brace: the same line also carries
# "direct_updates_per_sec", which a greedy match would grab instead.
UPDATES="$(sed -n 's/.*{"updates_per_sec": \([0-9.]*\),.*/\1/p' "$TMP_A")"
if [[ -z "$UPDATES" ]]; then
  echo "FAIL: no updates_per_sec in bench output" >&2
  exit 1
fi
if ! awk -v u="$UPDATES" -v min="$MIN_UPDATES_PER_SEC" \
     'BEGIN {exit !(u >= min)}'; then
  echo "FAIL: framed updates_per_sec $UPDATES below threshold" \
       "$MIN_UPDATES_PER_SEC ($CORES cores)" >&2
  exit 1
fi
echo "Serve-net throughput gate passed: ${UPDATES}/s >=" \
     "${MIN_UPDATES_PER_SEC}/s ($CORES cores)."

cp "$TMP_A" "$ROOT/BENCH_serve_net.json"
echo "Wrote $ROOT/BENCH_serve_net.json"
