#!/usr/bin/env bash
# Runs every figure-reproduction harness at (or near) the paper's scale.
# The default `for b in build/bench/*; do $b; done` sweep is laptop-sized;
# this script restores the paper's N / M / trial counts. Expect hours of
# CPU on a single core.
#
# Usage: scripts/run_paper_scale.sh [output-dir]
set -euo pipefail

BUILD=${BUILD:-build}
OUT=${1:-paper_scale_results}
mkdir -p "$OUT"

run() {
  local name=$1
  shift
  echo "=== $name $* ==="
  "$BUILD/bench/$name" "$@" | tee "$OUT/$name.txt"
}

# Figure 4: already paper-sized N; restore the 1000-trial estimate.
run fig4a_exact_recovery --trials=1000
run fig4b_mode_trace

# Figures 5/6: N = 10K, M = 100..1000, 100 trials.
run fig5_6_powerlaw_errors --n=10000 \
  --m-list=100,200,300,400,500,600,700,800,900,1000 --trials=100

# Figures 7/8: full key spaces (10.4K / 9K / 10K).
run fig7_8_production_errors --full --trials=20

# Figure 9: full scale (stabilization ~ 300 / 650 / 610).
run fig9_production_mode_trace --full

# Figures 10/11: the paper's synthetic N = 100K.
run fig10_11_hadoop_endtoend --n=100000

# Figure 12: N up to 1M (pass --n-list=...,5000000 for the 5M point;
# budget several GiB of RAM and a long run).
run fig12_key_scaling --full

run conjectures --trials=2000
run ablation_recovery
run ablation_sketches
run ablation_adaptive
run ablation_noise
run bench_micro_kernels

echo "All paper-scale outputs in $OUT/"
