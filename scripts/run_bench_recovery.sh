#!/usr/bin/env bash
# Runs the recovery-engine benchmark (BENCH_recovery.json at the repo
# root): the AMP-vs-BOMP wall-time crossover at N = 100k, the four-engine
# table behind `--solver=`, AMP output digests across thread limits
# {1,2,8} x {portable, native} SIMD dispatch, and the two-phase / DAMP
# wire-byte comparison on the Figure 7 production workload.
#
# The bench runs twice; timings differ run to run, so the determinism
# check (same pattern as run_bench_streaming.sh) diffs only the
# output_digest / bit_identical lines, which must be byte-identical —
# and the bench itself exits nonzero if any (thread limit, SIMD level)
# pair moves a single output bit or either crossover engine misses the
# exact top-k.
#
# The script then gates:
#  - bit_identical: the six AMP digests agree;
#  - the crossover: AMP strictly faster than BOMP at the largest swept k
#    (the DESIGN.md §14 claim — AMP's per-iteration cost is flat in k);
#  - two-phase savings: >= 30% fewer wire bytes than the cheapest fixed-M
#    configuration at matched precision/recall
#    (TWO_PHASE_MIN_SAVINGS_PCT overrides).
#
# Usage: scripts/run_bench_recovery.sh
#   BUILD_DIR=<dir>                 build directory (default: build)
#   RECOVERY_FLAGS=<f>              extra bench flags (e.g. "--quick=true")
#   TWO_PHASE_MIN_SAVINGS_PCT=<x>   override the byte-savings threshold
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_recovery -j "$(nproc)"

TMP_A="$(mktemp)"
TMP_B="$(mktemp)"
trap 'rm -f "$TMP_A" "$TMP_B"' EXIT

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_recovery" --out="$TMP_A" ${RECOVERY_FLAGS:-}
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_recovery" --out="$TMP_B" ${RECOVERY_FLAGS:-} \
  >/dev/null

DIGEST_RE='output_digest|bit_identical'
if ! diff <(grep -E "$DIGEST_RE" "$TMP_A") \
          <(grep -E "$DIGEST_RE" "$TMP_B") >/dev/null; then
  echo "FAIL: two bench_recovery runs produced different output digests" >&2
  diff <(grep -E "$DIGEST_RE" "$TMP_A") \
       <(grep -E "$DIGEST_RE" "$TMP_B") >&2 || true
  exit 1
fi
echo "Recovery determinism check passed: digests identical across two runs."

if ! grep -q '"bit_identical": true' "$TMP_A"; then
  echo "FAIL: AMP output digests differ across thread limits / SIMD" >&2
  exit 1
fi
echo "Recovery bit-identity gate passed: one digest across {1,2,8} x" \
     "{portable, native}."

# Crossover gate: at the largest swept k, AMP must beat BOMP on wall time.
read -r LAST_K BOMP_MS AMP_MS <<< "$(sed -n \
  's/.*"k": \([0-9]*\), "bomp_ms": \([0-9.]*\), "amp_ms": \([0-9.]*\).*/\1 \2 \3/p' \
  "$TMP_A" | tail -1)"
if [[ -z "${AMP_MS:-}" ]]; then
  echo "FAIL: no crossover rows in bench output" >&2
  exit 1
fi
if ! awk -v a="$AMP_MS" -v b="$BOMP_MS" 'BEGIN {exit !(a < b)}'; then
  echo "FAIL: AMP (${AMP_MS} ms) not faster than BOMP (${BOMP_MS} ms)" \
       "at k = ${LAST_K}" >&2
  exit 1
fi
echo "Recovery crossover gate passed: AMP ${AMP_MS} ms < BOMP ${BOMP_MS} ms" \
     "at k = ${LAST_K}."

# Two-phase byte-savings gate.
TWO_PHASE_MIN_SAVINGS_PCT="${TWO_PHASE_MIN_SAVINGS_PCT:-30}"
SAVINGS="$(sed -n \
  's/.*"two_phase": .*"savings_vs_fixed_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
  "$TMP_A")"
if [[ -z "$SAVINGS" ]]; then
  echo "FAIL: no two-phase savings in bench output" >&2
  exit 1
fi
if ! awk -v s="$SAVINGS" -v min="$TWO_PHASE_MIN_SAVINGS_PCT" \
     'BEGIN {exit !(s >= min)}'; then
  echo "FAIL: two-phase savings ${SAVINGS}% below threshold" \
       "${TWO_PHASE_MIN_SAVINGS_PCT}%" >&2
  exit 1
fi
echo "Two-phase byte gate passed: ${SAVINGS}% >=" \
     "${TWO_PHASE_MIN_SAVINGS_PCT}% fewer bytes than fixed-M."

cp "$TMP_A" "$ROOT/BENCH_recovery.json"
echo "Wrote $ROOT/BENCH_recovery.json"
