#!/usr/bin/env bash
# Runs the MapReduce engine benchmark (BENCH_mapreduce.json at the repo
# root): the parallel shuffle-aware executor at thread limits {1,2,8} on
# the fig10/11 big-input workload, with an FNV-1a digest over every output
# bit (top-k keys/values, CS outliers, recovered mode, exact shuffle byte
# counts).
#
# The bench runs twice; timings differ run to run, so the determinism
# check (same pattern as run_bench_kernels.sh / run_bench_faults.sh) diffs
# only the output_digest / bit_identical lines, which must be
# byte-identical — and the bench itself exits nonzero if any thread limit
# moves a single output bit.
#
# The script then gates on the reported map_wall_speedup (8 threads vs 1):
# a committed, core-count-aware threshold so the PR 5 regression class —
# parallel executor, serial data path — is caught mechanically. On >= 8
# cores the map phase must scale >= 1.5x; on 2-7 cores >= 1.1x; on a
# single core real scaling is impossible, so the threshold degrades to a
# contention guard: 8 oversubscribed threads must still reach >= 0.7x of
# the 1-thread wall (a lock or allocator serialization in the emit path
# drags this far lower).
#
# Usage: scripts/run_bench_mapreduce.sh
#   BUILD_DIR=<dir>        build directory (default: build)
#   MAPREDUCE_FLAGS=<f>    extra bench_mapreduce flags (e.g. "--quick=true")
#   MIN_SPEEDUP=<x>        override the committed speedup threshold
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_mapreduce -j "$(nproc)"

TMP_A="$(mktemp)"
TMP_B="$(mktemp)"
trap 'rm -f "$TMP_A" "$TMP_B"' EXIT

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_mapreduce" --out="$TMP_A" ${MAPREDUCE_FLAGS:-}
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_mapreduce" --out="$TMP_B" ${MAPREDUCE_FLAGS:-} \
  >/dev/null

if ! diff <(grep -E 'output_digest|bit_identical' "$TMP_A") \
          <(grep -E 'output_digest|bit_identical' "$TMP_B") >/dev/null; then
  echo "FAIL: two bench_mapreduce runs produced different output digests" >&2
  diff <(grep -E 'output_digest|bit_identical' "$TMP_A") \
       <(grep -E 'output_digest|bit_identical' "$TMP_B") >&2 || true
  exit 1
fi
echo "MapReduce determinism check passed: digests identical across two runs."

# Speedup gate: committed thresholds by core count (MIN_SPEEDUP overrides).
CORES="$(nproc)"
if [[ -z "${MIN_SPEEDUP:-}" ]]; then
  if [[ "$CORES" -ge 8 ]]; then
    MIN_SPEEDUP=1.5
  elif [[ "$CORES" -ge 2 ]]; then
    MIN_SPEEDUP=1.1
  else
    MIN_SPEEDUP=0.7
  fi
fi
SPEEDUP="$(sed -n 's/.*"map_wall_speedup": \([0-9.]*\).*/\1/p' "$TMP_A")"
if [[ -z "$SPEEDUP" ]]; then
  echo "FAIL: no map_wall_speedup in bench output" >&2
  exit 1
fi
if ! awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" 'BEGIN {exit !(s >= min)}'; then
  echo "FAIL: map_wall_speedup $SPEEDUP below threshold $MIN_SPEEDUP" \
       "($CORES cores)" >&2
  exit 1
fi
echo "MapReduce speedup gate passed: ${SPEEDUP}x >= ${MIN_SPEEDUP}x" \
     "($CORES cores)."

cp "$TMP_A" "$ROOT/BENCH_mapreduce.json"
echo "Wrote $ROOT/BENCH_mapreduce.json"
