#!/usr/bin/env bash
# Verifies that the documentation's cross-references are honest:
#
#  1. Every local file referenced from the docs exists — markdown links
#     `[text](target)` plus bare mentions of `*.md` files (the docs
#     cross-link heavily — README → FAULT_MODEL → THEORY — and a rename
#     must not leave dangling pointers).
#  2. Every intra-doc `#anchor` link (same-file `[x](#sec)` or cross-file
#     `[x](DOC.md#sec)`) resolves to a real heading of the target file,
#     using the GitHub anchor derivation (lowercase, punctuation dropped,
#     spaces to hyphens).
#  3. Every mentioned source path (src/..., scripts/..., bench/...,
#     tests/..., tools/..., examples/...) exists in the tree — with
#     `{h,cc}`-style brace alternatives expanded, `*` globs matched, and
#     extensionless mentions tried as .h/.cc — so prose can't keep
#     pointing at renamed modules.
#
# Checks README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and docs/*.md.
# http(s) URLs are skipped. File targets resolve relative to the
# referencing file's directory, then the repo root.
#
# Usage: scripts/check_docs_links.sh
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

FILES=()
for f in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
  [[ -f "$f" ]] && FILES+=("$f")
done

missing=0
checked=0

resolve() {  # resolve <referencing-file> <target> → 0 if target exists
  local from_dir target="$2"
  from_dir="$(dirname "$1")"
  [[ -e "$from_dir/$target" || -e "$ROOT/$target" ]]
}

resolve_path() {  # <referencing-file> <target> → echo resolved path or fail
  local from_dir target="$2"
  from_dir="$(dirname "$1")"
  if [[ -e "$from_dir/$target" ]]; then
    echo "$from_dir/$target"
  elif [[ -e "$ROOT/$target" ]]; then
    echo "$ROOT/$target"
  else
    return 1
  fi
}

# GitHub-style anchors of every markdown heading in <file>: lowercase,
# everything but alphanumerics/spaces/hyphens/underscores dropped, spaces
# to hyphens. (Duplicate-heading -1 suffixes are not derived; the docs
# don't repeat heading titles.)
anchors_of() {
  grep -E '^#{1,6} ' "$1" 2>/dev/null | sed -E 's/^#+[[:space:]]+//' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/[[:space:]]+/-/g' || true
}

# 0 iff a source-path mention exists, after brace expansion, glob
# matching, and .h/.cc suffix tries for extensionless mentions.
source_exists() {
  local target="$1" alt prefix suffix body
  if [[ "$target" == *"{"*"}"* ]]; then
    prefix="${target%%\{*}"
    body="${target#*\{}"
    body="${body%%\}*}"
    suffix="${target#*\}}"
    local alts
    IFS=',' read -ra alts <<< "$body"
    for alt in "${alts[@]}"; do
      source_exists "${prefix}${alt}${suffix}" || return 1
    done
    return 0
  fi
  if [[ "$target" == *"*"* ]]; then
    compgen -G "$target" >/dev/null
    return
  fi
  [[ -e "$target" || -e "$target.h" || -e "$target.cc" || -e "$target.cpp" ]]
}

for f in "${FILES[@]}"; do
  # --- 1. markdown link targets + bare .md mentions -----------------------
  targets="$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' |
             sed -E 's/#.*$//' | grep -vE '^(https?:|mailto:|$)' || true)"
  bare="$(grep -oE '[A-Za-z0-9_./-]+\.md' "$f" | grep -vE '^https?:' || true)"
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    checked=$((checked + 1))
    if ! resolve "$f" "$target"; then
      echo "MISSING: $f references '$target'" >&2
      missing=$((missing + 1))
    fi
  done <<< "$targets"$'\n'"$bare"

  # --- 2. #anchor links ---------------------------------------------------
  anchored="$(grep -oE '\]\([^)]*#[^)]+\)' "$f" |
              sed -E 's/^\]\(//; s/\)$//' |
              grep -vE '^(https?:|mailto:)' || true)"
  while IFS= read -r link; do
    [[ -z "$link" ]] && continue
    checked=$((checked + 1))
    file_part="${link%%#*}"
    anchor="${link#*#}"
    if [[ -z "$file_part" ]]; then
      anchor_file="$f"
    elif ! anchor_file="$(resolve_path "$f" "$file_part")"; then
      continue  # Already reported as MISSING by pass 1.
    fi
    if ! anchors_of "$anchor_file" | grep -qxF "$anchor"; then
      echo "BAD ANCHOR: $f links '#$anchor' but $anchor_file has no such" \
           "heading" >&2
      missing=$((missing + 1))
    fi
  done <<< "$anchored"

  # --- 3. source-path mentions --------------------------------------------
  # (?<!...) skips build-output paths like ./build/tools/csod — only
  # source-tree mentions are checked.
  sources="$(grep -oP '(?<![A-Za-z0-9_/-])(?<!build/)(src|scripts|bench|tests|tools|examples)/[A-Za-z0-9_./{},*-]+' "$f" |
             sed -E 's/:[0-9]+$//; s/[.,:;]+$//' | sort -u || true)"
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    checked=$((checked + 1))
    if ! source_exists "$target"; then
      echo "MISSING SOURCE: $f mentions '$target'" >&2
      missing=$((missing + 1))
    fi
  done <<< "$sources"
done

if (( missing > 0 )); then
  echo "$missing dangling documentation reference(s)." >&2
  exit 1
fi
echo "Docs link check passed ($checked references in ${#FILES[@]} files)."
