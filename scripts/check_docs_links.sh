#!/usr/bin/env bash
# Verifies that every local file referenced from the documentation
# actually exists: markdown links `[text](target)` plus bare mentions of
# `*.md` files (the docs cross-link heavily — README → FAULT_MODEL →
# THEORY — and a rename must not leave dangling pointers).
#
# Checks README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and docs/*.md.
# http(s) URLs and intra-page #anchors are skipped. Targets resolve
# relative to the referencing file's directory, then the repo root.
#
# Usage: scripts/check_docs_links.sh
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

FILES=()
for f in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
  [[ -f "$f" ]] && FILES+=("$f")
done

missing=0
checked=0

resolve() {  # resolve <referencing-file> <target> → 0 if target exists
  local from_dir target="$2"
  from_dir="$(dirname "$1")"
  [[ -e "$from_dir/$target" || -e "$ROOT/$target" ]]
}

for f in "${FILES[@]}"; do
  # Markdown link targets: [text](target), minus URLs and pure anchors.
  targets="$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' |
             sed -E 's/#.*$//' | grep -vE '^(https?:|mailto:|$)' || true)"
  # Bare mentions of .md files (e.g. "see DESIGN.md §2"), minus the
  # markdown-link ones already covered.
  bare="$(grep -oE '[A-Za-z0-9_./-]+\.md' "$f" | grep -vE '^https?:' || true)"
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    checked=$((checked + 1))
    if ! resolve "$f" "$target"; then
      echo "MISSING: $f references '$target'" >&2
      missing=$((missing + 1))
    fi
  done <<< "$targets"$'\n'"$bare"
done

if (( missing > 0 )); then
  echo "$missing dangling documentation reference(s)." >&2
  exit 1
fi
echo "Docs link check passed ($checked references in ${#FILES[@]} files)."
