#!/usr/bin/env bash
# Seeded randomized simulation sweep (DESIGN.md §15, docs/FAULT_MODEL.md).
#
# Runs the sim driver over a deterministic scenario set (seed0..seed0+N-1),
# twice, and diffs the combined digests: the sweep must be a pure function
# of the seeds, so any digest drift between the two runs is itself a bug
# (nondeterminism in a protocol, the engine, or the harness) even when
# every individual invariant held. Also replays the regression corpus.
#
# Exit is nonzero on any invariant violation, corpus failure, or
# double-run digest mismatch. A failing scenario prints a one-line
# `csod sim --replay SEED` recipe; add reproduced seeds to
# tests/sim_corpus/regressions.txt.
#
# Usage: scripts/run_simulation.sh [scenarios] [seed0]
#   scenarios  number of seeded scenarios (default 200, the CI floor)
#   seed0      first seed (default 1 — the pinned CI scenario set)
# Env:
#   BUILD_DIR  build tree to use (default: $ROOT/build)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SCENARIOS="${1:-200}"
SEED0="${2:-1}"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
DRIVER="$BUILD_DIR/tools/sim_driver"

if [[ ! -x "$DRIVER" ]]; then
  echo "run_simulation: building sim_driver in $BUILD_DIR" >&2
  cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target sim_driver >/dev/null
fi

echo "== simulation sweep: $SCENARIOS scenarios from seed0=$SEED0 (run 1) =="
OUT1="$("$DRIVER" --scenarios="$SCENARIOS" --seed0="$SEED0")"
echo "$OUT1"

echo "== run 2 (determinism check) =="
OUT2="$("$DRIVER" --scenarios="$SCENARIOS" --seed0="$SEED0")"

DIGEST1="$(echo "$OUT1" | grep -o 'combined-digest=[0-9a-f]*')"
DIGEST2="$(echo "$OUT2" | grep -o 'combined-digest=[0-9a-f]*')"
echo "run1: $DIGEST1"
echo "run2: $DIGEST2"
if [[ "$DIGEST1" != "$DIGEST2" ]]; then
  echo "run_simulation: FAIL — combined digest differs between identical" \
       "runs; the sweep outcome is not a pure function of the seeds" >&2
  diff <(echo "$OUT1") <(echo "$OUT2") >&2 || true
  exit 1
fi

echo "== regression corpus =="
"$DRIVER" --corpus="$ROOT/tests/sim_corpus/regressions.txt"

echo "run_simulation: OK ($SCENARIOS scenarios ×2, corpus, digest $DIGEST1)"
