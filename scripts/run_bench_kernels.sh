#!/usr/bin/env bash
# Runs the micro-kernel benchmark suite and writes BENCH_kernels.json
# (google-benchmark JSON reporter) at the repo root, for comparing the
# persistent-pool / fused-argmax kernels against earlier checkouts.
#
# Usage: scripts/run_bench_kernels.sh [benchmark_filter_regex]
#   BUILD_DIR=<dir>  build directory (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
FILTER="${1:-.*}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_micro_kernels -j "$(nproc)"

"$BUILD_DIR/bench/bench_micro_kernels" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$ROOT/BENCH_kernels.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}"

echo "Wrote $ROOT/BENCH_kernels.json"
