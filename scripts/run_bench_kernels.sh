#!/usr/bin/env bash
# Runs the micro-kernel benchmark suite (BENCH_kernels.json, google-benchmark
# JSON reporter) and the end-to-end sketching benchmark (BENCH_sketch.json),
# both written at the repo root, for comparing the persistent-pool /
# fused-argmax / batched-sketch kernels against earlier checkouts.
#
# The sketch benchmark runs twice; timings differ run to run, so the
# determinism check (same pattern as run_bench_faults.sh) diffs only the
# y_digest / bit_identical lines, which must be byte-identical.
#
# Usage: scripts/run_bench_kernels.sh [benchmark_filter_regex]
#   BUILD_DIR=<dir>      build directory (default: build)
#   SKETCH_FLAGS=<flags> extra bench_sketch flags (e.g. "--quick=true")
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
FILTER="${1:-.*}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target bench_micro_kernels bench_sketch \
  -j "$(nproc)"

"$BUILD_DIR/bench/bench_micro_kernels" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$ROOT/BENCH_kernels.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}"

echo "Wrote $ROOT/BENCH_kernels.json"

TMP_A="$(mktemp)"
TMP_B="$(mktemp)"
trap 'rm -f "$TMP_A" "$TMP_B"' EXIT

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_sketch" --out="$TMP_A" ${SKETCH_FLAGS:-}
# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_sketch" --out="$TMP_B" ${SKETCH_FLAGS:-} >/dev/null

if ! diff <(grep -E 'y_digest|bit_identical' "$TMP_A") \
          <(grep -E 'y_digest|bit_identical' "$TMP_B") >/dev/null; then
  echo "FAIL: two bench_sketch runs produced different y digests" >&2
  diff <(grep -E 'y_digest|bit_identical' "$TMP_A") \
       <(grep -E 'y_digest|bit_identical' "$TMP_B") >&2 || true
  exit 1
fi
echo "Sketch determinism check passed: digests identical across two runs."

cp "$TMP_A" "$ROOT/BENCH_sketch.json"
echo "Wrote $ROOT/BENCH_sketch.json"
