#ifndef CSOD_CORE_CSOD_H_
#define CSOD_CORE_CSOD_H_

/// \file csod.h
/// Umbrella header: the public API of the CSOD library.
///
/// CSOD reproduces "Distributed Outlier Detection using Compressive
/// Sensing" (Yan et al., SIGMOD 2015). Typical use:
///
/// \code
///   csod::core::DetectorOptions options;
///   options.n = dictionary.size();   // global key space
///   options.m = 400;                 // per-node communication budget
///   auto detector =
///       csod::core::DistributedOutlierDetector::Create(options).MoveValue();
///   for (const auto& slice : node_slices) detector->AddSource(slice);
///   auto outliers = detector->Detect(/*k=*/5).MoveValue();
/// \endcode

#include "core/detector.h"
#include "core/windowed_detector.h"
#include "cs/basis_pursuit.h"
#include "cs/bomp.h"
#include "cs/compressor.h"
#include "cs/cosamp.h"
#include "cs/measurement_matrix.h"
#include "cs/omp.h"
#include "cs/rip.h"
#include "dist/adaptive_cs_protocol.h"
#include "dist/all_protocol.h"
#include "dist/cluster.h"
#include "dist/cs_protocol.h"
#include "dist/fault.h"
#include "dist/kplusdelta_protocol.h"
#include "dist/randomized_max.h"
#include "dist/topk_protocols.h"
#include "dist/wire_format.h"
#include "mapreduce/engine.h"
#include "mapreduce/jobs.h"
#include "outlier/aggregates.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/hyperloglog.h"
#include "sketch/sketch_protocols.h"
#include "workload/generators.h"
#include "workload/key_dictionary.h"
#include "workload/partitioner.h"

#endif  // CSOD_CORE_CSOD_H_
