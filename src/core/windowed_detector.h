#ifndef CSOD_CORE_WINDOWED_DETECTOR_H_
#define CSOD_CORE_WINDOWED_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/detector.h"

namespace csod::core {

/// Configuration of a WindowedOutlierDetector.
struct WindowedDetectorOptions {
  /// Key space, measurement size, consensus seed — as DetectorOptions.
  size_t n = 0;
  size_t m = 0;
  uint64_t seed = 1;
  size_t iterations = 0;
  /// Recovery engine for Detect / Recover (cs/solver.h).
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;
  /// Number of most-recent epochs a query covers.
  size_t window_epochs = 0;
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
};

/// \brief Sliding-window outlier detection over epoched sketches.
///
/// The production scenario of Section 1 streams terabytes of new click
/// logs every 10 minutes and analysts ask about "the last hour", not all
/// of history. Because CS measurements are linear, a window query needs
/// only the per-epoch global measurements: the detector keeps one M-sized
/// sketch per epoch in a ring of `window_epochs`, and answering a query
/// sums the sketches in the window (O(W·M)) before a single recovery.
/// Expiring an epoch is O(1) — drop its sketch; nothing is recomputed.
class WindowedOutlierDetector {
 public:
  static Result<std::unique_ptr<WindowedOutlierDetector>> Create(
      const WindowedDetectorOptions& options);

  /// Begins a new epoch (e.g. a new 10-minute log window); the oldest
  /// epoch beyond the window is dropped. Returns the epoch index.
  uint64_t AdvanceEpoch();

  /// Adds data arriving in the *current* epoch from any node; slices
  /// accumulate (`y_epoch += Φ0 Δx`). Fails before the first
  /// AdvanceEpoch().
  Status Ingest(const cs::SparseSlice& slice);

  /// Ingests an already-compressed measurement into the current epoch.
  Status IngestMeasurement(const std::vector<double>& y_l);

  /// Detects the k-outliers of the aggregate over the current window.
  Result<outlier::OutlierSet> Detect(size_t k) const;

  /// Full recovery over the current window.
  Result<cs::BompResult> Recover(size_t iterations) const;

  /// Sum of every *closed* retained epoch sketch — all retained epochs
  /// except the newest (in-progress) one, folded oldest-first exactly like
  /// WindowMeasurement(). This is the streaming layer's snapshot primitive
  /// (src/serve): a published snapshot must never include the epoch still
  /// accepting data, or concurrent queries would observe half an epoch.
  /// Fails unless at least one closed epoch is retained (>= 2 retained).
  Result<std::vector<double>> ClosedWindowMeasurement() const;

  /// The consensus matrix Φ0 — for recovery against an externally held
  /// window measurement (e.g. a published streaming snapshot).
  const cs::MeasurementMatrix& matrix() const { return *matrix_; }

  /// The retained epoch ring, oldest-first (back = in-progress epoch).
  /// This *is* the detector's whole data state — measurements are linear,
  /// so checkpointing the ring checkpoints the window exactly.
  const std::deque<std::vector<double>>& EpochSketches() const {
    return epoch_sketches_;
  }

  /// Replaces the ring with `sketches` (oldest-first, each of length M,
  /// the last one being the in-progress epoch `current_epoch`) — the
  /// restore half of EpochSketches(). The detector behaves as if it had
  /// just advanced into `current_epoch` with exactly this ring: the next
  /// AdvanceEpoch moves to `current_epoch + 1`.
  Status RestoreEpochs(uint64_t current_epoch,
                       std::vector<std::vector<double>> sketches);

  /// Number of epochs currently retained (<= window_epochs).
  size_t epochs_retained() const { return epoch_sketches_.size(); }
  /// Index of the current epoch (0 before the first AdvanceEpoch()).
  uint64_t current_epoch() const { return current_epoch_; }
  const WindowedDetectorOptions& options() const { return options_; }

 private:
  explicit WindowedOutlierDetector(const WindowedDetectorOptions& options);

  Result<std::vector<double>> WindowMeasurement() const;

  WindowedDetectorOptions options_;
  std::unique_ptr<cs::MeasurementMatrix> matrix_;
  std::unique_ptr<cs::Compressor> compressor_;
  uint64_t current_epoch_ = 0;
  bool started_ = false;
  // Front = oldest retained epoch, back = current epoch.
  std::deque<std::vector<double>> epoch_sketches_;
};

}  // namespace csod::core

#endif  // CSOD_CORE_WINDOWED_DETECTOR_H_
