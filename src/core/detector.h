#ifndef CSOD_CORE_DETECTOR_H_
#define CSOD_CORE_DETECTOR_H_

#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "cs/bomp.h"
#include "cs/compressor.h"
#include "cs/measurement_matrix.h"
#include "cs/solver.h"
#include "outlier/outlier.h"

namespace csod::core {

/// Configuration of a DistributedOutlierDetector.
struct DetectorOptions {
  /// Global key-space size N (the global key dictionary length).
  size_t n = 0;
  /// Measurement size M — the per-node communication budget. The theory
  /// (Theorem 1) asks for M = O(s^a log N) for s-sparse-like data.
  size_t m = 0;
  /// Consensus seed from which every node derives the same Φ0.
  uint64_t seed = 1;
  /// BOMP iteration budget R; 0 selects the paper's f(k) ∈ [2k, 5k] at
  /// detection time.
  size_t iterations = 0;
  /// Recovery engine for Detect / DetectTopK / Recover (see cs/solver.h for
  /// the per-engine budget mapping of `iterations`). A query-time
  /// preference: it is NOT serialized by Save/Load — sketches are
  /// engine-agnostic, so a checkpoint can be recovered with any solver.
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;
  /// Dense-cache budget for Φ0.
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Telemetry sink (sketch + recovery instrumentation). Not serialized by
  /// Save/Load. Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Identifier of a registered data source (node / data center).
using SourceId = uint64_t;

/// \brief The library's main entry point: maintains compressed sketches of
/// many distributed data slices and answers k-outlier / mode / top-k
/// queries on their *aggregate*.
///
/// Because the CS measurement is linear (Equation 1), the detector
/// supports exactly the three production requirements of Section 1:
///  1. global answers from per-node sketches (local ≠ global outliers),
///  2. incremental data arrival (`ApplyDelta` adds `Φ0·Δx` to a sketch),
///  3. node addition/removal (`AddSource` / `RemoveSource` add or subtract
///     the node's sketch from the global measurement).
///
/// All operations are O(M) or O(nnz·M); nothing ever touches the full
/// key space except recovery itself.
class DistributedOutlierDetector {
 public:
  /// Validates options and builds the shared measurement matrix.
  static Result<std::unique_ptr<DistributedOutlierDetector>> Create(
      const DetectorOptions& options);

  /// Registers a data source holding `slice`; returns its id.
  /// Communication-equivalent cost: M measurement tuples.
  Result<SourceId> AddSource(const cs::SparseSlice& slice);

  /// Registers a data source from an already-compressed local measurement
  /// `y_l` (what a remote node actually transmits).
  Result<SourceId> AddSourceMeasurement(std::vector<double> y_l);

  /// Removes a source, subtracting its sketch from the global measurement.
  Status RemoveSource(SourceId id);

  /// Applies new data arriving at a source: `y_l += Φ0 · Δx`.
  Status ApplyDelta(SourceId id, const cs::SparseSlice& delta);

  /// Detects the k-outliers and mode of the current global aggregate.
  Result<outlier::OutlierSet> Detect(size_t k) const;

  /// Degraded-mode detection: answers from the partial sum
  /// `Σ_{l ∉ excluded} y_l`, i.e. as if the excluded sources were
  /// unreachable. Sound by CS linearity — the partial sum is exactly
  /// Φ0 times the partial aggregate (docs/FAULT_MODEL.md). Every id in
  /// `excluded` must be registered; sources stay registered afterwards.
  Result<outlier::OutlierSet> DetectExcluding(
      const std::vector<SourceId>& excluded, size_t k) const;

  /// Top-k by recovered value (the Section 6.2 extension; meaningful when
  /// the data's mode is 0).
  Result<std::vector<outlier::Outlier>> DetectTopK(size_t k) const;

  /// Full recovery (mode, all recovered entries, diagnostics).
  Result<cs::BompResult> Recover(size_t iterations) const;

  /// The current global measurement y = Σ_l y_l.
  const std::vector<double>& global_measurement() const { return global_y_; }

  size_t num_sources() const { return sketches_.size(); }
  const DetectorOptions& options() const { return options_; }
  const cs::MeasurementMatrix& matrix() const { return *matrix_; }

  /// Checkpoints the detector (options + every source sketch) to a
  /// stream. State is tiny — O(sources · M) — because only sketches are
  /// retained, never data.
  Status Save(std::ostream& out) const;

  /// Restores a detector from a checkpoint written by Save.
  static Result<std::unique_ptr<DistributedOutlierDetector>> Load(
      std::istream& in);

 private:
  explicit DistributedOutlierDetector(const DetectorOptions& options);

  DetectorOptions options_;
  std::unique_ptr<cs::MeasurementMatrix> matrix_;
  std::unique_ptr<cs::Compressor> compressor_;
  SourceId next_id_ = 0;
  std::map<SourceId, std::vector<double>> sketches_;
  std::vector<double> global_y_;
};

}  // namespace csod::core

#endif  // CSOD_CORE_DETECTOR_H_
