#include "core/windowed_detector.h"

#include <iterator>
#include <string>
#include <utility>

#include "la/vector_ops.h"

namespace csod::core {

WindowedOutlierDetector::WindowedOutlierDetector(
    const WindowedDetectorOptions& options)
    : options_(options),
      matrix_(std::make_unique<cs::MeasurementMatrix>(
          options.m, options.n, options.seed, options.cache_budget_bytes)),
      compressor_(std::make_unique<cs::Compressor>(matrix_.get())) {}

Result<std::unique_ptr<WindowedOutlierDetector>>
WindowedOutlierDetector::Create(const WindowedDetectorOptions& options) {
  if (options.n == 0) {
    return Status::InvalidArgument("WindowedDetectorOptions.n must be > 0");
  }
  if (options.m == 0) {
    return Status::InvalidArgument("WindowedDetectorOptions.m must be > 0");
  }
  if (options.window_epochs == 0) {
    return Status::InvalidArgument(
        "WindowedDetectorOptions.window_epochs must be > 0");
  }
  return std::unique_ptr<WindowedOutlierDetector>(
      new WindowedOutlierDetector(options));
}

uint64_t WindowedOutlierDetector::AdvanceEpoch() {
  if (started_) {
    ++current_epoch_;
  } else {
    started_ = true;
  }
  epoch_sketches_.emplace_back(options_.m, 0.0);
  while (epoch_sketches_.size() > options_.window_epochs) {
    epoch_sketches_.pop_front();  // O(1) expiry: drop the oldest sketch.
  }
  return current_epoch_;
}

Status WindowedOutlierDetector::RestoreEpochs(
    uint64_t current_epoch, std::vector<std::vector<double>> sketches) {
  if (sketches.empty()) {
    return Status::InvalidArgument(
        "RestoreEpochs: need at least the in-progress epoch sketch");
  }
  if (sketches.size() > options_.window_epochs) {
    return Status::InvalidArgument(
        "RestoreEpochs: " + std::to_string(sketches.size()) +
        " sketches exceed the ring depth " +
        std::to_string(options_.window_epochs));
  }
  if (sketches.size() > current_epoch + 1) {
    return Status::InvalidArgument(
        "RestoreEpochs: " + std::to_string(sketches.size()) +
        " retained epochs cannot end at epoch " +
        std::to_string(current_epoch));
  }
  for (const std::vector<double>& sketch : sketches) {
    if (sketch.size() != options_.m) {
      return Status::InvalidArgument(
          "RestoreEpochs: sketch size " + std::to_string(sketch.size()) +
          " != M " + std::to_string(options_.m));
    }
  }
  epoch_sketches_.assign(std::make_move_iterator(sketches.begin()),
                         std::make_move_iterator(sketches.end()));
  current_epoch_ = current_epoch;
  started_ = true;
  return Status::OK();
}

Status WindowedOutlierDetector::Ingest(const cs::SparseSlice& slice) {
  if (!started_) {
    return Status::FailedPrecondition(
        "Ingest: call AdvanceEpoch() before ingesting data");
  }
  CSOD_ASSIGN_OR_RETURN(std::vector<double> dy, compressor_->Compress(slice));
  la::Axpy(1.0, dy, &epoch_sketches_.back());
  return Status::OK();
}

Status WindowedOutlierDetector::IngestMeasurement(
    const std::vector<double>& y_l) {
  if (!started_) {
    return Status::FailedPrecondition(
        "IngestMeasurement: call AdvanceEpoch() before ingesting data");
  }
  if (y_l.size() != options_.m) {
    return Status::InvalidArgument(
        "IngestMeasurement: measurement size " + std::to_string(y_l.size()) +
        " != M " + std::to_string(options_.m));
  }
  la::Axpy(1.0, y_l, &epoch_sketches_.back());
  return Status::OK();
}

Result<std::vector<double>> WindowedOutlierDetector::WindowMeasurement()
    const {
  if (epoch_sketches_.empty()) {
    return Status::FailedPrecondition("no epochs ingested yet");
  }
  std::vector<double> y(options_.m, 0.0);
  for (const auto& sketch : epoch_sketches_) la::Axpy(1.0, sketch, &y);
  return y;
}

Result<std::vector<double>> WindowedOutlierDetector::ClosedWindowMeasurement()
    const {
  if (epoch_sketches_.size() < 2) {
    return Status::FailedPrecondition(
        "ClosedWindowMeasurement: no closed epoch retained yet");
  }
  std::vector<double> y(options_.m, 0.0);
  for (size_t e = 0; e + 1 < epoch_sketches_.size(); ++e) {
    la::Axpy(1.0, epoch_sketches_[e], &y);
  }
  return y;
}

Result<outlier::OutlierSet> WindowedOutlierDetector::Detect(size_t k) const {
  if (k == 0) {
    return Status::InvalidArgument("Detect: k must be > 0");
  }
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;
  CSOD_ASSIGN_OR_RETURN(cs::BompResult recovery, Recover(iterations));
  return outlier::KOutliersFromRecovery(recovery, k);
}

Result<cs::BompResult> WindowedOutlierDetector::Recover(
    size_t iterations) const {
  CSOD_ASSIGN_OR_RETURN(std::vector<double> y, WindowMeasurement());
  cs::SolverOptions solver_options;
  solver_options.solver = options_.solver;
  solver_options.iterations = iterations;
  return cs::RecoverBiased(*matrix_, y, solver_options);
}

}  // namespace csod::core
