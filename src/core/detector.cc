#include "core/detector.h"

#include <algorithm>
#include <set>
#include <string>

#include "dist/wire_format.h"
#include "la/vector_ops.h"

namespace csod::core {

DistributedOutlierDetector::DistributedOutlierDetector(
    const DetectorOptions& options)
    : options_(options),
      matrix_(std::make_unique<cs::MeasurementMatrix>(
          options.m, options.n, options.seed, options.cache_budget_bytes)),
      compressor_(std::make_unique<cs::Compressor>(matrix_.get())),
      global_y_(options.m, 0.0) {
  compressor_->set_telemetry(options.telemetry);
}

Result<std::unique_ptr<DistributedOutlierDetector>>
DistributedOutlierDetector::Create(const DetectorOptions& options) {
  if (options.n == 0) {
    return Status::InvalidArgument("DetectorOptions.n must be > 0");
  }
  if (options.m == 0) {
    return Status::InvalidArgument("DetectorOptions.m must be > 0");
  }
  return std::unique_ptr<DistributedOutlierDetector>(
      new DistributedOutlierDetector(options));
}

Result<SourceId> DistributedOutlierDetector::AddSource(
    const cs::SparseSlice& slice) {
  CSOD_ASSIGN_OR_RETURN(std::vector<double> y_l,
                        compressor_->Compress(slice));
  return AddSourceMeasurement(std::move(y_l));
}

Result<SourceId> DistributedOutlierDetector::AddSourceMeasurement(
    std::vector<double> y_l) {
  if (y_l.size() != options_.m) {
    return Status::InvalidArgument(
        "AddSourceMeasurement: measurement size " +
        std::to_string(y_l.size()) + " != M " + std::to_string(options_.m));
  }
  la::Axpy(1.0, y_l, &global_y_);
  const SourceId id = next_id_++;
  sketches_.emplace(id, std::move(y_l));
  return id;
}

Status DistributedOutlierDetector::RemoveSource(SourceId id) {
  auto it = sketches_.find(id);
  if (it == sketches_.end()) {
    return Status::NotFound("RemoveSource: no source " + std::to_string(id));
  }
  la::Axpy(-1.0, it->second, &global_y_);
  sketches_.erase(it);
  return Status::OK();
}

Status DistributedOutlierDetector::ApplyDelta(SourceId id,
                                              const cs::SparseSlice& delta) {
  auto it = sketches_.find(id);
  if (it == sketches_.end()) {
    return Status::NotFound("ApplyDelta: no source " + std::to_string(id));
  }
  CSOD_ASSIGN_OR_RETURN(std::vector<double> dy, compressor_->Compress(delta));
  la::Axpy(1.0, dy, &it->second);
  la::Axpy(1.0, dy, &global_y_);
  return Status::OK();
}

Result<outlier::OutlierSet> DistributedOutlierDetector::Detect(
    size_t k) const {
  if (k == 0) {
    return Status::InvalidArgument("Detect: k must be > 0");
  }
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;
  CSOD_ASSIGN_OR_RETURN(cs::BompResult recovery, Recover(iterations));
  return outlier::KOutliersFromRecovery(recovery, k);
}

Result<outlier::OutlierSet> DistributedOutlierDetector::DetectExcluding(
    const std::vector<SourceId>& excluded, size_t k) const {
  if (k == 0) {
    return Status::InvalidArgument("DetectExcluding: k must be > 0");
  }
  std::vector<double> partial_y = global_y_;
  size_t remaining = sketches_.size();
  std::set<SourceId> seen;
  for (SourceId id : excluded) {
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("DetectExcluding: duplicate source " +
                                     std::to_string(id));
    }
    auto it = sketches_.find(id);
    if (it == sketches_.end()) {
      return Status::NotFound("DetectExcluding: no source " +
                              std::to_string(id));
    }
    la::Axpy(-1.0, it->second, &partial_y);
    --remaining;
  }
  if (remaining == 0) {
    return Status::FailedPrecondition(
        "DetectExcluding: every source excluded — nothing to aggregate");
  }
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;
  cs::SolverOptions solver_options;
  solver_options.solver = options_.solver;
  solver_options.iterations = iterations;
  solver_options.telemetry = options_.telemetry;
  CSOD_ASSIGN_OR_RETURN(
      cs::BompResult recovery,
      cs::RecoverBiased(*matrix_, partial_y, solver_options));
  return outlier::KOutliersFromRecovery(recovery, k);
}

Result<std::vector<outlier::Outlier>> DistributedOutlierDetector::DetectTopK(
    size_t k) const {
  if (k == 0) {
    return Status::InvalidArgument("DetectTopK: k must be > 0");
  }
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;
  CSOD_ASSIGN_OR_RETURN(cs::BompResult recovery, Recover(iterations));
  std::vector<outlier::Outlier> top;
  top.reserve(recovery.entries.size());
  for (const cs::RecoveredEntry& e : recovery.entries) {
    top.push_back(outlier::Outlier{e.index, e.value, e.value});
  }
  std::sort(top.begin(), top.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key_index < b.key_index;
            });
  if (top.size() > k) top.resize(k);
  return top;
}

Status DistributedOutlierDetector::Save(std::ostream& out) const {
  // Text header (versioned) followed by one length-prefixed wire-format
  // measurement message per source.
  out << "csod-detector v1\n";
  out << options_.n << ' ' << options_.m << ' ' << options_.seed << ' '
      << options_.iterations << ' ' << sketches_.size() << '\n';
  for (const auto& [id, sketch] : sketches_) {
    CSOD_ASSIGN_OR_RETURN(const std::string message,
                          dist::EncodeMeasurement(sketch));
    out << id << ' ' << message.size() << '\n';
    out.write(message.data(), static_cast<std::streamsize>(message.size()));
    out << '\n';
  }
  if (!out.good()) {
    return Status::Internal("Save: stream write failed");
  }
  return Status::OK();
}

Result<std::unique_ptr<DistributedOutlierDetector>>
DistributedOutlierDetector::Load(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version) || magic != "csod-detector" ||
      version != "v1") {
    return Status::InvalidArgument("Load: not a csod-detector v1 checkpoint");
  }
  DetectorOptions options;
  size_t num_sources = 0;
  if (!(in >> options.n >> options.m >> options.seed >> options.iterations >>
        num_sources)) {
    return Status::InvalidArgument("Load: malformed checkpoint header");
  }
  CSOD_ASSIGN_OR_RETURN(auto detector, Create(options));

  for (size_t i = 0; i < num_sources; ++i) {
    SourceId id = 0;
    size_t size = 0;
    if (!(in >> id >> size)) {
      return Status::InvalidArgument("Load: malformed source header");
    }
    in.get();  // The newline after the header.
    std::string message(size, '\0');
    in.read(message.data(), static_cast<std::streamsize>(size));
    if (!in.good()) {
      return Status::InvalidArgument("Load: truncated sketch payload");
    }
    in.get();  // The trailing newline.
    CSOD_ASSIGN_OR_RETURN(std::vector<double> sketch,
                          dist::DecodeMeasurement(message));
    CSOD_ASSIGN_OR_RETURN(SourceId assigned,
                          detector->AddSourceMeasurement(std::move(sketch)));
    // Preserve the original ids so RemoveSource/ApplyDelta keep working
    // across a checkpoint.
    if (assigned != id) {
      auto node = detector->sketches_.extract(assigned);
      node.key() = id;
      detector->sketches_.insert(std::move(node));
      detector->next_id_ = std::max(detector->next_id_, id + 1);
    }
  }
  return detector;
}

Result<cs::BompResult> DistributedOutlierDetector::Recover(
    size_t iterations) const {
  if (sketches_.empty()) {
    return Status::FailedPrecondition("Recover: no sources registered");
  }
  cs::SolverOptions solver_options;
  solver_options.solver = options_.solver;
  solver_options.iterations = iterations;
  solver_options.telemetry = options_.telemetry;
  return cs::RecoverBiased(*matrix_, global_y_, solver_options);
}

}  // namespace csod::core
