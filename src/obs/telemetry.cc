#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace csod::obs {

namespace {

// Escapes a metric name for use as a JSON string. Names are code-controlled
// ([a-z0-9._-] by convention), but the snapshot must stay well-formed even
// if a phase label with exotic characters leaks in.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Shortest-round-trip formatting: %.17g prints every double so it parses
// back bit-identically, which is what makes double-run snapshot diffs
// byte-exact when the recorded values are.
std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string BucketKey(int bucket) {
  if (bucket == ValueStats::kZeroBucket) return "zero";
  if (bucket == ValueStats::kNegativeBucket) return "neg";
  return std::to_string(bucket);
}

int BucketFor(double value) {
  if (value == 0.0) return ValueStats::kZeroBucket;
  if (value < 0.0) return ValueStats::kNegativeBucket;
  int exponent = 0;
  std::frexp(value, &exponent);
  return exponent;
}

}  // namespace

Telemetry* Telemetry::Disabled() {
  static Telemetry* disabled = new Telemetry(/*enabled=*/false);
  return disabled;
}

void Telemetry::AddCounterImpl(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Telemetry::RecordValueImpl(std::string_view name, double value) {
  if (!std::isfinite(value)) {
    AddCounterImpl("obs.nonfinite_dropped", 1);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  if (it == values_.end()) {
    it = values_.emplace(std::string(name), ValueStats{}).first;
  }
  ValueStats& stats = it->second;
  if (stats.count == 0) {
    stats.min = value;
    stats.max = value;
  } else {
    if (value < stats.min) stats.min = value;
    if (value > stats.max) stats.max = value;
  }
  ++stats.count;
  stats.sum += value;
  ++stats.buckets[BucketFor(value)];
}

void Telemetry::RecordSpanImpl(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    it = spans_.emplace(std::string(name), SpanStats{}).first;
  }
  SpanStats& stats = it->second;
  if (stats.count == 0) {
    stats.min_seconds = seconds;
    stats.max_seconds = seconds;
  } else {
    if (seconds < stats.min_seconds) stats.min_seconds = seconds;
    if (seconds > stats.max_seconds) stats.max_seconds = seconds;
  }
  ++stats.count;
  stats.total_seconds += seconds;
}

uint64_t Telemetry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

ValueStats Telemetry::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? ValueStats{} : it->second;
}

SpanStats Telemetry::span(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(name);
  return it == spans_.end() ? SpanStats{} : it->second;
}

void Telemetry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  values_.clear();
  spans_.clear();
}

std::string Telemetry::SnapshotJson(bool deterministic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "{\n";
  out += "  \"deterministic\": ";
  out += deterministic ? "true" : "false";
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"values\": {";
  first = true;
  for (const auto& [name, stats] : values_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(stats.count) + ", \"sum\": " + JsonDouble(stats.sum);
    if (stats.count > 0) {
      out += ", \"min\": " + JsonDouble(stats.min) +
             ", \"max\": " + JsonDouble(stats.max);
    }
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (const auto& [bucket, count] : stats.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "\"" + BucketKey(bucket) + "\": " + std::to_string(count);
    }
    out += "}}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, stats] : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": {\"count\": " + std::to_string(stats.count);
    if (!deterministic) {
      out += ", \"total_seconds\": " + JsonDouble(stats.total_seconds);
      if (stats.count > 0) {
        out += ", \"min_seconds\": " + JsonDouble(stats.min_seconds) +
               ", \"max_seconds\": " + JsonDouble(stats.max_seconds);
      }
    }
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status WriteSnapshotJsonFile(const Telemetry& telemetry,
                             const std::string& path, bool deterministic) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::InvalidArgument("telemetry: cannot open for writing: " +
                                   path);
  }
  const std::string json = telemetry.SnapshotJson(deterministic);
  const size_t written = std::fwrite(json.data(), 1, json.size(), out);
  if (std::fclose(out) != 0 || written != json.size()) {
    return Status::Internal("telemetry: write failed: " + path);
  }
  return Status::OK();
}

}  // namespace csod::obs
