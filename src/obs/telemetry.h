#ifndef CSOD_OBS_TELEMETRY_H_
#define CSOD_OBS_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace csod::obs {

/// Aggregate of every value recorded into one histogram: exact count, sum,
/// min/max, and power-of-two magnitude buckets (see Telemetry::RecordValue
/// for the bucketing rule). All fields are pure functions of the multiset
/// of recorded values except `sum`, whose floating-point result also
/// depends on recording order — deterministic for the seeded, serially
/// recorded quantities this library measures (DESIGN.md §9).
struct ValueStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;  ///< Meaningful only when count > 0.
  /// Bucket key -> count. For v > 0 the key is the binary exponent e with
  /// 2^(e-1) <= v < 2^e (i.e. frexp's exponent); v == 0 uses kZeroBucket
  /// and v < 0 uses kNegativeBucket. Integer counts keyed by integer
  /// exponents are scheduling-order independent by construction.
  std::map<int, uint64_t> buckets;

  static constexpr int kZeroBucket = INT32_MIN;
  static constexpr int kNegativeBucket = INT32_MIN + 1;
};

/// Aggregate of every completed span with one name: invocation count (a
/// deterministic quantity) and wall-clock totals (not deterministic; only
/// emitted by non-deterministic snapshots).
struct SpanStats {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;  ///< Meaningful only when count > 0.
  double max_seconds = 0.0;  ///< Meaningful only when count > 0.
};

/// \brief Zero-overhead-when-disabled telemetry registry for the CS
/// pipeline: typed counters (comm bytes per phase, retries, excluded
/// nodes), value histograms (BOMP iterations, residual norms), and scoped
/// wall-clock trace spans (DESIGN.md §9 names every metric).
///
/// Thread safety: all recording methods may be called concurrently; the
/// registry is guarded by a mutex. The hot-path contract is that every
/// recording method first branches on `enabled()` — the disabled sink
/// (`Telemetry::Disabled()`) therefore costs one predictable branch per
/// call site and never takes the lock, allocates, or reads the clock,
/// which is what keeps BENCH_kernels/BENCH_sketch numbers unchanged.
///
/// Determinism: `SnapshotJson(/*deterministic=*/true)` emits counters,
/// value histograms, and span *counts* in stable (sorted-key) order with
/// no timestamps or durations, so two runs of the same seeded job produce
/// byte-identical snapshots and double-run diffing works like the bench
/// scripts. Pass deterministic=false to additionally get wall-clock span
/// durations.
class Telemetry {
 public:
  /// An enabled, empty registry.
  Telemetry() : enabled_(true) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// The process-wide disabled sink: every recording call on it is a
  /// single branch. Use it as the default for telemetry pointers so call
  /// sites never need a null check.
  static Telemetry* Disabled();

  bool enabled() const { return enabled_; }

  /// Adds `delta` to the counter `name` (created at zero on first use).
  void AddCounter(std::string_view name, uint64_t delta = 1) {
    if (!enabled_) return;
    AddCounterImpl(name, delta);
  }

  /// Records `value` into the histogram `name`. Non-finite values are
  /// rejected (dropped and tallied under the "obs.nonfinite_dropped"
  /// counter) so a NaN can never poison a snapshot's sum/min/max.
  void RecordValue(std::string_view name, double value) {
    if (!enabled_) return;
    RecordValueImpl(name, value);
  }

  /// Records one completed span (TraceSpan calls this from its
  /// destructor; durations are wall-clock and thus non-deterministic).
  void RecordSpan(std::string_view name, double seconds) {
    if (!enabled_) return;
    RecordSpanImpl(name, seconds);
  }

  /// Point reads for tests and report cross-checks. Missing names read as
  /// zero / empty.
  uint64_t counter(std::string_view name) const;
  ValueStats value(std::string_view name) const;
  SpanStats span(std::string_view name) const;

  /// Clears every counter, histogram, and span.
  void Reset();

  /// Serializes the registry to JSON with stable key order. Deterministic
  /// mode (the default) omits every wall-clock quantity; see the class
  /// comment. The result always ends in a newline.
  std::string SnapshotJson(bool deterministic = true) const;

 private:
  explicit Telemetry(bool enabled) : enabled_(enabled) {}

  void AddCounterImpl(std::string_view name, uint64_t delta);
  void RecordValueImpl(std::string_view name, double value);
  void RecordSpanImpl(std::string_view name, double seconds);

  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, ValueStats, std::less<>> values_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

/// Writes `telemetry.SnapshotJson(deterministic)` to `path` (the
/// `--telemetry-json=<path>` implementation shared by the CLI and the
/// benchmark drivers).
Status WriteSnapshotJsonFile(const Telemetry& telemetry,
                             const std::string& path,
                             bool deterministic = true);

/// \brief RAII scoped trace span: measures the wall time between
/// construction and destruction and records it under `name`.
///
/// `name` must outlive the span (string literals in practice). A span on
/// a disabled (or null) telemetry never reads the clock — construction
/// and destruction are one branch each.
class TraceSpan {
 public:
  TraceSpan(Telemetry* telemetry, std::string_view name)
      : telemetry_(telemetry != nullptr && telemetry->enabled() ? telemetry
                                                                : nullptr),
        name_(name) {
    if (telemetry_ != nullptr) start_ = Clock::now();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (telemetry_ != nullptr) {
      telemetry_->RecordSpan(
          name_, std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  Telemetry* telemetry_;
  std::string_view name_;
  Clock::time_point start_;
};

}  // namespace csod::obs

#endif  // CSOD_OBS_TELEMETRY_H_
