#ifndef CSOD_SIM_SCENARIO_H_
#define CSOD_SIM_SCENARIO_H_

#include <cstdint>
#include <string>

#include "cs/solver.h"
#include "dist/fault.h"
#include "sim/buggify.h"

namespace csod::sim {

/// What a generated scenario exercises. The CS-family kinds run a
/// distributed protocol over a partitioned majority-dominated workload
/// under a derived fault plan; the baseline kinds run the perfect-network
/// protocols under Buggify traffic perturbations only; kMapReduce and
/// kServe drive the engine and the streaming service.
enum class ScenarioKind {
  kCs,
  kAdaptiveGrow,
  kTwoPhase,
  kAmp,
  kKPlusDelta,
  kThresholdTopK,
  kTputTopK,
  kMapReduce,
  kServe,
};

const char* ScenarioKindName(ScenarioKind kind);

/// One fully derived simulation scenario. Every field below is a pure
/// function of `seed` (ScenarioFromSeed), which is what makes the one-line
/// replay recipe sufficient: re-deriving from the seed reconstructs the
/// identical workload, fault plan, and Buggify schedule.
struct Scenario {
  uint64_t seed = 0;
  ScenarioKind kind = ScenarioKind::kCs;

  // Problem shape (CS-family and baseline kinds).
  size_t n = 0;          ///< Key space.
  size_t sparsity = 0;   ///< Planted outliers s.
  size_t num_nodes = 0;  ///< Cluster size L (excludes the canary node).
  size_t k = 0;          ///< Queried outliers.
  size_t m = 0;          ///< Measurement rows (CS-family kinds).
  /// kSkewedSplit cancellation noise (CS-family kinds; the k5 regime).
  double cancellation_noise = 0.0;
  /// When true, the cluster gains one extra "canary" node holding a few
  /// outlier-sized keys and the fault plan force-crashes it — the sparse
  /// exclusion whose THEORY.md §6 envelope the runner checks exactly.
  bool canary_crash = false;

  size_t thread_limit = 1;  ///< Parallelism limit the scenario runs under.
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;

  // Data-plane faults (CS-family kinds only; all-zero elsewhere).
  dist::FaultPlan faults;
  dist::RetryPolicy retry;

  // Buggify schedule.
  bool buggify = false;
  BuggifyOptions buggify_options;

  // kServe shape.
  size_t window_epochs = 0;
  size_t epochs = 0;
  size_t num_shards = 0;
  size_t batches_per_epoch = 0;
  size_t events_per_batch = 0;

  // kMapReduce shape.
  size_t num_splits = 0;
  size_t records_per_split = 0;
  size_t num_reduce_tasks = 0;
  bool use_combiner = false;
};

/// Derives the full scenario from one seed. Pure and stable: the same
/// seed always yields the same scenario (the replay contract of
/// docs/FAULT_MODEL.md §7).
Scenario ScenarioFromSeed(uint64_t seed);

/// One-line human-readable form of the scenario — the second half of the
/// `(seed, scenario)` replay recipe failing runs print.
std::string ScenarioToString(const Scenario& scenario);

}  // namespace csod::sim

#endif  // CSOD_SIM_SCENARIO_H_
