#include "sim/scenario.h"

#include <cstdio>
#include <string>

#include "common/random.h"

namespace csod::sim {

namespace {

// Fixed-precision double formatting for the one-line scenario string.
std::string Fmt(double value, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

// Domain tag separating scenario derivation from every other consumer of
// the seed (matrix generation, workload generation, fault decisions).
constexpr uint64_t kScenarioTag = 0x7363656e6172696fULL;  // "scenario"

// Kind weights: the CS-family protocols (the ones with a real fault
// plan) get most of the budget; the perfect-network baselines, the
// engine, and the serve layer share the rest.
constexpr ScenarioKind kKindTable[] = {
    ScenarioKind::kCs,           ScenarioKind::kCs,
    ScenarioKind::kCs,           ScenarioKind::kAdaptiveGrow,
    ScenarioKind::kAdaptiveGrow, ScenarioKind::kTwoPhase,
    ScenarioKind::kTwoPhase,     ScenarioKind::kAmp,
    ScenarioKind::kAmp,          ScenarioKind::kKPlusDelta,
    ScenarioKind::kThresholdTopK, ScenarioKind::kTputTopK,
    ScenarioKind::kMapReduce,    ScenarioKind::kMapReduce,
    ScenarioKind::kServe,        ScenarioKind::kServe,
};

bool IsCsFamily(ScenarioKind kind) {
  return kind == ScenarioKind::kCs || kind == ScenarioKind::kAdaptiveGrow ||
         kind == ScenarioKind::kTwoPhase || kind == ScenarioKind::kAmp;
}

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kCs: return "cs";
    case ScenarioKind::kAdaptiveGrow: return "adaptive";
    case ScenarioKind::kTwoPhase: return "twophase";
    case ScenarioKind::kAmp: return "amp";
    case ScenarioKind::kKPlusDelta: return "kplusdelta";
    case ScenarioKind::kThresholdTopK: return "ta";
    case ScenarioKind::kTputTopK: return "tput";
    case ScenarioKind::kMapReduce: return "mapreduce";
    case ScenarioKind::kServe: return "serve";
  }
  return "unknown";
}

Scenario ScenarioFromSeed(uint64_t seed) {
  Rng rng(SplitMix64(HashCombine(seed, kScenarioTag)));
  Scenario s;
  s.seed = seed;
  s.kind = kKindTable[rng.NextBounded(
      sizeof(kKindTable) / sizeof(kKindTable[0]))];

  constexpr size_t kThreadLimits[] = {1, 2, 8};
  s.thread_limit = kThreadLimits[rng.NextBounded(3)];

  // Problem shape. m = 16·s keeps the fault-free CS recoveries exact, so
  // the zero-fault bit-identity invariant is a hard assertion rather than
  // a statistical one.
  s.n = 384 + 128 * rng.NextBounded(4);            // 384..768
  s.sparsity = 8 + 2 * rng.NextBounded(5);         // 8..16
  s.num_nodes = 3 + rng.NextBounded(8);            // 3..10
  s.k = 2 + rng.NextBounded(5);                    // 2..6
  s.m = 16 * s.sparsity;

  if (IsCsFamily(s.kind)) {
    // Each fault process is independently present, with rates inside the
    // regime the retry budget can sometimes (not always) beat — both the
    // recovered and the degraded paths get coverage.
    if (rng.NextDouble() < 0.5) {
      s.faults.drop_rate = 0.05 + 0.3 * rng.NextDouble();
    }
    if (rng.NextDouble() < 0.5) {
      s.faults.straggler_rate = 0.05 + 0.35 * rng.NextDouble();
      s.faults.straggler_delay_ticks = rng.NextDouble() < 0.5 ? 6 : 12;
    }
    if (rng.NextDouble() < 0.5) {
      s.faults.duplicate_rate = 0.05 + 0.25 * rng.NextDouble();
    }
    // Crashes target the canary node (appended by the runner as the
    // highest node id), so the excluded slice is sparse and the §6
    // envelope is exactly checkable. Base nodes still get excluded via
    // drop/straggler exhaustion.
    if (s.kind == ScenarioKind::kCs && rng.NextDouble() < 0.4) {
      s.canary_crash = true;
      s.faults.crash_nodes = {static_cast<dist::NodeId>(s.num_nodes)};
    }
    if (rng.NextDouble() < 0.4) s.cancellation_noise = 200.0;
    s.faults.seed = SplitMix64(seed ^ 0xfa171ULL);
    s.retry.max_retries = 1 + rng.NextBounded(3);
    s.retry.timeout_ticks = 4;
    s.retry.backoff = rng.NextDouble() < 0.5 ? 1.5 : 2.0;
  }

  if (s.kind == ScenarioKind::kTwoPhase) {
    constexpr cs::RecoverySolver kSolvers[] = {
        cs::RecoverySolver::kOmp, cs::RecoverySolver::kCosamp,
        cs::RecoverySolver::kFista, cs::RecoverySolver::kAmp};
    s.solver = kSolvers[rng.NextBounded(4)];
  }

  // Buggify: armed on most runs; the unarmed rest pin the zero-overhead /
  // bit-identity side. Probabilities sweep the sparse-to-dense fault
  // spectrum.
  s.buggify = rng.NextDouble() < 0.7;
  s.buggify_options.seed = SplitMix64(seed ^ 0xb166ULL);
  constexpr double kActivation[] = {0.25, 0.5, 1.0};
  constexpr double kFire[] = {0.1, 0.25, 0.5};
  s.buggify_options.activation_probability = kActivation[rng.NextBounded(3)];
  s.buggify_options.fire_probability = kFire[rng.NextBounded(3)];

  if (s.kind == ScenarioKind::kServe) {
    s.n = 512 + 256 * rng.NextBounded(3);  // 512..1024
    s.m = 192;
    s.k = 4;
    s.window_epochs = 2 + rng.NextBounded(2);
    s.epochs = 6 + rng.NextBounded(4);
    s.num_shards = rng.NextDouble() < 0.5 ? 4 : 8;
    s.batches_per_epoch = 2 + rng.NextBounded(3);
    s.events_per_batch = 200 + 100 * rng.NextBounded(4);
    constexpr cs::RecoverySolver kSolvers[] = {
        cs::RecoverySolver::kOmp, cs::RecoverySolver::kCosamp,
        cs::RecoverySolver::kFista, cs::RecoverySolver::kAmp};
    s.solver = kSolvers[rng.NextBounded(4)];
  }

  if (s.kind == ScenarioKind::kMapReduce) {
    s.num_splits = 2 + rng.NextBounded(6);
    s.records_per_split = 200 + 100 * rng.NextBounded(5);
    constexpr size_t kReduceTasks[] = {1, 3, 8};
    s.num_reduce_tasks = kReduceTasks[rng.NextBounded(3)];
    s.use_combiner = rng.NextDouble() < 0.5;
  }

  return s;
}

std::string ScenarioToString(const Scenario& s) {
  std::string out = "kind=";
  out += ScenarioKindName(s.kind);
  out += " limit=" + std::to_string(s.thread_limit);
  switch (s.kind) {
    case ScenarioKind::kServe:
      out += " n=" + std::to_string(s.n) + " m=" + std::to_string(s.m) +
             " shards=" + std::to_string(s.num_shards) +
             " window=" + std::to_string(s.window_epochs) +
             " epochs=" + std::to_string(s.epochs) +
             " batches=" + std::to_string(s.batches_per_epoch) + "x" +
             std::to_string(s.events_per_batch) +
             " solver=" + std::string(cs::SolverName(s.solver));
      break;
    case ScenarioKind::kMapReduce:
      out += " splits=" + std::to_string(s.num_splits) + "x" +
             std::to_string(s.records_per_split) +
             " reducers=" + std::to_string(s.num_reduce_tasks) +
             (s.use_combiner ? " combiner" : "");
      break;
    default:
      out += " n=" + std::to_string(s.n) + " s=" +
             std::to_string(s.sparsity) + " L=" +
             std::to_string(s.num_nodes) + " k=" + std::to_string(s.k) +
             " m=" + std::to_string(s.m);
      if (s.kind == ScenarioKind::kTwoPhase) {
        out += " solver=" + std::string(cs::SolverName(s.solver));
      }
      if (s.faults.any()) {
        out += " faults[";
        bool first = true;
        auto add = [&](const std::string& part) {
          if (!first) out += ",";
          out += part;
          first = false;
        };
        if (s.faults.drop_rate > 0.0) {
          add("drop=" + Fmt(s.faults.drop_rate, 3));
        }
        if (s.faults.straggler_rate > 0.0) {
          add("slow=" + Fmt(s.faults.straggler_rate, 3) + "@" +
              std::to_string(s.faults.straggler_delay_ticks));
        }
        if (s.faults.duplicate_rate > 0.0) {
          add("dup=" + Fmt(s.faults.duplicate_rate, 3));
        }
        if (!s.faults.crash_nodes.empty()) add("crash=canary");
        out += "]";
        out += " retry[r=" + std::to_string(s.retry.max_retries) +
               ",b=" + Fmt(s.retry.backoff, 1) + "]";
      }
      break;
  }
  if (s.buggify) {
    out += " buggify[act=" +
           Fmt(s.buggify_options.activation_probability, 2) +
           ",fire=" + Fmt(s.buggify_options.fire_probability, 2) +
           "]";
  } else {
    out += " buggify=off";
  }
  return out;
}

}  // namespace csod::sim
