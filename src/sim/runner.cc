#include "sim/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "cs/compressor.h"
#include "dist/adaptive_cs_protocol.h"
#include "dist/amp_protocol.h"
#include "dist/cluster.h"
#include "dist/comm.h"
#include "dist/cs_protocol.h"
#include "dist/kplusdelta_protocol.h"
#include "dist/topk_protocols.h"
#include "mapreduce/engine.h"
#include "obs/telemetry.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "serve/checkpoint.h"
#include "serve/net.h"
#include "serve/service.h"
#include "serve/streaming_detector.h"
#include "sim/buggify.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::sim {

namespace {

// Domain tags: every derived stream (workload data, partition weights,
// protocol consensus seed, canary slice, serve events, MapReduce records)
// hashes the scenario seed with its own tag, so no two consumers ever see
// correlated randomness.
constexpr uint64_t kDataTag = 0x64617461ULL;      // "data"
constexpr uint64_t kPartTag = 0x70617274ULL;      // "part"
constexpr uint64_t kProtoTag = 0x70726f746fULL;   // "proto"
constexpr uint64_t kCanaryTag = 0x636e7279ULL;    // "cnry"
constexpr uint64_t kEventsTag = 0x65766e74ULL;    // "evnt"
constexpr uint64_t kRecordsTag = 0x72656373ULL;   // "recs"

constexpr double kMode = 5000.0;

// Order-sensitive rolling digest over everything a scenario produced.
// Doubles are mixed by bit pattern, so "identical digest" means
// bit-identical numerics, not approximately-equal numerics.
class Digest {
 public:
  void Mix(uint64_t word) { h_ = HashCombine(h_, word); }
  void Mix(bool flag) { Mix(static_cast<uint64_t>(flag)); }
  void Mix(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  void Mix(const std::string& text) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
      h = (h ^ c) * 0x100000001b3ULL;
    }
    Mix(h);
    Mix(text.size());
  }
  void Mix(const outlier::OutlierSet& set) {
    Mix(set.outliers.size());
    for (const outlier::Outlier& o : set.outliers) {
      Mix(static_cast<uint64_t>(o.key_index));
      Mix(o.value);
      Mix(o.divergence);
    }
    Mix(set.mode);
  }
  void Mix(const dist::CommStats& comm) {
    Mix(comm.bytes_total());
    Mix(comm.tuples_total());
    Mix(comm.rounds());
    for (const auto& [phase, bytes] : comm.bytes_by_phase()) {
      Mix(phase);
      Mix(bytes);
    }
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0x63736f642d73696dULL;  // "csod-sim"
};

// Per-execution state: the digest plus collected invariant violations.
struct Ctx {
  Digest digest;
  std::vector<std::string> violations;

  void Violate(std::string what) { violations.push_back(std::move(what)); }
};

std::string U64(uint64_t v) { return std::to_string(v); }

std::string Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool BitEqualSets(const outlier::OutlierSet& a, const outlier::OutlierSet& b) {
  if (a.outliers.size() != b.outliers.size()) return false;
  if (std::memcmp(&a.mode, &b.mode, sizeof(double)) != 0) return false;
  for (size_t i = 0; i < a.outliers.size(); ++i) {
    if (a.outliers[i].key_index != b.outliers[i].key_index) return false;
    if (std::memcmp(&a.outliers[i].value, &b.outliers[i].value,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// The telemetry-vs-CommStats invariant: every byte CommStats accounted
// must appear under the mirrored `comm.bytes.<phase>` counter, and the
// per-phase map must sum back to bytes_total (no double or dropped
// accounting anywhere in the channel, including Buggify perturbations).
void CheckCommTelemetry(const obs::Telemetry& telemetry,
                        const dist::CommStats& comm, const char* label,
                        Ctx* ctx) {
  uint64_t sum = 0;
  for (const auto& [phase, bytes] : comm.bytes_by_phase()) {
    const uint64_t counted = telemetry.counter("comm.bytes." + phase);
    if (counted != bytes) {
      ctx->Violate(std::string(label) + ": telemetry comm.bytes." + phase +
                   "=" + U64(counted) + " != CommStats " + U64(bytes));
    }
    sum += bytes;
  }
  if (sum != comm.bytes_total()) {
    ctx->Violate(std::string(label) + ": per-phase bytes sum " + U64(sum) +
                 " != bytes_total " + U64(comm.bytes_total()));
  }
}

// Exactness check for fault-free CS-family answers: the key set must match
// the centralized reference exactly and every value must match to within
// recovery round-off.
void CheckExact(const outlier::OutlierSet& truth,
                const outlier::OutlierSet& estimate, const char* label,
                Ctx* ctx) {
  std::map<size_t, double> expected;
  for (const outlier::Outlier& o : truth.outliers) {
    expected[o.key_index] = o.value;
  }
  if (estimate.outliers.size() != truth.outliers.size()) {
    ctx->Violate(std::string(label) + ": fault-free answer has " +
                 U64(estimate.outliers.size()) + " outliers, expected " +
                 U64(truth.outliers.size()));
    return;
  }
  for (const outlier::Outlier& o : estimate.outliers) {
    auto it = expected.find(o.key_index);
    if (it == expected.end()) {
      ctx->Violate(std::string(label) + ": fault-free answer reports key " +
                   U64(o.key_index) + " which is not a true outlier");
      continue;
    }
    const double tol = 1e-5 * (1.0 + std::abs(it->second));
    if (std::abs(o.value - it->second) > tol) {
      ctx->Violate(std::string(label) + ": key " + U64(o.key_index) +
                   " recovered value " + std::to_string(o.value) +
                   " != exact " + std::to_string(it->second));
    }
  }
}

// ---------------------------------------------------------------------------
// CS-family workload
// ---------------------------------------------------------------------------

struct CsWorkload {
  std::vector<double> base;    ///< Aggregate without the canary slice.
  std::vector<double> global;  ///< Full aggregate (== base unless canary).
  dist::Cluster cluster{1};
  std::vector<size_t> canary_keys;
  double canary_inf = 0.0;  ///< ‖e‖∞ of the canary slice.
  outlier::OutlierSet truth;
};

// Builds the majority-dominated workload, partitions it, and (for canary
// scenarios) appends one extra node holding a 3-key slice on mode-valued
// keys. Crashing that node makes the partial aggregate *exactly* the base
// vector, which is what turns the THEORY.md §6 envelope into a checkable
// assertion rather than a statistical one.
Result<CsWorkload> BuildCsWorkload(const Scenario& s, double max_divergence,
                                   workload::PartitionStrategy strategy,
                                   bool fold_above_mode) {
  workload::MajorityDominatedOptions gen;
  gen.n = s.n;
  gen.sparsity = s.sparsity;
  gen.mode = kMode;
  gen.min_divergence = 100.0;
  gen.max_divergence = max_divergence;
  gen.seed = SplitMix64(HashCombine(s.seed, kDataTag));
  CSOD_ASSIGN_OR_RETURN(std::vector<double> x,
                        workload::GenerateMajorityDominated(gen));
  if (fold_above_mode) {
    // Reflect below-mode outliers above the mode: all values positive and
    // the value ranking equals the divergence ranking — the domain the
    // TA/TPUT baselines are exact on, with no ties at the top.
    for (double& v : x) v = kMode + std::abs(v - kMode);
  }

  workload::PartitionOptions part;
  part.num_nodes = s.num_nodes;
  part.strategy = strategy;
  part.seed = SplitMix64(HashCombine(s.seed, kPartTag));
  part.cancellation_noise = s.cancellation_noise;
  CSOD_ASSIGN_OR_RETURN(std::vector<cs::SparseSlice> slices,
                        workload::PartitionAdditive(x, part));

  CsWorkload w;
  w.cluster = dist::Cluster(s.n);
  for (cs::SparseSlice& slice : slices) {
    CSOD_RETURN_NOT_OK(w.cluster.AddNode(std::move(slice)).status());
  }
  w.base = x;
  w.global = std::move(x);

  if (s.canary_crash) {
    Rng rng(SplitMix64(HashCombine(s.seed, kCanaryTag)));
    cs::SparseSlice canary;
    std::set<size_t> used;
    while (canary.indices.size() < 3) {
      const size_t key = rng.NextBounded(s.n);
      if (w.base[key] != kMode || used.count(key) != 0) continue;
      used.insert(key);
      const double sign = rng.NextDouble() < 0.5 ? -1.0 : 1.0;
      const double value = sign * (2000.0 + 6000.0 * rng.NextDouble());
      canary.indices.push_back(key);
      canary.values.push_back(value);
      w.global[key] += value;
      w.canary_inf = std::max(w.canary_inf, std::abs(value));
      w.canary_keys.push_back(key);
    }
    // AddNode assigns sequential ids, so the canary gets id == num_nodes —
    // the id the scenario's crash plan names.
    CSOD_RETURN_NOT_OK(w.cluster.AddNode(std::move(canary)).status());
  }

  w.truth = outlier::ExactKOutliers(w.global, s.k);
  return w;
}

void MixCollection(const dist::CollectionReport& report, Ctx* ctx) {
  ctx->digest.Mix(report.excluded_nodes.size());
  for (dist::NodeId id : report.excluded_nodes) ctx->digest.Mix(id);
  ctx->digest.Mix(report.retries);
}

// Shared handling of a CS-family run that returned an error: with
// allow_degraded on, the only legitimate failure is losing every node.
// The error itself is part of the deterministic outcome (digested).
void HandleProtocolError(const Status& status,
                         const dist::CollectionReport& report,
                         size_t cluster_nodes, const char* label, Ctx* ctx) {
  ctx->digest.Mix(std::string(StatusCodeToString(status.code())));
  if (report.excluded_nodes.size() < cluster_nodes) {
    ctx->Violate(std::string(label) + ": run failed with " +
                 U64(cluster_nodes - report.excluded_nodes.size()) +
                 " surviving nodes: " + status.ToString());
  }
}

// THEORY.md §6 envelope for a run whose only exclusion is the canary
// slice e (partial aggregate == base exactly):
//  - recall floor: every true outlier outside supp(e) whose divergence
//    clears the partial data's k-th divergence by more than ‖e‖∞ must be
//    detected;
//  - no forgery: a detected key that is not a true outlier cannot diverge
//    (in the partial data) by more than d_k(full) + ‖e‖∞.
void CheckCanaryEnvelope(const CsWorkload& w, size_t k,
                         const outlier::OutlierSet& estimate, Ctx* ctx) {
  const outlier::OutlierSet partial_truth = outlier::ExactKOutliers(w.base, k);
  const double dk_partial = partial_truth.outliers.size() == k
                                ? partial_truth.outliers.back().divergence
                                : 0.0;
  const double dk_full = w.truth.outliers.empty()
                             ? 0.0
                             : w.truth.outliers.back().divergence;
  std::set<size_t> est_keys;
  for (const outlier::Outlier& o : estimate.outliers) {
    est_keys.insert(o.key_index);
  }
  std::set<size_t> truth_keys;
  for (const outlier::Outlier& o : w.truth.outliers) {
    truth_keys.insert(o.key_index);
  }
  const std::set<size_t> canary_keys(w.canary_keys.begin(),
                                     w.canary_keys.end());
  for (const outlier::Outlier& t : w.truth.outliers) {
    if (canary_keys.count(t.key_index) != 0) continue;
    if (t.divergence > dk_partial + w.canary_inf + 1e-6 &&
        est_keys.count(t.key_index) == 0) {
      ctx->Violate("cs: §6 recall envelope: true outlier key " +
                   U64(t.key_index) + " (divergence " +
                   std::to_string(t.divergence) +
                   ") missing though it clears d_k + ||e||inf = " +
                   std::to_string(dk_partial + w.canary_inf));
    }
  }
  for (const outlier::Outlier& o : estimate.outliers) {
    if (truth_keys.count(o.key_index) != 0) continue;
    const double partial_div = std::abs(w.base[o.key_index] - kMode);
    if (partial_div > dk_full + w.canary_inf + 1e-6) {
      ctx->Violate("cs: §6 precision envelope: forged outlier key " +
                   U64(o.key_index) + " with partial divergence " +
                   std::to_string(partial_div) + " > d_k + ||e||inf = " +
                   std::to_string(dk_full + w.canary_inf));
    }
  }
}

// ---------------------------------------------------------------------------
// kCs
// ---------------------------------------------------------------------------

void RunCsScenario(const Scenario& s, Ctx* ctx) {
  Result<CsWorkload> built = BuildCsWorkload(
      s, 10000.0, workload::PartitionStrategy::kSkewedSplit, false);
  if (!built.ok()) {
    ctx->Violate("cs: workload build failed: " + built.status().ToString());
    return;
  }
  CsWorkload& w = built.Value();

  dist::CsProtocolOptions opts;
  opts.m = s.m;
  opts.seed = SplitMix64(HashCombine(s.seed, kProtoTag));
  opts.iterations = s.sparsity + 8;
  opts.faults = s.faults;
  opts.retry = s.retry;
  dist::CsOutlierProtocol protocol(opts);
  obs::Telemetry telemetry;
  protocol.set_telemetry(&telemetry);
  dist::CommStats comm;
  Result<outlier::OutlierSet> run = protocol.Run(w.cluster, s.k, &comm);
  const dist::CollectionReport report = protocol.last_collection();
  // Everything after the main run re-executes clean references; the
  // Buggify schedule must not leak into them.
  BuggifyDisable();

  CheckCommTelemetry(telemetry, comm, "cs", ctx);
  ctx->digest.Mix(comm);
  MixCollection(report, ctx);
  if (!run.ok()) {
    HandleProtocolError(run.status(), report, w.cluster.num_nodes(), "cs",
                        ctx);
    return;
  }
  const outlier::OutlierSet& estimate = run.Value();
  ctx->digest.Mix(estimate);

  const std::vector<dist::NodeId>& excluded = report.excluded_nodes;
  if (!excluded.empty() && excluded.size() < w.cluster.num_nodes()) {
    // Sub-cluster bit-equivalence: the degraded answer must be
    // bit-identical to a clean fault-free run over only the surviving
    // slices (the partial-sum soundness claim of docs/FAULT_MODEL.md,
    // checked literally).
    dist::Cluster survivors(s.n);
    bool rebuilt = true;
    for (dist::NodeId id : w.cluster.NodeIds()) {
      if (std::find(excluded.begin(), excluded.end(), id) != excluded.end()) {
        continue;
      }
      Result<const cs::SparseSlice*> slice = w.cluster.Slice(id);
      if (!slice.ok() || !survivors.AddNode(*slice.Value()).ok()) {
        rebuilt = false;
        break;
      }
    }
    if (!rebuilt) {
      ctx->Violate("cs: failed to rebuild the survivor sub-cluster");
    } else {
      dist::CsProtocolOptions clean = opts;
      clean.faults = dist::FaultPlan{};
      clean.retry = dist::RetryPolicy{};
      dist::CsOutlierProtocol reference(clean);
      dist::CommStats ref_comm;
      Result<outlier::OutlierSet> ref = reference.Run(survivors, s.k,
                                                      &ref_comm);
      if (!ref.ok()) {
        ctx->Violate("cs: clean survivor rerun failed: " +
                     ref.status().ToString());
      } else if (!BitEqualSets(estimate, ref.Value())) {
        ctx->Violate(
            "cs: degraded answer != clean run over the surviving "
            "sub-cluster (partial-sum recovery drifted)");
      }
    }
  }

  if (excluded.empty()) {
    CheckExact(w.truth, estimate, "cs", ctx);
  } else if (s.canary_crash && excluded.size() == 1 &&
             excluded[0] == static_cast<dist::NodeId>(s.num_nodes)) {
    CheckCanaryEnvelope(w, s.k, estimate, ctx);
  } else {
    // Dense exclusions: quality against the partial-aggregate truth is
    // recorded (and must be deterministic), not bounded.
    const std::vector<double> partial =
        w.cluster.GlobalAggregateExcluding(excluded);
    const outlier::KeySetQuality quality = outlier::KeyQuality(
        outlier::ExactKOutliers(partial, s.k), estimate);
    ctx->digest.Mix(quality.precision);
    ctx->digest.Mix(quality.recall);
  }
}

// ---------------------------------------------------------------------------
// kAdaptiveGrow / kTwoPhase
// ---------------------------------------------------------------------------

void RunAdaptiveScenario(const Scenario& s, Ctx* ctx) {
  const char* label =
      s.kind == ScenarioKind::kTwoPhase ? "twophase" : "adaptive";
  Result<CsWorkload> built = BuildCsWorkload(
      s, 10000.0, workload::PartitionStrategy::kSkewedSplit, false);
  if (!built.ok()) {
    ctx->Violate(std::string(label) + ": workload build failed: " +
                 built.status().ToString());
    return;
  }
  CsWorkload& w = built.Value();

  dist::AdaptiveCsOptions opts;
  opts.seed = SplitMix64(HashCombine(s.seed, kProtoTag));
  opts.iterations = s.sparsity + 8;
  opts.faults = s.faults;
  opts.retry = s.retry;
  if (s.kind == ScenarioKind::kTwoPhase) {
    opts.strategy = dist::AdaptiveStrategy::kTwoPhase;
    opts.locate_m = s.m;
    // |S| = (s/k + 2)·k ≥ s + k: the candidate support can hold every true
    // outlier even when the locate ranking is imperfect, which is what
    // makes the refine pass (least squares on S) exact fault-free.
    opts.support_factor = s.sparsity / s.k + 2;
    opts.refine_margin = 16;
    opts.solver = s.solver;
  } else {
    opts.initial_m = 64;
    opts.max_m = 4096;
    opts.growth = 2.0;
    // Certify by residual only: with m reaching 16·s the fault-free
    // recovery is exact, so acceptance is a hard invariant, not a race
    // against top-k stability.
    opts.accept_on_stable_topk = false;
    opts.acceptance_residual = 1e-8;
  }
  dist::AdaptiveCsProtocol protocol(opts);
  obs::Telemetry telemetry;
  protocol.set_telemetry(&telemetry);
  dist::CommStats comm;
  Result<outlier::OutlierSet> run = protocol.Run(w.cluster, s.k, &comm);
  const dist::CollectionReport report = protocol.last_collection();
  BuggifyDisable();

  CheckCommTelemetry(telemetry, comm, label, ctx);
  ctx->digest.Mix(comm);
  MixCollection(report, ctx);
  for (const dist::AdaptiveRound& round : protocol.rounds()) {
    ctx->digest.Mix(round.m);
    ctx->digest.Mix(round.relative_residual);
    ctx->digest.Mix(round.accepted);
    ctx->digest.Mix(std::string(round.phase));
  }
  if (!run.ok()) {
    HandleProtocolError(run.status(), report, w.cluster.num_nodes(), label,
                        ctx);
    return;
  }
  const outlier::OutlierSet& estimate = run.Value();
  ctx->digest.Mix(estimate);
  if (report.excluded_nodes.empty()) {
    CheckExact(w.truth, estimate, label, ctx);
  } else {
    const std::vector<double> partial =
        w.cluster.GlobalAggregateExcluding(report.excluded_nodes);
    const outlier::KeySetQuality quality = outlier::KeyQuality(
        outlier::ExactKOutliers(partial, s.k), estimate);
    ctx->digest.Mix(quality.precision);
    ctx->digest.Mix(quality.recall);
  }
}

// ---------------------------------------------------------------------------
// kAmp
// ---------------------------------------------------------------------------

void RunAmpScenario(const Scenario& s, Ctx* ctx) {
  Result<CsWorkload> built = BuildCsWorkload(
      s, 10000.0, workload::PartitionStrategy::kSkewedSplit, false);
  if (!built.ok()) {
    ctx->Violate("amp: workload build failed: " + built.status().ToString());
    return;
  }
  CsWorkload& w = built.Value();

  dist::DistributedAmpOptions opts;
  opts.m = s.m;
  opts.seed = SplitMix64(HashCombine(s.seed, kProtoTag));
  opts.faults = s.faults;
  opts.retry = s.retry;
  dist::DistributedAmpProtocol protocol(opts);
  obs::Telemetry telemetry;
  protocol.set_telemetry(&telemetry);
  dist::CommStats comm;
  Result<outlier::OutlierSet> run = protocol.Run(w.cluster, s.k, &comm);
  const dist::CollectionReport report = protocol.last_collection();
  BuggifyDisable();

  CheckCommTelemetry(telemetry, comm, "amp", ctx);
  ctx->digest.Mix(comm);
  MixCollection(report, ctx);
  for (const dist::AmpRound& round : protocol.rounds()) {
    ctx->digest.Mix(round.threshold);
    ctx->digest.Mix(round.tuples);
    ctx->digest.Mix(round.accepted);
  }
  if (!run.ok()) {
    HandleProtocolError(run.status(), report, w.cluster.num_nodes(), "amp",
                        ctx);
    return;
  }
  const outlier::OutlierSet& estimate = run.Value();
  ctx->digest.Mix(estimate);
  const outlier::KeySetQuality quality =
      outlier::KeyQuality(w.truth, estimate);
  ctx->digest.Mix(quality.precision);
  ctx->digest.Mix(quality.recall);
  if (report.excluded_nodes.empty()) {
    // AMP is approximate even fault-free; the documented floor (THEORY §7)
    // is a quality envelope, not exactness.
    if (quality.recall < 0.5 || quality.precision < 0.5) {
      ctx->Violate("amp: fault-free quality below floor: precision " +
                   std::to_string(quality.precision) + ", recall " +
                   std::to_string(quality.recall));
    }
  }
}

// ---------------------------------------------------------------------------
// Baselines: K+δ, TA, TPUT — Buggify perturbs their traffic (duplicated
// broadcasts, re-sent batches), and the invariant is that the *answer* is
// byte-for-byte the unperturbed one while the byte count only grows.
// ---------------------------------------------------------------------------

void RunKPlusDeltaScenario(const Scenario& s, Ctx* ctx) {
  Result<CsWorkload> built = BuildCsWorkload(
      s, 10000.0, workload::PartitionStrategy::kSkewedSplit, false);
  if (!built.ok()) {
    ctx->Violate("kplusdelta: workload build failed: " +
                 built.status().ToString());
    return;
  }
  CsWorkload& w = built.Value();

  dist::KPlusDeltaOptions opts;
  opts.delta = 2 * s.k;
  opts.seed = SplitMix64(HashCombine(s.seed, kProtoTag));

  dist::KPlusDeltaProtocol protocol(opts);
  obs::Telemetry telemetry;
  protocol.set_telemetry(&telemetry);
  dist::CommStats comm;
  Result<outlier::OutlierSet> run = protocol.Run(w.cluster, s.k, &comm);
  BuggifyDisable();
  CheckCommTelemetry(telemetry, comm, "kplusdelta", ctx);
  ctx->digest.Mix(comm);
  if (!run.ok()) {
    ctx->Violate("kplusdelta: run failed: " + run.status().ToString());
    return;
  }
  ctx->digest.Mix(run.Value());

  dist::KPlusDeltaProtocol reference(opts);
  dist::CommStats ref_comm;
  Result<outlier::OutlierSet> ref = reference.Run(w.cluster, s.k, &ref_comm);
  if (!ref.ok()) {
    ctx->Violate("kplusdelta: clean rerun failed: " + ref.status().ToString());
    return;
  }
  if (!BitEqualSets(run.Value(), ref.Value())) {
    ctx->Violate(
        "kplusdelta: answer perturbed by Buggify traffic faults (must be "
        "value-neutral)");
  }
  if (comm.bytes_total() < ref_comm.bytes_total()) {
    ctx->Violate("kplusdelta: Buggify run shipped fewer bytes (" +
                 U64(comm.bytes_total()) + ") than the clean run (" +
                 U64(ref_comm.bytes_total()) + ")");
  }
}

bool TopBitEqual(const dist::TopKRunResult& a, const dist::TopKRunResult& b) {
  if (a.top.size() != b.top.size()) return false;
  for (size_t i = 0; i < a.top.size(); ++i) {
    if (a.top[i].key_index != b.top[i].key_index) return false;
    if (std::memcmp(&a.top[i].value, &b.top[i].value, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void RunTopKScenario(const Scenario& s, Ctx* ctx) {
  const bool ta = s.kind == ScenarioKind::kThresholdTopK;
  const char* label = ta ? "ta" : "tput";
  // Folded above the mode and placed by key: the all-positive, partial-sum-
  // lower-bounds domain both protocols are exact on.
  Result<CsWorkload> built = BuildCsWorkload(
      s, 4000.0, workload::PartitionStrategy::kByKey, true);
  if (!built.ok()) {
    ctx->Violate(std::string(label) + ": workload build failed: " +
                 built.status().ToString());
    return;
  }
  CsWorkload& w = built.Value();

  auto run_once = [&](dist::CommStats* comm, obs::Telemetry* telemetry) {
    return ta ? dist::RunThresholdAlgorithmTopK(w.cluster, s.k, s.k, comm,
                                                telemetry)
              : dist::RunTputTopK(w.cluster, s.k, comm, telemetry);
  };

  obs::Telemetry telemetry;
  dist::CommStats comm;
  Result<dist::TopKRunResult> run = run_once(&comm, &telemetry);
  BuggifyDisable();
  CheckCommTelemetry(telemetry, comm, label, ctx);
  ctx->digest.Mix(comm);
  if (!run.ok()) {
    ctx->Violate(std::string(label) + ": run failed: " +
                 run.status().ToString());
    return;
  }
  for (const outlier::Outlier& o : run.Value().top) {
    ctx->digest.Mix(static_cast<uint64_t>(o.key_index));
    ctx->digest.Mix(o.value);
  }

  dist::CommStats ref_comm;
  Result<dist::TopKRunResult> ref = run_once(&ref_comm, nullptr);
  if (!ref.ok()) {
    ctx->Violate(std::string(label) + ": clean rerun failed: " +
                 ref.status().ToString());
    return;
  }
  if (!TopBitEqual(run.Value(), ref.Value())) {
    ctx->Violate(std::string(label) +
                 ": answer perturbed by Buggify traffic faults");
  }
  if (comm.bytes_total() < ref_comm.bytes_total()) {
    ctx->Violate(std::string(label) + ": Buggify run shipped fewer bytes (" +
                 U64(comm.bytes_total()) + ") than the clean run (" +
                 U64(ref_comm.bytes_total()) + ")");
  }

  // Exactness on the domain: the ranked keys must be the true top-k by
  // value (distinct continuous values, so the order is unambiguous).
  const std::vector<outlier::Outlier> expected =
      outlier::TopK(w.global, s.k);
  const std::vector<outlier::Outlier>& got = run.Value().top;
  if (got.size() != expected.size()) {
    ctx->Violate(std::string(label) + ": returned " + U64(got.size()) +
                 " keys, expected " + U64(expected.size()));
  } else {
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].key_index != expected[i].key_index ||
          std::abs(got[i].value - expected[i].value) > 1e-9) {
        ctx->Violate(std::string(label) + ": rank " + U64(i) + " is key " +
                     U64(got[i].key_index) + " value " +
                     std::to_string(got[i].value) + ", expected key " +
                     U64(expected[i].key_index) + " value " +
                     std::to_string(expected[i].value));
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kMapReduce — Buggify re-executes map tasks and shrinks emitter chunks;
// the engine's output and its byte accounting must not move at all.
// ---------------------------------------------------------------------------

using MrOut = std::pair<uint64_t, double>;

mr::Job<uint64_t, uint64_t, double, MrOut> BuildMrJob(const Scenario& s,
                                                      obs::Telemetry* tel) {
  mr::Job<uint64_t, uint64_t, double, MrOut> job;
  job.map_fn = [](const std::vector<uint64_t>& records,
                  mr::Emitter<uint64_t, double>* emitter) {
    for (uint64_t record : records) {
      emitter->Emit(record % 257, ToUnitDouble(SplitMix64(record)));
      emitter->Emit((record >> 16) % 131, 1.0);
    }
  };
  job.reduce_fn = [](const uint64_t& key, mr::Span<double> values,
                     std::vector<MrOut>* out) {
    double sum = 0.0;
    for (double v : values) sum += v;
    out->push_back({key, sum});
  };
  if (s.use_combiner) {
    job.combine_fn = [](const uint64_t&, mr::Span<double> values) {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum;
    };
  }
  job.fixed_tuple_bytes = dist::kKeyValueBytes;
  job.num_reduce_tasks = s.num_reduce_tasks;
  job.telemetry = tel;
  return job;
}

void RunMapReduceScenario(const Scenario& s, Ctx* ctx) {
  std::vector<std::vector<uint64_t>> splits(s.num_splits);
  const uint64_t base = SplitMix64(HashCombine(s.seed, kRecordsTag));
  for (size_t split = 0; split < s.num_splits; ++split) {
    splits[split].reserve(s.records_per_split);
    for (size_t i = 0; i < s.records_per_split; ++i) {
      splits[split].push_back(
          SplitMix64(HashCombine(base, split * s.records_per_split + i)));
    }
  }

  obs::Telemetry telemetry;
  Result<mr::JobResult<MrOut>> run =
      mr::RunJob(splits, BuildMrJob(s, &telemetry));
  BuggifyDisable();
  if (!run.ok()) {
    ctx->Violate("mapreduce: run failed: " + run.status().ToString());
    return;
  }
  const mr::JobResult<MrOut>& got = run.Value();
  ctx->digest.Mix(got.output.size());
  for (const MrOut& rec : got.output) {
    ctx->digest.Mix(rec.first);
    ctx->digest.Mix(rec.second);
  }
  ctx->digest.Mix(got.stats.shuffle_bytes);
  ctx->digest.Mix(got.stats.shuffle_tuples);
  ctx->digest.Mix(got.stats.pre_combine_shuffle_bytes);
  ctx->digest.Mix(got.stats.pre_combine_shuffle_tuples);
  ctx->digest.Mix(got.stats.input_bytes);
  ctx->digest.Mix(got.stats.output_records);

  Result<mr::JobResult<MrOut>> ref =
      mr::RunJob(splits, BuildMrJob(s, nullptr));
  if (!ref.ok()) {
    ctx->Violate("mapreduce: clean rerun failed: " + ref.status().ToString());
    return;
  }
  const mr::JobResult<MrOut>& want = ref.Value();
  bool outputs_equal = got.output.size() == want.output.size();
  for (size_t i = 0; outputs_equal && i < got.output.size(); ++i) {
    outputs_equal = got.output[i].first == want.output[i].first &&
                    std::memcmp(&got.output[i].second, &want.output[i].second,
                                sizeof(double)) == 0;
  }
  if (!outputs_equal) {
    ctx->Violate(
        "mapreduce: output perturbed by Buggify task re-execution / buffer "
        "pressure (must be bit-identical)");
  }
  if (got.stats.shuffle_bytes != want.stats.shuffle_bytes ||
      got.stats.shuffle_tuples != want.stats.shuffle_tuples ||
      got.stats.pre_combine_shuffle_bytes !=
          want.stats.pre_combine_shuffle_bytes ||
      got.stats.input_bytes != want.stats.input_bytes ||
      got.stats.output_records != want.stats.output_records) {
    ctx->Violate(
        "mapreduce: Buggify run changed the engine's byte accounting "
        "(re-executed or duplicated work was charged)");
  }
}

// ---------------------------------------------------------------------------
// kServe — stall/unstall storms, republish races, and torn frames, driven
// end-to-end through the wire-facing deployment surface (serve/net.h):
// every ingest/advance/query travels as a checksummed frame over the
// loopback transport, where the `serve.net.torn_frame` Buggify section
// corrupts requests in flight (one client retry must always recover) and
// `serve.net.mid_checkpoint_crash` tears checkpoint fetches (a torn
// checkpoint must be detected, never installed). Invariants: staleness ≤ 1
// epoch, event conservation across retries and replays, checkpoint restore
// bit-identity, and bit-identical snapshots across thread limits.
// ---------------------------------------------------------------------------

void RunServeScenario(const Scenario& s, Ctx* ctx) {
  obs::Telemetry telemetry;
  serve::StreamingDetectorOptions opts;
  opts.n = s.n;
  opts.m = s.m;
  opts.seed = SplitMix64(HashCombine(s.seed, kProtoTag));
  opts.solver = s.solver;
  opts.window_epochs = s.window_epochs;
  opts.num_shards = s.num_shards;
  opts.window = serve::WindowKind::kSliding;
  opts.telemetry = &telemetry;
  serve::StreamingService service(&telemetry);
  const char kTenant[] = "sim";
  Status added = service.AddTenant(kTenant, opts);
  if (!added.ok()) {
    ctx->Violate("serve: create failed: " + added.ToString());
    return;
  }
  Result<std::shared_ptr<serve::StreamingDetector>> tenant =
      service.Tenant(kTenant);
  if (!tenant.ok()) {
    ctx->Violate("serve: tenant lookup failed: " +
                 tenant.status().ToString());
    return;
  }
  // Direct handle for invariant checks (staleness, backlog, unstall); all
  // data-plane traffic goes through the framed client below.
  serve::StreamingDetector& detector = *tenant.Value();

  serve::NetServerOptions net_options;
  // The stall-storm scenarios defer events on purpose; admission pushback
  // has its own tests, so give the backlog effectively unbounded headroom.
  net_options.max_tenant_backlog_bytes =
      std::numeric_limits<size_t>::max() / 2;
  serve::NetServer server(&service, net_options);
  serve::LoopbackTransport transport(&server);
  serve::NetClient client(&transport);

  {
    Result<uint64_t> opened = client.AdvanceTo(kTenant, 0);  // Opens epoch 0.
    if (!opened.ok()) {
      ctx->Violate("serve: framed open failed: " +
                   opened.status().ToString());
      return;
    }
  }

  // A few hot keys carry real signal so the final query has outliers to
  // find; the rest is Gaussian noise.
  std::vector<size_t> hot(5);
  for (size_t j = 0; j < hot.size(); ++j) {
    hot[j] = SplitMix64(HashCombine(s.seed, 0x686f74ULL + j)) % s.n;
  }

  uint64_t generated = 0;
  bool ingest_ok = true;
  std::string last_checkpoint;     // Latest checkpoint that decoded clean.
  uint64_t checkpoints_good = 0;   // Fetches that survived the storm.
  uint64_t checkpoints_torn = 0;   // Mid-write crashes, detected + skipped.
  for (size_t epoch = 0; epoch < s.epochs && ingest_ok; ++epoch) {
    for (size_t batch = 0; batch < s.batches_per_epoch; ++batch) {
      Rng rng(SplitMix64(HashCombine(HashCombine(s.seed, kEventsTag),
                                     epoch * 131 + batch)));
      std::vector<size_t> keys;
      std::vector<double> deltas;
      keys.reserve(s.events_per_batch + hot.size());
      deltas.reserve(s.events_per_batch + hot.size());
      for (size_t i = 0; i < s.events_per_batch; ++i) {
        keys.push_back(rng.NextBounded(s.n));
        deltas.push_back(rng.NextGaussian());
      }
      for (size_t j = 0; j < hot.size(); ++j) {
        keys.push_back(hot[j]);
        deltas.push_back(200.0 + 40.0 * static_cast<double>(j));
      }
      Status st = client.Ingest(kTenant, keys, deltas);
      if (!st.ok()) {
        ctx->Violate("serve: framed ingest failed: " + st.ToString());
        ingest_ok = false;
        break;
      }
      generated += keys.size();
    }
    if (!ingest_ok) break;
    Result<uint64_t> advanced = client.AdvanceTo(kTenant, epoch + 1);
    if (!advanced.ok()) {
      ctx->Violate("serve: framed advance failed: " +
                   advanced.status().ToString());
      ingest_ok = false;
      break;
    }
    std::shared_ptr<const serve::SketchSnapshot> snapshot =
        detector.Snapshot();
    if (snapshot == nullptr) {
      ctx->Violate("serve: no snapshot after closing epoch " + U64(epoch));
    } else if (detector.current_epoch() - snapshot->last_epoch > 1) {
      ctx->Violate("serve: snapshot staleness " +
                   U64(detector.current_epoch() - snapshot->last_epoch) +
                   " epochs after closing epoch " + U64(epoch) +
                   " (bound is 1)");
    }
    // Crash-consistent checkpoint stream: fetch after every close. A fetch
    // torn by the mid-checkpoint-crash section must fail the checksum
    // (DataLoss) — the previous good checkpoint stays installed; anything
    // that arrives intact must decode structurally clean.
    Result<std::string> ckpt = client.FetchCheckpoint(kTenant);
    if (ckpt.ok()) {
      Result<serve::DecodedCheckpoint> decoded =
          serve::DecodeCheckpoint(ckpt.Value());
      if (decoded.ok()) {
        last_checkpoint = ckpt.Value();
        ++checkpoints_good;
      } else {
        ctx->Violate("serve: intact checkpoint failed to decode: " +
                     decoded.status().ToString());
      }
    } else if (ckpt.status().code() == StatusCode::kDataLoss) {
      ++checkpoints_torn;
    } else {
      ctx->Violate("serve: checkpoint fetch failed: " +
                   ckpt.status().ToString());
    }
  }
  // Storm over: disarm Buggify, unstall everything, and close one more
  // epoch — every deferred event must drain and be counted exactly once.
  BuggifyDisable();
  for (uint32_t shard = 0; shard < s.num_shards; ++shard) {
    Status st = detector.SetShardStalled(shard, false);
    if (!st.ok()) {
      ctx->Violate("serve: unstall failed: " + st.ToString());
    }
  }
  if (ingest_ok) {
    Result<uint64_t> drained =
        client.AdvanceTo(kTenant, static_cast<uint64_t>(s.epochs) + 1);
    if (!drained.ok()) {
      ctx->Violate("serve: framed drain advance failed: " +
                   drained.status().ToString());
    }
  } else {
    detector.AdvanceEpoch();
  }
  if (detector.backlog_events() != 0) {
    ctx->Violate("serve: backlog not drained after unstall-all (" +
                 U64(detector.backlog_events()) + " events stuck)");
  }
  const uint64_t ingested = telemetry.counter("serve.ingest.events");
  const uint64_t replayed = telemetry.counter("serve.ingest.replayed_events");
  if (ingest_ok && ingested + replayed != generated) {
    ctx->Violate("serve: event conservation: folded " + U64(ingested) +
                 " + replayed " + U64(replayed) + " != generated " +
                 U64(generated));
  }

  std::shared_ptr<const serve::SketchSnapshot> final_snapshot =
      detector.Snapshot();
  if (final_snapshot != nullptr) {
    ctx->digest.Mix(final_snapshot->version);
    ctx->digest.Mix(final_snapshot->last_epoch);
    ctx->digest.Mix(final_snapshot->first_epoch);
    ctx->digest.Mix(final_snapshot->events);
    ctx->digest.Mix(final_snapshot->stalled_shards.size());
    for (uint32_t shard : final_snapshot->stalled_shards) {
      ctx->digest.Mix(static_cast<uint64_t>(shard));
    }
    for (double v : final_snapshot->y) ctx->digest.Mix(v);
  }
  ctx->digest.Mix(ingested);
  ctx->digest.Mix(replayed);
  ctx->digest.Mix(telemetry.counter("serve.ingest.deferred_events"));
  ctx->digest.Mix(telemetry.counter("serve.shard.stalls"));
  ctx->digest.Mix(telemetry.counter("serve.shard.unstalls"));
  ctx->digest.Mix(telemetry.counter("serve.snapshots"));
  ctx->digest.Mix(checkpoints_good);
  ctx->digest.Mix(checkpoints_torn);
  ctx->digest.Mix(client.stats().retries);
  ctx->digest.Mix(server.frames_rejected());

  // Restart drill: with Buggify disarmed the post-storm checkpoint must
  // arrive intact, and restoring it must republish the live detector's
  // snapshot bit-identically (version, epoch range, y bytes).
  if (ingest_ok) {
    Result<std::string> final_ckpt = client.FetchCheckpoint(kTenant);
    if (!final_ckpt.ok()) {
      ctx->Violate("serve: post-storm checkpoint fetch failed: " +
                   final_ckpt.status().ToString());
    } else {
      serve::StreamingDetectorOptions restore_opts = opts;
      restore_opts.telemetry = nullptr;  // Keep conservation counters clean.
      Result<std::unique_ptr<serve::StreamingDetector>> restored =
          serve::RestoreDetector(final_ckpt.Value(), restore_opts);
      if (!restored.ok()) {
        ctx->Violate("serve: checkpoint restore failed: " +
                     restored.status().ToString());
      } else {
        std::shared_ptr<const serve::SketchSnapshot> live =
            detector.Snapshot();
        std::shared_ptr<const serve::SketchSnapshot> rest =
            restored.Value()->Snapshot();
        const bool identical =
            live != nullptr && rest != nullptr &&
            rest->version == live->version &&
            rest->first_epoch == live->first_epoch &&
            rest->last_epoch == live->last_epoch &&
            rest->events == live->events &&
            rest->stalled_shards == live->stalled_shards &&
            rest->y.size() == live->y.size() &&
            std::memcmp(rest->y.data(), live->y.data(),
                        live->y.size() * sizeof(double)) == 0;
        if (!identical) {
          ctx->Violate(
              "serve: restored checkpoint snapshot is not bit-identical to "
              "the live detector's");
        }
      }
    }
  }

  // Final query over the wire; it must match the in-process answer bit for
  // bit (the digest is fed from the framed rows, so any divergence between
  // deployment surface and library also breaks replay determinism).
  Result<outlier::OutlierSet> query = detector.QueryOutliers(s.k);
  Result<serve::StreamingQueryResult> framed = client.Query(
      "SELECT Outlier " + U64(s.k) + " SUM(score), key FROM " + kTenant +
      " GROUP BY key");
  if (!query.ok()) {
    ctx->Violate("serve: final query failed: " + query.status().ToString());
  } else if (!framed.ok()) {
    ctx->Violate("serve: framed final query failed: " +
                 framed.status().ToString());
  } else {
    const outlier::OutlierSet& want = query.Value();
    const serve::StreamingQueryResult& got = framed.Value();
    bool rows_equal = got.rows.size() == want.outliers.size() &&
                      got.mode == want.mode;
    for (size_t i = 0; rows_equal && i < got.rows.size(); ++i) {
      rows_equal =
          got.rows[i].group_key ==
              std::to_string(want.outliers[i].key_index) &&
          got.rows[i].value == want.outliers[i].value &&
          got.rows[i].rank_score == want.outliers[i].divergence;
    }
    if (!rows_equal) {
      ctx->Violate(
          "serve: framed query answer diverged from the in-process answer");
    }
    ctx->digest.Mix(got.mode);
    ctx->digest.Mix(got.rows.size());
    for (const query::ResultRow& row : got.rows) {
      ctx->digest.Mix(row.group_key);
      ctx->digest.Mix(row.value);
      ctx->digest.Mix(row.rank_score);
    }
    ctx->digest.Mix(got.snapshot_version);
    ctx->digest.Mix(got.staleness_epochs);
  }
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

ScenarioOutcome ExecuteScenario(const Scenario& scenario,
                                size_t thread_limit) {
  Ctx ctx;
  const size_t previous_limit = GetParallelismLimit();
  SetParallelismLimit(thread_limit);
  if (scenario.buggify) {
    BuggifyEnable(scenario.buggify_options);
  } else {
    BuggifyDisable();
  }
  switch (scenario.kind) {
    case ScenarioKind::kCs:
      RunCsScenario(scenario, &ctx);
      break;
    case ScenarioKind::kAdaptiveGrow:
    case ScenarioKind::kTwoPhase:
      RunAdaptiveScenario(scenario, &ctx);
      break;
    case ScenarioKind::kAmp:
      RunAmpScenario(scenario, &ctx);
      break;
    case ScenarioKind::kKPlusDelta:
      RunKPlusDeltaScenario(scenario, &ctx);
      break;
    case ScenarioKind::kThresholdTopK:
    case ScenarioKind::kTputTopK:
      RunTopKScenario(scenario, &ctx);
      break;
    case ScenarioKind::kMapReduce:
      RunMapReduceScenario(scenario, &ctx);
      break;
    case ScenarioKind::kServe:
      RunServeScenario(scenario, &ctx);
      break;
  }
  if (scenario.buggify) {
    // The section report (activation, hits, fires) is itself part of the
    // deterministic outcome: a thread-schedule-dependent fault decision
    // shows up here as a digest mismatch even if the answer survived it.
    // Sections this scenario never hit are skipped — the registry is leaky
    // across scenarios, so unhit entries registered by an earlier scenario
    // in the same process would make the digest depend on sweep
    // composition rather than the seed alone.
    for (const BuggifySectionReport& section : BuggifyReport()) {
      if (section.hits == 0) continue;
      ctx.digest.Mix(section.name);
      ctx.digest.Mix(section.activated);
      ctx.digest.Mix(section.hits);
      ctx.digest.Mix(section.fires);
    }
  }
  BuggifyDisable();
  SetParallelismLimit(previous_limit);

  ScenarioOutcome outcome;
  outcome.digest = ctx.digest.value();
  outcome.violations = std::move(ctx.violations);
  outcome.summary = ScenarioToString(scenario);
  return outcome;
}

}  // namespace

ScenarioOutcome RunScenario(const Scenario& scenario) {
  ScenarioOutcome outcome = ExecuteScenario(scenario, scenario.thread_limit);
  // The whole run must be a pure function of the seed: re-execute at a
  // different parallelism limit and require the identical digest.
  const size_t alternate = scenario.thread_limit == 1 ? 8 : 1;
  ScenarioOutcome replay = ExecuteScenario(scenario, alternate);
  if (replay.digest != outcome.digest) {
    outcome.violations.push_back(
        "nondeterministic: digest " + Hex(outcome.digest) + " at limit " +
        U64(scenario.thread_limit) + " != " + Hex(replay.digest) +
        " at limit " + U64(alternate));
  }
  if (replay.violations != outcome.violations) {
    outcome.violations.push_back(
        "nondeterministic: violation set differs across thread limits (" +
        U64(outcome.violations.size()) + " vs " +
        U64(replay.violations.size()) + ")");
  }
  return outcome;
}

SweepResult RunSweep(const SweepOptions& options) {
  SweepResult result;
  uint64_t combined = 0x73776565705f3030ULL;
  std::map<std::string, size_t> by_kind;
  std::string verbose_lines;
  for (size_t i = 0; i < options.scenarios; ++i) {
    const uint64_t seed = options.seed0 + i;
    const Scenario scenario = ScenarioFromSeed(seed);
    const ScenarioOutcome outcome = RunScenario(scenario);
    ++result.ran;
    ++by_kind[ScenarioKindName(scenario.kind)];
    combined = HashCombine(combined, outcome.digest);
    if (options.verbose) {
      verbose_lines += "  seed=" + U64(seed) + " digest=" +
                       Hex(outcome.digest) +
                       (outcome.ok() ? " ok " : " FAIL ") + outcome.summary +
                       "\n";
    }
    if (!outcome.ok()) {
      ++result.failed;
      for (const std::string& violation : outcome.violations) {
        result.failures.push_back("seed=" + U64(seed) + " [" +
                                  outcome.summary + "] " + violation);
      }
      result.failures.push_back("  replay: csod sim --replay " + U64(seed));
    }
  }
  result.combined_digest = combined;

  std::string report;
  report += "scenarios: " + U64(result.ran) + " (seed0=" +
            U64(options.seed0) + ")\n";
  for (const auto& [kind, count] : by_kind) {
    report += "  " + kind + ": " + U64(count) + "\n";
  }
  report += "combined digest: " + Hex(result.combined_digest) + "\n";
  if (options.verbose) report += verbose_lines;
  if (result.failed == 0) {
    report += "all scenarios passed\n";
  } else {
    report += U64(result.failed) + " scenario(s) FAILED:\n";
    for (const std::string& failure : result.failures) {
      report += "  " + failure + "\n";
    }
  }
  result.report = std::move(report);
  return result;
}

ScenarioOutcome ReplaySeed(uint64_t seed, std::string* out_scenario_line) {
  const Scenario scenario = ScenarioFromSeed(seed);
  if (out_scenario_line != nullptr) {
    *out_scenario_line = ScenarioToString(scenario);
  }
  return RunScenario(scenario);
}

}  // namespace csod::sim
