#include "sim/buggify.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/random.h"

namespace csod::sim {

namespace {

// Purpose tags keep the activation and firing hash streams independent
// (the same discipline as FaultInjector's per-fault tags).
constexpr uint64_t kActivateTag = 0x6163746976617465ULL;  // "activate"
constexpr uint64_t kFireTag = 0x66697265ULL;              // "fire"

// FNV-1a over the section name: the stable section id entering the hash
// chain. Names, not addresses, so the id survives relinking and ASLR.
uint64_t SectionId(const char* name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
    h *= 0x100000001b3ULL;
  }
  return h;
}

// One registered section. Entries are never freed (the registry is
// intentionally leaky): sections are a small fixed set of named program
// points, and stable pointers let Fire() run without holding the
// registry lock across the decision.
struct Section {
  uint64_t id = 0;
  std::atomic<bool> activated{false};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
  std::atomic<uint64_t> ordinal{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Section*> sections;  // Leaky by design.
  BuggifyOptions options;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// The armed options, mirrored into atomics so Fire() never takes the
// registry lock for them. Written only by BuggifyEnable (which must not
// race in-flight sections, per the header contract).
std::atomic<uint64_t> g_seed{1};
// Probabilities stored as raw bit patterns (atomic<double> needs no more).
std::atomic<uint64_t> g_fire_p_bits{0};

double FireProbability() {
  const uint64_t bits = g_fire_p_bits.load(std::memory_order_relaxed);
  double p;
  static_assert(sizeof(p) == sizeof(bits));
  __builtin_memcpy(&p, &bits, sizeof(p));
  return p;
}

bool ComputeActivated(const BuggifyOptions& options, uint64_t section_id) {
  const uint64_t word =
      SplitMix64(HashCombine(HashCombine(options.seed, kActivateTag),
                             section_id));
  return ToUnitDouble(word) < options.activation_probability;
}

Section* Lookup(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sections.find(name);
  if (it != registry.sections.end()) return it->second;
  Section* section = new Section();  // Leaky; see Section comment.
  section->id = SectionId(name);
  section->activated.store(ComputeActivated(registry.options, section->id),
                           std::memory_order_relaxed);
  registry.sections.emplace(name, section);
  return section;
}

bool FireImpl(Section* section, uint64_t ordinal) {
  section->hits.fetch_add(1, std::memory_order_relaxed);
  if (!section->activated.load(std::memory_order_relaxed)) return false;
  const uint64_t word = SplitMix64(
      HashCombine(HashCombine(g_seed.load(std::memory_order_relaxed),
                              kFireTag),
                  HashCombine(section->id, ordinal)));
  if (ToUnitDouble(word) >= FireProbability()) return false;
  section->fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace

void BuggifyEnable(const BuggifyOptions& options) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.options = options;
  g_seed.store(options.seed, std::memory_order_relaxed);
  uint64_t bits;
  const double p = options.fire_probability;
  __builtin_memcpy(&bits, &p, sizeof(bits));
  g_fire_p_bits.store(bits, std::memory_order_relaxed);
  // Re-decide activation and restart every ordinal stream, so two enables
  // with identical options replay the identical fault schedule.
  for (auto& [name, section] : registry.sections) {
    section->activated.store(ComputeActivated(options, section->id),
                             std::memory_order_relaxed);
    section->hits.store(0, std::memory_order_relaxed);
    section->fires.store(0, std::memory_order_relaxed);
    section->ordinal.store(0, std::memory_order_relaxed);
  }
  internal::g_buggify_enabled.store(true, std::memory_order_relaxed);
}

void BuggifyDisable() {
  internal::g_buggify_enabled.store(false, std::memory_order_relaxed);
}

BuggifyOptions BuggifyCurrentOptions() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.options;
}

std::vector<BuggifySectionReport> BuggifyReport() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<BuggifySectionReport> report;
  report.reserve(registry.sections.size());
  for (const auto& [name, section] : registry.sections) {
    BuggifySectionReport entry;
    entry.name = name;
    entry.activated = section->activated.load(std::memory_order_relaxed);
    entry.hits = section->hits.load(std::memory_order_relaxed);
    entry.fires = section->fires.load(std::memory_order_relaxed);
    report.push_back(std::move(entry));
  }
  // std::map already iterates in name order; keep the guarantee explicit.
  std::sort(report.begin(), report.end(),
            [](const BuggifySectionReport& a, const BuggifySectionReport& b) {
              return a.name < b.name;
            });
  return report;
}

uint64_t BuggifyFireCount() {
  uint64_t total = 0;
  for (const BuggifySectionReport& entry : BuggifyReport()) {
    total += entry.fires;
  }
  return total;
}

namespace internal {

bool Fire(const char* section) {
  Section* s = Lookup(section);
  return FireImpl(s, s->ordinal.fetch_add(1, std::memory_order_relaxed));
}

bool FireAt(const char* section, uint64_t ordinal) {
  return FireImpl(Lookup(section), ordinal);
}

}  // namespace internal

}  // namespace csod::sim
