#ifndef CSOD_SIM_BUGGIFY_H_
#define CSOD_SIM_BUGGIFY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace csod::sim {

/// Configuration of one simulation run's fault-section behavior
/// (FoundationDB's Buggify knobs: activation picks *which* sections are
/// live this run, firing picks *which hits* of a live section misbehave).
struct BuggifyOptions {
  /// Master simulation seed. Activation and firing are pure functions of
  /// (seed, section id, invocation ordinal), so a failure replays
  /// bit-identically from this one value.
  uint64_t seed = 1;
  /// Probability that a named section is active at all this run.
  double activation_probability = 0.25;
  /// Probability that one hit of an active section fires.
  double fire_probability = 0.25;
};

/// Per-section accounting since the last BuggifyEnable.
struct BuggifySectionReport {
  std::string name;
  bool activated = false;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Arms every CSOD_BUGGIFY site with `options` and resets all per-section
/// ordinals and counts, so the decision stream restarts from scratch —
/// calling Enable twice with the same options replays the identical fault
/// schedule. Must not race in-flight sections (enable between runs, not
/// during one).
void BuggifyEnable(const BuggifyOptions& options);

/// Disarms every site; CSOD_BUGGIFY collapses back to one inline branch.
void BuggifyDisable();

/// Options of the current (or most recent) enable.
BuggifyOptions BuggifyCurrentOptions();

/// Every section that has ever been hit, sorted by name, with counts
/// since the last enable.
std::vector<BuggifySectionReport> BuggifyReport();

/// Total fires across all sections since the last enable.
uint64_t BuggifyFireCount();

namespace internal {

/// The one word every disabled CSOD_BUGGIFY site reads. Relaxed is
/// correct: enable/disable happen between simulation runs, never
/// concurrently with the sections they arm.
inline std::atomic<bool> g_buggify_enabled{false};

/// Slow path (enabled runs only): ordinal = the section's own hit
/// counter. Deterministic only at serially executed sites (coordinator
/// loops); parallel sites must use FireAt.
bool Fire(const char* section);

/// Slow path with a caller-supplied ordinal — a pure function of
/// (seed, section, ordinal), independent of thread schedule. Use from
/// parallel sites (map task index, shard id, epoch).
bool FireAt(const char* section, uint64_t ordinal);

}  // namespace internal

/// True while a simulation has sections armed.
inline bool BuggifyEnabled() {
  return internal::g_buggify_enabled.load(std::memory_order_relaxed);
}

}  // namespace csod::sim

/// Marks a fault-injection point. Evaluates to true when the simulation
/// wants this hit to misbehave; in normal operation (Buggify disabled)
/// the whole expression is one relaxed load and one predictable branch —
/// cheap enough for release hot paths. The ordinal is the section's own
/// hit counter, so use this form only at serially executed sites.
#define CSOD_BUGGIFY(section)            \
  (::csod::sim::BuggifyEnabled() &&      \
   ::csod::sim::internal::Fire(section))

/// CSOD_BUGGIFY for sites executed by pool threads: the caller supplies a
/// deterministic ordinal (task index, shard id, epoch) so the decision is
/// independent of the thread schedule and parallelism limit.
#define CSOD_BUGGIFY_AT(section, ordinal) \
  (::csod::sim::BuggifyEnabled() &&       \
   ::csod::sim::internal::FireAt(section, (ordinal)))

#endif  // CSOD_SIM_BUGGIFY_H_
