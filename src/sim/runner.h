#ifndef CSOD_SIM_RUNNER_H_
#define CSOD_SIM_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace csod::sim {

/// Outcome of one scenario: a deterministic digest over everything the
/// run produced (answers, byte accounting, fault/Buggify event counts)
/// plus any invariant violations found. `digest` is the value the
/// double-run and cross-thread-limit comparisons diff.
struct ScenarioOutcome {
  uint64_t digest = 0;
  std::vector<std::string> violations;
  std::string summary;  ///< One-line per-scenario result.

  bool ok() const { return violations.empty(); }
};

/// Runs one scenario and checks its invariants:
///  - telemetry `comm.bytes.*` == CommStats, per phase and in total;
///  - fault-free (no exclusion) CS-family answers are exact;
///  - a degraded cs run is bit-identical to a clean run over the
///    surviving sub-cluster, and a sparse (canary) exclusion obeys the
///    THEORY.md §6 precision/recall envelope;
///  - baseline protocols under Buggify traffic perturbations return the
///    byte-for-byte unperturbed answer with >= the unperturbed bytes;
///  - MapReduce output under Buggify re-execution / buffer pressure is
///    bit-identical to the unperturbed run;
///  - serve snapshot staleness <= 1 epoch (sliding) and no event is lost
///    across stall/unstall storms;
///  - the whole outcome digest is identical when re-executed at a
///    different parallelism limit.
/// The caller owns Buggify state transitions only through this function:
/// it enables/disables around the run per the scenario.
ScenarioOutcome RunScenario(const Scenario& scenario);

/// Sweep configuration (the sim driver and `csod sim` front ends).
struct SweepOptions {
  uint64_t seed0 = 1;      ///< First scenario seed; scenarios use seed0+i.
  size_t scenarios = 200;  ///< Number of scenarios to run.
  bool verbose = false;    ///< Per-scenario summary lines in the report.
};

/// Result of a sweep: per-kind counts, failures (each carrying its
/// one-line replay recipe), and the combined digest over all outcomes —
/// the value scripts/run_simulation.sh diffs across two runs.
struct SweepResult {
  size_t ran = 0;
  size_t failed = 0;
  uint64_t combined_digest = 0;
  std::vector<std::string> failures;
  std::string report;

  bool ok() const { return failed == 0; }
};

SweepResult RunSweep(const SweepOptions& options);

/// Replays one seed (the recipe printed by a failing run) and returns its
/// outcome; `out_scenario_line` (optional) receives the scenario string.
ScenarioOutcome ReplaySeed(uint64_t seed, std::string* out_scenario_line);

}  // namespace csod::sim

#endif  // CSOD_SIM_RUNNER_H_
