#ifndef CSOD_SKETCH_COUNT_MIN_H_
#define CSOD_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace csod::sketch {

/// \brief Count-Min sketch (Cormode & Muthukrishnan): a d x w counter
/// array with per-row hashing; `Estimate` upper-bounds the true count for
/// non-negative updates.
///
/// Included as a representative of the traditional local-sketching
/// baselines of Section 7.2. Like the CS measurement it is *linear*
/// (sketches merge by addition), but unlike CS recovery it has no notion
/// of a global mode: every estimate carries the full bias, which is what
/// makes it unusable for the distributed outlier problem (ablation bench
/// `ablation_sketches`).
class CountMinSketch {
 public:
  /// d rows of w counters, hashed from `seed`. width/depth must be > 0.
  static Result<CountMinSketch> Create(size_t width, size_t depth,
                                       uint64_t seed);

  /// Adds `delta` (>= 0 for the min-estimate guarantee) to `key`.
  void Update(uint64_t key, double delta);

  /// Point estimate: min over rows. Over-estimates by at most
  /// ||x||_1 / width with probability 1 - 2^-depth (non-negative data).
  double Estimate(uint64_t key) const;

  /// Merges another sketch (same shape and seed required).
  Status Merge(const CountMinSketch& other);

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  /// Counters transmitted when shipping this sketch.
  size_t num_counters() const { return table_.size(); }

 private:
  CountMinSketch(size_t width, size_t depth, uint64_t seed)
      : width_(width), depth_(depth), seed_(seed),
        table_(width * depth, 0.0) {}

  size_t Bucket(size_t row, uint64_t key) const;

  size_t width_;
  size_t depth_;
  uint64_t seed_;
  std::vector<double> table_;
};

}  // namespace csod::sketch

#endif  // CSOD_SKETCH_COUNT_MIN_H_
