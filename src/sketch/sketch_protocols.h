#ifndef CSOD_SKETCH_SKETCH_PROTOCOLS_H_
#define CSOD_SKETCH_SKETCH_PROTOCOLS_H_

#include <cstdint>

#include "dist/protocol.h"
#include "dist/topk_protocols.h"
#include "sketch/count_sketch.h"

namespace csod::sketch {

/// Configuration of the CountSketch-based protocols. The per-node
/// communication is width * depth counters of 8 bytes — directly
/// comparable to the CS protocol's M measurements.
struct CountSketchProtocolOptions {
  size_t width = 0;
  size_t depth = 5;
  uint64_t seed = 1;
};

/// \brief Traditional-sketch baseline for the distributed outlier problem
/// (Section 7.2's "lossy compression / sketches" discussion).
///
/// Every node builds a local CountSketch of its slice; sketches are linear
/// so the aggregator merges them exactly, then estimates every key,
/// takes the median estimate as the mode, and ranks keys by divergence.
/// On mode-dominated data the estimates carry ~ |b|·sqrt(N/width) noise,
/// which buries moderate outliers — the failure mode that motivates the
/// paper's CS approach.
class CountSketchOutlierProtocol final : public dist::OutlierProtocol {
 public:
  explicit CountSketchOutlierProtocol(CountSketchProtocolOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const dist::Cluster& cluster, size_t k,
                                  dist::CommStats* comm) override;
  std::string name() const override { return "CountSketch"; }

 private:
  CountSketchProtocolOptions options_;
};

/// Distributed top-k via merged CountSketches: estimates every key of the
/// key space from the merged sketch and returns the k largest estimates.
/// Valid for any-signed data; approximate.
Result<dist::TopKRunResult> RunCountSketchTopK(
    const dist::Cluster& cluster, size_t k,
    const CountSketchProtocolOptions& options, dist::CommStats* comm);

}  // namespace csod::sketch

#endif  // CSOD_SKETCH_SKETCH_PROTOCOLS_H_
