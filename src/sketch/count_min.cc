#include "sketch/count_min.h"

#include <algorithm>

#include "common/random.h"

namespace csod::sketch {

Result<CountMinSketch> CountMinSketch::Create(size_t width, size_t depth,
                                              uint64_t seed) {
  if (width == 0 || depth == 0) {
    return Status::InvalidArgument(
        "CountMinSketch: width and depth must be > 0");
  }
  return CountMinSketch(width, depth, seed);
}

size_t CountMinSketch::Bucket(size_t row, uint64_t key) const {
  return static_cast<size_t>(
      HashCombine(HashCombine(seed_, row), key) % width_);
}

void CountMinSketch::Update(uint64_t key, double delta) {
  for (size_t row = 0; row < depth_; ++row) {
    table_[row * width_ + Bucket(row, key)] += delta;
  }
}

double CountMinSketch::Estimate(uint64_t key) const {
  double best = table_[Bucket(0, key)];
  for (size_t row = 1; row < depth_; ++row) {
    best = std::min(best, table_[row * width_ + Bucket(row, key)]);
  }
  return best;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_ ||
      other.seed_ != seed_) {
    return Status::InvalidArgument(
        "CountMinSketch::Merge: incompatible sketch shape or seed");
  }
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  return Status::OK();
}

}  // namespace csod::sketch
