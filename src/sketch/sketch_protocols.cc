#include "sketch/sketch_protocols.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace csod::sketch {

namespace {

// Builds the merged global sketch from all node slices, accounting one
// 8-byte counter per table cell per node.
Result<CountSketch> MergedSketch(const dist::Cluster& cluster,
                                 const CountSketchProtocolOptions& options,
                                 dist::CommStats* comm) {
  if (options.width == 0 || options.depth == 0) {
    return Status::InvalidArgument(
        "CountSketch protocol: width and depth must be > 0");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("CountSketch protocol: empty cluster");
  }
  comm->BeginRound();
  CSOD_ASSIGN_OR_RETURN(
      CountSketch merged,
      CountSketch::Create(options.width, options.depth, options.seed));
  for (dist::NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    CSOD_ASSIGN_OR_RETURN(
        CountSketch local,
        CountSketch::Create(options.width, options.depth, options.seed));
    for (size_t j = 0; j < slice->indices.size(); ++j) {
      local.Update(slice->indices[j], slice->values[j]);
    }
    CSOD_RETURN_NOT_OK(merged.Merge(local));
    comm->Account("sketch-counters", local.num_counters(),
                  dist::kMeasurementBytes);
  }
  return merged;
}

}  // namespace

Result<outlier::OutlierSet> CountSketchOutlierProtocol::Run(
    const dist::Cluster& cluster, size_t k, dist::CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument(
        "CountSketchOutlierProtocol: comm must not be null");
  }
  CSOD_ASSIGN_OR_RETURN(CountSketch merged,
                        MergedSketch(cluster, options_, comm));

  const size_t n = cluster.key_space_size();
  std::vector<double> estimates(n);
  for (size_t key = 0; key < n; ++key) {
    estimates[key] = merged.Estimate(key);
  }

  // Mode estimate: median of all point estimates (the majority of keys sit
  // at the mode, so the median is a robust center even under noise).
  std::vector<double> sorted = estimates;
  std::nth_element(sorted.begin(), sorted.begin() + n / 2, sorted.end());
  const double mode = sorted[n / 2];

  outlier::OutlierSet result;
  result.mode = mode;
  for (size_t key = 0; key < n; ++key) {
    const double divergence = std::fabs(estimates[key] - mode);
    if (divergence == 0.0) continue;
    result.outliers.push_back(outlier::Outlier{key, estimates[key], divergence});
  }
  std::sort(result.outliers.begin(), result.outliers.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.divergence != b.divergence) {
                return a.divergence > b.divergence;
              }
              return a.key_index < b.key_index;
            });
  if (result.outliers.size() > k) result.outliers.resize(k);
  return result;
}

Result<dist::TopKRunResult> RunCountSketchTopK(
    const dist::Cluster& cluster, size_t k,
    const CountSketchProtocolOptions& options, dist::CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument("RunCountSketchTopK: comm must not be null");
  }
  CSOD_ASSIGN_OR_RETURN(CountSketch merged,
                        MergedSketch(cluster, options, comm));
  const size_t n = cluster.key_space_size();
  std::vector<outlier::Outlier> all;
  all.reserve(n);
  for (size_t key = 0; key < n; ++key) {
    const double estimate = merged.Estimate(key);
    all.push_back(outlier::Outlier{key, estimate, estimate});
  }
  std::sort(all.begin(), all.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key_index < b.key_index;
            });
  if (all.size() > k) all.resize(k);
  dist::TopKRunResult result;
  result.top = std::move(all);
  return result;
}

}  // namespace csod::sketch
