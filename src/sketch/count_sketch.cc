#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/random.h"

namespace csod::sketch {

Result<CountSketch> CountSketch::Create(size_t width, size_t depth,
                                        uint64_t seed) {
  if (width == 0 || depth == 0) {
    return Status::InvalidArgument("CountSketch: width and depth must be > 0");
  }
  return CountSketch(width, depth, seed);
}

size_t CountSketch::Bucket(size_t row, uint64_t key) const {
  return static_cast<size_t>(
      HashCombine(HashCombine(seed_, row * 2), key) % width_);
}

double CountSketch::Sign(size_t row, uint64_t key) const {
  return (HashCombine(HashCombine(seed_, row * 2 + 1), key) & 1) ? 1.0 : -1.0;
}

void CountSketch::Update(uint64_t key, double delta) {
  for (size_t row = 0; row < depth_; ++row) {
    table_[row * width_ + Bucket(row, key)] += Sign(row, key) * delta;
  }
}

double CountSketch::Estimate(uint64_t key) const {
  std::vector<double> estimates(depth_);
  for (size_t row = 0; row < depth_; ++row) {
    estimates[row] = Sign(row, key) * table_[row * width_ + Bucket(row, key)];
  }
  std::nth_element(estimates.begin(), estimates.begin() + depth_ / 2,
                   estimates.end());
  if (depth_ % 2 == 1) return estimates[depth_ / 2];
  const double upper = estimates[depth_ / 2];
  const double lower =
      *std::max_element(estimates.begin(), estimates.begin() + depth_ / 2);
  return 0.5 * (lower + upper);
}

Status CountSketch::Merge(const CountSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_ ||
      other.seed_ != seed_) {
    return Status::InvalidArgument(
        "CountSketch::Merge: incompatible sketch shape or seed");
  }
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  return Status::OK();
}

}  // namespace csod::sketch
