#ifndef CSOD_SKETCH_COUNT_SKETCH_H_
#define CSOD_SKETCH_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace csod::sketch {

/// \brief CountSketch (Charikar, Chen & Farach-Colton [11]): a d x w
/// counter array with per-row hash + random sign; `Estimate` is the median
/// of the signed row estimates — unbiased and valid for negative updates.
///
/// The strongest of the traditional linear-sketch baselines for this
/// paper's setting (it handles the real-valued data the outlier problem
/// needs). Its per-key noise is ~ ||x||₂ / sqrt(width), and on
/// mode-dominated data ||x||₂ ≈ |b|·sqrt(N) — so at communication budgets
/// where BOMP is already exact, CountSketch estimates drown in the mode's
/// energy (ablation bench `ablation_sketches`).
class CountSketch {
 public:
  /// d rows of w counters, hashed from `seed`.
  static Result<CountSketch> Create(size_t width, size_t depth,
                                    uint64_t seed);

  /// Adds `delta` (any sign) to `key`.
  void Update(uint64_t key, double delta);

  /// Unbiased point estimate: median over rows of sign * counter.
  double Estimate(uint64_t key) const;

  /// Merges another sketch (same shape and seed required).
  Status Merge(const CountSketch& other);

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  size_t num_counters() const { return table_.size(); }

 private:
  CountSketch(size_t width, size_t depth, uint64_t seed)
      : width_(width), depth_(depth), seed_(seed),
        table_(width * depth, 0.0) {}

  size_t Bucket(size_t row, uint64_t key) const;
  double Sign(size_t row, uint64_t key) const;

  size_t width_;
  size_t depth_;
  uint64_t seed_;
  std::vector<double> table_;
};

}  // namespace csod::sketch

#endif  // CSOD_SKETCH_COUNT_SKETCH_H_
