#include "sketch/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace csod::sketch {

Result<HyperLogLog> HyperLogLog::Create(uint32_t precision, uint64_t seed) {
  if (precision < 4 || precision > 16) {
    return Status::InvalidArgument(
        "HyperLogLog: precision must be in [4, 16]");
  }
  return HyperLogLog(precision, seed);
}

void HyperLogLog::Add(uint64_t key) {
  const uint64_t h = SplitMix64(key ^ SplitMix64(seed_));
  const size_t bucket = static_cast<size_t>(h >> (64 - precision_));
  // Rank of the first set bit in the remaining stream (1-based).
  const uint64_t rest = (h << precision_) | (uint64_t{1} << (precision_ - 1));
  const uint8_t rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[bucket] = std::max(registers_[bucket], rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  // Standard alpha constants.
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }

  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  double estimate = alpha * m * m / inverse_sum;

  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zero_registers > 0) {
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  }
  return estimate;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_ || other.seed_ != seed_) {
    return Status::InvalidArgument(
        "HyperLogLog::Merge: incompatible precision or seed");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

}  // namespace csod::sketch
