#ifndef CSOD_SKETCH_HYPERLOGLOG_H_
#define CSOD_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace csod::sketch {

/// \brief HyperLogLog cardinality estimator (the modern descendant of the
/// probabilistic counting / LogLog estimators the paper cites for the F0
/// problem in Section 7.1 [17, 21]).
///
/// Estimates the number of distinct keys (the sparsity F0 of the
/// aggregate) with ~1.04/sqrt(2^precision) relative error using 2^precision
/// registers. Registers merge by max, so per-node sketches combine exactly
/// — the distributed F0 protocol is one round of 2^precision bytes per
/// node. Useful in this library for estimating the data's sparsity s
/// before choosing the measurement size M.
class HyperLogLog {
 public:
  /// precision in [4, 16]: 2^precision single-byte registers.
  static Result<HyperLogLog> Create(uint32_t precision, uint64_t seed = 0);

  /// Observes a key (idempotent per distinct key).
  void Add(uint64_t key);

  /// Current cardinality estimate (with small-range linear counting).
  double Estimate() const;

  /// Merges another sketch (same precision and seed required).
  Status Merge(const HyperLogLog& other);

  uint32_t precision() const { return precision_; }
  uint64_t seed() const { return seed_; }
  size_t num_registers() const { return registers_.size(); }

 private:
  HyperLogLog(uint32_t precision, uint64_t seed)
      : precision_(precision), seed_(seed),
        registers_(size_t{1} << precision, 0) {}

  uint32_t precision_;
  uint64_t seed_;
  std::vector<uint8_t> registers_;
};

}  // namespace csod::sketch

#endif  // CSOD_SKETCH_HYPERLOGLOG_H_
