#include "la/incremental_qr.h"

#include <cmath>
#include <string>

#include "la/vector_ops.h"

namespace csod::la {

namespace {
// Relative threshold below which the orthogonal component is considered
// zero (the candidate column is linearly dependent).
constexpr double kDependenceTolerance = 1e-12;
}  // namespace

Result<double> IncrementalQr::AppendColumn(const std::vector<double>& a) {
  if (a.size() != m_) {
    return Status::InvalidArgument(
        "AppendColumn: column size " + std::to_string(a.size()) +
        " != m " + std::to_string(m_));
  }
  const double original_norm = Norm2(a);
  std::vector<double> v = a;
  std::vector<double> coeffs(q_.size(), 0.0);

  // Modified Gram-Schmidt with one re-orthogonalization pass.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < q_.size(); ++i) {
      const double c = Dot(q_[i], v);
      coeffs[i] += c;
      Axpy(-c, q_[i], &v);
    }
  }

  const double residual_norm = Norm2(v);
  if (residual_norm <= kDependenceTolerance * std::max(1.0, original_norm)) {
    return 0.0;  // Linearly dependent; not appended.
  }

  Scale(1.0 / residual_norm, &v);
  q_.push_back(std::move(v));
  coeffs.push_back(residual_norm);
  r_.push_back(std::move(coeffs));
  return residual_norm;
}

Result<std::vector<double>> IncrementalQr::ApplyQTransposed(
    const std::vector<double>& y) const {
  std::vector<double> out;
  CSOD_RETURN_NOT_OK(ApplyQTransposedInto(y, &out));
  return out;
}

Status IncrementalQr::ApplyQTransposedInto(const std::vector<double>& y,
                                           std::vector<double>* out) const {
  if (y.size() != m_) {
    return Status::InvalidArgument("ApplyQTransposed: vector size " +
                                   std::to_string(y.size()) + " != m " +
                                   std::to_string(m_));
  }
  out->resize(q_.size());
  for (size_t i = 0; i < q_.size(); ++i) (*out)[i] = Dot(q_[i], y);
  return Status::OK();
}

Result<std::vector<double>> IncrementalQr::Project(
    const std::vector<double>& y) const {
  std::vector<double> qty;
  std::vector<double> out;
  CSOD_RETURN_NOT_OK(ProjectInto(y, &qty, &out));
  return out;
}

Status IncrementalQr::ProjectInto(const std::vector<double>& y,
                                  std::vector<double>* qty_scratch,
                                  std::vector<double>* out) const {
  CSOD_RETURN_NOT_OK(ApplyQTransposedInto(y, qty_scratch));
  out->assign(m_, 0.0);
  for (size_t i = 0; i < q_.size(); ++i) Axpy((*qty_scratch)[i], q_[i], out);
  return Status::OK();
}

Result<std::vector<double>> IncrementalQr::SolveLeastSquares(
    const std::vector<double>& y) const {
  CSOD_ASSIGN_OR_RETURN(std::vector<double> rhs, ApplyQTransposed(y));
  const size_t r = q_.size();
  std::vector<double> z(r, 0.0);
  // Back substitution on R z = rhs; R is upper triangular with column j
  // stored in r_[j] (entries 0..j).
  for (size_t ii = r; ii-- > 0;) {
    double acc = rhs[ii];
    for (size_t j = ii + 1; j < r; ++j) acc -= r_[j][ii] * z[j];
    const double diag = r_[ii][ii];
    if (diag == 0.0) {
      return Status::Internal("SolveLeastSquares: zero diagonal in R");
    }
    z[ii] = acc / diag;
  }
  return z;
}

}  // namespace csod::la
