#ifndef CSOD_LA_INCREMENTAL_QR_H_
#define CSOD_LA_INCREMENTAL_QR_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace csod::la {

/// \brief Incremental thin QR factorization by modified Gram-Schmidt.
///
/// Maintains `A = Q R` for a tall matrix `A (m x r)` whose columns arrive
/// one at a time — exactly the access pattern of OMP, which appends the
/// best-matching dictionary column each iteration and re-projects the
/// measurement onto the selected subspace.
///
/// `Q` holds `r` orthonormal columns of length `m`; `R` is `r x r` upper
/// triangular. One re-orthogonalization pass ("twice is enough",
/// Kahan/Parlett) keeps Q numerically orthonormal, which is the same remedy
/// the paper applies to its Gram-Schmidt QR precision problem (Section 5).
class IncrementalQr {
 public:
  /// Factorization for column length `m` (the measurement size M).
  explicit IncrementalQr(size_t m) : m_(m) {}

  /// Number of columns appended so far (the rank r, assuming no rejects).
  size_t size() const { return q_.size(); }
  /// Column length m.
  size_t column_length() const { return m_; }

  /// Appends column `a` (size m) to the factorization.
  ///
  /// Returns the norm of the component of `a` orthogonal to the current
  /// column space. A return value of (numerically) zero means `a` is
  /// linearly dependent on the existing columns; in that case the column is
  /// NOT appended and the factorization is unchanged.
  Result<double> AppendColumn(const std::vector<double>& a);

  /// Computes `Q^T y` (size r). y.size() must equal m.
  Result<std::vector<double>> ApplyQTransposed(
      const std::vector<double>& y) const;

  /// `Q^T y` written into `out` (resized to size()) without allocating.
  Status ApplyQTransposedInto(const std::vector<double>& y,
                              std::vector<double>* out) const;

  /// Projection of `y` onto the column space: `Q Q^T y` (size m).
  Result<std::vector<double>> Project(const std::vector<double>& y) const;

  /// Project without allocating: `out` receives Q Q^T y (resized to m) and
  /// `qty_scratch` receives Q^T y (resized to size()). The allocation-free
  /// form the OMP iteration loop uses — it calls Project once per selected
  /// atom with buffers reused across iterations.
  Status ProjectInto(const std::vector<double>& y,
                     std::vector<double>* qty_scratch,
                     std::vector<double>* out) const;

  /// Least-squares solve: coefficients `z` (size r) minimizing
  /// `||A z - y||_2`, via `R z = Q^T y` back-substitution.
  Result<std::vector<double>> SolveLeastSquares(
      const std::vector<double>& y) const;

  /// The i-th orthonormal basis column (size m).
  const std::vector<double>& q(size_t i) const { return q_[i]; }

  /// Entry R(i, j) of the upper-triangular factor, j >= i.
  double r_entry(size_t i, size_t j) const { return r_[j][i]; }

 private:
  size_t m_;
  // Orthonormal columns.
  std::vector<std::vector<double>> q_;
  // r_[j] is column j of R: coefficients of original column j in the Q
  // basis, length j + 1.
  std::vector<std::vector<double>> r_;
};

}  // namespace csod::la

#endif  // CSOD_LA_INCREMENTAL_QR_H_
