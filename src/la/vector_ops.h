#ifndef CSOD_LA_VECTOR_OPS_H_
#define CSOD_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace csod::la {

/// Dense vectors throughout the library are plain `std::vector<double>`;
/// this header provides the BLAS-1 kernels the CS recovery path needs.

/// Dot product of two equally sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm2(const std::vector<double>& a);

/// Squared Euclidean norm.
double Norm2Squared(const std::vector<double>& a);

/// y += alpha * x (sizes must match).
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>* x);

/// Element-wise a - b.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// out = a - b without allocating (out is resized to a.size(); aliasing out
/// with a or b is fine). The allocation-free form the OMP iteration loop
/// uses for its residual update.
void SubtractInto(const std::vector<double>& a, const std::vector<double>& b,
                  std::vector<double>* out);

/// Element-wise a + b.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// ||a - b||_2.
double DistanceL2(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace csod::la

#endif  // CSOD_LA_VECTOR_OPS_H_
