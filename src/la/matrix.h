#ifndef CSOD_LA_MATRIX_H_
#define CSOD_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace csod::la {

/// \brief Dense row-major matrix of doubles.
///
/// Small and deliberately simple: the CS recovery path only needs
/// construction, element access, matrix-vector products, and column
/// extraction. Sizes are `size_t`; all accessors are bounds-unchecked in
/// release builds (checked via `At`).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Unchecked element access.
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Checked element access; returns OutOfRange on bad indices.
  Result<double> At(size_t r, size_t c) const;

  /// Pointer to the start of row `r` (row-major layout).
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }

  /// y = A * x. Returns InvalidArgument when x.size() != cols().
  Result<std::vector<double>> Multiply(const std::vector<double>& x) const;

  /// y = A^T * x. Returns InvalidArgument when x.size() != rows().
  Result<std::vector<double>> MultiplyTransposed(
      const std::vector<double>& x) const;

  /// Copy of column `c`.
  std::vector<double> Column(size_t c) const;

  /// Sets column `c` from `v` (v.size() must equal rows()).
  Status SetColumn(size_t c, const std::vector<double>& v);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Raw storage (row-major), for kernels that want direct access.
  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace csod::la

#endif  // CSOD_LA_MATRIX_H_
