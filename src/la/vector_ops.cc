#include "la/vector_ops.h"

#include <cmath>

namespace csod::la {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2Squared(const std::vector<double>& a) { return Dot(a, a); }

double Norm2(const std::vector<double>& a) { return std::sqrt(Norm2Squared(a)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (double& v : *x) v *= alpha;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void SubtractInto(const std::vector<double>& a, const std::vector<double>& b,
                  std::vector<double>* out) {
  out->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) (*out)[i] = a[i] - b[i];
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double DistanceL2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace csod::la
