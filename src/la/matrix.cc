#include "la/matrix.h"

#include <cmath>
#include <string>

namespace csod::la {

Result<double> Matrix::At(size_t r, size_t c) const {
  if (r >= rows_ || c >= cols_) {
    return Status::OutOfRange("Matrix::At(" + std::to_string(r) + ", " +
                              std::to_string(c) + ") out of " +
                              std::to_string(rows_) + "x" +
                              std::to_string(cols_));
  }
  return data_[r * cols_ + c];
}

Result<std::vector<double>> Matrix::Multiply(
    const std::vector<double>& x) const {
  if (x.size() != cols_) {
    return Status::InvalidArgument("Multiply: vector size " +
                                   std::to_string(x.size()) +
                                   " != cols " + std::to_string(cols_));
  }
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Result<std::vector<double>> Matrix::MultiplyTransposed(
    const std::vector<double>& x) const {
  if (x.size() != rows_) {
    return Status::InvalidArgument("MultiplyTransposed: vector size " +
                                   std::to_string(x.size()) +
                                   " != rows " + std::to_string(rows_));
  }
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

std::vector<double> Matrix::Column(size_t c) const {
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Status Matrix::SetColumn(size_t c, const std::vector<double>& v) {
  if (c >= cols_) {
    return Status::OutOfRange("SetColumn: column " + std::to_string(c) +
                              " out of " + std::to_string(cols_));
  }
  if (v.size() != rows_) {
    return Status::InvalidArgument("SetColumn: vector size " +
                                   std::to_string(v.size()) + " != rows " +
                                   std::to_string(rows_));
  }
  for (size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
  return Status::OK();
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace csod::la
