#ifndef CSOD_DIST_CS_PROTOCOL_H_
#define CSOD_DIST_CS_PROTOCOL_H_

#include <cstdint>
#include <memory>

#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "dist/protocol.h"

namespace csod::dist {

/// Configuration of the CS-based protocol.
struct CsProtocolOptions {
  /// Measurement size M (the per-node communication budget, in tuples).
  size_t m = 0;
  /// The consensus seed all nodes derive Φ0 from.
  uint64_t seed = 1;
  /// BOMP iteration budget R; 0 selects the paper's default f(k) ∈ [2k,5k].
  size_t iterations = 0;
  /// Dense-cache budget for the measurement matrix.
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
};

/// \brief The paper's CS-based single-round protocol (Figure 2):
/// local compression → measurement transmission → global measurement →
/// BOMP recovery → k-outlier extraction.
class CsOutlierProtocol final : public OutlierProtocol {
 public:
  explicit CsOutlierProtocol(CsProtocolOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override { return "BOMP"; }

  /// Full recovery diagnostics of the last Run() (mode trace, iterations).
  const cs::BompResult& last_recovery() const { return last_recovery_; }

 private:
  CsProtocolOptions options_;
  cs::BompResult last_recovery_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_CS_PROTOCOL_H_
