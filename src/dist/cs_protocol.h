#ifndef CSOD_DIST_CS_PROTOCOL_H_
#define CSOD_DIST_CS_PROTOCOL_H_

#include <cstdint>
#include <memory>

#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "dist/fault.h"
#include "dist/protocol.h"

namespace csod::dist {

/// Configuration of the CS-based protocol.
struct CsProtocolOptions {
  /// Measurement size M (the per-node communication budget, in tuples).
  size_t m = 0;
  /// The consensus seed all nodes derive Φ0 from.
  uint64_t seed = 1;
  /// BOMP iteration budget R; 0 selects the paper's default f(k) ∈ [2k,5k].
  size_t iterations = 0;
  /// Dense-cache budget for the measurement matrix.
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Fault plan applied to the measurement transmissions. The default is a
  /// perfect network: no injector is attached and the run is bit-identical
  /// to the pre-fault protocol.
  FaultPlan faults;
  /// Coordinator retry/timeout policy for missing measurements. A retry
  /// re-requests only the missing y_l — M tuples, not the node's data.
  RetryPolicy retry;
  /// When true (default), nodes that exhaust the retry budget are excluded
  /// and the answer is recovered from the partial sum Σ_{alive} y_l (sound
  /// by CS linearity; the excluded set is reported in last_collection()).
  /// When false such a run fails with FailedPrecondition instead.
  bool allow_degraded = true;
};

/// \brief The paper's CS-based single-round protocol (Figure 2):
/// local compression → measurement transmission → global measurement →
/// BOMP recovery → k-outlier extraction.
class CsOutlierProtocol final : public OutlierProtocol {
 public:
  explicit CsOutlierProtocol(CsProtocolOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override { return "BOMP"; }

  /// Full recovery diagnostics of the last Run() (mode trace, iterations).
  const cs::BompResult& last_recovery() const { return last_recovery_; }

  /// Fault-tolerance outcome of the last Run(): excluded slices, retry
  /// count, degraded flag. All-empty on a fault-free run.
  const CollectionReport& last_collection() const { return last_collection_; }

 private:
  CsProtocolOptions options_;
  cs::BompResult last_recovery_;
  CollectionReport last_collection_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_CS_PROTOCOL_H_
