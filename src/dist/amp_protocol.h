#ifndef CSOD_DIST_AMP_PROTOCOL_H_
#define CSOD_DIST_AMP_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "cs/amp.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "dist/fault.h"
#include "dist/protocol.h"

namespace csod::dist {

/// Configuration of the distributed-AMP protocol.
struct DistributedAmpOptions {
  /// Measurement size M (same budget semantics as CsProtocolOptions::m).
  size_t m = 0;
  /// Consensus seed.
  uint64_t seed = 1;
  /// AMP iteration budget per round's recovery (0 = the AMP default).
  size_t iterations = 0;
  /// Streaming rounds budget. The final round completes the transfer
  /// (every unsent component ships), so the protocol's answer can never
  /// be worse than AMP on the exact aggregate of the surviving nodes.
  size_t max_rounds = 5;
  /// Per-round threshold decay: τ_{r+1} = decay · τ_r, with τ_1 = decay
  /// times the largest per-node |y_l|_∞. Smaller decay ships more per
  /// round (fewer rounds); larger decay probes with less data first.
  double threshold_decay = 0.3;
  /// Stop as soon as the detected top-k is identical in two consecutive
  /// rounds (the same practical criterion as AdaptiveCsProtocol).
  bool accept_on_stable_topk = true;
  /// AMP soft-threshold multiplier (see AmpOptions).
  double threshold_multiplier = 1.4;
  /// Dense-cache budget for the recovery matrix.
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Fault plan applied to every round's state transmissions.
  FaultPlan faults;
  /// Coordinator retry/timeout policy per round.
  RetryPolicy retry;
  /// When true (default), nodes that exhaust the retry budget are dropped
  /// and their partial state is removed from the aggregate (CS linearity
  /// makes the partial sum sound); when false such a run fails.
  bool allow_degraded = true;
};

/// Diagnostics of one streaming round.
struct AmpRound {
  /// Threshold τ_r applied this round (0 for the completing flush).
  double threshold = 0.0;
  /// Key-value state tuples shipped cluster-wide this round.
  uint64_t tuples = 0;
  bool topk_stable = false;
  bool accepted = false;
};

/// \brief Distributed AMP (after Han et al., PAPERS.md): the recovery-side
/// counterpart of the adaptive sensing protocols. Instead of every node
/// shipping its full M-vector y_l in one round, nodes stream *thresholded
/// per-round state*: round r ships only the not-yet-sent components of
/// y_l with |y_l[i]| ≥ τ_r as (row, value) tuples, the coordinator folds
/// them into an approximate aggregate ŷ and runs the biased AMP engine on
/// it. The τ schedule decays geometrically, so ŷ → y and the per-round
/// perturbation ‖ŷ − y‖_∞ ≤ τ_r behaves exactly like the bounded noise
/// AMP's state-evolution threshold θ_t = λσ̂_t already absorbs. The
/// protocol accepts when the detected top-k is stable across consecutive
/// rounds — typically before most of y has shipped — trading more rounds
/// for fewer bytes per round (and usually fewer bytes in total; see
/// bench/bench_recovery for the measured crossover against the one-shot
/// CS protocol).
///
/// Every transmission is routed through `Channel`/`CollectWithRetry`, so
/// the retry, fault-injection, and degraded-mode machinery (and the
/// `comm.*` telemetry) apply unchanged. A node that exhausts its retry
/// budget in any round is excluded from then on and its already-folded
/// partial state is subtracted from ŷ — sound by linearity, same
/// semantics as the other CS protocols (docs/FAULT_MODEL.md).
class DistributedAmpProtocol final : public OutlierProtocol {
 public:
  explicit DistributedAmpProtocol(DistributedAmpOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override { return "DistAMP"; }

  /// Per-round diagnostics of the last Run().
  const std::vector<AmpRound>& rounds() const { return rounds_; }
  /// Recovery of the accepted (or final) round.
  const cs::BompResult& last_recovery() const { return last_recovery_; }
  /// Fault-tolerance outcome of the last Run().
  const CollectionReport& last_collection() const { return last_collection_; }

 private:
  DistributedAmpOptions options_;
  std::vector<AmpRound> rounds_;
  cs::BompResult last_recovery_;
  CollectionReport last_collection_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_AMP_PROTOCOL_H_
