#ifndef CSOD_DIST_ADAPTIVE_CS_PROTOCOL_H_
#define CSOD_DIST_ADAPTIVE_CS_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "cs/solver.h"
#include "dist/fault.h"
#include "dist/protocol.h"

namespace csod::dist {

/// How the adaptive protocol spends its measurement budget.
enum class AdaptiveStrategy {
  /// Grow M geometrically until the recovery certifies itself (the
  /// original behavior; incremental rows, log(M/M₀) rounds).
  kGrowM,
  /// Li & Haupt-style two-phase sense-then-refine (PAPERS.md): a coarse
  /// pass with M₁ ≪ M *locates* candidate outlier columns, the
  /// coordinator broadcasts that candidate support S, and a second pass
  /// senses only the |S| restricted columns with M₂ = |S| + margin rows —
  /// the refine solve is then an overdetermined least squares, exact in
  /// the noiseless model. Total bytes per node are (M₁ + M₂)·S_M plus
  /// |S| broadcast key ids, well below a fixed-M run at matched
  /// precision/recall (docs/THEORY.md §8 gives the budget bound;
  /// bench/bench_recovery measures it on the Fig 7 workload).
  kTwoPhase,
};

/// Configuration of the adaptive CS protocol.
struct AdaptiveCsOptions {
  /// First-round measurement size.
  size_t initial_m = 64;
  /// Hard cap; the protocol reports its best effort when it is reached.
  size_t max_m = 4096;
  /// Multiplicative growth per round (must be > 1).
  double growth = 2.0;
  /// Consensus seed.
  uint64_t seed = 1;
  /// BOMP iteration budget per attempt; 0 = the paper's f(k).
  size_t iterations = 0;
  /// Accept the recovery when the relative residual drops below this
  /// (an exact recovery of sparse-like data leaves ~0 residual; requires
  /// `iterations` past the data's sparsity to fire).
  double acceptance_residual = 1e-6;
  /// Also accept when the detected top-k key set is identical in two
  /// consecutive rounds — the practical criterion when the iteration
  /// budget R = f(k) targets only the top-k, not full support recovery.
  bool accept_on_stable_topk = true;
  /// Dense-cache budget for the recovery matrix.
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Fault plan applied to every round's incremental-row transmissions
  /// (default: perfect network, bit-identical to the pre-fault protocol).
  FaultPlan faults;
  /// Coordinator retry/timeout policy per round.
  RetryPolicy retry;
  /// When true (default), a node that exhausts the retry budget in some
  /// round is excluded from that round on — its measurement prefix can no
  /// longer be extended — and recovery proceeds from the partial sum of
  /// the surviving nodes. When false such a run fails instead.
  bool allow_degraded = true;

  /// Budget strategy; the knobs below apply to kTwoPhase only.
  AdaptiveStrategy strategy = AdaptiveStrategy::kGrowM;
  /// Coarse-pass measurement size M₁. Locating the top-k among the
  /// candidates is much easier than recovering exact values, so M₁ can
  /// sit well below the fixed-M budget the one-shot protocol needs.
  size_t locate_m = 256;
  /// Candidate support size |S| = support_factor · k (clamped to what the
  /// locate recovery actually produced). Over-selecting buys locate
  /// recall: a true outlier merely has to *appear* in S, not rank top-k.
  size_t support_factor = 4;
  /// Refine-pass rows M₂ = |S| + refine_margin (refine_m overrides when
  /// nonzero). M₂ > |S| makes the restricted system overdetermined, so
  /// the refine values are least-squares exact rather than CS estimates.
  size_t refine_margin = 16;
  size_t refine_m = 0;
  /// Recovery engine for the locate pass (the refine pass is a plain
  /// least squares and has no engine choice).
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;
};

/// Diagnostics of one adaptive round.
struct AdaptiveRound {
  size_t m = 0;
  double relative_residual = 0.0;
  /// Detected top-k matched the previous round's.
  bool topk_stable = false;
  bool accepted = false;
  /// "grow" for the geometric strategy; "locate" / "refine" for the
  /// two-phase strategy's passes.
  const char* phase = "grow";
};

/// \brief Adaptive-measurement extension of the paper's protocol: pick M
/// without knowing the data's sparsity.
///
/// The fixed-M protocol needs M = O(s^a log N), but s is workload
/// dependent (the paper reads 300/650/610 off Figure 9 after the fact).
/// This variant starts small and grows M geometrically until the BOMP
/// residual certifies the recovery. The key trick is the measurement
/// matrix's *row-prefix property*: entry (i, j) is a pure function of
/// (seed, j, i), so when M grows from M1 to M2 every node only computes
/// and transmits the `M2 - M1` new rows (the already-shipped prefix is
/// rescaled by sqrt(M1/M2) locally at the aggregator — no retransmission).
/// Total communication is therefore O(M_final) tuples per node, at the
/// price of log(M_final / M_initial) rounds; the paper's single-round
/// protocol is the degenerate case initial_m == max_m.
class AdaptiveCsProtocol final : public OutlierProtocol {
 public:
  explicit AdaptiveCsProtocol(AdaptiveCsOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override {
    return options_.strategy == AdaptiveStrategy::kTwoPhase ? "TwoPhaseCS"
                                                            : "AdaptiveBOMP";
  }

  /// Per-round diagnostics of the last Run().
  const std::vector<AdaptiveRound>& rounds() const { return rounds_; }
  /// Recovery of the accepted (or final best-effort) round.
  const cs::BompResult& last_recovery() const { return last_recovery_; }
  /// Fault-tolerance outcome of the last Run(); excluded nodes accumulate
  /// across rounds (a failed node cannot rejoin — see AdaptiveCsOptions).
  const CollectionReport& last_collection() const { return last_collection_; }

 private:
  Result<outlier::OutlierSet> RunGrow(const Cluster& cluster, size_t k,
                                      CommStats* comm);
  Result<outlier::OutlierSet> RunTwoPhase(const Cluster& cluster, size_t k,
                                          CommStats* comm);

  AdaptiveCsOptions options_;
  std::vector<AdaptiveRound> rounds_;
  cs::BompResult last_recovery_;
  CollectionReport last_collection_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_ADAPTIVE_CS_PROTOCOL_H_
