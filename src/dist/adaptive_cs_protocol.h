#ifndef CSOD_DIST_ADAPTIVE_CS_PROTOCOL_H_
#define CSOD_DIST_ADAPTIVE_CS_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "dist/fault.h"
#include "dist/protocol.h"

namespace csod::dist {

/// Configuration of the adaptive CS protocol.
struct AdaptiveCsOptions {
  /// First-round measurement size.
  size_t initial_m = 64;
  /// Hard cap; the protocol reports its best effort when it is reached.
  size_t max_m = 4096;
  /// Multiplicative growth per round (must be > 1).
  double growth = 2.0;
  /// Consensus seed.
  uint64_t seed = 1;
  /// BOMP iteration budget per attempt; 0 = the paper's f(k).
  size_t iterations = 0;
  /// Accept the recovery when the relative residual drops below this
  /// (an exact recovery of sparse-like data leaves ~0 residual; requires
  /// `iterations` past the data's sparsity to fire).
  double acceptance_residual = 1e-6;
  /// Also accept when the detected top-k key set is identical in two
  /// consecutive rounds — the practical criterion when the iteration
  /// budget R = f(k) targets only the top-k, not full support recovery.
  bool accept_on_stable_topk = true;
  /// Dense-cache budget for the recovery matrix.
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Fault plan applied to every round's incremental-row transmissions
  /// (default: perfect network, bit-identical to the pre-fault protocol).
  FaultPlan faults;
  /// Coordinator retry/timeout policy per round.
  RetryPolicy retry;
  /// When true (default), a node that exhausts the retry budget in some
  /// round is excluded from that round on — its measurement prefix can no
  /// longer be extended — and recovery proceeds from the partial sum of
  /// the surviving nodes. When false such a run fails instead.
  bool allow_degraded = true;
};

/// Diagnostics of one adaptive round.
struct AdaptiveRound {
  size_t m = 0;
  double relative_residual = 0.0;
  /// Detected top-k matched the previous round's.
  bool topk_stable = false;
  bool accepted = false;
};

/// \brief Adaptive-measurement extension of the paper's protocol: pick M
/// without knowing the data's sparsity.
///
/// The fixed-M protocol needs M = O(s^a log N), but s is workload
/// dependent (the paper reads 300/650/610 off Figure 9 after the fact).
/// This variant starts small and grows M geometrically until the BOMP
/// residual certifies the recovery. The key trick is the measurement
/// matrix's *row-prefix property*: entry (i, j) is a pure function of
/// (seed, j, i), so when M grows from M1 to M2 every node only computes
/// and transmits the `M2 - M1` new rows (the already-shipped prefix is
/// rescaled by sqrt(M1/M2) locally at the aggregator — no retransmission).
/// Total communication is therefore O(M_final) tuples per node, at the
/// price of log(M_final / M_initial) rounds; the paper's single-round
/// protocol is the degenerate case initial_m == max_m.
class AdaptiveCsProtocol final : public OutlierProtocol {
 public:
  explicit AdaptiveCsProtocol(AdaptiveCsOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override { return "AdaptiveBOMP"; }

  /// Per-round diagnostics of the last Run().
  const std::vector<AdaptiveRound>& rounds() const { return rounds_; }
  /// Recovery of the accepted (or final best-effort) round.
  const cs::BompResult& last_recovery() const { return last_recovery_; }
  /// Fault-tolerance outcome of the last Run(); excluded nodes accumulate
  /// across rounds (a failed node cannot rejoin — see AdaptiveCsOptions).
  const CollectionReport& last_collection() const { return last_collection_; }

 private:
  AdaptiveCsOptions options_;
  std::vector<AdaptiveRound> rounds_;
  cs::BompResult last_recovery_;
  CollectionReport last_collection_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_ADAPTIVE_CS_PROTOCOL_H_
