#include "dist/amp_protocol.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "common/random.h"
#include "cs/compressor.h"
#include "la/vector_ops.h"
#include "outlier/outlier.h"
#include "sim/buggify.h"

namespace csod::dist {

Result<outlier::OutlierSet> DistributedAmpProtocol::Run(const Cluster& cluster,
                                                        size_t k,
                                                        CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument(
        "DistributedAmpProtocol: comm must not be null");
  }
  if (options_.m == 0) {
    return Status::InvalidArgument("DistributedAmpProtocol: m must be > 0");
  }
  if (options_.max_rounds == 0) {
    return Status::InvalidArgument(
        "DistributedAmpProtocol: max_rounds must be > 0");
  }
  if (options_.threshold_decay <= 0.0 || options_.threshold_decay >= 1.0) {
    return Status::InvalidArgument(
        "DistributedAmpProtocol: threshold_decay must be in (0, 1)");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("DistributedAmpProtocol: empty cluster");
  }

  obs::TraceSpan run_span(telemetry_, "protocol.damp");
  rounds_.clear();
  last_recovery_ = cs::BompResult{};
  const size_t m = options_.m;
  const size_t n = cluster.key_space_size();

  const FaultInjector injector(options_.faults);
  Channel channel(comm, options_.faults.any() ? &injector : nullptr,
                  telemetry_);
  std::vector<NodeId> alive = cluster.NodeIds();
  last_collection_ = CollectionReport{};
  last_collection_.nodes_total = alive.size();

  // Node-side state: each node sketches its slice locally; the full
  // M-vector never ships. The coordinator tracks, per node, which
  // components have arrived (`sent`) and their running partial sum
  // (`partial`) — the latter is what gets subtracted when a node is
  // excluded mid-protocol.
  cs::MeasurementMatrix matrix(m, n, options_.seed,
                               options_.cache_budget_bytes);
  cs::Compressor compressor(&matrix);
  compressor.set_telemetry(telemetry_);
  std::map<NodeId, std::vector<double>> local_y;
  std::map<NodeId, std::vector<char>> sent;
  std::map<NodeId, std::vector<double>> partial;
  for (NodeId id : alive) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    obs::TraceSpan node_span(telemetry_, "sketch.node");
    CSOD_ASSIGN_OR_RETURN(std::vector<double> y_l,
                          compressor.Compress(*slice));
    local_y.emplace(id, std::move(y_l));
    sent.emplace(id, std::vector<char>(m, 0));
    partial.emplace(id, std::vector<double>(m, 0.0));
  }

  auto drop_failed = [&](const std::vector<bool>& delivered) {
    std::vector<NodeId> still_alive;
    still_alive.reserve(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      if (delivered[i]) still_alive.push_back(alive[i]);
    }
    alive = std::move(still_alive);
  };
  auto check_degraded = [&]() -> Status {
    if (last_collection_.degraded() && !options_.allow_degraded) {
      return Status::FailedPrecondition(
          "DistributedAmpProtocol: " +
          std::to_string(last_collection_.excluded_nodes.size()) +
          " node(s) unreachable after retries and degraded mode is "
          "disabled");
    }
    if (alive.empty()) {
      return Status::FailedPrecondition(
          "DistributedAmpProtocol: every node failed — no state to "
          "aggregate");
    }
    return Status::OK();
  };

  // Round 0: every node reports its local ‖y_l‖_∞ (one value tuple) so
  // the coordinator can fix the cluster-wide threshold schedule.
  channel.BeginRound();
  drop_failed(CollectWithRetry(&channel, options_.retry, alive, "amp-norm",
                               1, kValueBytes, &last_collection_));
  CSOD_RETURN_NOT_OK(check_degraded());
  double tau0 = 0.0;
  for (NodeId id : alive) {
    for (double v : local_y[id]) tau0 = std::max(tau0, std::fabs(v));
  }

  double tau = options_.threshold_decay * tau0;
  std::vector<double> y_hat(m, 0.0);
  std::vector<size_t> previous_topk;
  for (size_t round = 1; round <= options_.max_rounds; ++round) {
    // The final round completes the transfer: every unsent component
    // ships, so the terminal answer is AMP on the exact aggregate of the
    // surviving nodes.
    const bool flush = round == options_.max_rounds;
    channel.BeginRound();
    // Broadcast τ_r to every surviving node (reliable control plane).
    channel.Control("amp-threshold", alive.size(), kValueBytes);

    std::vector<uint64_t> counts(alive.size(), 0);
    for (size_t i = 0; i < alive.size(); ++i) {
      const std::vector<double>& y_l = local_y[alive[i]];
      const std::vector<char>& sent_l = sent[alive[i]];
      for (size_t j = 0; j < m; ++j) {
        if (!sent_l[j] && (flush || std::fabs(y_l[j]) >= tau)) ++counts[i];
      }
    }
    const std::vector<bool> delivered =
        CollectWithRetry(&channel, options_.retry, alive, "amp-state",
                         counts, kKeyValueBytes, &last_collection_);
    uint64_t round_tuples = 0;
    for (size_t i = 0; i < alive.size(); ++i) {
      if (!delivered[i]) continue;  // Dropped below; partial stays stale.
      round_tuples += counts[i];
      std::vector<char>& sent_l = sent[alive[i]];
      std::vector<double>& partial_l = partial[alive[i]];
      const std::vector<double>& y_l = local_y[alive[i]];
      for (size_t j = 0; j < m; ++j) {
        if (!sent_l[j] && (flush || std::fabs(y_l[j]) >= tau)) {
          partial_l[j] = y_l[j];
          sent_l[j] = 1;
        }
      }
    }
    drop_failed(delivered);
    CSOD_RETURN_NOT_OK(check_degraded());
    // Buggify: a node dies after its state arrived but before the fold —
    // its entire running partial leaves the aggregate (the subtraction
    // path the `partial` map exists for). At least one node survives.
    if (sim::BuggifyEnabled()) {
      std::vector<NodeId> survivors;
      survivors.reserve(alive.size());
      size_t round_alive = alive.size();
      for (NodeId id : alive) {
        if (round_alive > 1 &&
            CSOD_BUGGIFY_AT("protocol.amp.midround_crash",
                            HashCombine(round, id))) {
          last_collection_.excluded_nodes.push_back(id);
          --round_alive;
          continue;
        }
        survivors.push_back(id);
      }
      alive = std::move(survivors);
    }

    // Aggregate the arrived state of the surviving nodes, folded in node
    // order (serial — deterministic at any parallelism limit).
    std::fill(y_hat.begin(), y_hat.end(), 0.0);
    for (NodeId id : alive) la::Axpy(1.0, partial[id], &y_hat);
    bool all_sent = true;
    for (NodeId id : alive) {
      const std::vector<char>& sent_l = sent[id];
      for (size_t j = 0; j < m && all_sent; ++j) {
        if (!sent_l[j]) all_sent = false;
      }
    }

    cs::AmpOptions amp;
    amp.max_iterations = options_.iterations;
    amp.threshold_multiplier = options_.threshold_multiplier;
    amp.telemetry = telemetry_;
    CSOD_ASSIGN_OR_RETURN(last_recovery_,
                          cs::RunBiasedAmp(matrix, y_hat, amp));

    const outlier::OutlierSet detected =
        outlier::KOutliersFromRecovery(last_recovery_, k);
    std::vector<size_t> topk_keys;
    topk_keys.reserve(detected.outliers.size());
    for (const auto& o : detected.outliers) topk_keys.push_back(o.key_index);
    std::sort(topk_keys.begin(), topk_keys.end());

    AmpRound diag;
    diag.threshold = flush ? 0.0 : tau;
    diag.tuples = round_tuples;
    diag.topk_stable =
        !rounds_.empty() && topk_keys == previous_topk && !topk_keys.empty();
    diag.accepted = flush || all_sent ||
                    (options_.accept_on_stable_topk && diag.topk_stable);
    rounds_.push_back(diag);
    previous_topk = std::move(topk_keys);
    if (diag.accepted) break;
    tau *= options_.threshold_decay;
  }

  return outlier::KOutliersFromRecovery(last_recovery_, k);
}

}  // namespace csod::dist
