#ifndef CSOD_DIST_FAULT_H_
#define CSOD_DIST_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dist/cluster.h"

namespace csod::dist {

/// \brief Coordinator-side retry/timeout policy for one measurement round
/// (docs/FAULT_MODEL.md, "Retry semantics").
///
/// The coordinator waits `timeout_ticks` virtual ticks for a node's message;
/// on timeout it re-requests the missing payload and waits `backoff` times
/// longer, up to `max_retries` re-requests. Exponential backoff is what lets
/// a straggler with a fixed delay eventually get through: the timeout grows
/// past any finite delay after O(log(delay)) retries.
struct RetryPolicy {
  /// Re-requests after the initial attempt (0 = no fault tolerance).
  size_t max_retries = 3;
  /// Ticks the coordinator waits for the first attempt.
  uint64_t timeout_ticks = 4;
  /// Timeout multiplier per retry (>= 1; values below 1 are treated as 1,
  /// i.e. a flat timeout — retries must never be stricter than attempt 0).
  double backoff = 2.0;

  /// The timeout applied to attempt `attempt` (0 = initial attempt):
  /// ceil(timeout_ticks * backoff^attempt), saturating at UINT64_MAX once
  /// the backed-off timeout exceeds the representable range ("wait
  /// forever"). `timeout_ticks == 0` is valid and means only zero-delay
  /// deliveries pass on attempt 0.
  uint64_t TimeoutForAttempt(size_t attempt) const;
};

/// \brief Declarative fault model of one protocol run
/// (docs/FAULT_MODEL.md, "Fault taxonomy").
///
/// All rates are per-message probabilities in [0, 1] except `crash_rate`,
/// which is a per-node probability, and `crash_nodes`, which crashes the
/// listed nodes unconditionally (the reproducible "1 of L crashed"
/// scenario). Every decision the plan induces is a pure function of
/// (seed, node, round, attempt) — see FaultInjector — so a run is
/// bit-reproducible from `seed` alone.
struct FaultPlan {
  /// Seed of the fault stream. Independent of the protocol's consensus
  /// seed: the same data can be replayed under different fault histories.
  uint64_t seed = 0;
  /// P[a message is lost in flight]. The sender's bytes are still spent.
  double drop_rate = 0.0;
  /// P[a node crashes before its first send] — it never transmits and all
  /// re-requests to it fail for the rest of the run.
  double crash_rate = 0.0;
  /// Nodes forced to crash-before-send regardless of `crash_rate`.
  std::vector<NodeId> crash_nodes;
  /// P[a message is delayed by `straggler_delay_ticks`].
  double straggler_rate = 0.0;
  /// Arrival delay of a straggling message, in virtual ticks.
  uint64_t straggler_delay_ticks = 6;
  /// P[a message is sent twice]. The coordinator dedups by (node, round,
  /// attempt); the duplicate costs bytes but cannot double-add y_l.
  double duplicate_rate = 0.0;

  /// True when any fault source is active.
  bool any() const {
    return drop_rate > 0.0 || crash_rate > 0.0 || straggler_rate > 0.0 ||
           duplicate_rate > 0.0 || !crash_nodes.empty();
  }
};

/// What the channel did to one Send attempt.
struct Delivery {
  /// The sender is dead: nothing left the node, no bytes were spent.
  bool crashed = false;
  /// The message left the node (bytes spent) but was lost in flight.
  bool dropped = false;
  /// Arrival delay in ticks (0 = immediate; straggling messages arrive
  /// late and may miss the coordinator's timeout).
  uint64_t delay_ticks = 0;
  /// A second identical copy was transmitted (and paid for).
  bool duplicated = false;

  /// True iff the message reached the coordinator within `timeout_ticks`.
  bool Arrived(uint64_t timeout_ticks) const {
    return !crashed && !dropped && delay_ticks <= timeout_ticks;
  }
};

/// Channel-side counters of injected fault events (for tests and the
/// fault-sweep bench; byte accounting stays in CommStats).
struct FaultStats {
  uint64_t attempts = 0;    ///< Send calls (per-copy, duplicates excluded).
  uint64_t crashed = 0;     ///< Attempts swallowed by a dead sender.
  uint64_t dropped = 0;     ///< Messages lost in flight.
  uint64_t delayed = 0;     ///< Messages that straggled.
  uint64_t duplicates = 0;  ///< Extra copies transmitted.
};

/// \brief Deterministic fault oracle: every decision is a pure function of
/// (plan.seed, node, round, attempt) via the SplitMix64 hash chain, so two
/// runs with the same plan see byte-identical fault histories regardless
/// of thread count, call order, or wall clock.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// The fate of attempt `attempt` of node `node`'s message in `round`.
  Delivery Decide(NodeId node, uint64_t round, uint64_t attempt) const;

  /// True iff `node` crashed before its first send (permanent for the
  /// injector's lifetime — i.e. for the protocol run).
  bool NodeCrashed(NodeId node) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  // Uniform [0,1) draw for a (purpose, node, round, attempt) tuple.
  double Unit(uint64_t purpose, NodeId node, uint64_t round,
              uint64_t attempt) const;

  FaultPlan plan_;
  std::unordered_set<NodeId> forced_crashes_;
};

/// \brief Outcome of fault-tolerant measurement collection: which slices
/// the aggregate is missing and how much retrying it took. `degraded()`
/// runs recovered from the partial sum Σ_{l ∈ alive} y_l (sound by CS
/// linearity — docs/FAULT_MODEL.md, "Degraded aggregation").
struct CollectionReport {
  /// Nodes in the cluster when collection started.
  size_t nodes_total = 0;
  /// Nodes whose y_l is missing from the aggregate (retry budget
  /// exhausted or crashed), ascending by the order they were tried.
  std::vector<NodeId> excluded_nodes;
  /// Re-request attempts across all nodes and rounds.
  uint64_t retries = 0;

  /// True iff the final answer was computed from a partial aggregate.
  bool degraded() const { return !excluded_nodes.empty(); }
};

}  // namespace csod::dist

#endif  // CSOD_DIST_FAULT_H_
