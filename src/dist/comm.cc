#include "dist/comm.h"

#include "sim/buggify.h"

namespace csod::dist {

void Channel::Mirror(const std::string& phase, uint64_t tuples,
                     uint64_t bytes_per_tuple) {
  telemetry_->AddCounter("comm.bytes." + phase, tuples * bytes_per_tuple);
  telemetry_->AddCounter("comm.tuples." + phase, tuples);
  telemetry_->AddCounter("comm.msgs." + phase);
}

Delivery Channel::Send(NodeId node, const std::string& phase, uint64_t tuples,
                       uint64_t bytes_per_tuple, uint64_t attempt) {
  const bool trace = telemetry_->enabled();
  Delivery d;
  if (injector_ != nullptr) d = injector_->Decide(node, round_, attempt);
  ++fault_stats_.attempts;
  if (d.crashed) {
    // Crash-before-send: nothing left the node, no bytes on the wire.
    ++fault_stats_.crashed;
    if (trace) telemetry_->AddCounter("fault.crashed");
    return d;
  }
  // Buggify perturbs the delivery *before* the accounting below, so every
  // extra copy or lost message flows through the same byte/telemetry
  // bookkeeping as plan-injected faults — the telemetry == CommStats
  // invariant holds by construction, not by parallel bookkeeping.
  if (!d.dropped && CSOD_BUGGIFY("comm.send.drop")) d.dropped = true;
  if (CSOD_BUGGIFY("comm.send.delay")) d.delay_ticks += 7;
  if (!d.duplicated && CSOD_BUGGIFY("comm.send.duplicate")) {
    d.duplicated = true;
  }
  stats_->Account(phase, tuples, bytes_per_tuple);
  if (trace) Mirror(phase, tuples, bytes_per_tuple);
  if (d.dropped) {
    ++fault_stats_.dropped;
    if (trace) telemetry_->AddCounter("fault.dropped");
  }
  if (d.delay_ticks > 0) {
    ++fault_stats_.delayed;
    if (trace) telemetry_->AddCounter("fault.delayed");
  }
  if (d.duplicated) {
    // The duplicate copy is real wire traffic; the coordinator dedups by
    // (node, round, attempt) so it can never double-add a measurement.
    stats_->Account(phase, tuples, bytes_per_tuple);
    if (trace) Mirror(phase, tuples, bytes_per_tuple);
    ++fault_stats_.duplicates;
    if (trace) telemetry_->AddCounter("fault.duplicates");
  }
  return d;
}

std::vector<bool> CollectWithRetry(Channel* channel, const RetryPolicy& retry,
                                   const std::vector<NodeId>& nodes,
                                   const std::string& phase, uint64_t tuples,
                                   uint64_t bytes_per_tuple,
                                   CollectionReport* report) {
  const std::vector<uint64_t> per_node(nodes.size(), tuples);
  return CollectWithRetry(channel, retry, nodes, phase, per_node,
                          bytes_per_tuple, report);
}

std::vector<bool> CollectWithRetry(
    Channel* channel, const RetryPolicy& retry,
    const std::vector<NodeId>& nodes, const std::string& phase,
    const std::vector<uint64_t>& tuples_per_node, uint64_t bytes_per_tuple,
    CollectionReport* report) {
  std::vector<bool> delivered(nodes.size(), false);
  const std::string retry_phase = phase + "-retry";
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
      if (attempt > 0) {
        // The coordinator re-requests only this node's missing payload:
        // one key tuple on the reliable control plane.
        channel->Control("retry-request", 1, kValueBytes);
        // A flaky coordinator may fire the same re-request twice; the
        // duplicate costs control bytes but must change nothing else.
        if (CSOD_BUGGIFY("comm.collect.dup_rerequest")) {
          channel->Control("retry-request", 1, kValueBytes);
        }
        if (report != nullptr) ++report->retries;
        channel->telemetry()->AddCounter("comm.retries");
      }
      const Delivery d = channel->Send(nodes[i],
                                       attempt == 0 ? phase : retry_phase,
                                       tuples_per_node[i], bytes_per_tuple,
                                       attempt);
      if (d.Arrived(retry.TimeoutForAttempt(attempt))) {
        delivered[i] = true;
        break;
      }
    }
    if (!delivered[i]) {
      if (report != nullptr) report->excluded_nodes.push_back(nodes[i]);
      channel->telemetry()->AddCounter("comm.excluded_nodes");
    }
  }
  return delivered;
}

}  // namespace csod::dist
