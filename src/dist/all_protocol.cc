#include "dist/all_protocol.h"

namespace csod::dist {

Result<outlier::OutlierSet> AllTransmitProtocol::Run(const Cluster& cluster,
                                                     size_t k,
                                                     CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument(
        "AllTransmitProtocol: comm must not be null");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("AllTransmitProtocol: empty cluster");
  }
  obs::TraceSpan run_span(telemetry_, "protocol.all");
  // ALL has no fault tolerance: perfect network.
  Channel channel(comm, /*injector=*/nullptr, telemetry_);
  channel.BeginRound();
  for (NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    if (encoding_ == AllEncoding::kVectorized) {
      channel.Send(id, "full-vector", cluster.key_space_size(), kValueBytes);
    } else {
      channel.Send(id, "kv-pairs", slice->nnz(), kKeyValueBytes);
    }
  }
  // The aggregator now has everything: exact answer.
  return outlier::ExactKOutliers(cluster.GlobalAggregate(), k);
}

}  // namespace csod::dist
