#include "dist/cluster.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace csod::dist {

namespace {

// Validates indices against the key space and rejects non-finite values
// (a NaN in one slice would silently poison the whole aggregation).
Status ValidateSlice(const cs::SparseSlice& slice, size_t key_space_size,
                     const char* op) {
  if (slice.indices.size() != slice.values.size()) {
    return Status::InvalidArgument(std::string(op) +
                                   ": slice index/value size mismatch");
  }
  for (size_t idx : slice.indices) {
    if (idx >= key_space_size) {
      return Status::OutOfRange(std::string(op) + ": key index " +
                                std::to_string(idx) + " out of key space " +
                                std::to_string(key_space_size));
    }
  }
  for (double v : slice.values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(std::string(op) +
                                     ": non-finite value in slice");
    }
  }
  return Status::OK();
}

}  // namespace

Result<NodeId> Cluster::AddNode(cs::SparseSlice slice) {
  CSOD_RETURN_NOT_OK(ValidateSlice(slice, key_space_size_, "AddNode"));
  const NodeId id = next_id_++;
  slices_.emplace(id, std::move(slice));
  return id;
}

Status Cluster::RemoveNode(NodeId id) {
  if (slices_.erase(id) == 0) {
    return Status::NotFound("RemoveNode: no node " + std::to_string(id));
  }
  return Status::OK();
}

Status Cluster::UpdateNode(NodeId id, cs::SparseSlice slice) {
  auto it = slices_.find(id);
  if (it == slices_.end()) {
    return Status::NotFound("UpdateNode: no node " + std::to_string(id));
  }
  CSOD_RETURN_NOT_OK(ValidateSlice(slice, key_space_size_, "UpdateNode"));
  it->second = std::move(slice);
  return Status::OK();
}

Result<const cs::SparseSlice*> Cluster::Slice(NodeId id) const {
  auto it = slices_.find(id);
  if (it == slices_.end()) {
    return Status::NotFound("Slice: no node " + std::to_string(id));
  }
  return &it->second;
}

std::vector<NodeId> Cluster::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(slices_.size());
  for (const auto& [id, _] : slices_) ids.push_back(id);
  return ids;
}

std::vector<double> Cluster::GlobalAggregate() const {
  return GlobalAggregateExcluding({});
}

std::vector<double> Cluster::GlobalAggregateExcluding(
    const std::vector<NodeId>& excluded) const {
  std::vector<double> x(key_space_size_, 0.0);
  for (const auto& [id, slice] : slices_) {
    if (std::find(excluded.begin(), excluded.end(), id) != excluded.end()) {
      continue;
    }
    for (size_t k = 0; k < slice.indices.size(); ++k) {
      x[slice.indices[k]] += slice.values[k];
    }
  }
  return x;
}

}  // namespace csod::dist
