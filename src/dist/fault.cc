#include "dist/fault.h"

#include <cmath>

#include "common/random.h"

namespace csod::dist {

namespace {

// Purpose tags keep the per-fault decision streams independent: a message
// that is dropped at one rate setting keeps the same straggler/duplicate
// fate, so sweeping one rate does not reshuffle the others.
constexpr uint64_t kCrashTag = 0x6372617368ULL;      // "crash"
constexpr uint64_t kDropTag = 0x64726f70ULL;         // "drop"
constexpr uint64_t kStragglerTag = 0x736c6f77ULL;    // "slow"
constexpr uint64_t kDuplicateTag = 0x64757065ULL;    // "dupe"

}  // namespace

uint64_t RetryPolicy::TimeoutForAttempt(size_t attempt) const {
  // A backoff below 1 would make retries *stricter* than the initial
  // attempt, which no caller can mean; clamp to flat timeouts.
  const double factor = backoff < 1.0 ? 1.0 : backoff;
  double timeout = static_cast<double>(timeout_ticks);
  for (size_t i = 0; i < attempt; ++i) {
    timeout *= factor;
    // Saturate instead of overflowing: past 2^63 the double->uint64_t cast
    // below is implementation-defined, and any such timeout means "wait
    // forever" anyway.
    if (timeout >= 9.2e18) return UINT64_MAX;
  }
  return static_cast<uint64_t>(std::ceil(timeout));
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  forced_crashes_.insert(plan_.crash_nodes.begin(), plan_.crash_nodes.end());
}

double FaultInjector::Unit(uint64_t purpose, NodeId node, uint64_t round,
                           uint64_t attempt) const {
  const uint64_t word = HashCombine(
      HashCombine(HashCombine(plan_.seed, purpose), HashCombine(node, round)),
      attempt);
  return ToUnitDouble(SplitMix64(word));
}

bool FaultInjector::NodeCrashed(NodeId node) const {
  if (forced_crashes_.count(node) != 0) return true;
  if (plan_.crash_rate <= 0.0) return false;
  // Crash-before-send is a per-node, per-run decision: round and attempt
  // do not enter the hash, so a crashed node stays dead on every retry.
  return Unit(kCrashTag, node, 0, 0) < plan_.crash_rate;
}

Delivery FaultInjector::Decide(NodeId node, uint64_t round,
                               uint64_t attempt) const {
  Delivery d;
  if (NodeCrashed(node)) {
    d.crashed = true;
    return d;
  }
  if (plan_.drop_rate > 0.0 &&
      Unit(kDropTag, node, round, attempt) < plan_.drop_rate) {
    d.dropped = true;
  }
  if (plan_.straggler_rate > 0.0 &&
      Unit(kStragglerTag, node, round, attempt) < plan_.straggler_rate) {
    d.delay_ticks = plan_.straggler_delay_ticks;
  }
  if (plan_.duplicate_rate > 0.0 &&
      Unit(kDuplicateTag, node, round, attempt) < plan_.duplicate_rate) {
    d.duplicated = true;
  }
  return d;
}

}  // namespace csod::dist
