#ifndef CSOD_DIST_RANDOMIZED_MAX_H_
#define CSOD_DIST_RANDOMIZED_MAX_H_

#include <cstdint>

#include "common/status.h"
#include "dist/cluster.h"
#include "dist/comm.h"

namespace csod::dist {

/// Result of a randomized distributed-max run.
struct RandomizedMaxResult {
  size_t key_index = 0;
  /// Exact aggregated value of the reported key (one final exact lookup).
  double value = 0.0;
  /// Independent repetitions used.
  size_t repetitions = 0;
};

/// Options for RunRandomizedMax.
struct RandomizedMaxOptions {
  /// Independent group-sum repetitions (the paper's related work uses
  /// O((F2/xmax^2) log N) to succeed w.h.p.; more repetitions sharpen the
  /// vote). 0 = choose 8·log2(N).
  size_t repetitions = 0;
  uint64_t seed = 1;
};

/// \brief The randomized distributed-max algorithm of Kuhn, Locher &
/// Schmid [26], as discussed in Section 7.1.
///
/// Each repetition randomly partitions the key space into two groups;
/// every node sends the two group sums of its slice (2 values); group
/// sums add across nodes, and the key with the largest aggregate tends to
/// land in the heavier group. A key's score is the number of repetitions
/// in which its group won; the highest-scoring key is returned after one
/// exact lookup. Communication: repetitions * 2 values per node — sublinear
/// in N when F2/xmax^2 is small, exactly the regime the paper contrasts
/// with. Requires non-negative values (the assumption broken by the
/// k-outlier problem over the reals).
Result<RandomizedMaxResult> RunRandomizedMax(
    const Cluster& cluster, const RandomizedMaxOptions& options,
    CommStats* comm);

}  // namespace csod::dist

#endif  // CSOD_DIST_RANDOMIZED_MAX_H_
