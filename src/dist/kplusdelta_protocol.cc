#include "dist/kplusdelta_protocol.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "sim/buggify.h"

namespace csod::dist {

Result<outlier::OutlierSet> KPlusDeltaProtocol::Run(const Cluster& cluster,
                                                    size_t k,
                                                    CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument("KPlusDeltaProtocol: comm must not be null");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("KPlusDeltaProtocol: empty cluster");
  }
  const size_t n = cluster.key_space_size();
  const size_t budget = k + options_.delta;
  size_t g = options_.g == 0 ? budget / 2 : options_.g;
  g = std::min(std::max<size_t>(g, 1), std::min(budget, n));
  const size_t report = budget > g ? budget - g : 0;

  obs::TraceSpan run_span(telemetry_, "protocol.kplusdelta");
  // All three rounds ship through the channel abstraction (no fault plan:
  // the K+δ baseline is evaluated on a perfect network).
  Channel channel(comm, /*injector=*/nullptr, telemetry_);

  // --- Round 1: common sampled keys, exact aggregation, mode estimate. ---
  channel.BeginRound();
  Rng rng(options_.seed);
  std::unordered_set<size_t> sampled_set;
  while (sampled_set.size() < g) {
    sampled_set.insert(static_cast<size_t>(rng.NextBounded(n)));
  }
  std::vector<size_t> sampled(sampled_set.begin(), sampled_set.end());

  std::unordered_map<size_t, double> exact_sampled;
  for (size_t key : sampled) exact_sampled[key] = 0.0;
  for (NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    for (size_t j = 0; j < slice->indices.size(); ++j) {
      auto it = exact_sampled.find(slice->indices[j]);
      if (it != exact_sampled.end()) it->second += slice->values[j];
    }
    channel.Send(id, "round1-sample", g, kKeyValueBytes);
  }
  double mode_estimate = 0.0;
  for (const auto& [key, value] : exact_sampled) mode_estimate += value;
  mode_estimate /= static_cast<double>(exact_sampled.size());

  // --- Round 2: broadcast the mode estimate (control plane). ---
  channel.BeginRound();
  channel.Control("round2-broadcast", cluster.num_nodes(), kValueBytes);
  // Buggify: a flaky coordinator re-broadcasts b. Receiving the same mode
  // estimate twice is idempotent at every node — only control bytes grow.
  if (CSOD_BUGGIFY("protocol.kplusdelta.rebroadcast")) {
    channel.Control("round2-broadcast", cluster.num_nodes(), kValueBytes);
  }

  // --- Round 3: per-node locally-most-divergent keys w.r.t. b. ---
  channel.BeginRound();
  std::unordered_map<size_t, double> candidate_sums;
  for (NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    // Rank this node's keys by |local value - b|.
    std::vector<size_t> order(slice->indices.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    const size_t send = std::min(report, order.size());
    std::partial_sort(order.begin(), order.begin() + send, order.end(),
                      [&](size_t a, size_t b) {
                        return std::fabs(slice->values[a] - mode_estimate) >
                               std::fabs(slice->values[b] - mode_estimate);
                      });
    for (size_t j = 0; j < send; ++j) {
      const size_t pos = order[j];
      candidate_sums[slice->indices[pos]] += slice->values[pos];
    }
    channel.Send(id, "round3-outliers", send, kKeyValueBytes);
  }

  // The exactly-aggregated sampled keys are candidates too (the aggregator
  // already paid for them).
  for (const auto& [key, value] : exact_sampled) {
    candidate_sums[key] = value;
  }

  // --- Final selection: k keys furthest from b. ---
  outlier::OutlierSet result;
  result.mode = mode_estimate;
  for (const auto& [key, value] : candidate_sums) {
    const double divergence = std::fabs(value - mode_estimate);
    if (divergence == 0.0) continue;
    result.outliers.push_back(outlier::Outlier{key, value, divergence});
  }
  std::sort(result.outliers.begin(), result.outliers.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.divergence != b.divergence) {
                return a.divergence > b.divergence;
              }
              return a.key_index < b.key_index;
            });
  if (result.outliers.size() > k) result.outliers.resize(k);
  return result;
}

}  // namespace csod::dist
