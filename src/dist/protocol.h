#ifndef CSOD_DIST_PROTOCOL_H_
#define CSOD_DIST_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "dist/cluster.h"
#include "dist/comm.h"
#include "obs/telemetry.h"
#include "outlier/outlier.h"

namespace csod::dist {

/// \brief A distributed k-outlier protocol running over a simulated
/// cluster.
///
/// Implementations account every transmitted byte in `comm` so that
/// accuracy-vs-communication trade-offs (Figures 7/8) are measured, not
/// modeled.
class OutlierProtocol {
 public:
  virtual ~OutlierProtocol() = default;

  /// Runs the protocol, returning the detected k-outlier set and recording
  /// communication in `comm` (required).
  virtual Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                          CommStats* comm) = 0;

  /// Short display name ("BOMP", "ALL", "K+delta", ...).
  virtual std::string name() const = 0;

  /// Attaches a telemetry sink for the next Run: per-phase "comm.*"
  /// counters, "protocol.*" spans, and recovery histograms. Null restores
  /// the default `obs::Telemetry::Disabled()`, which is free.
  void set_telemetry(obs::Telemetry* telemetry) {
    telemetry_ =
        telemetry != nullptr ? telemetry : obs::Telemetry::Disabled();
  }

 protected:
  /// Never null; `Disabled()` unless `set_telemetry` attached a live sink.
  obs::Telemetry* telemetry_ = obs::Telemetry::Disabled();
};

}  // namespace csod::dist

#endif  // CSOD_DIST_PROTOCOL_H_
