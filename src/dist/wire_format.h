#ifndef CSOD_DIST_WIRE_FORMAT_H_
#define CSOD_DIST_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cs/compressor.h"

namespace csod::dist {

/// \brief Binary wire format for what nodes actually transmit.
///
/// Two message kinds, matching the paper's accounting:
///  - a *measurement* message: M 64-bit doubles (the CS protocol's y_l),
///  - a *key-value* message: (32-bit key id, 64-bit value) pairs, the
///    96-bit tuples of the baselines (Section 6.1.2).
///
/// Layout (little-endian):
///   [u32 magic][u8 kind][u64 count][payload][u64 xxhash-style checksum]
///
/// The checksum covers header + payload; decoding verifies it and every
/// size field, returning InvalidArgument on any corruption. Encoded sizes
/// intentionally exceed the paper's idealized tuple counts only by the
/// fixed header, so CommStats keeps using the idealized sizes.
///
/// Non-finite payloads (NaN, ±Inf) are rejected at encode time: a sketch
/// is a sum of measurements, and one NaN would silently poison the global
/// aggregate at the coordinator. Rejecting on the sending side keeps the
/// corruption local to the node that produced it.

/// Serializes a measurement vector. InvalidArgument on non-finite entries.
Result<std::string> EncodeMeasurement(const std::vector<double>& y);

/// Parses a measurement message.
Result<std::vector<double>> DecodeMeasurement(const std::string& bytes);

/// Serializes a sparse key-value slice (32-bit key ids; keys must fit).
/// InvalidArgument on non-finite values.
Result<std::string> EncodeKeyValues(const cs::SparseSlice& slice);

/// Parses a key-value message.
Result<cs::SparseSlice> DecodeKeyValues(const std::string& bytes);

/// Exact on-wire size of an encoded measurement of length m.
size_t MeasurementWireSize(size_t m);

/// Exact on-wire size of an encoded key-value slice with nnz entries.
size_t KeyValueWireSize(size_t nnz);

}  // namespace csod::dist

#endif  // CSOD_DIST_WIRE_FORMAT_H_
