#ifndef CSOD_DIST_WIRE_FORMAT_H_
#define CSOD_DIST_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "cs/compressor.h"

namespace csod::dist {

/// \brief Binary wire format for what nodes actually transmit.
///
/// Two message kinds, matching the paper's accounting:
///  - a *measurement* message: M 64-bit doubles (the CS protocol's y_l),
///  - a *key-value* message: (32-bit key id, 64-bit value) pairs, the
///    96-bit tuples of the baselines (Section 6.1.2).
///
/// Layout (little-endian):
///   [u32 magic][u8 kind][u64 count][payload][u64 xxhash-style checksum]
///
/// The checksum covers header + payload; decoding verifies it and every
/// size field, returning InvalidArgument on any corruption. Encoded sizes
/// intentionally exceed the paper's idealized tuple counts only by the
/// fixed header, so CommStats keeps using the idealized sizes.
///
/// Non-finite payloads (NaN, ±Inf) are rejected at encode time: a sketch
/// is a sum of measurements, and one NaN would silently poison the global
/// aggregate at the coordinator. Rejecting on the sending side keeps the
/// corruption local to the node that produced it.

/// Serializes a measurement vector. InvalidArgument on non-finite entries.
Result<std::string> EncodeMeasurement(const std::vector<double>& y);

/// Parses a measurement message.
Result<std::vector<double>> DecodeMeasurement(const std::string& bytes);

/// Serializes a sparse key-value slice (32-bit key ids). InvalidArgument
/// on keys that do not fit 32 bits (never silent truncation) and on
/// non-finite values.
Result<std::string> EncodeKeyValues(const cs::SparseSlice& slice);

/// Parses a key-value message.
Result<cs::SparseSlice> DecodeKeyValues(const std::string& bytes);

/// Exact on-wire size of an encoded measurement of length m.
size_t MeasurementWireSize(size_t m);

/// Exact on-wire size of an encoded key-value slice with nnz entries.
size_t KeyValueWireSize(size_t nnz);

// ---------------------------------------------------------------------------
// Generic framing — the same envelope the two messages above use
// ([u32 magic][u8 kind][u64 count][payload][u64 checksum]), exposed so
// higher layers (the serve RPC surface, checkpoint files) can define new
// message kinds without reimplementing the checksum discipline. Kinds 1–15
// are reserved for dist payloads (1 = measurement, 2 = key-values); the
// serve layer claims 16+ (serve/net.h).
// ---------------------------------------------------------------------------

/// A validated view into a decoded frame. Borrows the frame's bytes: the
/// view is valid only while the decoded string is alive and unmodified.
struct FrameView {
  uint8_t kind = 0;
  /// The envelope's count field — element count by convention of the kind.
  uint64_t count = 0;
  const char* payload = nullptr;
  size_t payload_size = 0;
};

/// Wraps `payload` in a checksummed envelope of the given kind.
std::string EncodeFrame(uint8_t kind, uint64_t count, std::string_view payload);

/// Validates magic + checksum and returns a borrowed view of the payload.
/// Unlike Decode{Measurement,KeyValues} this cannot check count against the
/// payload size (the payload unit is kind-specific) — kind handlers must.
/// Returns DataLoss on any corruption so transports can retry exactly the
/// torn-frame case.
Result<FrameView> DecodeFrame(const std::string& bytes);

/// Exact on-wire size of a frame with a payload of `payload_size` bytes.
size_t FrameWireSize(size_t payload_size);

/// Little-endian primitive append/read helpers for composing frame
/// payloads (the same encoders the built-in messages use). Readers trust
/// the caller's bounds — validate sizes before reading.
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendF64(std::string* out, double v);
uint32_t ReadU32(const char* p);
uint64_t ReadU64(const char* p);
double ReadF64(const char* p);

}  // namespace csod::dist

#endif  // CSOD_DIST_WIRE_FORMAT_H_
