#ifndef CSOD_DIST_TOPK_PROTOCOLS_H_
#define CSOD_DIST_TOPK_PROTOCOLS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "dist/comm.h"
#include "obs/telemetry.h"
#include "outlier/outlier.h"

namespace csod::dist {

/// \brief Distributed top-k protocols from the related work (Section 7.1).
///
/// Both assume non-negative partial values, where the partial sum lower-
/// bounds the aggregate — the assumption the paper points out is violated
/// by the k-outlier problem over the reals. They are exact on their domain
/// and serve as the multi-round baselines the single-round CS approach is
/// contrasted with.

/// Result of a distributed top-k run: keys ranked by aggregated value
/// (descending) and the communication/rounds spent.
struct TopKRunResult {
  std::vector<outlier::Outlier> top;  ///< value-ranked; divergence == value.
};

/// \brief Fagin's Threshold Algorithm (TA) [19], adapted to L distributed
/// sorted lists.
///
/// Per round, every node releases its next `batch_size` largest (key,
/// local value) pairs; each newly seen key triggers random-access lookups
/// of the key's value at every other node (exact aggregate). The threshold
/// is the sum of the per-node frontier values; the algorithm stops once k
/// exact aggregates reach the threshold. Requires non-negative values.
Result<TopKRunResult> RunThresholdAlgorithmTopK(const Cluster& cluster,
                                                size_t k, size_t batch_size,
                                                CommStats* comm,
                                                obs::Telemetry* telemetry =
                                                    nullptr);

/// \brief TPUT (Cao & Wang [10]): Three-Phase Uniform Threshold top-k.
///
/// Phase 1: every node sends its local top-k; partial sums give a lower
/// bound τ on the k-th aggregate. Phase 2: the bound τ/L is broadcast and
/// every node sends all entries ≥ τ/L. Phase 3: exact values of the
/// surviving candidates are fetched and the exact top-k is returned.
/// Requires non-negative values.
Result<TopKRunResult> RunTputTopK(const Cluster& cluster, size_t k,
                                  CommStats* comm,
                                  obs::Telemetry* telemetry = nullptr);

}  // namespace csod::dist

#endif  // CSOD_DIST_TOPK_PROTOCOLS_H_
