#ifndef CSOD_DIST_ALL_PROTOCOL_H_
#define CSOD_DIST_ALL_PROTOCOL_H_

#include "dist/protocol.h"

namespace csod::dist {

/// Wire encoding used by the ALL baseline (Section 6.1.2).
enum class AllEncoding {
  /// Each node ships its full dense N-vector (N * 8 bytes). The paper's
  /// default ALL baseline — cheaper than kv pairs on its production data.
  kVectorized,
  /// Each node ships only its non-zero entries as 96-bit keyid-value
  /// pairs (nnz * 12 bytes).
  kKeyValue,
};

/// \brief Baseline ALL: every node transmits its entire slice; the
/// aggregator computes the exact global aggregate and the exact
/// k-outliers. Accuracy is perfect; communication is the yardstick
/// everything else is normalized by.
class AllTransmitProtocol final : public OutlierProtocol {
 public:
  explicit AllTransmitProtocol(AllEncoding encoding = AllEncoding::kVectorized)
      : encoding_(encoding) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override {
    return encoding_ == AllEncoding::kVectorized ? "ALL(vector)" : "ALL(kv)";
  }

 private:
  AllEncoding encoding_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_ALL_PROTOCOL_H_
