#ifndef CSOD_DIST_KPLUSDELTA_PROTOCOL_H_
#define CSOD_DIST_KPLUSDELTA_PROTOCOL_H_

#include <cstdint>

#include "dist/protocol.h"

namespace csod::dist {

/// Configuration of the K+δ baseline.
struct KPlusDeltaOptions {
  /// Extra per-node reporting budget beyond k. The per-node budget is
  /// k + delta keyid-value tuples across rounds 1 and 3.
  size_t delta = 0;
  /// Number of keys sampled in round 1 (0 = half the budget, the paper's
  /// choice: "we always choose g to be 50% of the communication cost").
  size_t g = 0;
  /// Seed for the common sampled-key set.
  uint64_t seed = 1;
};

/// \brief The three-round K+δ approximate baseline of Section 6.1.2,
/// built on the TPUT-style framework of Cao & Wang [10]:
///
/// 1. every node reports its local values for `g` common sampled keys; the
///    aggregator sums them (exact for those keys) and estimates the mode b
///    as their average;
/// 2. the aggregator broadcasts b;
/// 3. every node reports its `k + δ - g` locally-most-divergent keys
///    (w.r.t. b) as keyid-value pairs; the aggregator sums what it
///    received per key and outputs the k keys furthest from b.
///
/// On skewed partitions the local divergence ranking disagrees with the
/// global one and the per-key sums are incomplete, which is exactly the
/// large-error behaviour the paper reports for this baseline.
class KPlusDeltaProtocol final : public OutlierProtocol {
 public:
  explicit KPlusDeltaProtocol(KPlusDeltaOptions options)
      : options_(options) {}

  Result<outlier::OutlierSet> Run(const Cluster& cluster, size_t k,
                                  CommStats* comm) override;
  std::string name() const override { return "K+delta"; }

 private:
  KPlusDeltaOptions options_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_KPLUSDELTA_PROTOCOL_H_
