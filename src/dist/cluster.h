#ifndef CSOD_DIST_CLUSTER_H_
#define CSOD_DIST_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "cs/compressor.h"

namespace csod::dist {

/// Identifier of a node (data center) in the simulated cluster.
using NodeId = uint64_t;

/// \brief A shared-nothing cluster: L nodes, each holding a sparse additive
/// slice `x_l` of the global data vector (Section 2.1).
///
/// Nodes can join and leave (the paper's third challenge: "incremental
/// addition and removal of data centers involved in the aggregation").
class Cluster {
 public:
  /// Cluster over a key space of size N.
  explicit Cluster(size_t key_space_size)
      : key_space_size_(key_space_size) {}

  /// Adds a node holding `slice`; returns its id. Slice indices must be
  /// within the key space.
  Result<NodeId> AddNode(cs::SparseSlice slice);

  /// Removes a node; NotFound if absent.
  Status RemoveNode(NodeId id);

  /// Replaces the slice of an existing node (new data arriving).
  Status UpdateNode(NodeId id, cs::SparseSlice slice);

  size_t num_nodes() const { return slices_.size(); }
  size_t key_space_size() const { return key_space_size_; }

  /// The slice of node `id`, or NotFound.
  Result<const cs::SparseSlice*> Slice(NodeId id) const;

  /// Ids of all live nodes, ascending.
  std::vector<NodeId> NodeIds() const;

  /// The global aggregate `x = Σ_l x_l` as a dense vector — ground truth
  /// for tests and for the exact ALL baseline.
  std::vector<double> GlobalAggregate() const;

  /// The partial aggregate `Σ_{l ∉ excluded} x_l` — what a degraded
  /// protocol run actually recovers when the nodes in `excluded` failed
  /// (docs/FAULT_MODEL.md). Unknown ids in `excluded` are ignored.
  std::vector<double> GlobalAggregateExcluding(
      const std::vector<NodeId>& excluded) const;

 private:
  size_t key_space_size_;
  NodeId next_id_ = 0;
  std::map<NodeId, cs::SparseSlice> slices_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_CLUSTER_H_
