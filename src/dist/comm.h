#ifndef CSOD_DIST_COMM_H_
#define CSOD_DIST_COMM_H_

#include <cstdint>
#include <map>
#include <string>

namespace csod::dist {

/// Tuple sizes used for communication accounting, matching Section 6.1.2:
/// values and measurements are 64 bits, keyid-value pairs are 96 bits.
inline constexpr uint64_t kValueBytes = 8;        ///< S_v
inline constexpr uint64_t kKeyValueBytes = 12;    ///< S_t
inline constexpr uint64_t kMeasurementBytes = 8;  ///< S_M

/// \brief Byte-exact communication accounting for a protocol run.
///
/// Every transmission in the cluster simulator is recorded here; the
/// Figure 7/8 x-axis ("communication cost normalized by transmitting ALL")
/// is computed from these counters.
class CommStats {
 public:
  /// Records a transmission of `tuples` tuples of `bytes_per_tuple` bytes
  /// under a phase label (e.g. "measurements", "round1-sample").
  void Account(const std::string& phase, uint64_t tuples,
               uint64_t bytes_per_tuple) {
    bytes_total_ += tuples * bytes_per_tuple;
    tuples_total_ += tuples;
    bytes_by_phase_[phase] += tuples * bytes_per_tuple;
  }

  /// Marks the start of a new communication round (single-round protocols
  /// call this once; K+δ three times; TA once per iteration).
  void BeginRound() { ++rounds_; }

  uint64_t bytes_total() const { return bytes_total_; }
  uint64_t tuples_total() const { return tuples_total_; }
  uint64_t rounds() const { return rounds_; }
  const std::map<std::string, uint64_t>& bytes_by_phase() const {
    return bytes_by_phase_;
  }

 private:
  uint64_t bytes_total_ = 0;
  uint64_t tuples_total_ = 0;
  uint64_t rounds_ = 0;
  std::map<std::string, uint64_t> bytes_by_phase_;
};

}  // namespace csod::dist

#endif  // CSOD_DIST_COMM_H_
