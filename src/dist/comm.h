#ifndef CSOD_DIST_COMM_H_
#define CSOD_DIST_COMM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/fault.h"
#include "obs/telemetry.h"

namespace csod::dist {

/// Tuple sizes used for communication accounting, matching Section 6.1.2:
/// values and measurements are 64 bits, keyid-value pairs are 96 bits.
inline constexpr uint64_t kValueBytes = 8;        ///< S_v
inline constexpr uint64_t kKeyValueBytes = 12;    ///< S_t
inline constexpr uint64_t kMeasurementBytes = 8;  ///< S_M
/// A bare 32-bit key id (no value attached) — what the two-phase refine
/// support broadcast ships per candidate column.
inline constexpr uint64_t kKeyBytes = 4;

/// \brief Byte-exact communication accounting for a protocol run.
///
/// Every transmission in the cluster simulator is recorded here; the
/// Figure 7/8 x-axis ("communication cost normalized by transmitting ALL")
/// is computed from these counters.
class CommStats {
 public:
  /// Records a transmission of `tuples` tuples of `bytes_per_tuple` bytes
  /// under a phase label (e.g. "measurements", "round1-sample").
  void Account(const std::string& phase, uint64_t tuples,
               uint64_t bytes_per_tuple) {
    bytes_total_ += tuples * bytes_per_tuple;
    tuples_total_ += tuples;
    bytes_by_phase_[phase] += tuples * bytes_per_tuple;
  }

  /// Marks the start of a new communication round (single-round protocols
  /// call this once; K+δ three times; TA once per iteration).
  void BeginRound() { ++rounds_; }

  uint64_t bytes_total() const { return bytes_total_; }
  uint64_t tuples_total() const { return tuples_total_; }
  uint64_t rounds() const { return rounds_; }
  const std::map<std::string, uint64_t>& bytes_by_phase() const {
    return bytes_by_phase_;
  }

 private:
  uint64_t bytes_total_ = 0;
  uint64_t tuples_total_ = 0;
  uint64_t rounds_ = 0;
  std::map<std::string, uint64_t> bytes_by_phase_;
};

/// \brief The node → coordinator data plane: every protocol transmission
/// goes through a Channel, which accounts the bytes in CommStats and —
/// when a FaultInjector is attached — subjects each message to the fault
/// plan (docs/FAULT_MODEL.md).
///
/// With no injector every Send is delivered immediately and the Channel is
/// byte-for-byte equivalent to calling `CommStats::Account` directly, so
/// fault-free runs are bit-identical to the pre-fault protocols.
///
/// Accounting rules: a dropped message still costs its sender's bytes (it
/// was transmitted and lost); a duplicated message costs twice; a
/// crash-before-send costs nothing. Coordinator-side control traffic
/// (re-requests, broadcasts) uses `Control`, which is assumed reliable —
/// only the data plane is faulty (see the fault-model doc for why).
class Channel {
 public:
  /// `stats` must not be null and must outlive the channel; `injector`
  /// may be null (perfect network) and is borrowed, not owned. `telemetry`
  /// mirrors the accounting into "comm.*" / "fault.*" counters; null or
  /// `obs::Telemetry::Disabled()` costs one predictable branch per call.
  explicit Channel(CommStats* stats, const FaultInjector* injector = nullptr,
                   obs::Telemetry* telemetry = nullptr)
      : stats_(stats),
        injector_(injector),
        telemetry_(telemetry != nullptr ? telemetry
                                        : obs::Telemetry::Disabled()) {}

  /// Starts a communication round; fault decisions are keyed by the
  /// current round so multi-round protocols re-draw per round. The Nth
  /// BeginRound (1-based) keys Send's fault draws on round N-1 —
  /// stats_->BeginRound() has just incremented rounds(), so it is always
  /// >= 1 here.
  void BeginRound() {
    stats_->BeginRound();
    round_ = stats_->rounds() - 1;
    telemetry_->AddCounter("comm.rounds");
  }

  /// Transmits `tuples` tuples of `bytes_per_tuple` bytes from `node`
  /// under `phase`, applying the attached fault plan to attempt
  /// `attempt` of the current round. Returns what happened; the caller
  /// decides delivery against its timeout via `Delivery::Arrived`.
  Delivery Send(NodeId node, const std::string& phase, uint64_t tuples,
                uint64_t bytes_per_tuple, uint64_t attempt = 0);

  /// Coordinator-side control-plane traffic (re-requests, threshold
  /// broadcasts, refinement fan-out): accounted, never faulted.
  void Control(const std::string& phase, uint64_t tuples,
               uint64_t bytes_per_tuple) {
    stats_->Account(phase, tuples, bytes_per_tuple);
    if (telemetry_->enabled()) Mirror(phase, tuples, bytes_per_tuple);
  }

  /// Injected-fault event counters of this channel's lifetime.
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// True iff a fault injector is attached.
  bool faulty() const { return injector_ != nullptr; }

  CommStats* stats() { return stats_; }

  /// The telemetry sink (never null; `Disabled()` when none was attached).
  obs::Telemetry* telemetry() { return telemetry_; }

 private:
  // Mirrors one accounted transmission into the per-phase counters.
  // Only called when telemetry is enabled.
  void Mirror(const std::string& phase, uint64_t tuples,
              uint64_t bytes_per_tuple);

  CommStats* stats_;
  const FaultInjector* injector_;
  obs::Telemetry* telemetry_;
  uint64_t round_ = 0;
  FaultStats fault_stats_;
};

/// Runs the coordinator's request/retry/timeout loop of one collection
/// round against every node in `nodes`: attempt 0 is accounted under
/// `phase`, re-requested attempts under `phase + "-retry"` (so retry
/// bytes are separable in `CommStats::bytes_by_phase`), and each
/// re-request costs one value tuple of control traffic under
/// "retry-request". Returns, per node, whether its message arrived within
/// the (backed-off) timeout; nodes that exhaust the budget are appended
/// to `report->excluded_nodes`. `report` may be null.
std::vector<bool> CollectWithRetry(Channel* channel, const RetryPolicy& retry,
                                   const std::vector<NodeId>& nodes,
                                   const std::string& phase, uint64_t tuples,
                                   uint64_t bytes_per_tuple,
                                   CollectionReport* report);

/// Same loop with a per-node tuple count (`tuples_per_node[i]` tuples from
/// `nodes[i]`) — the shape the distributed-AMP protocol needs, where each
/// node ships only its above-threshold state and counts differ per node.
/// `tuples_per_node.size()` must equal `nodes.size()`.
std::vector<bool> CollectWithRetry(
    Channel* channel, const RetryPolicy& retry,
    const std::vector<NodeId>& nodes, const std::string& phase,
    const std::vector<uint64_t>& tuples_per_node, uint64_t bytes_per_tuple,
    CollectionReport* report);

}  // namespace csod::dist

#endif  // CSOD_DIST_COMM_H_
