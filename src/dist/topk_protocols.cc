#include "dist/topk_protocols.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sim/buggify.h"

namespace csod::dist {

namespace {

// One node's slice sorted descending by value, as (key, value) pairs.
struct SortedSlice {
  std::vector<std::pair<size_t, double>> entries;
  // Fast random access: key -> local value.
  std::unordered_map<size_t, double> lookup;
};

Result<std::vector<SortedSlice>> SortSlices(const Cluster& cluster) {
  std::vector<SortedSlice> sorted;
  sorted.reserve(cluster.num_nodes());
  for (NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    SortedSlice s;
    s.entries.reserve(slice->nnz());
    for (size_t j = 0; j < slice->indices.size(); ++j) {
      if (slice->values[j] < 0.0) {
        return Status::FailedPrecondition(
            "top-k protocols require non-negative partial values");
      }
      s.entries.emplace_back(slice->indices[j], slice->values[j]);
      s.lookup.emplace(slice->indices[j], slice->values[j]);
    }
    std::sort(s.entries.begin(), s.entries.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    sorted.push_back(std::move(s));
  }
  return sorted;
}

std::vector<outlier::Outlier> RankTopK(
    const std::unordered_map<size_t, double>& sums, size_t k) {
  std::vector<outlier::Outlier> out;
  out.reserve(sums.size());
  for (const auto& [key, value] : sums) {
    out.push_back(outlier::Outlier{key, value, value});
  }
  std::sort(out.begin(), out.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key_index < b.key_index;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

// Exact aggregate of `key` via random access at every node. Accounts one
// kv-pair response per node (the request key id rides in the same tuple);
// coordinator-driven fan-out, so it travels on the channel's control plane.
double RandomAccess(const std::vector<SortedSlice>& slices, size_t key,
                    Channel* channel) {
  double sum = 0.0;
  for (const SortedSlice& s : slices) {
    auto it = s.lookup.find(key);
    if (it != s.lookup.end()) sum += it->second;
  }
  channel->Control("random-access", slices.size(), kKeyValueBytes);
  return sum;
}

}  // namespace

Result<TopKRunResult> RunThresholdAlgorithmTopK(const Cluster& cluster,
                                                size_t k, size_t batch_size,
                                                CommStats* comm,
                                                obs::Telemetry* telemetry) {
  if (comm == nullptr) {
    return Status::InvalidArgument("TA: comm must not be null");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("TA: batch_size must be > 0");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("TA: empty cluster");
  }
  obs::TraceSpan run_span(telemetry, "protocol.ta");
  CSOD_ASSIGN_OR_RETURN(std::vector<SortedSlice> slices, SortSlices(cluster));
  const std::vector<NodeId> ids = cluster.NodeIds();
  // Baseline: perfect network.
  Channel channel(comm, /*injector=*/nullptr, telemetry);

  std::unordered_map<size_t, double> exact;  // key -> exact aggregate
  std::vector<size_t> cursor(slices.size(), 0);

  while (true) {
    channel.BeginRound();
    bool any_released = false;
    double threshold = 0.0;
    for (size_t l = 0; l < slices.size(); ++l) {
      const auto& entries = slices[l].entries;
      const size_t end = std::min(cursor[l] + batch_size, entries.size());
      for (size_t j = cursor[l]; j < end; ++j) {
        any_released = true;
        const size_t key = entries[j].first;
        if (exact.find(key) == exact.end()) {
          exact[key] = RandomAccess(slices, key, &channel);
        }
      }
      if (end > cursor[l]) {
        channel.Send(ids[l], "sorted-access", end - cursor[l],
                     kKeyValueBytes);
        // Buggify: the node re-sends the whole batch (e.g. an ack was
        // lost). The coordinator already merged these entries, so the
        // re-send is pure wire cost — the answer must not move.
        if (CSOD_BUGGIFY("protocol.ta.resend_batch")) {
          channel.Send(ids[l], "sorted-access", end - cursor[l],
                       kKeyValueBytes);
        }
      }
      cursor[l] = end;
      // Frontier value: the last value this node released (0 when the
      // list is exhausted — a non-negative lower bound on the rest).
      threshold += cursor[l] > 0 && cursor[l] <= entries.size()
                       ? entries[cursor[l] - 1].second *
                             (cursor[l] == entries.size() ? 0.0 : 1.0)
                       : 0.0;
    }
    if (!any_released) break;

    // Stop when k exact aggregates dominate the threshold.
    if (exact.size() >= k) {
      std::vector<double> values;
      values.reserve(exact.size());
      for (const auto& [key, v] : exact) values.push_back(v);
      std::nth_element(values.begin(), values.begin() + (k - 1), values.end(),
                       std::greater<double>());
      if (values[k - 1] >= threshold) break;
    }
  }

  TopKRunResult result;
  result.top = RankTopK(exact, k);
  return result;
}

Result<TopKRunResult> RunTputTopK(const Cluster& cluster, size_t k,
                                  CommStats* comm,
                                  obs::Telemetry* telemetry) {
  if (comm == nullptr) {
    return Status::InvalidArgument("TPUT: comm must not be null");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("TPUT: empty cluster");
  }
  obs::TraceSpan run_span(telemetry, "protocol.tput");
  CSOD_ASSIGN_OR_RETURN(std::vector<SortedSlice> slices, SortSlices(cluster));
  const std::vector<NodeId> ids = cluster.NodeIds();
  const size_t num_nodes = slices.size();
  // Baseline: perfect network.
  Channel channel(comm, /*injector=*/nullptr, telemetry);

  // --- Phase 1: local top-k, partial sums, lower bound τ. ---
  channel.BeginRound();
  std::unordered_map<size_t, double> partial_sums;
  for (size_t l = 0; l < slices.size(); ++l) {
    const SortedSlice& s = slices[l];
    const size_t send = std::min(k, s.entries.size());
    for (size_t j = 0; j < send; ++j) {
      partial_sums[s.entries[j].first] += s.entries[j].second;
    }
    channel.Send(ids[l], "phase1-local-topk", send, kKeyValueBytes);
  }
  double tau = 0.0;
  if (partial_sums.size() >= k && k > 0) {
    std::vector<double> values;
    values.reserve(partial_sums.size());
    for (const auto& [key, v] : partial_sums) values.push_back(v);
    std::nth_element(values.begin(), values.begin() + (k - 1), values.end(),
                     std::greater<double>());
    tau = values[k - 1];
  }

  // --- Phase 2: prune with the uniform threshold τ/L. ---
  channel.BeginRound();
  channel.Control("phase2-broadcast", num_nodes, kValueBytes);
  // Buggify: the threshold broadcast fires twice. τ/L is the same value
  // both times, so nodes prune identically — only control bytes grow.
  if (CSOD_BUGGIFY("protocol.tput.rebroadcast")) {
    channel.Control("phase2-broadcast", num_nodes, kValueBytes);
  }
  const double node_threshold = tau / static_cast<double>(num_nodes);
  std::unordered_set<size_t> candidates;
  for (const auto& [key, v] : partial_sums) candidates.insert(key);
  for (size_t l = 0; l < slices.size(); ++l) {
    const SortedSlice& s = slices[l];
    size_t sent = 0;
    for (const auto& [key, value] : s.entries) {
      if (value < node_threshold) break;  // Sorted descending.
      candidates.insert(key);
      ++sent;
    }
    channel.Send(ids[l], "phase2-prune", sent, kKeyValueBytes);
  }

  // --- Phase 3: exact refinement of the candidate set. ---
  channel.BeginRound();
  std::unordered_map<size_t, double> exact;
  for (size_t key : candidates) {
    double sum = 0.0;
    for (const SortedSlice& s : slices) {
      auto it = s.lookup.find(key);
      if (it != s.lookup.end()) sum += it->second;
    }
    exact[key] = sum;
  }
  channel.Control("phase3-refine", candidates.size() * num_nodes,
                  kKeyValueBytes);

  TopKRunResult result;
  result.top = RankTopK(exact, k);
  return result;
}

}  // namespace csod::dist
