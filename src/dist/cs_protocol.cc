#include "dist/cs_protocol.h"

#include <string>
#include <vector>

#include "cs/compressor.h"

namespace csod::dist {

Result<outlier::OutlierSet> CsOutlierProtocol::Run(const Cluster& cluster,
                                                   size_t k,
                                                   CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument("CsOutlierProtocol: comm must not be null");
  }
  if (options_.m == 0) {
    return Status::InvalidArgument("CsOutlierProtocol: m must be > 0");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("CsOutlierProtocol: empty cluster");
  }

  const size_t n = cluster.key_space_size();
  // Every node derives the same Φ0 from the consensus seed. In the
  // simulator we instantiate it once and share it; determinism is what
  // makes this equivalent to per-node generation (tested in
  // measurement_matrix_test).
  cs::MeasurementMatrix matrix(options_.m, n, options_.seed,
                               options_.cache_budget_bytes);
  cs::Compressor compressor(&matrix);

  // Phase 1+2: local compression and measurement transmission.
  comm->BeginRound();
  std::vector<std::vector<double>> measurements;
  measurements.reserve(cluster.num_nodes());
  for (NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    CSOD_ASSIGN_OR_RETURN(std::vector<double> y_l,
                          compressor.Compress(*slice));
    comm->Account("measurements", options_.m, kMeasurementBytes);
    measurements.push_back(std::move(y_l));
  }

  // Phase 3: global measurement y = Σ y_l (Equation 1).
  CSOD_ASSIGN_OR_RETURN(std::vector<double> y,
                        cs::Compressor::AggregateMeasurements(measurements));

  // Phase 4: BOMP recovery (Algorithm 1) and k-outlier extraction.
  cs::BompOptions bomp_options;
  bomp_options.max_iterations = options_.iterations == 0
                                    ? cs::DefaultIterationsForK(k)
                                    : options_.iterations;
  CSOD_ASSIGN_OR_RETURN(last_recovery_, cs::RunBomp(matrix, y, bomp_options));
  return outlier::KOutliersFromRecovery(last_recovery_, k);
}

}  // namespace csod::dist
