#include "dist/cs_protocol.h"

#include <string>
#include <vector>

#include "cs/compressor.h"
#include "sim/buggify.h"

namespace csod::dist {

Result<outlier::OutlierSet> CsOutlierProtocol::Run(const Cluster& cluster,
                                                   size_t k,
                                                   CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument("CsOutlierProtocol: comm must not be null");
  }
  if (options_.m == 0) {
    return Status::InvalidArgument("CsOutlierProtocol: m must be > 0");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("CsOutlierProtocol: empty cluster");
  }

  obs::TraceSpan run_span(telemetry_, "protocol.cs");
  const size_t n = cluster.key_space_size();
  // Every node derives the same Φ0 from the consensus seed. In the
  // simulator we instantiate it once and share it; determinism is what
  // makes this equivalent to per-node generation (tested in
  // measurement_matrix_test).
  cs::MeasurementMatrix matrix(options_.m, n, options_.seed,
                               options_.cache_budget_bytes);
  cs::Compressor compressor(&matrix);
  compressor.set_telemetry(telemetry_);

  // Phase 1+2: local compression and measurement transmission, through
  // the fault-injecting channel with coordinator-side retries.
  const FaultInjector injector(options_.faults);
  Channel channel(comm, options_.faults.any() ? &injector : nullptr,
                  telemetry_);
  channel.BeginRound();
  const std::vector<NodeId> ids = cluster.NodeIds();
  last_collection_ = CollectionReport{};
  last_collection_.nodes_total = ids.size();
  std::vector<bool> delivered =
      CollectWithRetry(&channel, options_.retry, ids, "measurements",
                       options_.m, kMeasurementBytes, &last_collection_);
  // Buggify: a node can die *after* its measurement arrived but before the
  // coordinator folds the aggregate (mid-round crash). The coordinator
  // treats it exactly like a retry-budget exhaustion: exclude the node and
  // recover from the partial sum. At least one node always survives — a
  // coordinator with zero inputs has nothing to degrade to.
  if (sim::BuggifyEnabled()) {
    size_t alive = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (delivered[i]) ++alive;
    }
    for (size_t i = 0; i < ids.size() && alive > 1; ++i) {
      if (!delivered[i]) continue;
      if (CSOD_BUGGIFY_AT("protocol.cs.midround_crash", ids[i])) {
        delivered[i] = false;
        last_collection_.excluded_nodes.push_back(ids[i]);
        --alive;
      }
    }
  }
  if (last_collection_.degraded() && !options_.allow_degraded) {
    return Status::FailedPrecondition(
        "CsOutlierProtocol: " +
        std::to_string(last_collection_.excluded_nodes.size()) +
        " node(s) unreachable after retries and degraded mode is disabled");
  }

  // Phase 3: global measurement y = Σ_{l ∈ alive} y_l (Equation 1; the
  // partial sum on a degraded run — still Φ0 times the partial aggregate
  // by linearity, so recovery stays sound for the alive slices).
  std::vector<double> y;
  if (!options_.faults.any() && !last_collection_.degraded()) {
    // (The degraded() guard matters: Buggify can exclude nodes even when
    // no fault plan is armed, and the fast path must not resurrect them.)
    // Fault-free fast path: fused compress-and-accumulate across the whole
    // cluster, never materializing per-node y_l vectors.
    // CompressAccumulate is bit-identical to the per-node path below
    // (compressor_test), so fault and fault-free runs stay bit-comparable.
    std::vector<const cs::SparseSlice*> slices;
    slices.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                            cluster.Slice(ids[i]));
      slices.push_back(slice);
    }
    CSOD_RETURN_NOT_OK(compressor.CompressAccumulate(slices, &y));
  } else {
    // Fault path: only arrived measurements enter the aggregate; the
    // simulator skips the compression compute of excluded nodes (their
    // y_l never reaches the coordinator anyway).
    std::vector<std::vector<double>> measurements;
    measurements.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!delivered[i]) continue;
      CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                            cluster.Slice(ids[i]));
      obs::TraceSpan node_span(telemetry_, "sketch.node");
      CSOD_ASSIGN_OR_RETURN(std::vector<double> y_l,
                            compressor.Compress(*slice));
      measurements.push_back(std::move(y_l));
    }
    if (measurements.empty()) {
      return Status::FailedPrecondition(
          "CsOutlierProtocol: every node failed — no measurements to "
          "aggregate");
    }
    CSOD_ASSIGN_OR_RETURN(
        y, cs::Compressor::AggregateMeasurements(measurements));
  }

  // Phase 4: BOMP recovery (Algorithm 1) and k-outlier extraction.
  cs::BompOptions bomp_options;
  bomp_options.max_iterations = options_.iterations == 0
                                    ? cs::DefaultIterationsForK(k)
                                    : options_.iterations;
  bomp_options.telemetry = telemetry_;
  CSOD_ASSIGN_OR_RETURN(last_recovery_, cs::RunBomp(matrix, y, bomp_options));
  return outlier::KOutliersFromRecovery(last_recovery_, k);
}

}  // namespace csod::dist
