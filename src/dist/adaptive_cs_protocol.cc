#include "dist/adaptive_cs_protocol.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "cs/compressor.h"
#include "la/vector_ops.h"

namespace csod::dist {

Result<outlier::OutlierSet> AdaptiveCsProtocol::Run(const Cluster& cluster,
                                                    size_t k,
                                                    CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument(
        "AdaptiveCsProtocol: comm must not be null");
  }
  if (options_.initial_m == 0 || options_.max_m < options_.initial_m) {
    return Status::InvalidArgument(
        "AdaptiveCsProtocol: need 0 < initial_m <= max_m");
  }
  if (options_.growth <= 1.0) {
    return Status::InvalidArgument("AdaptiveCsProtocol: growth must be > 1");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("AdaptiveCsProtocol: empty cluster");
  }

  obs::TraceSpan run_span(telemetry_, "protocol.adaptive");
  rounds_.clear();
  last_recovery_ = cs::BompResult{};
  const size_t n = cluster.key_space_size();
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;

  const FaultInjector injector(options_.faults);
  Channel channel(comm, options_.faults.any() ? &injector : nullptr,
                  telemetry_);
  std::vector<NodeId> alive = cluster.NodeIds();
  last_collection_ = CollectionReport{};
  last_collection_.nodes_total = alive.size();

  size_t prev_m = 0;
  size_t m = std::min(options_.initial_m, options_.max_m);
  std::vector<size_t> previous_topk;
  while (true) {
    channel.BeginRound();
    // Every node transmits only the new measurement rows [prev_m, m); the
    // previously shipped prefix is rescaled at the aggregator (row-prefix
    // property — see the class comment). In the simulator we recompute the
    // full compression per round for simplicity; the *accounting* charges
    // exactly the incremental rows, which is what the real system ships.
    // A node that fails this round (after retries) drops out for good: its
    // already-shipped prefix cannot be extended to the new M, so its whole
    // contribution leaves the aggregate (docs/FAULT_MODEL.md).
    const std::vector<bool> round_delivered = CollectWithRetry(
        &channel, options_.retry, alive, "adaptive-measurements", m - prev_m,
        kMeasurementBytes, &last_collection_);
    std::vector<NodeId> still_alive;
    still_alive.reserve(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      if (round_delivered[i]) still_alive.push_back(alive[i]);
    }
    alive = std::move(still_alive);
    if (last_collection_.degraded() && !options_.allow_degraded) {
      return Status::FailedPrecondition(
          "AdaptiveCsProtocol: " +
          std::to_string(last_collection_.excluded_nodes.size()) +
          " node(s) unreachable after retries and degraded mode is "
          "disabled");
    }
    if (alive.empty()) {
      return Status::FailedPrecondition(
          "AdaptiveCsProtocol: every node failed — no measurements to "
          "aggregate");
    }

    cs::MeasurementMatrix matrix(m, n, options_.seed,
                                 options_.cache_budget_bytes);
    cs::Compressor compressor(&matrix);
    compressor.set_telemetry(telemetry_);
    std::vector<double> y;
    if (!options_.faults.any()) {
      // Fault-free fast path: fused compress-and-accumulate over every
      // node's slice (bit-identical to the per-node path below, so fault
      // runs — which must keep per-node y_l for dropout accounting — stay
      // bit-comparable to fault-free ones).
      std::vector<const cs::SparseSlice*> slices;
      slices.reserve(alive.size());
      for (NodeId id : alive) {
        CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                              cluster.Slice(id));
        slices.push_back(slice);
      }
      CSOD_RETURN_NOT_OK(compressor.CompressAccumulate(slices, &y));
    } else {
      std::vector<std::vector<double>> measurements;
      measurements.reserve(alive.size());
      for (NodeId id : alive) {
        CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                              cluster.Slice(id));
        obs::TraceSpan node_span(telemetry_, "sketch.node");
        CSOD_ASSIGN_OR_RETURN(std::vector<double> y_l,
                              compressor.Compress(*slice));
        measurements.push_back(std::move(y_l));
      }
      CSOD_ASSIGN_OR_RETURN(
          y, cs::Compressor::AggregateMeasurements(measurements));
    }

    cs::BompOptions bomp_options;
    bomp_options.max_iterations = iterations;
    bomp_options.telemetry = telemetry_;
    CSOD_ASSIGN_OR_RETURN(last_recovery_, cs::RunBomp(matrix, y, bomp_options));

    const outlier::OutlierSet detected =
        outlier::KOutliersFromRecovery(last_recovery_, k);
    std::vector<size_t> topk_keys;
    topk_keys.reserve(detected.outliers.size());
    for (const auto& o : detected.outliers) topk_keys.push_back(o.key_index);
    std::sort(topk_keys.begin(), topk_keys.end());

    const double y_norm = la::Norm2(y);
    AdaptiveRound round;
    round.m = m;
    round.relative_residual =
        y_norm == 0.0 ? 0.0 : last_recovery_.final_residual_norm / y_norm;
    round.topk_stable =
        !rounds_.empty() && topk_keys == previous_topk && !topk_keys.empty();
    // The residual only certifies the recovery when the system is
    // genuinely under-determined: as R approaches m, OMP can explain
    // *any* y (R selected atoms span most of R^m) without identifying
    // the true support. Require at least half the measurement dimensions
    // to be unexplained degrees of freedom — then a near-zero residual
    // is a real certificate.
    const bool residual_meaningful = m >= 2 * iterations;
    round.accepted =
        (residual_meaningful &&
         round.relative_residual <= options_.acceptance_residual) ||
        (options_.accept_on_stable_topk && round.topk_stable);
    rounds_.push_back(round);
    previous_topk = std::move(topk_keys);

    if (round.accepted || m >= options_.max_m) break;
    prev_m = m;
    m = std::min(options_.max_m,
                 std::max(m + 1, static_cast<size_t>(
                                     std::ceil(m * options_.growth))));
  }

  return outlier::KOutliersFromRecovery(last_recovery_, k);
}

}  // namespace csod::dist
