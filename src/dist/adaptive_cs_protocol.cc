#include "dist/adaptive_cs_protocol.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/random.h"
#include "cs/compressor.h"
#include "la/incremental_qr.h"
#include "la/vector_ops.h"
#include "sim/buggify.h"

namespace csod::dist {

Result<outlier::OutlierSet> AdaptiveCsProtocol::Run(const Cluster& cluster,
                                                    size_t k,
                                                    CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument(
        "AdaptiveCsProtocol: comm must not be null");
  }
  if (options_.strategy == AdaptiveStrategy::kTwoPhase) {
    return RunTwoPhase(cluster, k, comm);
  }
  return RunGrow(cluster, k, comm);
}

Result<outlier::OutlierSet> AdaptiveCsProtocol::RunGrow(const Cluster& cluster,
                                                        size_t k,
                                                        CommStats* comm) {
  if (options_.initial_m == 0 || options_.max_m < options_.initial_m) {
    return Status::InvalidArgument(
        "AdaptiveCsProtocol: need 0 < initial_m <= max_m");
  }
  if (options_.growth <= 1.0) {
    return Status::InvalidArgument("AdaptiveCsProtocol: growth must be > 1");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("AdaptiveCsProtocol: empty cluster");
  }

  obs::TraceSpan run_span(telemetry_, "protocol.adaptive");
  rounds_.clear();
  last_recovery_ = cs::BompResult{};
  const size_t n = cluster.key_space_size();
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;

  const FaultInjector injector(options_.faults);
  Channel channel(comm, options_.faults.any() ? &injector : nullptr,
                  telemetry_);
  std::vector<NodeId> alive = cluster.NodeIds();
  last_collection_ = CollectionReport{};
  last_collection_.nodes_total = alive.size();

  size_t prev_m = 0;
  size_t m = std::min(options_.initial_m, options_.max_m);
  std::vector<size_t> previous_topk;
  while (true) {
    channel.BeginRound();
    // Every node transmits only the new measurement rows [prev_m, m); the
    // previously shipped prefix is rescaled at the aggregator (row-prefix
    // property — see the class comment). In the simulator we recompute the
    // full compression per round for simplicity; the *accounting* charges
    // exactly the incremental rows, which is what the real system ships.
    // A node that fails this round (after retries) drops out for good: its
    // already-shipped prefix cannot be extended to the new M, so its whole
    // contribution leaves the aggregate (docs/FAULT_MODEL.md).
    std::vector<bool> round_delivered = CollectWithRetry(
        &channel, options_.retry, alive, "adaptive-measurements", m - prev_m,
        kMeasurementBytes, &last_collection_);
    // Buggify: a torn round — the node shipped its incremental rows but
    // dies before the round commits, so its *entire* prefix (not just the
    // new rows) leaves the aggregate, exactly like a retry exhaustion.
    // At least one node survives every round.
    if (sim::BuggifyEnabled()) {
      size_t round_alive = 0;
      for (size_t i = 0; i < alive.size(); ++i) {
        if (round_delivered[i]) ++round_alive;
      }
      for (size_t i = 0; i < alive.size() && round_alive > 1; ++i) {
        if (!round_delivered[i]) continue;
        if (CSOD_BUGGIFY_AT("protocol.adaptive.torn_round",
                            HashCombine(m, alive[i]))) {
          round_delivered[i] = false;
          last_collection_.excluded_nodes.push_back(alive[i]);
          --round_alive;
        }
      }
    }
    std::vector<NodeId> still_alive;
    still_alive.reserve(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      if (round_delivered[i]) still_alive.push_back(alive[i]);
    }
    alive = std::move(still_alive);
    if (last_collection_.degraded() && !options_.allow_degraded) {
      return Status::FailedPrecondition(
          "AdaptiveCsProtocol: " +
          std::to_string(last_collection_.excluded_nodes.size()) +
          " node(s) unreachable after retries and degraded mode is "
          "disabled");
    }
    if (alive.empty()) {
      return Status::FailedPrecondition(
          "AdaptiveCsProtocol: every node failed — no measurements to "
          "aggregate");
    }

    cs::MeasurementMatrix matrix(m, n, options_.seed,
                                 options_.cache_budget_bytes);
    cs::Compressor compressor(&matrix);
    compressor.set_telemetry(telemetry_);
    std::vector<double> y;
    if (!options_.faults.any()) {
      // Fault-free fast path: fused compress-and-accumulate over every
      // node's slice (bit-identical to the per-node path below, so fault
      // runs — which must keep per-node y_l for dropout accounting — stay
      // bit-comparable to fault-free ones).
      std::vector<const cs::SparseSlice*> slices;
      slices.reserve(alive.size());
      for (NodeId id : alive) {
        CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                              cluster.Slice(id));
        slices.push_back(slice);
      }
      CSOD_RETURN_NOT_OK(compressor.CompressAccumulate(slices, &y));
    } else {
      std::vector<std::vector<double>> measurements;
      measurements.reserve(alive.size());
      for (NodeId id : alive) {
        CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                              cluster.Slice(id));
        obs::TraceSpan node_span(telemetry_, "sketch.node");
        CSOD_ASSIGN_OR_RETURN(std::vector<double> y_l,
                              compressor.Compress(*slice));
        measurements.push_back(std::move(y_l));
      }
      CSOD_ASSIGN_OR_RETURN(
          y, cs::Compressor::AggregateMeasurements(measurements));
    }

    cs::BompOptions bomp_options;
    bomp_options.max_iterations = iterations;
    bomp_options.telemetry = telemetry_;
    CSOD_ASSIGN_OR_RETURN(last_recovery_, cs::RunBomp(matrix, y, bomp_options));

    const outlier::OutlierSet detected =
        outlier::KOutliersFromRecovery(last_recovery_, k);
    std::vector<size_t> topk_keys;
    topk_keys.reserve(detected.outliers.size());
    for (const auto& o : detected.outliers) topk_keys.push_back(o.key_index);
    std::sort(topk_keys.begin(), topk_keys.end());

    const double y_norm = la::Norm2(y);
    AdaptiveRound round;
    round.m = m;
    round.relative_residual =
        y_norm == 0.0 ? 0.0 : last_recovery_.final_residual_norm / y_norm;
    round.topk_stable =
        !rounds_.empty() && topk_keys == previous_topk && !topk_keys.empty();
    // The residual only certifies the recovery when the system is
    // genuinely under-determined: as R approaches m, OMP can explain
    // *any* y (R selected atoms span most of R^m) without identifying
    // the true support. Require at least half the measurement dimensions
    // to be unexplained degrees of freedom — then a near-zero residual
    // is a real certificate.
    const bool residual_meaningful = m >= 2 * iterations;
    round.accepted =
        (residual_meaningful &&
         round.relative_residual <= options_.acceptance_residual) ||
        (options_.accept_on_stable_topk && round.topk_stable);
    rounds_.push_back(round);
    previous_topk = std::move(topk_keys);

    if (round.accepted || m >= options_.max_m) break;
    prev_m = m;
    m = std::min(options_.max_m,
                 std::max(m + 1, static_cast<size_t>(
                                     std::ceil(m * options_.growth))));
  }

  return outlier::KOutliersFromRecovery(last_recovery_, k);
}

Result<outlier::OutlierSet> AdaptiveCsProtocol::RunTwoPhase(
    const Cluster& cluster, size_t k, CommStats* comm) {
  if (options_.locate_m == 0) {
    return Status::InvalidArgument(
        "AdaptiveCsProtocol: two-phase needs locate_m > 0");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("AdaptiveCsProtocol: empty cluster");
  }

  obs::TraceSpan run_span(telemetry_, "protocol.two_phase");
  rounds_.clear();
  last_recovery_ = cs::BompResult{};
  const size_t n = cluster.key_space_size();
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;

  const FaultInjector injector(options_.faults);
  Channel channel(comm, options_.faults.any() ? &injector : nullptr,
                  telemetry_);
  std::vector<NodeId> alive = cluster.NodeIds();
  last_collection_ = CollectionReport{};
  last_collection_.nodes_total = alive.size();

  auto drop_failed = [&](const std::vector<bool>& delivered) {
    std::vector<NodeId> still_alive;
    still_alive.reserve(alive.size());
    for (size_t i = 0; i < alive.size(); ++i) {
      if (delivered[i]) still_alive.push_back(alive[i]);
    }
    alive = std::move(still_alive);
  };
  auto check_degraded = [&]() -> Status {
    if (last_collection_.degraded() && !options_.allow_degraded) {
      return Status::FailedPrecondition(
          "AdaptiveCsProtocol: " +
          std::to_string(last_collection_.excluded_nodes.size()) +
          " node(s) unreachable after retries and degraded mode is "
          "disabled");
    }
    if (alive.empty()) {
      return Status::FailedPrecondition(
          "AdaptiveCsProtocol: every node failed — no measurements to "
          "aggregate");
    }
    return Status::OK();
  };

  // ---- Pass 1 (locate): coarse M₁-row sketch, full key space. ----
  channel.BeginRound();
  drop_failed(CollectWithRetry(&channel, options_.retry, alive,
                               "locate-measurements", options_.locate_m,
                               kMeasurementBytes, &last_collection_));
  CSOD_RETURN_NOT_OK(check_degraded());

  cs::MeasurementMatrix locate_matrix(options_.locate_m, n, options_.seed,
                                      options_.cache_budget_bytes);
  cs::Compressor locate_compressor(&locate_matrix);
  locate_compressor.set_telemetry(telemetry_);
  std::vector<double> y1;
  {
    std::vector<const cs::SparseSlice*> slices;
    slices.reserve(alive.size());
    for (NodeId id : alive) {
      CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
      slices.push_back(slice);
    }
    CSOD_RETURN_NOT_OK(locate_compressor.CompressAccumulate(slices, &y1));
  }

  cs::SolverOptions locate_solve;
  locate_solve.solver = options_.solver;
  locate_solve.iterations = iterations;
  locate_solve.telemetry = telemetry_;
  CSOD_ASSIGN_OR_RETURN(cs::BompResult located,
                        cs::RecoverBiased(locate_matrix, y1, locate_solve));

  {
    const double y1_norm = la::Norm2(y1);
    AdaptiveRound round;
    round.m = options_.locate_m;
    round.relative_residual =
        y1_norm == 0.0 ? 0.0 : located.final_residual_norm / y1_norm;
    round.phase = "locate";
    rounds_.push_back(round);
  }

  // Candidate support S: the support_factor·k locate entries furthest from
  // the mode (over-selected so a true outlier only has to *appear*, not
  // rank). Ties toward the lower key, then sorted ascending — the order the
  // coordinator broadcasts and every node iterates.
  std::vector<size_t> support;
  {
    std::vector<cs::RecoveredEntry> ranked = located.entries;
    std::sort(ranked.begin(), ranked.end(),
              [&](const cs::RecoveredEntry& a, const cs::RecoveredEntry& b) {
                const double da = std::fabs(a.value - located.mode);
                const double db = std::fabs(b.value - located.mode);
                if (da != db) return da > db;
                return a.index < b.index;
              });
    const size_t target = std::min(ranked.size(), options_.support_factor * k);
    support.reserve(target);
    for (size_t i = 0; i < target; ++i) support.push_back(ranked[i].index);
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()), support.end());
  }
  if (support.empty()) {
    // Nothing to refine (k == 0 or an empty locate recovery): the coarse
    // pass is the answer.
    last_recovery_ = std::move(located);
    if (!rounds_.empty()) rounds_.back().accepted = true;
    return outlier::KOutliersFromRecovery(last_recovery_, k);
  }

  // ---- Pass 2 (refine): sense only the |S| candidate columns with an
  // independent M₂-row matrix. M₂ ≥ |S| makes the restricted system
  // overdetermined, so the least-squares solve below returns the candidate
  // values exactly (noiseless model) instead of CS estimates.
  const size_t m2 = options_.refine_m != 0
                        ? options_.refine_m
                        : support.size() + options_.refine_margin;
  // Buggify: a node dies in the gap between the passes — it contributed to
  // the locate sketch but never answers the refine request, so the refine
  // least-squares sees the partial aggregate (a torn two-phase state). The
  // coordinator handles it like any refine-pass exclusion.
  if (sim::BuggifyEnabled()) {
    size_t phase_alive = alive.size();
    std::vector<NodeId> survivors;
    survivors.reserve(alive.size());
    for (NodeId id : alive) {
      if (phase_alive > 1 &&
          CSOD_BUGGIFY_AT("protocol.twophase.interphase_crash", id)) {
        last_collection_.excluded_nodes.push_back(id);
        --phase_alive;
        continue;
      }
      survivors.push_back(id);
    }
    alive = std::move(survivors);
  }
  channel.BeginRound();
  // Coordinator broadcasts S to every surviving node (reliable control
  // plane): |S| bare key ids per node.
  channel.Control("support-broadcast", alive.size() * support.size(),
                  kKeyBytes);
  const std::vector<bool> refine_delivered =
      CollectWithRetry(&channel, options_.retry, alive, "refine-measurements",
                       m2, kMeasurementBytes, &last_collection_);
  drop_failed(refine_delivered);
  CSOD_RETURN_NOT_OK(check_degraded());

  // The refine matrix is drawn from an independent stream (seed xor a
  // golden-ratio constant) so its rows are not correlated with the locate
  // rows that *chose* S. Column p senses candidate key support[p].
  cs::MeasurementMatrix refine_matrix(
      m2, support.size(), options_.seed ^ 0x9e3779b97f4a7c15ULL,
      options_.cache_budget_bytes);
  cs::Compressor refine_compressor(&refine_matrix);
  refine_compressor.set_telemetry(telemetry_);
  std::vector<cs::SparseSlice> restricted(alive.size());
  for (size_t l = 0; l < alive.size(); ++l) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice,
                          cluster.Slice(alive[l]));
    for (size_t t = 0; t < slice->nnz(); ++t) {
      const auto it = std::lower_bound(support.begin(), support.end(),
                                       slice->indices[t]);
      if (it == support.end() || *it != slice->indices[t]) continue;
      restricted[l].indices.push_back(
          static_cast<size_t>(it - support.begin()));
      restricted[l].values.push_back(slice->values[t]);
    }
  }
  std::vector<double> y2;
  CSOD_RETURN_NOT_OK(refine_compressor.CompressAccumulate(restricted, &y2));

  // Least squares over the restricted columns. Dependent columns (possible
  // only when refine_m forces M₂ < |S|) are skipped, mirroring the OMP /
  // CoSaMP engines.
  la::IncrementalQr qr(m2);
  std::vector<size_t> kept;
  kept.reserve(support.size());
  std::vector<double> column(m2);
  for (size_t p = 0; p < support.size(); ++p) {
    refine_matrix.FillColumn(p, column.data());
    CSOD_ASSIGN_OR_RETURN(const double independent, qr.AppendColumn(column));
    if (independent > 0.0) kept.push_back(p);
  }
  CSOD_ASSIGN_OR_RETURN(const std::vector<double> z, qr.SolveLeastSquares(y2));
  CSOD_ASSIGN_OR_RETURN(const std::vector<double> fitted, qr.Project(y2));

  cs::BompResult refined;
  refined.mode = located.mode;
  refined.bias_selected = located.bias_selected;
  refined.iterations = located.iterations;
  refined.final_residual_norm = la::DistanceL2(y2, fitted);
  refined.entries.reserve(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    cs::RecoveredEntry entry;
    entry.index = support[kept[i]];
    entry.value = z[i];
    refined.entries.push_back(entry);
  }

  {
    const double y2_norm = la::Norm2(y2);
    AdaptiveRound round;
    round.m = m2;
    round.relative_residual =
        y2_norm == 0.0 ? 0.0 : refined.final_residual_norm / y2_norm;
    round.phase = "refine";
    round.accepted = true;
    // Stability here means the coarse pass already had the final top-k.
    const outlier::OutlierSet coarse_topk =
        outlier::KOutliersFromRecovery(located, k);
    const outlier::OutlierSet fine_topk =
        outlier::KOutliersFromRecovery(refined, k);
    std::vector<size_t> a, b;
    for (const auto& o : coarse_topk.outliers) a.push_back(o.key_index);
    for (const auto& o : fine_topk.outliers) b.push_back(o.key_index);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    round.topk_stable = !a.empty() && a == b;
    rounds_.push_back(round);
  }

  last_recovery_ = std::move(refined);
  return outlier::KOutliersFromRecovery(last_recovery_, k);
}

}  // namespace csod::dist
