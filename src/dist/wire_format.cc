#include "dist/wire_format.h"

#include <cmath>
#include <cstring>

#include "common/random.h"

namespace csod::dist {

namespace {

constexpr uint32_t kMagic = 0x43534f44;  // "CSOD"
constexpr uint8_t kKindMeasurement = 1;
constexpr uint8_t kKindKeyValues = 2;
constexpr size_t kHeaderSize = 4 + 1 + 8;
constexpr size_t kChecksumSize = 8;

// Rolling SplitMix-based checksum over a byte range (not cryptographic;
// detects corruption).
uint64_t Checksum(const char* data, size_t size) {
  uint64_t h = 0x5bd1e995u ^ size;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    h = HashCombine(h, ReadU64(data + i));
  }
  uint64_t tail = 0;
  if (i < size) {
    std::memcpy(&tail, data + i, size - i);
    h = HashCombine(h, tail);
  }
  return SplitMix64(h);
}

void FinishMessage(std::string* out) {
  AppendU64(out, Checksum(out->data(), out->size()));
}

// Validates magic/kind/count/checksum; returns the payload pointer.
Result<const char*> ValidateEnvelope(const std::string& bytes, uint8_t kind,
                                     size_t payload_unit, uint64_t* count) {
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    return Status::InvalidArgument("wire: message too short");
  }
  const char* p = bytes.data();
  if (ReadU32(p) != kMagic) {
    return Status::InvalidArgument("wire: bad magic");
  }
  if (static_cast<uint8_t>(p[4]) != kind) {
    return Status::InvalidArgument("wire: unexpected message kind");
  }
  *count = ReadU64(p + 5);
  const size_t expected = kHeaderSize + *count * payload_unit + kChecksumSize;
  if (bytes.size() != expected) {
    return Status::InvalidArgument("wire: size mismatch (got " +
                                   std::to_string(bytes.size()) +
                                   ", want " + std::to_string(expected) + ")");
  }
  const uint64_t stored = ReadU64(p + bytes.size() - kChecksumSize);
  if (Checksum(p, bytes.size() - kChecksumSize) != stored) {
    return Status::InvalidArgument("wire: checksum mismatch");
  }
  return p + kHeaderSize;
}

}  // namespace

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double ReadF64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string EncodeFrame(uint8_t kind, uint64_t count,
                        std::string_view payload) {
  std::string out;
  out.reserve(FrameWireSize(payload.size()));
  AppendU32(&out, kMagic);
  out.push_back(static_cast<char>(kind));
  AppendU64(&out, count);
  out.append(payload.data(), payload.size());
  FinishMessage(&out);
  return out;
}

Result<FrameView> DecodeFrame(const std::string& bytes) {
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    return Status::DataLoss("wire: frame too short");
  }
  const char* p = bytes.data();
  if (ReadU32(p) != kMagic) {
    return Status::DataLoss("wire: bad frame magic");
  }
  const uint64_t stored = ReadU64(p + bytes.size() - kChecksumSize);
  if (Checksum(p, bytes.size() - kChecksumSize) != stored) {
    return Status::DataLoss("wire: frame checksum mismatch");
  }
  FrameView view;
  view.kind = static_cast<uint8_t>(p[4]);
  view.count = ReadU64(p + 5);
  view.payload = p + kHeaderSize;
  view.payload_size = bytes.size() - kHeaderSize - kChecksumSize;
  return view;
}

size_t FrameWireSize(size_t payload_size) {
  return kHeaderSize + payload_size + kChecksumSize;
}

Result<std::string> EncodeMeasurement(const std::vector<double>& y) {
  for (size_t i = 0; i < y.size(); ++i) {
    if (!std::isfinite(y[i])) {
      return Status::InvalidArgument(
          "wire: non-finite measurement entry at row " + std::to_string(i));
    }
  }
  std::string out;
  out.reserve(MeasurementWireSize(y.size()));
  AppendU32(&out, kMagic);
  out.push_back(static_cast<char>(kKindMeasurement));
  AppendU64(&out, y.size());
  for (double v : y) AppendF64(&out, v);
  FinishMessage(&out);
  return out;
}

Result<std::vector<double>> DecodeMeasurement(const std::string& bytes) {
  uint64_t count = 0;
  CSOD_ASSIGN_OR_RETURN(const char* payload,
                        ValidateEnvelope(bytes, kKindMeasurement, 8, &count));
  std::vector<double> y(count);
  for (uint64_t i = 0; i < count; ++i) y[i] = ReadF64(payload + 8 * i);
  return y;
}

Result<std::string> EncodeKeyValues(const cs::SparseSlice& slice) {
  if (slice.indices.size() != slice.values.size()) {
    return Status::InvalidArgument("wire: slice index/value size mismatch");
  }
  for (size_t idx : slice.indices) {
    if (idx > UINT32_MAX) {
      return Status::InvalidArgument("wire: key id " + std::to_string(idx) +
                                     " exceeds 32-bit key space");
    }
  }
  for (size_t i = 0; i < slice.values.size(); ++i) {
    if (!std::isfinite(slice.values[i])) {
      return Status::InvalidArgument(
          "wire: non-finite value for key " +
          std::to_string(slice.indices[i]));
    }
  }
  std::string out;
  out.reserve(KeyValueWireSize(slice.nnz()));
  AppendU32(&out, kMagic);
  out.push_back(static_cast<char>(kKindKeyValues));
  AppendU64(&out, slice.nnz());
  for (size_t i = 0; i < slice.nnz(); ++i) {
    AppendU32(&out, static_cast<uint32_t>(slice.indices[i]));
    AppendF64(&out, slice.values[i]);
  }
  FinishMessage(&out);
  return out;
}

Result<cs::SparseSlice> DecodeKeyValues(const std::string& bytes) {
  uint64_t count = 0;
  CSOD_ASSIGN_OR_RETURN(const char* payload,
                        ValidateEnvelope(bytes, kKindKeyValues, 12, &count));
  cs::SparseSlice slice;
  slice.indices.reserve(count);
  slice.values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    slice.indices.push_back(ReadU32(payload + 12 * i));
    slice.values.push_back(ReadF64(payload + 12 * i + 4));
  }
  return slice;
}

size_t MeasurementWireSize(size_t m) {
  return kHeaderSize + 8 * m + kChecksumSize;
}

size_t KeyValueWireSize(size_t nnz) {
  return kHeaderSize + 12 * nnz + kChecksumSize;
}

}  // namespace csod::dist
