#include "dist/randomized_max.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace csod::dist {

Result<RandomizedMaxResult> RunRandomizedMax(
    const Cluster& cluster, const RandomizedMaxOptions& options,
    CommStats* comm) {
  if (comm == nullptr) {
    return Status::InvalidArgument("RunRandomizedMax: comm must not be null");
  }
  if (cluster.num_nodes() == 0) {
    return Status::FailedPrecondition("RunRandomizedMax: empty cluster");
  }
  const size_t n = cluster.key_space_size();
  if (n == 0) {
    return Status::FailedPrecondition("RunRandomizedMax: empty key space");
  }
  size_t repetitions = options.repetitions;
  if (repetitions == 0) {
    repetitions = 8 * static_cast<size_t>(
                          std::ceil(std::log2(static_cast<double>(n) + 1)));
  }

  // Collect slices once; validate non-negativity (the algorithm's domain).
  std::vector<const cs::SparseSlice*> slices;
  for (NodeId id : cluster.NodeIds()) {
    CSOD_ASSIGN_OR_RETURN(const cs::SparseSlice* slice, cluster.Slice(id));
    for (double v : slice->values) {
      if (v < 0.0) {
        return Status::FailedPrecondition(
            "RunRandomizedMax requires non-negative partial values");
      }
    }
    slices.push_back(slice);
  }

  // Group membership of key `key` in repetition `rep` — derived from the
  // shared seed, so every node computes it without coordination.
  auto group_of = [&](size_t rep, size_t key) -> int {
    return static_cast<int>(
        HashCombine(HashCombine(options.seed, rep), key) & 1);
  };

  const std::vector<NodeId> ids = cluster.NodeIds();
  Channel channel(comm);  // Baseline: perfect network.
  std::vector<uint32_t> wins(n, 0);
  channel.BeginRound();  // All repetitions ship in parallel (single round).
  for (size_t rep = 0; rep < repetitions; ++rep) {
    double group_sum[2] = {0.0, 0.0};
    for (const cs::SparseSlice* slice : slices) {
      // Each node contributes its two local group sums.
      for (size_t j = 0; j < slice->indices.size(); ++j) {
        group_sum[group_of(rep, slice->indices[j])] += slice->values[j];
      }
    }
    const int winner = group_sum[1] > group_sum[0] ? 1 : 0;
    for (size_t key = 0; key < n; ++key) {
      if (group_of(rep, key) == winner) ++wins[key];
    }
  }
  // 2 group-sum values per node per repetition.
  for (size_t l = 0; l < slices.size(); ++l) {
    channel.Send(ids[l], "group-sums", 2 * repetitions, kValueBytes);
  }

  // Highest vote count wins; one exact lookup for the reported value.
  size_t best_key = 0;
  for (size_t key = 1; key < n; ++key) {
    if (wins[key] > wins[best_key]) best_key = key;
  }
  double exact = 0.0;
  for (const cs::SparseSlice* slice : slices) {
    for (size_t j = 0; j < slice->indices.size(); ++j) {
      if (slice->indices[j] == best_key) exact += slice->values[j];
    }
  }
  // Coordinator-driven exact lookup of the winner: control plane.
  channel.Control("final-lookup", slices.size(), kKeyValueBytes);

  RandomizedMaxResult result;
  result.key_index = best_key;
  result.value = exact;
  result.repetitions = repetitions;
  return result;
}

}  // namespace csod::dist
