#include "outlier/outlier.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace csod::outlier {

namespace {

// Sorts outliers by divergence descending, ties by key index ascending,
// then truncates to k.
void SortAndTruncate(std::vector<Outlier>* outliers, size_t k) {
  std::sort(outliers->begin(), outliers->end(),
            [](const Outlier& a, const Outlier& b) {
              if (a.divergence != b.divergence) {
                return a.divergence > b.divergence;
              }
              return a.key_index < b.key_index;
            });
  if (outliers->size() > k) outliers->resize(k);
}

}  // namespace

double ComputeMode(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  std::unordered_map<double, size_t> counts;
  counts.reserve(x.size());
  for (double v : x) ++counts[v];
  double mode = x.front();
  size_t best = 0;
  for (const auto& [value, count] : counts) {
    if (count > best || (count == best && value < mode)) {
      best = count;
      mode = value;
    }
  }
  return mode;
}

bool IsMajorityDominated(const std::vector<double>& x) {
  if (x.empty()) return false;
  std::unordered_map<double, size_t> counts;
  counts.reserve(x.size());
  for (double v : x) {
    if (++counts[v] * 2 > x.size()) return true;
  }
  return false;
}

OutlierSet ExactKOutliers(const std::vector<double>& x, size_t k) {
  return KOutliersGivenMode(x, ComputeMode(x), k);
}

OutlierSet KOutliersGivenMode(const std::vector<double>& x, double mode,
                              size_t k) {
  OutlierSet result;
  result.mode = mode;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] == mode) continue;
    result.outliers.push_back(
        Outlier{i, x[i], std::fabs(x[i] - mode)});
  }
  SortAndTruncate(&result.outliers, k);
  return result;
}

OutlierSet KOutliersFromRecovery(const cs::BompResult& recovery, size_t k) {
  OutlierSet result;
  result.mode = recovery.mode;
  for (const cs::RecoveredEntry& e : recovery.entries) {
    const double divergence = std::fabs(e.value - recovery.mode);
    if (divergence == 0.0) continue;
    result.outliers.push_back(Outlier{e.index, e.value, divergence});
  }
  SortAndTruncate(&result.outliers, k);
  return result;
}

std::vector<Outlier> TopK(const std::vector<double>& x, size_t k) {
  std::vector<Outlier> all;
  all.reserve(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    all.push_back(Outlier{i, x[i], x[i]});
  }
  std::sort(all.begin(), all.end(), [](const Outlier& a, const Outlier& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.key_index < b.key_index;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<Outlier> AbsoluteTopK(const std::vector<double>& x, size_t k) {
  std::vector<Outlier> all;
  all.reserve(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    all.push_back(Outlier{i, x[i], std::fabs(x[i])});
  }
  SortAndTruncate(&all, k);
  return all;
}

}  // namespace csod::outlier
