#include "outlier/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace csod::outlier {

double ErrorOnKey(const OutlierSet& truth, const OutlierSet& estimate) {
  if (truth.outliers.empty()) return 0.0;
  std::unordered_set<size_t> truth_keys;
  truth_keys.reserve(truth.outliers.size());
  for (const Outlier& o : truth.outliers) truth_keys.insert(o.key_index);
  size_t hits = 0;
  for (const Outlier& o : estimate.outliers) {
    hits += truth_keys.count(o.key_index);
  }
  return 1.0 -
         static_cast<double>(hits) / static_cast<double>(truth.outliers.size());
}

double ErrorOnValue(const OutlierSet& truth, const OutlierSet& estimate) {
  if (truth.outliers.empty()) return 0.0;
  std::vector<double> tv;
  tv.reserve(truth.outliers.size());
  for (const Outlier& o : truth.outliers) tv.push_back(o.value);
  std::vector<double> ev;
  ev.reserve(truth.outliers.size());
  for (const Outlier& o : estimate.outliers) ev.push_back(o.value);
  std::sort(tv.begin(), tv.end(), std::greater<double>());
  std::sort(ev.begin(), ev.end(), std::greater<double>());
  // A long estimate keeps its |truth| largest values; a short estimate is
  // padded with its own mode (an undetected outlier is implicitly reported
  // as "normal") and re-sorted.
  if (ev.size() > tv.size()) ev.resize(tv.size());
  if (ev.size() < tv.size()) {
    ev.resize(tv.size(), estimate.mode);
    std::sort(ev.begin(), ev.end(), std::greater<double>());
  }

  double diff_sq = 0.0;
  double truth_sq = 0.0;
  for (size_t i = 0; i < tv.size(); ++i) {
    const double d = tv[i] - ev[i];
    diff_sq += d * d;
    truth_sq += tv[i] * tv[i];
  }
  if (truth_sq == 0.0) return diff_sq == 0.0 ? 0.0 : 1.0;
  return std::sqrt(diff_sq / truth_sq);
}

KeySetQuality KeyQuality(const OutlierSet& truth, const OutlierSet& estimate) {
  std::unordered_set<size_t> truth_keys;
  truth_keys.reserve(truth.outliers.size());
  for (const Outlier& o : truth.outliers) truth_keys.insert(o.key_index);
  size_t hits = 0;
  for (const Outlier& o : estimate.outliers) {
    hits += truth_keys.count(o.key_index);
  }
  KeySetQuality q;
  q.precision = estimate.outliers.empty()
                    ? 1.0
                    : static_cast<double>(hits) /
                          static_cast<double>(estimate.outliers.size());
  q.recall = truth.outliers.empty()
                 ? 1.0
                 : static_cast<double>(hits) /
                       static_cast<double>(truth.outliers.size());
  q.f1 = (q.precision + q.recall) == 0.0
             ? 0.0
             : 2.0 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

DegradedRunStats EvaluateDegradedRun(const OutlierSet& truth,
                                     const OutlierSet& estimate,
                                     size_t nodes_total, size_t nodes_excluded,
                                     uint64_t retries) {
  DegradedRunStats stats;
  stats.nodes_total = nodes_total;
  stats.nodes_excluded = nodes_excluded;
  stats.retries = retries;
  stats.error_on_key = ErrorOnKey(truth, estimate);
  stats.error_on_value = ErrorOnValue(truth, estimate);
  stats.quality = KeyQuality(truth, estimate);
  return stats;
}

ErrorStats ErrorStats::FromSamples(const std::vector<double>& samples) {
  ErrorStats stats;
  if (samples.empty()) return stats;
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double s : samples) {
    stats.min = std::min(stats.min, s);
    stats.max = std::max(stats.max, s);
    sum += s;
  }
  stats.avg = sum / static_cast<double>(samples.size());
  stats.count = samples.size();
  return stats;
}

}  // namespace csod::outlier
