#ifndef CSOD_OUTLIER_AGGREGATES_H_
#define CSOD_OUTLIER_AGGREGATES_H_

#include <cstddef>

#include "common/status.h"
#include "cs/bomp.h"

namespace csod::outlier {

/// \brief Aggregate queries answered directly from a CS recovery.
///
/// The paper (Sections 1 and 8) notes that the CS sketch supports "similar
/// aggregation queries (mean, top-k, percentile, ...)" beyond outliers:
/// once BOMP has produced (mode b, recovered entries), the full vector is
/// implicitly `b` everywhere except the entries, so order statistics and
/// moments follow in O(|entries| log |entries|) without materializing N
/// values. Exact when the recovery is exact; approximations degrade with
/// the unrecovered residual otherwise.

/// Sum of the implicit recovered vector of length n.
double RecoveredSum(const cs::BompResult& recovery, size_t n);

/// Mean of the implicit recovered vector.
Result<double> RecoveredMean(const cs::BompResult& recovery, size_t n);

/// Population variance of the implicit recovered vector.
Result<double> RecoveredVariance(const cs::BompResult& recovery, size_t n);

/// Nearest-rank percentile (p in [0, 100]) of the implicit recovered
/// vector; p = 50 is the median. Returns InvalidArgument for bad p or
/// n == 0, or when recovered entries exceed n.
Result<double> RecoveredPercentile(const cs::BompResult& recovery, size_t n,
                                   double p);

}  // namespace csod::outlier

#endif  // CSOD_OUTLIER_AGGREGATES_H_
