#ifndef CSOD_OUTLIER_OUTLIER_H_
#define CSOD_OUTLIER_OUTLIER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "cs/bomp.h"

namespace csod::outlier {

/// One detected outlier: a key (by global-dictionary index), its aggregated
/// value, and its divergence from the mode.
struct Outlier {
  size_t key_index = 0;
  double value = 0.0;
  /// |value - mode|; the k-outlier problem ranks by this.
  double divergence = 0.0;
};

/// A k-outlier answer: the detected outliers (sorted by divergence,
/// descending; ties by key index) plus the mode they diverge from.
struct OutlierSet {
  std::vector<Outlier> outliers;
  double mode = 0.0;
};

/// Exact mode of `x`: the most frequent value (ties broken toward the
/// smaller value). For majority-dominated data this is the unique b of
/// Definition 2.
double ComputeMode(const std::vector<double>& x);

/// True iff some value occurs in more than half of the entries
/// (Definition 2: the data is majority-dominated).
bool IsMajorityDominated(const std::vector<double>& x);

/// Exact (centralized) k-outlier reference: computes the mode and returns
/// the min(k, |O|) entries furthest from it, where O = {i : x_i != mode}.
OutlierSet ExactKOutliers(const std::vector<double>& x, size_t k);

/// k-outlier selection against a caller-supplied mode; still excludes
/// entries exactly equal to the mode.
OutlierSet KOutliersGivenMode(const std::vector<double>& x, double mode,
                              size_t k);

/// k-outlier selection from a sparse recovered candidate set (the BOMP
/// output): picks the min(k, entries) recovered entries furthest from the
/// recovered mode.
OutlierSet KOutliersFromRecovery(const cs::BompResult& recovery, size_t k);

/// Classic top-k by value (largest values) — what Figure 1(b) contrasts
/// with outlier-k. Sorted descending by value.
std::vector<Outlier> TopK(const std::vector<double>& x, size_t k);

/// Top-k by absolute value, the other Figure 1(b) contrast.
std::vector<Outlier> AbsoluteTopK(const std::vector<double>& x, size_t k);

}  // namespace csod::outlier

#endif  // CSOD_OUTLIER_OUTLIER_H_
