#ifndef CSOD_OUTLIER_METRICS_H_
#define CSOD_OUTLIER_METRICS_H_

#include <cstddef>
#include <vector>

#include "outlier/outlier.h"

namespace csod::outlier {

/// \brief The paper's two estimation-quality metrics (Section 6.1).
///
/// Given the true k-outliers O_T and an estimate O_E (both of size k):
///  - Error on Key:    EK = 1 - |O_T.Key ∩ O_E.Key| / k        ∈ [0, 1]
///  - Error on Value:  EV = ||sort(O_T.Value) - sort(O_E.Value)||₂
///                          / ||O_T.Value||₂
/// where both value lists are ordered by value before comparison.

/// EK between two outlier sets. When the estimate has fewer than
/// |truth| keys, the missing keys count as errors.
double ErrorOnKey(const OutlierSet& truth, const OutlierSet& estimate);

/// EV between two outlier sets. Value lists are sorted descending; a short
/// estimate is padded with its own mode (the recovered "normal" value).
/// Returns 0 when the truth has no outliers.
double ErrorOnValue(const OutlierSet& truth, const OutlierSet& estimate);

/// Aggregate of min/max/mean over repeated trials, as reported in
/// Figures 5-8 ("MAX, MIN and AVG ... in the 100 runs").
struct ErrorStats {
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
  size_t count = 0;

  /// Computes stats over `samples`; zeroes when empty.
  static ErrorStats FromSamples(const std::vector<double>& samples);
};

}  // namespace csod::outlier

#endif  // CSOD_OUTLIER_METRICS_H_
