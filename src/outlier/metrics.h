#ifndef CSOD_OUTLIER_METRICS_H_
#define CSOD_OUTLIER_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "outlier/outlier.h"

namespace csod::outlier {

/// \brief The paper's two estimation-quality metrics (Section 6.1).
///
/// Given the true k-outliers O_T and an estimate O_E (both of size k):
///  - Error on Key:    EK = 1 - |O_T.Key ∩ O_E.Key| / k        ∈ [0, 1]
///  - Error on Value:  EV = ||sort(O_T.Value) - sort(O_E.Value)||₂
///                          / ||O_T.Value||₂
/// where both value lists are ordered by value before comparison.

/// EK between two outlier sets. When the estimate has fewer than
/// |truth| keys, the missing keys count as errors.
double ErrorOnKey(const OutlierSet& truth, const OutlierSet& estimate);

/// EV between two outlier sets. Value lists are sorted descending; a short
/// estimate is padded with its own mode (the recovered "normal" value).
/// Returns 0 when the truth has no outliers.
double ErrorOnValue(const OutlierSet& truth, const OutlierSet& estimate);

/// \brief Key-set precision/recall of an estimate against the truth.
///
/// EK treats a miss and a false alarm identically; degraded (partial-
/// aggregate) runs need the two separated, because excluding nodes
/// typically costs recall (outliers carried by the lost slices vanish)
/// while precision degrades only when the lost mass forges new outliers.
struct KeySetQuality {
  double precision = 1.0;  ///< |truth ∩ estimate| / |estimate|.
  double recall = 1.0;     ///< |truth ∩ estimate| / |truth|.
  double f1 = 1.0;         ///< Harmonic mean (0 when both are 0).
};

/// Precision/recall/F1 of the estimate's key set. An empty estimate has
/// precision 1 (vacuous) and recall 0 unless the truth is empty too.
KeySetQuality KeyQuality(const OutlierSet& truth, const OutlierSet& estimate);

/// \brief Full accounting of one degraded protocol run: estimate quality
/// against the *full-cluster* ground truth plus the fault-tolerance
/// bookkeeping (how many slices the aggregate was missing and what the
/// retries cost). Emitted per point by the fault-sweep bench
/// (BENCH_faults.json).
struct DegradedRunStats {
  size_t nodes_total = 0;
  size_t nodes_excluded = 0;
  uint64_t retries = 0;
  double error_on_key = 0.0;
  double error_on_value = 0.0;
  KeySetQuality quality;

  /// Fraction of slices missing from the aggregate.
  double excluded_fraction() const {
    return nodes_total == 0
               ? 0.0
               : static_cast<double>(nodes_excluded) /
                     static_cast<double>(nodes_total);
  }
};

/// Evaluates a (possibly degraded) run against the full-cluster truth.
DegradedRunStats EvaluateDegradedRun(const OutlierSet& truth,
                                     const OutlierSet& estimate,
                                     size_t nodes_total, size_t nodes_excluded,
                                     uint64_t retries);

/// Aggregate of min/max/mean over repeated trials, as reported in
/// Figures 5-8 ("MAX, MIN and AVG ... in the 100 runs").
struct ErrorStats {
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;
  size_t count = 0;

  /// Computes stats over `samples`; zeroes when empty.
  static ErrorStats FromSamples(const std::vector<double>& samples);
};

}  // namespace csod::outlier

#endif  // CSOD_OUTLIER_METRICS_H_
