#include "outlier/aggregates.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace csod::outlier {

double RecoveredSum(const cs::BompResult& recovery, size_t n) {
  double sum = recovery.mode * static_cast<double>(n);
  for (const cs::RecoveredEntry& e : recovery.entries) {
    sum += e.value - recovery.mode;
  }
  return sum;
}

Result<double> RecoveredMean(const cs::BompResult& recovery, size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("RecoveredMean: n must be > 0");
  }
  return RecoveredSum(recovery, n) / static_cast<double>(n);
}

Result<double> RecoveredVariance(const cs::BompResult& recovery, size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("RecoveredVariance: n must be > 0");
  }
  CSOD_ASSIGN_OR_RETURN(double mean, RecoveredMean(recovery, n));
  // (n - e) keys sit exactly at the mode; the entries deviate.
  const double mode_dev = recovery.mode - mean;
  double acc = mode_dev * mode_dev *
               static_cast<double>(n - recovery.entries.size());
  for (const cs::RecoveredEntry& e : recovery.entries) {
    const double dev = e.value - mean;
    acc += dev * dev;
  }
  return acc / static_cast<double>(n);
}

Result<double> RecoveredPercentile(const cs::BompResult& recovery, size_t n,
                                   double p) {
  if (n == 0) {
    return Status::InvalidArgument("RecoveredPercentile: n must be > 0");
  }
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("RecoveredPercentile: p must be in "
                                   "[0, 100], got " + std::to_string(p));
  }
  if (recovery.entries.size() > n) {
    return Status::InvalidArgument(
        "RecoveredPercentile: more recovered entries than n");
  }

  // Nearest-rank over the implicit multiset: `entries` values plus
  // (n - e) copies of the mode.
  std::vector<double> values;
  values.reserve(recovery.entries.size());
  for (const cs::RecoveredEntry& e : recovery.entries) {
    values.push_back(e.value);
  }
  std::sort(values.begin(), values.end());

  const size_t mode_count = n - values.size();
  size_t rank =  // 1-based nearest rank.
      std::max<size_t>(1, static_cast<size_t>(
                              std::ceil(p / 100.0 * static_cast<double>(n))));
  rank = std::min(rank, n);

  // Position of the mode block in the implicit sorted order.
  const size_t below =
      std::lower_bound(values.begin(), values.end(), recovery.mode) -
      values.begin();
  if (rank <= below) return values[rank - 1];
  if (rank <= below + mode_count) return recovery.mode;
  return values[rank - 1 - mode_count];
}

}  // namespace csod::outlier
