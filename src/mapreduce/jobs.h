#ifndef CSOD_MAPREDUCE_JOBS_H_
#define CSOD_MAPREDUCE_JOBS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cs/bomp.h"
#include "cs/compressor.h"
#include "mapreduce/cost_model.h"
#include "obs/telemetry.h"
#include "outlier/outlier.h"

namespace csod::mr {

/// One raw log record as seen by a mapper: a key (global-dictionary index)
/// and a score contribution. Thousands of these aggregate into one key's
/// value — the "partial aggregation" the paper's mappers perform.
struct ScoreEvent {
  uint64_t key = 0;
  double score = 0.0;
};

/// Expands additive slices into raw event splits: each (key, value) entry
/// becomes `events_per_key` ScoreEvents whose scores sum to the value
/// exactly. This gives map tasks realistic aggregation work.
std::vector<std::vector<ScoreEvent>> ExpandSlicesToEvents(
    const std::vector<cs::SparseSlice>& slices, size_t events_per_key,
    uint64_t seed);

/// Result of the traditional (shuffle-everything) top-k job.
struct TopKJobResult {
  std::vector<outlier::Outlier> top;  ///< value-ranked, size <= k.
  JobStats stats;
};

/// \brief Baseline job of Section 6.2: mappers partially aggregate (via
/// the engine's `combine_fn` hook) and ship every (key, partial sum) pair
/// (96-bit tuples); one reducer merges, sorts, and outputs the top-k.
/// Shuffle volume grows with the number of distinct keys.
///
/// `combine = false` disables the in-mapper partial aggregation (every raw
/// event is shuffled) — the ablation showing why the paper's mappers
/// "locally (and partially) aggregate the scores" before transmitting.
/// With `combine = true` the stats carry both pre- and post-combine
/// shuffle volume (JobStats::pre_combine_shuffle_*). `telemetry` receives
/// the engine's `mr.*` spans and counters; null is free.
Result<TopKJobResult> RunTraditionalTopKJob(
    const std::vector<std::vector<ScoreEvent>>& splits, size_t k,
    bool combine = true, obs::Telemetry* telemetry = nullptr);

/// Result of the traditional exact-outlier job.
struct OutlierJobResult {
  outlier::OutlierSet outliers;
  JobStats stats;
};

/// Exact k-outlier job with full shuffling: same wire format as the
/// traditional top-k job, but the reducer computes the mode and the
/// k-outliers over the dense aggregate (key space size `n`).
Result<OutlierJobResult> RunTraditionalOutlierJob(
    const std::vector<std::vector<ScoreEvent>>& splits, size_t n, size_t k,
    obs::Telemetry* telemetry = nullptr);

/// Configuration of the CS-based MapReduce job (Algorithms 3 and 4).
struct CsJobOptions {
  size_t n = 0;           ///< Global key-list length N.
  size_t m = 0;           ///< Measurement size M.
  size_t k = 5;           ///< Outliers requested.
  uint64_t seed = 1;      ///< Consensus seed for Φ0.
  size_t iterations = 0;  ///< R; 0 = the paper's f(k).
  /// Dense-cache budget for the *reducer-side* matrix (mappers always use
  /// the implicit column-regenerated form — they only need O(nnz·M) work).
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Telemetry sink ("job.cs" span, per-mapper "job.*" rollups; forwarded
  /// to the compressor and BOMP). Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Result of the CS-based job.
struct CsJobResult {
  outlier::OutlierSet outliers;
  cs::BompResult recovery;
  JobStats stats;
};

/// \brief CS-Mapper / CS-Reducer job (Section 5): mappers partially
/// aggregate, vectorize against the global key list, compress with the
/// seeded Φ0, and ship M 64-bit measurements each; the single reducer sums
/// the measurement vectors and recovers outliers and mode with BOMP.
Result<CsJobResult> RunCsOutlierJob(
    const std::vector<std::vector<ScoreEvent>>& splits,
    const CsJobOptions& options);

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_JOBS_H_
