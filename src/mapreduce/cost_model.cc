#include "mapreduce/cost_model.h"

#include <algorithm>
#include <cmath>

namespace csod::mr {

double ClusterCostModel::Waves(size_t tasks) const {
  if (tasks == 0) return 0.0;
  const size_t workers = std::max<size_t>(num_workers, 1);
  return std::ceil(static_cast<double>(tasks) /
                   static_cast<double>(workers));
}

double ClusterCostModel::MapPhaseSeconds(const JobStats& stats) const {
  if (stats.num_map_tasks == 0) return 0.0;
  const double parallelism = static_cast<double>(
      std::min(num_workers, stats.num_map_tasks));
  const double io_sec =
      (static_cast<double>(stats.input_bytes) +
       static_cast<double>(stats.shuffle_bytes)) /
      disk_bandwidth_bytes_per_sec / parallelism;
  // Straggler-aware: the slowest single map task lower-bounds the phase.
  const double compute_sec =
      compute_scale * std::max(stats.map_compute_sec / parallelism,
                               stats.map_compute_max_sec);
  const double serialize_sec = static_cast<double>(stats.shuffle_tuples) *
                               serialize_per_tuple_cpu_sec / parallelism;
  return Waves(stats.num_map_tasks) * per_wave_overhead_sec + io_sec +
         compute_sec + serialize_sec;
}

double ClusterCostModel::ShuffleSeconds(const JobStats& stats) const {
  return static_cast<double>(stats.shuffle_bytes) /
         network_bandwidth_bytes_per_sec;
}

double ClusterCostModel::ReducePhaseSeconds(const JobStats& stats) const {
  if (stats.num_reduce_tasks == 0) return 0.0;
  const double parallelism = static_cast<double>(
      std::min(num_workers, std::max<size_t>(stats.num_reduce_tasks, 1)));
  const double merge_sec = static_cast<double>(stats.shuffle_bytes) /
                           disk_bandwidth_bytes_per_sec / parallelism;
  // Measured grouping cost (combine + radix partition + merge into
  // sorted interned groups) — the reduce side's sort/merge in Hadoop
  // terms.
  const double grouping_sec =
      stats.shuffle_build_sec * compute_scale / parallelism;
  const double compute_sec =
      compute_scale * std::max(stats.reduce_compute_sec / parallelism,
                               stats.reduce_compute_max_sec);
  const double deserialize_sec = static_cast<double>(stats.shuffle_tuples) *
                                 deserialize_per_tuple_cpu_sec / parallelism;
  return Waves(stats.num_reduce_tasks) * per_wave_overhead_sec +
         ShuffleSeconds(stats) + merge_sec + grouping_sec + compute_sec +
         deserialize_sec;
}

double ClusterCostModel::EndToEndSeconds(const JobStats& stats) const {
  return MapPhaseSeconds(stats) + ReducePhaseSeconds(stats);
}

}  // namespace csod::mr
