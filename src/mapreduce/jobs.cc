#include "mapreduce/jobs.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "common/grid.h"
#include "common/parallel.h"
#include "common/random.h"
#include "dist/comm.h"
#include "mapreduce/engine.h"

namespace csod::mr {

std::vector<std::vector<ScoreEvent>> ExpandSlicesToEvents(
    const std::vector<cs::SparseSlice>& slices, size_t events_per_key,
    uint64_t seed) {
  std::vector<std::vector<ScoreEvent>> splits;
  splits.reserve(slices.size());
  Rng rng(seed);
  for (const cs::SparseSlice& slice : slices) {
    std::vector<ScoreEvent> events;
    events.reserve(slice.nnz() * std::max<size_t>(events_per_key, 1));
    for (size_t j = 0; j < slice.indices.size(); ++j) {
      const uint64_t key = slice.indices[j];
      const double value = slice.values[j];
      if (events_per_key <= 1) {
        events.push_back(ScoreEvent{key, value});
        continue;
      }
      // Random additive split that sums to `value` exactly: shares are
      // grid multiples (common/grid.h) and the last event closes the sum.
      double assigned = 0.0;
      for (size_t e = 0; e + 1 < events_per_key; ++e) {
        const double share = QuantizeToGrid(
            value * rng.NextDouble() * 2.0 /
            static_cast<double>(events_per_key));
        events.push_back(ScoreEvent{key, share});
        assigned += share;
      }
      events.push_back(ScoreEvent{key, value - assigned});
    }
    splits.push_back(std::move(events));
  }
  return splits;
}

namespace {

// In-mapper combining: aggregate a split's events per key.
std::unordered_map<uint64_t, double> CombineSplit(
    const std::vector<ScoreEvent>& split) {
  std::unordered_map<uint64_t, double> sums;
  sums.reserve(split.size() / 4 + 1);
  for (const ScoreEvent& e : split) sums[e.key] += e.score;
  return sums;
}

// Map function shared by the traditional jobs: ship one 96-bit
// (keyid, score) tuple per raw event; partial aggregation is the engine's
// combine_fn (below), so the stats carry pre- vs post-combine volume.
void TraditionalMap(const std::vector<ScoreEvent>& split,
                    Emitter<uint64_t, double>* emitter) {
  for (const ScoreEvent& e : split) emitter->Emit(e.key, e.score);
}

// In-mapper combiner: fold one map task's scores for a key into their sum
// (emit order, so the bits match an event-order accumulation).
double SumCombiner(const uint64_t&, Span<double> values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum;
}

}  // namespace

Result<TopKJobResult> RunTraditionalTopKJob(
    const std::vector<std::vector<ScoreEvent>>& splits, size_t k,
    bool combine, obs::Telemetry* telemetry) {
  Job<ScoreEvent, uint64_t, double, outlier::Outlier> job;
  job.map_fn = TraditionalMap;
  if (combine) job.combine_fn = SumCombiner;
  job.fixed_tuple_bytes = dist::kKeyValueBytes;
  job.telemetry = telemetry;
  job.task_reduce_fn = [k](ReduceGroups<uint64_t, double>& groups,
                           std::vector<outlier::Outlier>* out) {
    // Merge, then select the k largest aggregates (the reducer-side sort
    // the paper charges the traditional implementation for).
    std::vector<outlier::Outlier> all;
    all.reserve(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      double sum = 0.0;
      for (double v : groups.values(g)) sum += v;
      const size_t key = static_cast<size_t>(groups.key(g));
      all.push_back(outlier::Outlier{key, sum, sum});
    }
    std::sort(all.begin(), all.end(),
              [](const outlier::Outlier& a, const outlier::Outlier& b) {
                if (a.value != b.value) return a.value > b.value;
                return a.key_index < b.key_index;
              });
    if (all.size() > k) all.resize(k);
    for (auto& o : all) out->push_back(o);
  };

  CSOD_ASSIGN_OR_RETURN(auto run, RunJob(splits, job));
  TopKJobResult result;
  result.top = std::move(run.output);
  result.stats = run.stats;
  return result;
}

Result<OutlierJobResult> RunTraditionalOutlierJob(
    const std::vector<std::vector<ScoreEvent>>& splits, size_t n, size_t k,
    obs::Telemetry* telemetry) {
  Job<ScoreEvent, uint64_t, double, outlier::Outlier> job;
  job.map_fn = TraditionalMap;
  job.combine_fn = SumCombiner;
  job.fixed_tuple_bytes = dist::kKeyValueBytes;
  job.telemetry = telemetry;
  double mode = 0.0;
  job.task_reduce_fn = [n, k, &mode](ReduceGroups<uint64_t, double>& groups,
                                     std::vector<outlier::Outlier>* out) {
    std::vector<double> x(n, 0.0);
    for (size_t g = 0; g < groups.size(); ++g) {
      const uint64_t key = groups.key(g);
      if (key >= n) continue;
      for (double v : groups.values(g)) x[key] += v;
    }
    outlier::OutlierSet set = outlier::ExactKOutliers(x, k);
    mode = set.mode;
    for (auto& o : set.outliers) out->push_back(o);
  };

  CSOD_ASSIGN_OR_RETURN(auto run, RunJob(splits, job));
  OutlierJobResult result;
  result.outliers.outliers = std::move(run.output);
  result.outliers.mode = mode;
  result.stats = run.stats;
  return result;
}

Result<CsJobResult> RunCsOutlierJob(
    const std::vector<std::vector<ScoreEvent>>& splits,
    const CsJobOptions& options) {
  if (options.n == 0 || options.m == 0) {
    return Status::InvalidArgument("RunCsOutlierJob: n and m must be > 0");
  }
  obs::TraceSpan job_span(options.telemetry, "job.cs");

  // Mapper-side matrix: implicit (no dense cache). Every mapper generates
  // the same Φ0 from the consensus seed (Algorithm 3) and only touches the
  // columns of its non-zero keys, costing O(nnz * M).
  cs::MeasurementMatrix mapper_matrix(options.m, options.n, options.seed,
                                      /*cache_budget_bytes=*/0);
  cs::Compressor compressor(&mapper_matrix);
  compressor.set_telemetry(options.telemetry);

  // Algorithm 3 (CS-Mapper), batched across mappers: partial aggregation
  // and vectorization per split (parallel, disjoint slots), then one fused
  // CompressEach over all slices — hot columns shared by several mappers
  // are generated once per batch instead of once per mapper, and
  // compression parallelizes across mappers, not just within one. Each
  // mapper's y_l is bit-identical to a solo Compress (compressor_test), and
  // the map_fn below still emits per-mapper rows so shuffle accounting is
  // unchanged.
  std::vector<cs::SparseSlice> slices(splits.size());
  std::vector<Status> combine_status(splits.size());
  ParallelFor(splits.size(), 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      for (const auto& [key, sum] : CombineSplit(splits[s])) {
        if (key >= options.n) {
          combine_status[s] = Status::OutOfRange(
              "RunCsOutlierJob: event key " + std::to_string(key) +
              " out of key list length " + std::to_string(options.n));
          break;
        }
        slices[s].indices.push_back(key);
        slices[s].values.push_back(sum);
      }
    }
  });
  for (const Status& status : combine_status) CSOD_RETURN_NOT_OK(status);
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    // Per-mapper rollups: input volume and distinct-key width of each
    // split, recorded serially (snapshot determinism).
    options.telemetry->AddCounter("job.mappers", splits.size());
    for (size_t s = 0; s < splits.size(); ++s) {
      options.telemetry->RecordValue("job.mapper_events",
                                     static_cast<double>(splits[s].size()));
      options.telemetry->RecordValue("job.mapper_nnz",
                                     static_cast<double>(slices[s].nnz()));
    }
  }
  std::vector<const cs::SparseSlice*> slice_views;
  slice_views.reserve(slices.size());
  for (const cs::SparseSlice& slice : slices) slice_views.push_back(&slice);
  CSOD_ASSIGN_OR_RETURN(const std::vector<std::vector<double>> measurements,
                        compressor.CompressEach(slice_views));

  Job<ScoreEvent, uint32_t, double, outlier::Outlier> job;
  job.telemetry = options.telemetry;
  job.map_fn = [&](const std::vector<ScoreEvent>& split,
                   Emitter<uint32_t, double>* emitter) {
    // The engine maps splits in place, so the element address recovers the
    // split index into the precomputed batch.
    const size_t s = static_cast<size_t>(&split - splits.data());
    const std::vector<double>& y = measurements[s];
    for (size_t i = 0; i < y.size(); ++i) {
      emitter->Emit(static_cast<uint32_t>(i), y[i]);
    }
  };
  // 64-bit measurements on the wire (S_M in Section 6.1.2); the row index
  // is positional in a real implementation.
  job.fixed_tuple_bytes = dist::kMeasurementBytes;

  cs::BompResult recovery;
  double recovered_mode = 0.0;
  Status reduce_status = Status::OK();
  job.task_reduce_fn = [&](ReduceGroups<uint32_t, double>& groups,
                           std::vector<outlier::Outlier>* out) {
    // Algorithm 4 (CS-Reducer): sum measurement rows into the global y,
    // regenerate Φ0 from the seed, recover with BOMP.
    std::vector<double> y(options.m, 0.0);
    for (size_t g = 0; g < groups.size(); ++g) {
      const uint32_t row = groups.key(g);
      if (row >= options.m) continue;
      for (double v : groups.values(g)) y[row] += v;
    }
    cs::MeasurementMatrix reducer_matrix(options.m, options.n, options.seed,
                                         options.cache_budget_bytes);
    cs::BompOptions bomp_options;
    bomp_options.max_iterations =
        options.iterations == 0 ? cs::DefaultIterationsForK(options.k)
                                : options.iterations;
    bomp_options.telemetry = options.telemetry;
    auto recovered = cs::RunBomp(reducer_matrix, y, bomp_options);
    if (!recovered.ok()) {
      reduce_status = recovered.status();
      return;
    }
    recovery = recovered.MoveValue();
    outlier::OutlierSet set =
        outlier::KOutliersFromRecovery(recovery, options.k);
    recovered_mode = set.mode;
    for (auto& o : set.outliers) out->push_back(o);
  };

  CSOD_ASSIGN_OR_RETURN(auto run, RunJob(splits, job));
  CSOD_RETURN_NOT_OK(reduce_status);

  CsJobResult result;
  result.outliers.outliers = std::move(run.output);
  result.outliers.mode = recovered_mode;
  result.recovery = std::move(recovery);
  result.stats = run.stats;
  return result;
}

}  // namespace csod::mr
