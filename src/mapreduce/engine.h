#ifndef CSOD_MAPREDUCE_ENGINE_H_
#define CSOD_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/shuffle.h"
#include "obs/telemetry.h"
#include "sim/buggify.h"

namespace csod::mr {

/// \brief Collects (key, value) pairs emitted by a map task into columnar
/// (struct-of-arrays) arena-backed buffers.
///
/// `Emit` is two pointer-bump appends — one into the key column, one into
/// the value column. There is no per-tuple allocation (chunks are carved
/// from the task's arena every kDefaultChunkElems tuples), no `std::pair`
/// materialization, and no byte-accounting callback in the loop: shuffle
/// bytes are accounted in one batched pass after `map_fn` returns
/// (tuples × Job::fixed_tuple_bytes, or one deferred sweep calling
/// Job::tuple_bytes per tuple).
template <typename K, typename V>
class Emitter {
 public:
  /// `arena` must outlive the emitter. `chunk_elems` overrides the column
  /// chunk granularity (tests use tiny chunks to exercise boundaries).
  explicit Emitter(Arena* arena,
                   size_t chunk_elems = ColumnChunks<K>::kDefaultChunkElems)
      : keys_(arena, chunk_elems), values_(arena, chunk_elems) {}

  /// Emits one intermediate pair.
  void Emit(K key, V value) {
    keys_.Append(std::move(key));
    values_.Append(std::move(value));
  }

  /// Tuples emitted so far.
  size_t size() const { return keys_.size(); }

  /// The columns (engine internals and tests).
  ColumnChunks<K>& keys() { return keys_; }
  ColumnChunks<V>& values() { return values_; }

 private:
  ColumnChunks<K> keys_;
  ColumnChunks<V> values_;
};

/// \brief Default reduce-task partitioner: a fixed splitmix64-style mixer.
///
/// `std::hash<K>` is *identity* for integers on libstdc++, so hashing a
/// structured key set (say, multiples of 8) through `% num_reduce_tasks`
/// produces skewed, structured partitions — and a different assignment on
/// every standard library, violating the cross-platform determinism
/// contract (DESIGN.md §10). Integral keys therefore go through SplitMix64
/// directly: the assignment is a pure function of the key's value,
/// byte-identical on every platform. Non-integral keys fall back to mixing
/// `std::hash<K>` (unskewed, but only as portable as that hash — supply a
/// `Job::partition_fn` when such keys need cross-platform pinning).
template <typename K>
size_t DefaultPartition(const K& key) {
  if constexpr (std::is_integral_v<K>) {
    return static_cast<size_t>(SplitMix64(static_cast<uint64_t>(key)));
  } else {
    return static_cast<size_t>(
        SplitMix64(static_cast<uint64_t>(std::hash<K>{}(key))));
  }
}

/// \brief Declarative description of a MapReduce job over the in-process
/// engine.
///
/// `Input` is one input record; `K`/`V` the intermediate pair; `Out` one
/// final output record. The map function runs once per split (task level,
/// so in-mapper combining — the paper's "partial aggregation for each key"
/// — is expressible either inside `map_fn` or declaratively via
/// `combine_fn`). Exactly one of `reduce_fn` (per key group) or
/// `task_reduce_fn` (whole reduce-task view, needed when the reducer is
/// not key-local, e.g. CS recovery over the complete measurement vector)
/// must be provided.
///
/// Type requirements: `K` must be copyable, equality- and less-than-
/// comparable, and hashable (integral, or via `std::hash`); `V` must be
/// movable and default-constructible. Group views hand reducers `Span<V>`
/// windows over the shuffle's value column — no per-key container exists.
///
/// Thread safety: the engine runs map tasks concurrently, and reduce tasks
/// concurrently, under the global parallelism limit
/// (common/parallel.h). `map_fn`, `combine_fn`, `partition_fn`,
/// `tuple_bytes`, and the reducer must therefore be safe to invoke
/// concurrently for *distinct* tasks (pure functions of their arguments,
/// or functions whose shared captures are read-only). A reducer that
/// mutates shared captured state is safe only with `num_reduce_tasks == 1`
/// (a single task runs on the calling thread).
template <typename Input, typename K, typename V, typename Out>
struct Job {
  /// Map task body: consumes one split, emits intermediate pairs.
  std::function<void(const std::vector<Input>&, Emitter<K, V>*)> map_fn;

  /// Per-key reduce: values of one key group -> output records. Keys are
  /// visited in sorted order; the span is a stable-ordered window over
  /// the shuffle's value column (map-task order, emit order within a
  /// task), mutable so reducers may move values out.
  std::function<void(const K&, Span<V>, std::vector<Out>*)> reduce_fn;

  /// Task-level reduce: the full grouped view of one reduce task
  /// (iteration order = sorted keys).
  std::function<void(ReduceGroups<K, V>&, std::vector<Out>*)>
      task_reduce_fn;

  /// Optional in-mapper combiner (the paper's "partial aggregation for
  /// each key"): folds one map task's values for one key — in emit order —
  /// into a single value shipped through the shuffle. When set, the engine
  /// accounts shuffle volume both before the combiner
  /// (`JobStats::pre_combine_shuffle_{bytes,tuples}`, what an
  /// uncombined job would have shipped) and after it
  /// (`JobStats::shuffle_{bytes,tuples}`, what actually crosses the wire).
  std::function<V(const K&, Span<V>)> combine_fn;

  /// On-wire size of one intermediate pair (shuffle accounting), applied
  /// in a deferred batch pass — never inside the emit loop. Exactly one
  /// of `tuple_bytes` / `fixed_tuple_bytes` must be set.
  std::function<uint64_t(const K&, const V&)> tuple_bytes;

  /// Constant on-wire tuple size (bytes): the fast path for the common
  /// fixed-width wire formats (dist::kKeyValueBytes,
  /// dist::kMeasurementBytes). When nonzero, byte accounting is a single
  /// multiply per batch and `tuple_bytes` must be unset.
  uint64_t fixed_tuple_bytes = 0;

  /// On-disk size of one input record (input IO accounting).
  uint64_t input_record_bytes = 16;

  /// Number of reduce tasks (keys are hash-partitioned across them).
  size_t num_reduce_tasks = 1;

  /// Optional custom partitioner: key -> reduce task (the engine applies
  /// `% num_reduce_tasks`). Defaults to the splitmix64 mixer
  /// (`DefaultPartition`), never raw `std::hash`. The default is
  /// dispatched as an inlined template — a custom function pays one
  /// `std::function` call per tuple, applied exactly once in the radix
  /// pass.
  std::function<size_t(const K&)> partition_fn;

  /// Telemetry sink: `mr.{map,shuffle,reduce}` spans, shuffle volume
  /// counters, and `mr.shuffle.{build,merge}_ms` per-task timing
  /// histograms. Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Result of a job run: the concatenated reducer outputs plus measured
/// stats (feed them to a ClusterCostModel for simulated timings).
template <typename Out>
struct JobResult {
  std::vector<Out> output;
  JobStats stats;
};

namespace internal {

/// Batched shuffle byte accounting over zipped column runs:
/// `count * fixed` when the job declares a constant tuple size, else one
/// deferred sweep calling `tuple_bytes` per tuple (still hoisted out of
/// the emit hot loop).
template <typename K, typename V, typename ForEachRun>
uint64_t AccountTupleBytes(
    uint64_t fixed_tuple_bytes,
    const std::function<uint64_t(const K&, const V&)>& tuple_bytes,
    size_t total_tuples, ForEachRun&& for_each_run) {
  if (fixed_tuple_bytes > 0) {
    return static_cast<uint64_t>(total_tuples) * fixed_tuple_bytes;
  }
  uint64_t bytes = 0;
  for_each_run([&](const K* keys, V* values, size_t count) {
    for (size_t i = 0; i < count; ++i) bytes += tuple_bytes(keys[i], values[i]);
  });
  return bytes;
}

/// One map task's post-map state: the arena that owns every buffer, the
/// emitter columns, optional combined tuples, and the per-reduce-task
/// partition blocks the reduce side merges from.
template <typename K, typename V>
struct MapTaskState {
  std::unique_ptr<Arena> arena;
  std::unique_ptr<Emitter<K, V>> emitter;
  // Combined (one tuple per distinct key) when the job has a combiner.
  std::vector<K> combined_keys;
  std::vector<V> combined_values;
  // Scatter destinations (num_reduce_tasks > 1).
  std::vector<ColumnChunks<K>> part_keys;
  std::vector<ColumnChunks<V>> part_values;
  // Views consumed by the shuffle merge, one per reduce task.
  std::vector<PartitionBlock<K, V>> blocks;

  double map_sec = 0.0;    // map_fn body only
  double build_sec = 0.0;  // combine + radix partition
  uint64_t input_bytes = 0;
  uint64_t pre_bytes = 0;
  uint64_t pre_tuples = 0;
  uint64_t post_bytes = 0;
  uint64_t post_tuples = 0;
};

/// Builds one map task's partition blocks from the tuples it will ship
/// (the emitter columns, or the combined tuples): zero-copy column views
/// for a single reduce task, radix scatter otherwise. `part_fn` is a
/// template parameter so the DefaultPartition path is fully inlined.
template <typename K, typename V, typename PartFn, typename ForEachRun>
void BuildPartitionBlocks(MapTaskState<K, V>* t, size_t num_reduce_tasks,
                          size_t total_tuples, const PartFn& part_fn,
                          ForEachRun&& for_each_run,
                          std::vector<TupleRun<K, V>>&& single_part_runs) {
  if (num_reduce_tasks == 1) {
    t->blocks.resize(1);
    t->blocks[0].runs = std::move(single_part_runs);
    t->blocks[0].count = total_tuples;
    return;
  }
  ScatterPartitions<K, V>(total_tuples, num_reduce_tasks, t->arena.get(),
                          part_fn, for_each_run, &t->part_keys,
                          &t->part_values, &t->blocks);
}

}  // namespace internal

/// \brief Executes a Job over the given input splits (one map task per
/// split), with an exact byte-accounted columnar shuffle.
///
/// Execution is parallel on the persistent-pool substrate, in three
/// phases, each a deterministic task-parallel loop (ParallelForEach):
///  1. *Map*: every map task runs concurrently with a task-local arena.
///     `map_fn` emits into columnar key/value chunks (no per-tuple
///     allocation); `map_compute_sec` times only the `map_fn` body.
///     Combining (hash-grouping over interned key ordinals, folded in
///     emit order), the radix partition pass (partition function applied
///     once per tuple), and batched byte accounting are charged to
///     `shuffle_build_sec`.
///  2. *Shuffle build*: per-reduce-task groups are built from the map
///     tasks' partition blocks, walked in fixed split order — so the
///     value order inside every key group (and therefore every downstream
///     float sum) is identical to a sequential engine's at any thread
///     count. Grouping is a two-pass intern + stable scatter into one
///     contiguous value column per reduce task; no per-key node
///     allocations, and values are moved, never copied.
///  3. *Reduce*: reduce tasks run concurrently over their ReduceGroups
///     (sorted key order, spans over the value column) into task-local
///     output vectors, concatenated in task order.
/// Output is bit-identical at any parallelism limit.
template <typename Input, typename K, typename V, typename Out>
Result<JobResult<Out>> RunJob(const std::vector<std::vector<Input>>& splits,
                              const Job<Input, K, V, Out>& job) {
  if (!job.map_fn) {
    return Status::InvalidArgument("RunJob: map_fn is required");
  }
  const bool has_bytes_fn = static_cast<bool>(job.tuple_bytes);
  if (has_bytes_fn == (job.fixed_tuple_bytes > 0)) {
    return Status::InvalidArgument(
        "RunJob: exactly one of tuple_bytes / fixed_tuple_bytes must be "
        "set");
  }
  const bool has_key_reduce = static_cast<bool>(job.reduce_fn);
  const bool has_task_reduce = static_cast<bool>(job.task_reduce_fn);
  if (has_key_reduce == has_task_reduce) {
    return Status::InvalidArgument(
        "RunJob: exactly one of reduce_fn / task_reduce_fn must be set");
  }
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument("RunJob: num_reduce_tasks must be > 0");
  }

  JobResult<Out> result;
  JobStats& stats = result.stats;
  stats.num_map_tasks = splits.size();
  stats.num_reduce_tasks = job.num_reduce_tasks;

  // --- Map phase (executed for real, timed per task). ---
  // Each task owns its arena, buffers, and stat slots, so the parallel
  // loop writes disjoint state only.
  using TaskState = internal::MapTaskState<K, V>;
  std::vector<TaskState> tasks(splits.size());
  Stopwatch map_wall;
  {
    obs::TraceSpan span(job.telemetry, "mr.map");
    ParallelForEach(splits.size(), [&](size_t s) {
      TaskState& t = tasks[s];
      t.arena = std::make_unique<Arena>();
      // Buggify: partition-buffer pressure — tiny column chunks force
      // every chunk-boundary path in the radix scatter and shuffle merge.
      // Pure layout change: emitted tuples, byte accounting, and output
      // are bit-identical either way.
      const size_t chunk_elems =
          CSOD_BUGGIFY_AT("mr.emitter.tiny_chunks", s)
              ? 3
              : ColumnChunks<K>::kDefaultChunkElems;
      t.emitter = std::make_unique<Emitter<K, V>>(t.arena.get(), chunk_elems);
      // Buggify: task re-execution — this map task already ran once on a
      // worker that then died. The dead attempt's emits land in a scratch
      // arena and are discarded whole; only the surviving attempt is
      // accounted, so stats and output cannot move.
      if (CSOD_BUGGIFY_AT("mr.map.reexecute", s)) {
        Arena scratch_arena;
        Emitter<K, V> scratch(&scratch_arena);
        job.map_fn(splits[s], &scratch);
      }
      Stopwatch map_watch;
      job.map_fn(splits[s], t.emitter.get());
      // The map stopwatch stops *before* combining/partitioning: grouping
      // cost belongs to shuffle_build_sec, not map_compute_sec (else the
      // cost model scales shuffle work by compute_scale).
      t.map_sec = map_watch.ElapsedSeconds();
      t.input_bytes =
          static_cast<uint64_t>(splits[s].size()) * job.input_record_bytes;

      Stopwatch build_watch;
      const size_t emitted = t.emitter->size();
      auto emit_runs = ColumnRuns(t.emitter->keys(), t.emitter->values());
      t.pre_tuples = emitted;
      t.pre_bytes = internal::AccountTupleBytes<K, V>(
          job.fixed_tuple_bytes, job.tuple_bytes, emitted, emit_runs);

      // The tuples this task ships: the raw emits, or — with a combiner —
      // one hash-grouped, emit-order-folded tuple per distinct key.
      auto build_blocks = [&](const auto& part_fn) {
        if (job.combine_fn) {
          auto groups =
              ReduceGroups<K, V>::Build(emitted, /*sorted_keys=*/false,
                                        emit_runs);
          t.combined_keys.reserve(groups.size());
          t.combined_values.reserve(groups.size());
          for (size_t g = 0; g < groups.size(); ++g) {
            t.combined_keys.push_back(groups.key(g));
            t.combined_values.push_back(
                job.combine_fn(groups.key(g), groups.values(g)));
          }
          auto combined_runs = [&](auto&& fn) {
            if (!t.combined_keys.empty()) {
              fn(t.combined_keys.data(), t.combined_values.data(),
                 t.combined_keys.size());
            }
          };
          t.post_tuples = t.combined_keys.size();
          t.post_bytes = internal::AccountTupleBytes<K, V>(
              job.fixed_tuple_bytes, job.tuple_bytes, t.post_tuples,
              combined_runs);
          std::vector<TupleRun<K, V>> run;
          if (!t.combined_keys.empty()) {
            run.push_back(TupleRun<K, V>{t.combined_keys.data(),
                                         t.combined_values.data(),
                                         t.combined_keys.size()});
          }
          internal::BuildPartitionBlocks(&t, job.num_reduce_tasks,
                                         t.post_tuples, part_fn,
                                         combined_runs, std::move(run));
        } else {
          t.post_bytes = t.pre_bytes;
          t.post_tuples = t.pre_tuples;
          internal::BuildPartitionBlocks(
              &t, job.num_reduce_tasks, emitted, part_fn, emit_runs,
              BlockOverColumns(t.emitter->keys(), t.emitter->values())
                  .runs);
        }
      };
      if (job.partition_fn) {
        build_blocks(job.partition_fn);
      } else {
        // Devirtualized fast path: DefaultPartition inlines into the
        // radix loop.
        build_blocks([](const K& k) { return DefaultPartition(k); });
      }
      t.build_sec = build_watch.ElapsedSeconds();
    });
  }
  stats.map_wall_sec = map_wall.ElapsedSeconds();
  for (const TaskState& t : tasks) {  // Serial, fixed-order accumulation.
    stats.input_bytes += t.input_bytes;
    stats.pre_combine_shuffle_bytes += t.pre_bytes;
    stats.pre_combine_shuffle_tuples += t.pre_tuples;
    stats.shuffle_bytes += t.post_bytes;
    stats.shuffle_tuples += t.post_tuples;
    stats.map_compute_sec += t.map_sec;
    stats.map_compute_max_sec = std::max(stats.map_compute_max_sec, t.map_sec);
    stats.shuffle_build_sec += t.build_sec;
  }

  // --- Shuffle build: merge the map tasks' partition blocks into one
  // grouped view per reduce task. Blocks are walked in fixed split order,
  // so every key group's value order is scheduling-independent; the merge
  // moves values straight into the reduce task's value column. ---
  std::vector<ReduceGroups<K, V>> groups(job.num_reduce_tasks);
  std::vector<double> merge_sec(job.num_reduce_tasks, 0.0);
  Stopwatch shuffle_wall;
  {
    obs::TraceSpan span(job.telemetry, "mr.shuffle");
    ParallelForEach(job.num_reduce_tasks, [&](size_t task) {
      Stopwatch merge_watch;
      size_t total = 0;
      for (TaskState& t : tasks) total += t.blocks[task].count;
      groups[task] = ReduceGroups<K, V>::Build(
          total, /*sorted_keys=*/true, [&](auto&& fn) {
            for (TaskState& t : tasks) {
              for (TupleRun<K, V>& run : t.blocks[task].runs) {
                fn(run.keys, run.values, run.count);
              }
            }
          });
      merge_sec[task] = merge_watch.ElapsedSeconds();
    });
  }
  stats.shuffle_wall_sec = shuffle_wall.ElapsedSeconds();
  for (double sec : merge_sec) stats.shuffle_build_sec += sec;

  // --- Reduce phase (executed for real, timed per task). ---
  std::vector<std::vector<Out>> outputs(job.num_reduce_tasks);
  std::vector<double> reduce_sec(job.num_reduce_tasks, 0.0);
  Stopwatch reduce_wall;
  {
    obs::TraceSpan span(job.telemetry, "mr.reduce");
    ParallelForEach(job.num_reduce_tasks, [&](size_t task) {
      Stopwatch reduce_watch;
      if (has_task_reduce) {
        job.task_reduce_fn(groups[task], &outputs[task]);
      } else {
        ReduceGroups<K, V>& g = groups[task];
        for (size_t i = 0; i < g.size(); ++i) {
          job.reduce_fn(g.key(i), g.values(i), &outputs[task]);
        }
      }
      reduce_sec[task] = reduce_watch.ElapsedSeconds();
    });
  }
  stats.reduce_wall_sec = reduce_wall.ElapsedSeconds();
  for (double sec : reduce_sec) {
    stats.reduce_compute_sec += sec;
    stats.reduce_compute_max_sec = std::max(stats.reduce_compute_max_sec, sec);
  }
  for (std::vector<Out>& task_output : outputs) {  // Fixed task order.
    for (Out& out : task_output) result.output.push_back(std::move(out));
  }
  stats.output_records = result.output.size();

  if (job.telemetry != nullptr && job.telemetry->enabled()) {
    job.telemetry->AddCounter("mr.map_tasks", stats.num_map_tasks);
    job.telemetry->AddCounter("mr.reduce_tasks", stats.num_reduce_tasks);
    job.telemetry->AddCounter("mr.shuffle_bytes", stats.shuffle_bytes);
    job.telemetry->AddCounter("mr.shuffle_tuples", stats.shuffle_tuples);
    job.telemetry->AddCounter("mr.shuffle_bytes_precombine",
                              stats.pre_combine_shuffle_bytes);
    job.telemetry->AddCounter("mr.shuffle_tuples_precombine",
                              stats.pre_combine_shuffle_tuples);
    job.telemetry->AddCounter("mr.output_records", stats.output_records);
    std::vector<double> build_sec;
    build_sec.reserve(tasks.size());
    for (const TaskState& t : tasks) build_sec.push_back(t.build_sec);
    RecordShuffleTimings(job.telemetry, "mr.shuffle.build_ms", build_sec);
    RecordShuffleTimings(job.telemetry, "mr.shuffle.merge_ms", merge_sec);
  }
  return result;
}

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_ENGINE_H_
