#ifndef CSOD_MAPREDUCE_ENGINE_H_
#define CSOD_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "mapreduce/cost_model.h"
#include "obs/telemetry.h"

namespace csod::mr {

/// \brief Collects (key, value) pairs emitted by a map task and accounts
/// their shuffle size.
template <typename K, typename V>
class Emitter {
 public:
  /// `tuple_bytes(key, value)` gives the on-wire size of one pair.
  explicit Emitter(std::function<uint64_t(const K&, const V&)> tuple_bytes)
      : tuple_bytes_(std::move(tuple_bytes)) {}

  /// Emits one intermediate pair.
  void Emit(K key, V value) {
    bytes_ += tuple_bytes_(key, value);
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  uint64_t bytes() const { return bytes_; }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::function<uint64_t(const K&, const V&)> tuple_bytes_;
  uint64_t bytes_ = 0;
  std::vector<std::pair<K, V>> pairs_;
};

/// \brief Default reduce-task partitioner: a fixed splitmix64-style mixer.
///
/// `std::hash<K>` is *identity* for integers on libstdc++, so hashing a
/// structured key set (say, multiples of 8) through `% num_reduce_tasks`
/// produces skewed, structured partitions — and a different assignment on
/// every standard library, violating the cross-platform determinism
/// contract (DESIGN.md §9). Integral keys therefore go through SplitMix64
/// directly: the assignment is a pure function of the key's value,
/// byte-identical on every platform. Non-integral keys fall back to mixing
/// `std::hash<K>` (unskewed, but only as portable as that hash — supply a
/// `Job::partition_fn` when such keys need cross-platform pinning).
template <typename K>
size_t DefaultPartition(const K& key) {
  if constexpr (std::is_integral_v<K>) {
    return static_cast<size_t>(SplitMix64(static_cast<uint64_t>(key)));
  } else {
    return static_cast<size_t>(
        SplitMix64(static_cast<uint64_t>(std::hash<K>{}(key))));
  }
}

/// \brief Declarative description of a MapReduce job over the in-process
/// engine.
///
/// `Input` is one input record; `K`/`V` the intermediate pair; `Out` one
/// final output record. The map function runs once per split (task level,
/// so in-mapper combining — the paper's "partial aggregation for each key"
/// — is expressible either inside `map_fn` or declaratively via
/// `combine_fn`). Exactly one of `reduce_fn` (per key group) or
/// `task_reduce_fn` (whole reduce-task view, needed when the reducer is
/// not key-local, e.g. CS recovery over the complete measurement vector)
/// must be provided.
///
/// Thread safety: the engine runs map tasks concurrently, and reduce tasks
/// concurrently, under the global parallelism limit
/// (common/parallel.h). `map_fn`, `combine_fn`, `partition_fn`,
/// `tuple_bytes`, and the reducer must therefore be safe to invoke
/// concurrently for *distinct* tasks (pure functions of their arguments,
/// or functions whose shared captures are read-only). A reducer that
/// mutates shared captured state is safe only with `num_reduce_tasks == 1`
/// (a single task runs on the calling thread).
template <typename Input, typename K, typename V, typename Out>
struct Job {
  /// Map task body: consumes one split, emits intermediate pairs.
  std::function<void(const std::vector<Input>&, Emitter<K, V>*)> map_fn;

  /// Per-key reduce: values of one key group -> output records.
  std::function<void(const K&, std::vector<V>&, std::vector<Out>*)> reduce_fn;

  /// Task-level reduce: the full key->values view of one reduce task.
  std::function<void(std::map<K, std::vector<V>>&, std::vector<Out>*)>
      task_reduce_fn;

  /// Optional in-mapper combiner (the paper's "partial aggregation for
  /// each key"): folds one map task's values for one key — in emit order —
  /// into a single value shipped through the shuffle. When set, the engine
  /// accounts shuffle volume both before the combiner
  /// (`JobStats::pre_combine_shuffle_{bytes,tuples}`, what an
  /// uncombined job would have shipped) and after it
  /// (`JobStats::shuffle_{bytes,tuples}`, what actually crosses the wire).
  std::function<V(const K&, std::vector<V>&)> combine_fn;

  /// On-wire size of one intermediate pair (shuffle accounting). Required.
  std::function<uint64_t(const K&, const V&)> tuple_bytes;

  /// On-disk size of one input record (input IO accounting).
  uint64_t input_record_bytes = 16;

  /// Number of reduce tasks (keys are hash-partitioned across them).
  size_t num_reduce_tasks = 1;

  /// Optional custom partitioner: key -> reduce task (the engine applies
  /// `% num_reduce_tasks`). Defaults to the splitmix64 mixer
  /// (`DefaultPartition`), never raw `std::hash`.
  std::function<size_t(const K&)> partition_fn;

  /// Telemetry sink: `mr.{map,shuffle,reduce}` spans plus shuffle volume
  /// counters. Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Result of a job run: the concatenated reducer outputs plus measured
/// stats (feed them to a ClusterCostModel for simulated timings).
template <typename Out>
struct JobResult {
  std::vector<Out> output;
  JobStats stats;
};

/// \brief Executes a Job over the given input splits (one map task per
/// split), with an exact byte-accounted shuffle.
///
/// Execution is parallel on the persistent-pool substrate, in three
/// phases, each a deterministic task-parallel loop (ParallelForEach):
///  1. *Map*: every map task runs concurrently with task-local partition
///     buffers (one pair vector per reduce task). `map_compute_sec` times
///     only the `map_fn` body; combining and partitioning are charged to
///     `shuffle_build_sec`.
///  2. *Shuffle build*: per-reduce-task group views are merged from the
///     task-local buffers in fixed split order, so the value order inside
///     every key group — and therefore every downstream float sum — is
///     identical to a sequential engine's, at any thread count.
///  3. *Reduce*: reduce tasks run concurrently into task-local output
///     vectors, concatenated in task order.
/// Output is bit-identical at any parallelism limit; reduce tasks process
/// keys in sorted order.
template <typename Input, typename K, typename V, typename Out>
Result<JobResult<Out>> RunJob(const std::vector<std::vector<Input>>& splits,
                              const Job<Input, K, V, Out>& job) {
  if (!job.map_fn) {
    return Status::InvalidArgument("RunJob: map_fn is required");
  }
  if (!job.tuple_bytes) {
    return Status::InvalidArgument("RunJob: tuple_bytes is required");
  }
  const bool has_key_reduce = static_cast<bool>(job.reduce_fn);
  const bool has_task_reduce = static_cast<bool>(job.task_reduce_fn);
  if (has_key_reduce == has_task_reduce) {
    return Status::InvalidArgument(
        "RunJob: exactly one of reduce_fn / task_reduce_fn must be set");
  }
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument("RunJob: num_reduce_tasks must be > 0");
  }

  JobResult<Out> result;
  JobStats& stats = result.stats;
  stats.num_map_tasks = splits.size();
  stats.num_reduce_tasks = job.num_reduce_tasks;

  const auto partition = job.partition_fn
                             ? job.partition_fn
                             : std::function<size_t(const K&)>(
                                   [](const K& k) { return DefaultPartition(k); });

  // --- Map phase (executed for real, timed per task). ---
  // Each task owns its partition buffers and stat slots, so the parallel
  // loop writes disjoint state only.
  struct MapTaskState {
    std::vector<std::vector<std::pair<K, V>>> parts;  // [num_reduce_tasks]
    double map_sec = 0.0;    // map_fn body only
    double build_sec = 0.0;  // combine + partition
    uint64_t input_bytes = 0;
    uint64_t pre_bytes = 0;
    uint64_t pre_tuples = 0;
    uint64_t post_bytes = 0;
    uint64_t post_tuples = 0;
  };
  std::vector<MapTaskState> tasks(splits.size());
  Stopwatch map_wall;
  {
    obs::TraceSpan span(job.telemetry, "mr.map");
    ParallelForEach(splits.size(), [&](size_t s) {
      MapTaskState& t = tasks[s];
      t.parts.resize(job.num_reduce_tasks);
      Emitter<K, V> emitter(job.tuple_bytes);
      Stopwatch map_watch;
      job.map_fn(splits[s], &emitter);
      // The map stopwatch stops *before* combining/partitioning: grouping
      // cost belongs to shuffle_build_sec, not map_compute_sec (else the
      // cost model scales shuffle work by compute_scale).
      t.map_sec = map_watch.ElapsedSeconds();
      t.input_bytes =
          static_cast<uint64_t>(splits[s].size()) * job.input_record_bytes;
      t.pre_bytes = emitter.bytes();
      t.pre_tuples = emitter.pairs().size();
      Stopwatch build_watch;
      if (job.combine_fn) {
        // Group this task's pairs (emit order preserved per key), fold each
        // key to one combined value, then partition the combined pairs.
        std::map<K, std::vector<V>> local;
        for (auto& [key, value] : emitter.pairs()) {
          local[key].push_back(std::move(value));
        }
        for (auto& [key, values] : local) {
          V combined = job.combine_fn(key, values);
          t.post_bytes += job.tuple_bytes(key, combined);
          ++t.post_tuples;
          t.parts[partition(key) % job.num_reduce_tasks].emplace_back(
              key, std::move(combined));
        }
      } else {
        t.post_bytes = t.pre_bytes;
        t.post_tuples = t.pre_tuples;
        for (auto& [key, value] : emitter.pairs()) {
          const size_t task = partition(key) % job.num_reduce_tasks;
          t.parts[task].emplace_back(std::move(key), std::move(value));
        }
      }
      t.build_sec = build_watch.ElapsedSeconds();
    });
  }
  stats.map_wall_sec = map_wall.ElapsedSeconds();
  for (const MapTaskState& t : tasks) {  // Serial, fixed-order accumulation.
    stats.input_bytes += t.input_bytes;
    stats.pre_combine_shuffle_bytes += t.pre_bytes;
    stats.pre_combine_shuffle_tuples += t.pre_tuples;
    stats.shuffle_bytes += t.post_bytes;
    stats.shuffle_tuples += t.post_tuples;
    stats.map_compute_sec += t.map_sec;
    stats.map_compute_max_sec = std::max(stats.map_compute_max_sec, t.map_sec);
    stats.shuffle_build_sec += t.build_sec;
  }

  // --- Shuffle build: merge task-local buffers into per-reduce-task
  // group views. Fixed split order per reduce task keeps every key group's
  // value order scheduling-independent. ---
  std::vector<std::map<K, std::vector<V>>> groups(job.num_reduce_tasks);
  std::vector<double> merge_sec(job.num_reduce_tasks, 0.0);
  Stopwatch shuffle_wall;
  {
    obs::TraceSpan span(job.telemetry, "mr.shuffle");
    ParallelForEach(job.num_reduce_tasks, [&](size_t task) {
      Stopwatch merge_watch;
      std::map<K, std::vector<V>>& group = groups[task];
      for (MapTaskState& t : tasks) {
        for (auto& [key, value] : t.parts[task]) {
          group[key].push_back(std::move(value));
        }
      }
      merge_sec[task] = merge_watch.ElapsedSeconds();
    });
  }
  stats.shuffle_wall_sec = shuffle_wall.ElapsedSeconds();
  for (double sec : merge_sec) stats.shuffle_build_sec += sec;

  // --- Reduce phase (executed for real, timed per task). ---
  std::vector<std::vector<Out>> outputs(job.num_reduce_tasks);
  std::vector<double> reduce_sec(job.num_reduce_tasks, 0.0);
  Stopwatch reduce_wall;
  {
    obs::TraceSpan span(job.telemetry, "mr.reduce");
    ParallelForEach(job.num_reduce_tasks, [&](size_t task) {
      Stopwatch reduce_watch;
      if (has_task_reduce) {
        job.task_reduce_fn(groups[task], &outputs[task]);
      } else {
        for (auto& [key, values] : groups[task]) {
          job.reduce_fn(key, values, &outputs[task]);
        }
      }
      reduce_sec[task] = reduce_watch.ElapsedSeconds();
    });
  }
  stats.reduce_wall_sec = reduce_wall.ElapsedSeconds();
  for (double sec : reduce_sec) {
    stats.reduce_compute_sec += sec;
    stats.reduce_compute_max_sec = std::max(stats.reduce_compute_max_sec, sec);
  }
  for (std::vector<Out>& task_output : outputs) {  // Fixed task order.
    for (Out& out : task_output) result.output.push_back(std::move(out));
  }
  stats.output_records = result.output.size();

  if (job.telemetry != nullptr && job.telemetry->enabled()) {
    job.telemetry->AddCounter("mr.map_tasks", stats.num_map_tasks);
    job.telemetry->AddCounter("mr.reduce_tasks", stats.num_reduce_tasks);
    job.telemetry->AddCounter("mr.shuffle_bytes", stats.shuffle_bytes);
    job.telemetry->AddCounter("mr.shuffle_tuples", stats.shuffle_tuples);
    job.telemetry->AddCounter("mr.shuffle_bytes_precombine",
                              stats.pre_combine_shuffle_bytes);
    job.telemetry->AddCounter("mr.shuffle_tuples_precombine",
                              stats.pre_combine_shuffle_tuples);
    job.telemetry->AddCounter("mr.output_records", stats.output_records);
  }
  return result;
}

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_ENGINE_H_
