#ifndef CSOD_MAPREDUCE_ENGINE_H_
#define CSOD_MAPREDUCE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "mapreduce/cost_model.h"

namespace csod::mr {

/// \brief Collects (key, value) pairs emitted by a map task and accounts
/// their shuffle size.
template <typename K, typename V>
class Emitter {
 public:
  /// `tuple_bytes(key, value)` gives the on-wire size of one pair.
  explicit Emitter(std::function<uint64_t(const K&, const V&)> tuple_bytes)
      : tuple_bytes_(std::move(tuple_bytes)) {}

  /// Emits one intermediate pair.
  void Emit(K key, V value) {
    bytes_ += tuple_bytes_(key, value);
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  uint64_t bytes() const { return bytes_; }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::function<uint64_t(const K&, const V&)> tuple_bytes_;
  uint64_t bytes_ = 0;
  std::vector<std::pair<K, V>> pairs_;
};

/// \brief Declarative description of a MapReduce job over the in-process
/// engine.
///
/// `Input` is one input record; `K`/`V` the intermediate pair; `Out` one
/// final output record. The map function runs once per split (task level,
/// so in-mapper combining — the paper's "partial aggregation for each key"
/// — is expressible). Exactly one of `reduce_fn` (per key group) or
/// `task_reduce_fn` (whole reduce-task view, needed when the reducer is
/// not key-local, e.g. CS recovery over the complete measurement vector)
/// must be provided.
template <typename Input, typename K, typename V, typename Out>
struct Job {
  /// Map task body: consumes one split, emits intermediate pairs.
  std::function<void(const std::vector<Input>&, Emitter<K, V>*)> map_fn;

  /// Per-key reduce: values of one key group -> output records.
  std::function<void(const K&, std::vector<V>&, std::vector<Out>*)> reduce_fn;

  /// Task-level reduce: the full key->values view of one reduce task.
  std::function<void(std::map<K, std::vector<V>>&, std::vector<Out>*)>
      task_reduce_fn;

  /// On-wire size of one intermediate pair (shuffle accounting). Required.
  std::function<uint64_t(const K&, const V&)> tuple_bytes;

  /// On-disk size of one input record (input IO accounting).
  uint64_t input_record_bytes = 16;

  /// Number of reduce tasks (keys are hash-partitioned across them).
  size_t num_reduce_tasks = 1;

  /// Optional custom partitioner: key -> reduce task. Defaults to
  /// std::hash.
  std::function<size_t(const K&)> partition_fn;
};

/// Result of a job run: the concatenated reducer outputs plus measured
/// stats (feed them to a ClusterCostModel for simulated timings).
template <typename Out>
struct JobResult {
  std::vector<Out> output;
  JobStats stats;
};

/// \brief Executes a Job over the given input splits (one map task per
/// split), with an exact byte-accounted shuffle.
///
/// The engine is deterministic: reduce tasks process keys in sorted order.
template <typename Input, typename K, typename V, typename Out>
Result<JobResult<Out>> RunJob(const std::vector<std::vector<Input>>& splits,
                              const Job<Input, K, V, Out>& job) {
  if (!job.map_fn) {
    return Status::InvalidArgument("RunJob: map_fn is required");
  }
  if (!job.tuple_bytes) {
    return Status::InvalidArgument("RunJob: tuple_bytes is required");
  }
  const bool has_key_reduce = static_cast<bool>(job.reduce_fn);
  const bool has_task_reduce = static_cast<bool>(job.task_reduce_fn);
  if (has_key_reduce == has_task_reduce) {
    return Status::InvalidArgument(
        "RunJob: exactly one of reduce_fn / task_reduce_fn must be set");
  }
  if (job.num_reduce_tasks == 0) {
    return Status::InvalidArgument("RunJob: num_reduce_tasks must be > 0");
  }

  JobResult<Out> result;
  result.stats.num_map_tasks = splits.size();
  result.stats.num_reduce_tasks = job.num_reduce_tasks;

  auto partition = job.partition_fn
                       ? job.partition_fn
                       : std::function<size_t(const K&)>(
                             [](const K& k) { return std::hash<K>{}(k); });

  // --- Map phase (executed for real, timed). ---
  // Reduce-task-local group views, keyed in sorted order for determinism.
  std::vector<std::map<K, std::vector<V>>> groups(job.num_reduce_tasks);
  Stopwatch map_watch;
  for (const std::vector<Input>& split : splits) {
    Emitter<K, V> emitter(job.tuple_bytes);
    job.map_fn(split, &emitter);
    result.stats.input_bytes +=
        static_cast<uint64_t>(split.size()) * job.input_record_bytes;
    result.stats.shuffle_bytes += emitter.bytes();
    result.stats.shuffle_tuples += emitter.pairs().size();
    for (auto& [key, value] : emitter.pairs()) {
      const size_t task = partition(key) % job.num_reduce_tasks;
      groups[task][key].push_back(std::move(value));
    }
  }
  result.stats.map_compute_sec = map_watch.ElapsedSeconds();

  // --- Reduce phase (executed for real, timed). ---
  Stopwatch reduce_watch;
  for (size_t task = 0; task < job.num_reduce_tasks; ++task) {
    if (has_task_reduce) {
      job.task_reduce_fn(groups[task], &result.output);
    } else {
      for (auto& [key, values] : groups[task]) {
        job.reduce_fn(key, values, &result.output);
      }
    }
  }
  result.stats.reduce_compute_sec = reduce_watch.ElapsedSeconds();
  result.stats.output_records = result.output.size();
  return result;
}

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_ENGINE_H_
