#ifndef CSOD_MAPREDUCE_SHUFFLE_H_
#define CSOD_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "obs/telemetry.h"

namespace csod::mr {

/// \brief Borrowed contiguous view over `count` elements (the engine's
/// group views are spans over the shuffle's value column — no per-group
/// container is materialized).
template <typename T>
struct Span {
  T* data = nullptr;
  size_t count = 0;

  T* begin() const { return data; }
  T* end() const { return data + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  T& operator[](size_t i) const { return data[i]; }
};

/// One contiguous run of shuffle tuples: parallel key/value arrays
/// (struct-of-arrays). Keys are read-only; values may be moved out by the
/// consumer (group build).
template <typename K, typename V>
struct TupleRun {
  const K* keys = nullptr;
  V* values = nullptr;
  size_t count = 0;
};

/// One map task's tuples bound for one reduce task: runs in emit order
/// (several chunk runs for the zero-copy single-partition case, one
/// exact-size run after a radix scatter).
template <typename K, typename V>
struct PartitionBlock {
  std::vector<TupleRun<K, V>> runs;
  size_t count = 0;
};

/// Smallest power of two >= v (and >= 1).
size_t RoundUpPow2(size_t v);

/// Records per-task shuffle timings (seconds) into the value histogram
/// `name`, in fixed task order, scaled to milliseconds. One call per
/// phase, after the parallel loop, so the histogram is recorded serially.
void RecordShuffleTimings(obs::Telemetry* telemetry, const char* name,
                          const std::vector<double>& seconds);

/// The shuffle's key hash: SplitMix64 of the key's value for integral
/// keys (identical on every platform), SplitMix64-mixed std::hash
/// otherwise. Matches the spirit of DefaultPartition (engine.h) — never a
/// raw identity hash.
template <typename K>
uint64_t ShuffleKeyHash(const K& key) {
  if constexpr (std::is_integral_v<K>) {
    return SplitMix64(static_cast<uint64_t>(key));
  } else {
    return SplitMix64(static_cast<uint64_t>(std::hash<K>{}(key)));
  }
}

/// \brief Open-addressing key -> dense-ordinal interner.
///
/// Ordinals are assigned in first-appearance order, so the mapping is a
/// pure function of the key sequence — scheduling-independent as long as
/// the caller walks tuples in a fixed order. Linear probing over a
/// power-of-two table; one flat `uint32_t` slot array plus the dense key
/// vector replaces the per-key `std::map` node allocations of the old
/// shuffle.
template <typename K>
class KeyInterner {
 public:
  explicit KeyInterner(size_t expected_keys) {
    capacity_ = RoundUpPow2(std::max<size_t>(16, expected_keys * 2));
    slots_.assign(capacity_, kEmpty);
  }

  /// Ordinal of `key`; interns a copy on first sight.
  uint32_t Intern(const K& key) {
    if ((keys_.size() + 1) * 2 > capacity_) Grow();
    const size_t mask = capacity_ - 1;
    size_t i = static_cast<size_t>(ShuffleKeyHash(key)) & mask;
    while (true) {
      const uint32_t slot = slots_[i];
      if (slot == kEmpty) {
        const uint32_t ordinal = static_cast<uint32_t>(keys_.size());
        slots_[i] = ordinal;
        keys_.push_back(key);
        return ordinal;
      }
      if (keys_[slot] == key) return slot;
      i = (i + 1) & mask;
    }
  }

  size_t size() const { return keys_.size(); }
  /// Interned keys, indexed by ordinal.
  std::vector<K>& keys() { return keys_; }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  void Grow() {
    capacity_ *= 2;
    slots_.assign(capacity_, kEmpty);
    const size_t mask = capacity_ - 1;
    for (uint32_t ordinal = 0; ordinal < keys_.size(); ++ordinal) {
      size_t i = static_cast<size_t>(ShuffleKeyHash(keys_[ordinal])) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = ordinal;
    }
  }

  size_t capacity_ = 0;
  std::vector<uint32_t> slots_;
  std::vector<K> keys_;
};

/// \brief Key-grouped view over a stream of tuple runs: each group's
/// values are one contiguous span of the single value column.
///
/// Built in two passes over the runs (walked in the caller's fixed
/// order): intern every key to an ordinal and count group sizes, then
/// stable-scatter the values — moved, never copied — through per-group
/// cursors. Within a group, values therefore keep exact append order
/// (map-task order, emit order within a task): every downstream
/// floating-point fold sees the same operand order as the sequential
/// engine, which is the bit-identity-by-construction argument.
///
/// Iteration order over groups: sorted by key when built with
/// `sorted_keys` (the reduce contract, matching the old `std::map`), or
/// first-appearance order (the in-mapper combiner, where order does not
/// reach the output).
///
/// Requirements: K copyable, equality-comparable, hashable (integral or
/// std::hash), and less-than-comparable when `sorted_keys`; V movable and
/// default-constructible.
template <typename K, typename V>
class ReduceGroups {
 public:
  ReduceGroups() = default;
  ReduceGroups(ReduceGroups&&) noexcept = default;
  ReduceGroups& operator=(ReduceGroups&&) noexcept = default;

  /// `for_each_run(fn)` must invoke `fn(const K* keys, V* values,
  /// size_t count)` once per run, in a deterministic order, and must be
  /// repeatable (it is called twice). `total_tuples` is the exact tuple
  /// count across all runs.
  template <typename ForEachRun>
  static ReduceGroups Build(size_t total_tuples, bool sorted_keys,
                            ForEachRun&& for_each_run) {
    ReduceGroups out;
    if (total_tuples == 0) return out;

    // Pass 1: key column -> ordinals + group sizes.
    std::vector<uint32_t> ordinals;
    ordinals.reserve(total_tuples);
    KeyInterner<K> interner(total_tuples / 4 + 8);
    for_each_run([&](const K* keys, V*, size_t count) {
      for (size_t i = 0; i < count; ++i) {
        ordinals.push_back(interner.Intern(keys[i]));
      }
    });
    const size_t groups = interner.size();
    out.offsets_.assign(groups + 1, 0);
    for (uint32_t o : ordinals) ++out.offsets_[o + 1];
    for (size_t g = 1; g <= groups; ++g) {
      out.offsets_[g] += out.offsets_[g - 1];
    }

    // Pass 2: stable scatter of the value column (cursor per group).
    std::vector<size_t> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
    out.values_.resize(total_tuples);
    size_t t = 0;
    for_each_run([&](const K*, V* values, size_t count) {
      for (size_t i = 0; i < count; ++i) {
        out.values_[cursor[ordinals[t++]]++] = std::move(values[i]);
      }
    });

    out.keys_ = std::move(interner.keys());
    if (sorted_keys) {
      out.order_.resize(groups);
      std::iota(out.order_.begin(), out.order_.end(), 0u);
      std::sort(out.order_.begin(), out.order_.end(),
                [&](uint32_t a, uint32_t b) {
                  return out.keys_[a] < out.keys_[b];
                });
    }
    return out;
  }

  /// Number of distinct keys.
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  /// Total tuples across all groups.
  size_t total_values() const { return values_.size(); }

  /// Key of group `g` in iteration order (see class comment).
  const K& key(size_t g) const { return keys_[Ordinal(g)]; }
  /// Values of group `g`: a contiguous, mutable span over the value
  /// column (stable append order).
  Span<V> values(size_t g) {
    const uint32_t o = Ordinal(g);
    return Span<V>{values_.data() + offsets_[o],
                   offsets_[o + 1] - offsets_[o]};
  }

 private:
  uint32_t Ordinal(size_t g) const {
    return order_.empty() ? static_cast<uint32_t>(g) : order_[g];
  }

  std::vector<K> keys_;        // by ordinal (first-appearance order)
  std::vector<V> values_;      // all values, grouped by ordinal
  std::vector<size_t> offsets_;  // [ordinal] -> begin index; size()+1 long
  std::vector<uint32_t> order_;  // iteration order -> ordinal; empty = id
};

/// Invokes `fn(const K* keys, V* values, size_t count)` per chunk of the
/// two columns, zipped. The columns must have been appended in lockstep
/// (the Emitter guarantees this), so chunk boundaries coincide.
template <typename K, typename V>
auto ColumnRuns(ColumnChunks<K>& keys, ColumnChunks<V>& values) {
  return [&keys, &values](auto&& fn) {
    for (size_t c = 0; c < keys.chunk_count(); ++c) {
      const size_t count = keys.chunk_size(c);
      if (count > 0) fn(keys.chunk_data(c), values.chunk_data(c), count);
    }
  };
}

/// A PartitionBlock viewing the two columns in place (the zero-copy
/// single-reduce-task path: no partition function call, no scatter, no
/// copy — the reduce side walks the map task's chunks directly).
template <typename K, typename V>
PartitionBlock<K, V> BlockOverColumns(ColumnChunks<K>& keys,
                                      ColumnChunks<V>& values) {
  PartitionBlock<K, V> block;
  block.runs.reserve(keys.chunk_count());
  for (size_t c = 0; c < keys.chunk_count(); ++c) {
    const size_t count = keys.chunk_size(c);
    if (count > 0) {
      block.runs.push_back(
          TupleRun<K, V>{keys.chunk_data(c), values.chunk_data(c), count});
    }
  }
  block.count = keys.size();
  return block;
}

/// \brief Radix-partitions a tuple stream into per-reduce-task columns.
///
/// The partition function is applied exactly once per tuple, in a first
/// pass over the key column that records each tuple's reduce task and the
/// per-task histogram; the second pass scatters keys (copied) and values
/// (moved) into exact-size arena-backed per-partition columns through
/// monotone per-partition cursors — stable, so within-partition order is
/// emit order. `part_fn` is a template parameter: the engine instantiates
/// this with the raw `DefaultPartition` template when the job has no
/// custom partitioner, so the built-in path is fully inlined (no
/// `std::function` dispatch per tuple).
template <typename K, typename V, typename PartFn, typename ForEachRun>
void ScatterPartitions(size_t total_tuples, size_t num_parts, Arena* arena,
                       const PartFn& part_fn, ForEachRun&& for_each_run,
                       std::vector<ColumnChunks<K>>* key_store,
                       std::vector<ColumnChunks<V>>* value_store,
                       std::vector<PartitionBlock<K, V>>* blocks) {
  // Pass 1: partition ids + histogram (arena scratch, freed with the
  // task).
  uint32_t* part_of = arena->AllocateArray<uint32_t>(total_tuples);
  std::vector<size_t> counts(num_parts, 0);
  size_t t = 0;
  for_each_run([&](const K* keys, V*, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const uint32_t p =
          static_cast<uint32_t>(part_fn(keys[i]) % num_parts);
      part_of[t++] = p;
      ++counts[p];
    }
  });

  // Exact-size destinations: one contiguous chunk per non-empty
  // partition.
  key_store->reserve(num_parts);
  value_store->reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    key_store->emplace_back(arena, std::max<size_t>(counts[p], 1));
    value_store->emplace_back(arena, std::max<size_t>(counts[p], 1));
  }

  // Pass 2: stable scatter.
  t = 0;
  for_each_run([&](const K* keys, V* values, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const uint32_t p = part_of[t++];
      (*key_store)[p].Append(keys[i]);
      (*value_store)[p].Append(std::move(values[i]));
    }
  });

  blocks->resize(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    (*blocks)[p] = BlockOverColumns((*key_store)[p], (*value_store)[p]);
  }
}

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_SHUFFLE_H_
