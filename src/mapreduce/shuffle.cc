#include "mapreduce/shuffle.h"

namespace csod::mr {

size_t RoundUpPow2(size_t v) {
  if (v <= 1) return 1;
  --v;
  for (size_t shift = 1; shift < sizeof(size_t) * 8; shift *= 2) {
    v |= v >> shift;
  }
  return v + 1;
}

void RecordShuffleTimings(obs::Telemetry* telemetry, const char* name,
                          const std::vector<double>& seconds) {
  if (telemetry == nullptr || !telemetry->enabled()) return;
  for (double sec : seconds) telemetry->RecordValue(name, sec * 1e3);
}

}  // namespace csod::mr
