#ifndef CSOD_MAPREDUCE_COST_MODEL_H_
#define CSOD_MAPREDUCE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace csod::mr {

/// Raw measurements and counters from one job execution. Compute seconds
/// are *measured* (the engine really runs the map/reduce functions); byte
/// counters are exact.
struct JobStats {
  size_t num_map_tasks = 0;
  size_t num_reduce_tasks = 0;
  /// Wall-clock CPU seconds spent inside map functions (sum over tasks;
  /// the map stopwatch stops before combining/partitioning, which is
  /// charged to `shuffle_build_sec`).
  double map_compute_sec = 0.0;
  /// Seconds of the single slowest map task — the straggler floor: no
  /// amount of cluster parallelism makes the map phase faster than this.
  double map_compute_max_sec = 0.0;
  /// Wall-clock CPU seconds spent inside reduce functions (sum over tasks).
  double reduce_compute_sec = 0.0;
  /// Seconds of the single slowest reduce task.
  double reduce_compute_max_sec = 0.0;
  /// Seconds spent building the shuffle (sum over tasks): map-side
  /// in-mapper combining, the radix partition pass (partition function +
  /// stable scatter into per-reduce-task columns), batched byte
  /// accounting, and the reduce-side merge of the partition columns into
  /// sorted, interned key groups.
  double shuffle_build_sec = 0.0;
  /// Engine wall-clock seconds of each phase *on this machine* under the
  /// current parallelism limit (bench/speedup reporting; the cost model
  /// works from the per-task sums/maxes above instead, so simulated
  /// timings do not depend on the host's core count).
  double map_wall_sec = 0.0;
  double shuffle_wall_sec = 0.0;
  double reduce_wall_sec = 0.0;
  /// Bytes read by mappers (input splits).
  uint64_t input_bytes = 0;
  /// Bytes written by mappers == bytes shuffled to reducers (post-combine
  /// when the job has a `combine_fn`).
  uint64_t shuffle_bytes = 0;
  /// Records emitted by mappers (post-combine).
  uint64_t shuffle_tuples = 0;
  /// Shuffle volume *before* the in-mapper combiner — what an uncombined
  /// job would have shipped. Equal to `shuffle_bytes`/`shuffle_tuples`
  /// when the job has no `combine_fn`.
  uint64_t pre_combine_shuffle_bytes = 0;
  uint64_t pre_combine_shuffle_tuples = 0;
  /// Final output records.
  uint64_t output_records = 0;
};

/// \brief Analytic timing model of a Hadoop-like cluster, calibrated to the
/// paper's testbed (Section 6.2: 10 nodes, 1 Gbps network).
///
/// The engine executes the real computation on one machine and measures
/// it; this model composes those measurements with IO times derived from
/// the exact byte counts. The composition follows the paper's narrative:
/// mapper time = input IO + map compute + serialization + output spill;
/// reducer time = shuffle transfer (the reducer's "waiting time") +
/// merge/grouping + deserialization + reduce compute. End-to-end = map
/// phase + reduce phase, with per-task scheduling overhead and wave-based
/// parallelism. Each phase's compute term is
/// `max(sum over tasks / parallelism, slowest single task)` — the slowest
/// task is a floor no amount of workers removes, so the model sees
/// stragglers instead of assuming perfectly divisible work.
struct ClusterCostModel {
  /// Concurrent task slots in the cluster.
  size_t num_workers = 10;
  /// Aggregate shuffle bandwidth into the reducers (1 Gbps default).
  double network_bandwidth_bytes_per_sec = 125.0e6;
  /// Sequential disk bandwidth per worker.
  double disk_bandwidth_bytes_per_sec = 100.0e6;
  /// Fixed scheduling/startup overhead per task wave.
  double per_wave_overhead_sec = 1.0;
  /// Scale on measured compute time (1.0 = this machine's speed).
  double compute_scale = 1.0;
  /// Per-intermediate-tuple CPU cost on the *map* side: serialization,
  /// sort, and spill of each emitted record. Calibrated to Hadoop 2.4
  /// record handling (~10 µs/record; the slope of the paper's Figure 12
  /// traditional-top-k curve implies even more). Together with the
  /// reduce-side term below this is what makes shuffling L·N key-value
  /// tuples expensive relative to L·M measurements on the paper's testbed.
  double serialize_per_tuple_cpu_sec = 10.0e-6;
  /// Per-intermediate-tuple CPU cost on the *reduce* side: merge-read and
  /// deserialization of each shuffled record. Charged separately from the
  /// map-side term — each side handles every tuple exactly once, so the
  /// two explicit terms replace the old single `per_tuple_cpu_sec` that
  /// was silently charged twice.
  double deserialize_per_tuple_cpu_sec = 10.0e-6;

  /// Number of sequential waves needed to run `tasks` tasks.
  double Waves(size_t tasks) const;

  /// Simulated duration of the map phase.
  double MapPhaseSeconds(const JobStats& stats) const;
  /// Simulated duration of the reduce phase (shuffle + merge + compute).
  double ReducePhaseSeconds(const JobStats& stats) const;
  /// Simulated shuffle transfer time alone.
  double ShuffleSeconds(const JobStats& stats) const;
  /// Simulated end-to-end job duration.
  double EndToEndSeconds(const JobStats& stats) const;
};

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_COST_MODEL_H_
