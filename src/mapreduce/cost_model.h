#ifndef CSOD_MAPREDUCE_COST_MODEL_H_
#define CSOD_MAPREDUCE_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace csod::mr {

/// Raw measurements and counters from one job execution. Compute seconds
/// are *measured* (the engine really runs the map/reduce functions); byte
/// counters are exact.
struct JobStats {
  size_t num_map_tasks = 0;
  size_t num_reduce_tasks = 0;
  /// Wall-clock CPU seconds spent inside map functions (sum over tasks).
  double map_compute_sec = 0.0;
  /// Wall-clock CPU seconds spent inside reduce functions (sum over tasks).
  double reduce_compute_sec = 0.0;
  /// Bytes read by mappers (input splits).
  uint64_t input_bytes = 0;
  /// Bytes written by mappers == bytes shuffled to reducers.
  uint64_t shuffle_bytes = 0;
  /// Records emitted by mappers.
  uint64_t shuffle_tuples = 0;
  /// Final output records.
  uint64_t output_records = 0;
};

/// \brief Analytic timing model of a Hadoop-like cluster, calibrated to the
/// paper's testbed (Section 6.2: 10 nodes, 1 Gbps network).
///
/// The engine executes the real computation on one machine and measures
/// it; this model composes those measurements with IO times derived from
/// the exact byte counts. The composition follows the paper's narrative:
/// mapper time = input IO + map compute + output spill; reducer time =
/// shuffle transfer (the reducer's "waiting time") + merge IO + reduce
/// compute. End-to-end = map phase + reduce phase, with per-task
/// scheduling overhead and wave-based parallelism.
struct ClusterCostModel {
  /// Concurrent task slots in the cluster.
  size_t num_workers = 10;
  /// Aggregate shuffle bandwidth into the reducers (1 Gbps default).
  double network_bandwidth_bytes_per_sec = 125.0e6;
  /// Sequential disk bandwidth per worker.
  double disk_bandwidth_bytes_per_sec = 100.0e6;
  /// Fixed scheduling/startup overhead per task wave.
  double per_wave_overhead_sec = 1.0;
  /// Scale on measured compute time (1.0 = this machine's speed).
  double compute_scale = 1.0;
  /// Per-intermediate-tuple CPU cost (serialization, sort, spill, merge)
  /// charged once on the map side and once on the reduce side. Calibrated
  /// to Hadoop 2.4 record handling (~10 µs/record; the slope of the
  /// paper's Figure 12 traditional-top-k curve implies even more). This is
  /// what makes shuffling L·N key-value tuples expensive relative to L·M
  /// measurements on the paper's testbed.
  double per_tuple_cpu_sec = 10.0e-6;

  /// Number of sequential waves needed to run `tasks` tasks.
  double Waves(size_t tasks) const;

  /// Simulated duration of the map phase.
  double MapPhaseSeconds(const JobStats& stats) const;
  /// Simulated duration of the reduce phase (shuffle + merge + compute).
  double ReducePhaseSeconds(const JobStats& stats) const;
  /// Simulated shuffle transfer time alone.
  double ShuffleSeconds(const JobStats& stats) const;
  /// Simulated end-to-end job duration.
  double EndToEndSeconds(const JobStats& stats) const;
};

}  // namespace csod::mr

#endif  // CSOD_MAPREDUCE_COST_MODEL_H_
