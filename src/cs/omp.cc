#include "cs/omp.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "la/incremental_qr.h"
#include "la/vector_ops.h"

namespace csod::cs {

Result<OmpResult> RunOmp(const Dictionary& dictionary,
                         const std::vector<double>& y,
                         const OmpOptions& options) {
  const size_t m = dictionary.atom_length();
  const size_t num_atoms = dictionary.num_atoms();
  if (y.size() != m) {
    return Status::InvalidArgument("RunOmp: y size " +
                                   std::to_string(y.size()) + " != M " +
                                   std::to_string(m));
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("RunOmp: max_iterations must be > 0");
  }

  OmpResult result;
  const double y_norm = la::Norm2(y);
  if (y_norm == 0.0) return result;  // Nothing to recover.

  const size_t iteration_cap =
      std::min({options.max_iterations, m, num_atoms});
  la::IncrementalQr qr(m);
  std::vector<double> residual = y;
  std::vector<bool> selected_mask(num_atoms, false);
  std::vector<double> atom(m);
  // Buffers reused across iterations: the projection update used to
  // reallocate an M-vector twice per iteration (qr.Project return +
  // la::Subtract return); with the in-place variants the loop allocates
  // nothing of size M or N.
  std::vector<double> projection(m);
  std::vector<double> qty_scratch;

  for (size_t iter = 0; iter < iteration_cap; ++iter) {
    // Statement 4 of Algorithm 2: argmax over unselected atoms of
    // |<atom_j, r>| — fused into the dictionary's correlate pass, so no
    // N-vector of correlations is materialized, copied, or rescanned.
    CSOD_ASSIGN_OR_RETURN(CorrelateArgmaxResult pick,
                          dictionary.CorrelateArgmax(residual, selected_mask));
    if (pick.index == CorrelateArgmaxResult::kNoIndex ||
        pick.abs_correlation == 0.0) {
      break;
    }
    const size_t best = pick.index;

    dictionary.FillAtom(best, atom.data());
    CSOD_ASSIGN_OR_RETURN(double ortho_norm, qr.AppendColumn(atom));
    if (ortho_norm == 0.0) {
      // Linearly dependent atom: the projection cannot improve; treat as
      // stagnation (the floating-point regime Section 5 worries about).
      result.stopped_by_stagnation = true;
      break;
    }
    selected_mask[best] = true;
    result.selected.push_back(best);

    // Statement 6: r <- y - proj(y, Φs).
    CSOD_RETURN_NOT_OK(qr.ProjectInto(y, &qty_scratch, &projection));
    la::SubtractInto(y, projection, &residual);
    // Computed once per iteration and reused for the trajectory, the
    // telemetry histogram, the tolerance check, and the stagnation check
    // (the previous iteration's value is read back off the trajectory
    // rather than shadowed in a separate variable).
    const double residual_norm = la::Norm2(residual);
    const double prev_residual_norm =
        result.residual_norms.empty() ? y_norm : result.residual_norms.back();
    result.residual_norms.push_back(residual_norm);
    result.iterations = iter + 1;
    if (options.telemetry != nullptr && options.telemetry->enabled()) {
      // The per-iteration trajectory the paper plots (residual decay and
      // support growth); recorded serially, so snapshots stay deterministic.
      options.telemetry->RecordValue("omp.residual_norm", residual_norm);
      options.telemetry->RecordValue(
          "omp.support_size", static_cast<double>(result.selected.size()));
    }

    std::vector<double> iteration_coeffs;
    if (options.solve_coefficients_each_iteration ||
        options.iteration_callback) {
      if (options.solve_coefficients_each_iteration) {
        CSOD_ASSIGN_OR_RETURN(iteration_coeffs, qr.SolveLeastSquares(y));
      }
      if (options.iteration_callback) {
        OmpIterationInfo info;
        info.iteration = iter + 1;
        info.selected_atom = best;
        info.residual_norm = residual_norm;
        info.selected = &result.selected;
        info.coefficients =
            options.solve_coefficients_each_iteration ? &iteration_coeffs
                                                      : nullptr;
        options.iteration_callback(info);
      }
    }

    if (residual_norm <= options.residual_tolerance * y_norm) break;
    if (options.stop_on_residual_stagnation &&
        residual_norm >=
            prev_residual_norm * (1.0 - options.stagnation_tolerance)) {
      result.stopped_by_stagnation = true;
      break;
    }
  }

  if (!result.selected.empty()) {
    CSOD_ASSIGN_OR_RETURN(result.coefficients, qr.SolveLeastSquares(y));
  }
  result.final_residual_norm =
      result.residual_norms.empty() ? y_norm : result.residual_norms.back();
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.telemetry->AddCounter("omp.runs");
    options.telemetry->RecordValue("omp.iterations",
                                   static_cast<double>(result.iterations));
    if (result.stopped_by_stagnation) {
      options.telemetry->AddCounter("omp.stagnation_stops");
    }
  }
  return result;
}

}  // namespace csod::cs
