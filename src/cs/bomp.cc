#include "cs/bomp.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "cs/dictionary.h"
#include "la/vector_ops.h"

namespace csod::cs {

std::vector<double> BompResult::Materialize(size_t n) const {
  std::vector<double> x(n, mode);
  for (const RecoveredEntry& e : entries) {
    if (e.index < n) x[e.index] = e.value;
  }
  return x;
}

size_t DefaultIterationsForK(size_t k) {
  // Midpoint of the paper's tuned range [2k, 5k], floored at 8.
  const size_t r = (7 * k + 1) / 2;  // 3.5k
  return std::max<size_t>(r, 8);
}

namespace {

// Shared conversion from the extended-problem OMP solution to BompResult.
// `bias_atom_present` distinguishes RunBomp (atom 0 is the bias column and
// data atoms are shifted by one) from known-mode recovery (no bias atom).
BompResult BuildResult(const OmpResult& omp, size_t n, bool bias_atom_present,
                       double known_mode) {
  BompResult out;
  double z0 = 0.0;
  if (bias_atom_present) {
    for (size_t i = 0; i < omp.selected.size(); ++i) {
      if (omp.selected[i] == 0) {
        z0 = omp.coefficients[i];
        out.bias_selected = true;
        break;
      }
    }
    out.mode = z0 / std::sqrt(static_cast<double>(n));
  } else {
    out.mode = known_mode;
  }

  for (size_t i = 0; i < omp.selected.size(); ++i) {
    const size_t atom = omp.selected[i];
    if (bias_atom_present && atom == 0) continue;
    RecoveredEntry e;
    e.index = bias_atom_present ? atom - 1 : atom;
    e.value = omp.coefficients[i] + out.mode;
    out.entries.push_back(e);
  }

  out.iterations = omp.iterations;
  out.stopped_by_stagnation = omp.stopped_by_stagnation;
  out.final_residual_norm = omp.final_residual_norm;
  return out;
}

}  // namespace

Result<BompResult> RunBomp(const MeasurementMatrix& matrix,
                           const std::vector<double>& y,
                           const BompOptions& options) {
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("RunBomp: max_iterations must be > 0");
  }
  obs::TraceSpan span(options.telemetry, "bomp.recover");
  // Step 1 of Algorithm 1: extend the measurement matrix with the bias
  // column φ0 = (1/√N) Σ φ_i.
  ExtendedDictionary dictionary(&matrix);

  OmpOptions omp_options;
  omp_options.max_iterations = options.max_iterations;
  omp_options.residual_tolerance = options.residual_tolerance;
  omp_options.stop_on_residual_stagnation =
      options.stop_on_residual_stagnation;
  omp_options.telemetry = options.telemetry;

  std::vector<double> mode_trace;
  const double inv_sqrt_n = 1.0 / std::sqrt(static_cast<double>(matrix.n()));
  if (options.record_mode_trace) {
    omp_options.solve_coefficients_each_iteration = true;
    omp_options.iteration_callback = [&](const OmpIterationInfo& info) {
      double z0 = 0.0;
      for (size_t i = 0; i < info.selected->size(); ++i) {
        if ((*info.selected)[i] == 0) {
          z0 = (*info.coefficients)[i];
          break;
        }
      }
      mode_trace.push_back(z0 * inv_sqrt_n);
    };
  }

  // Step 2: standard OMP on y = Φ ẑ.
  CSOD_ASSIGN_OR_RETURN(OmpResult omp, RunOmp(dictionary, y, omp_options));

  // Step 3: assemble x̂, b, O (Equation 4).
  BompResult result = BuildResult(omp, matrix.n(), /*bias_atom_present=*/true,
                                  /*known_mode=*/0.0);
  result.mode_trace = std::move(mode_trace);
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.telemetry->AddCounter("bomp.runs");
    if (result.bias_selected) options.telemetry->AddCounter("bomp.bias_selected");
    options.telemetry->RecordValue("bomp.iterations",
                                   static_cast<double>(result.iterations));
    options.telemetry->RecordValue("bomp.support_size",
                                   static_cast<double>(result.entries.size()));
    options.telemetry->RecordValue("bomp.final_residual_norm",
                                   result.final_residual_norm);
  }
  return result;
}

Result<BompResult> RecoverWithKnownMode(const MeasurementMatrix& matrix,
                                        const std::vector<double>& y,
                                        double known_mode,
                                        const BompOptions& options) {
  if (options.max_iterations == 0) {
    return Status::InvalidArgument(
        "RecoverWithKnownMode: max_iterations must be > 0");
  }
  // y' = y - b * Φ0 * 1 = y - b * √N * φ0. The memoized bias column makes
  // repeated known-mode recoveries over one matrix skip the O(M·N) column
  // sum after the first call.
  std::vector<double> shifted = y;
  if (known_mode != 0.0) {
    const std::vector<double>& bias = matrix.CachedBiasColumn();
    const double scale =
        known_mode * std::sqrt(static_cast<double>(matrix.n()));
    la::Axpy(-scale, bias, &shifted);
  }

  MatrixDictionary dictionary(&matrix);
  OmpOptions omp_options;
  omp_options.max_iterations = options.max_iterations;
  omp_options.residual_tolerance = options.residual_tolerance;
  omp_options.stop_on_residual_stagnation =
      options.stop_on_residual_stagnation;
  omp_options.telemetry = options.telemetry;

  CSOD_ASSIGN_OR_RETURN(OmpResult omp, RunOmp(dictionary, shifted, omp_options));
  return BuildResult(omp, matrix.n(), /*bias_atom_present=*/false, known_mode);
}

}  // namespace csod::cs
