#ifndef CSOD_CS_RIP_H_
#define CSOD_CS_RIP_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "cs/measurement_matrix.h"

namespace csod::cs {

/// Result of a restricted-isometry probe.
struct RipEstimate {
  /// max over sampled s-sparse x of | ||Φx||² / ||x||² − 1 | — a Monte
  /// Carlo lower bound on the RIP constant δ_s.
  double delta = 0.0;
  /// Extremes of the observed energy ratio ||Φx||² / ||x||².
  double min_ratio = 1.0;
  double max_ratio = 1.0;
  size_t trials = 0;
};

/// \brief Monte Carlo probe of the restricted isometry property (RIP) of
/// a measurement matrix at sparsity level s.
///
/// Theorem 1 rests on the measurement matrix behaving near-isometrically
/// on sparse vectors ([5] in the paper: i.i.d. Gaussian matrices satisfy
/// RIP with high probability once M = O(s log(N/s))). This utility samples
/// random s-sparse unit vectors (Gaussian values on uniform supports) and
/// reports the worst observed energy distortion — a practical diagnostic
/// for choosing M, and the empirical backdrop of the Section 4
/// conjectures. A Monte Carlo probe lower-bounds the true δ_s.
Result<RipEstimate> EstimateRipConstant(const MeasurementMatrix& matrix,
                                        size_t s, size_t trials,
                                        uint64_t seed);

}  // namespace csod::cs

#endif  // CSOD_CS_RIP_H_
