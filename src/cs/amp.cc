#include "cs/amp.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "la/incremental_qr.h"
#include "la/vector_ops.h"

namespace csod::cs {

namespace {

double SoftThreshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

// Least squares of y over the given atoms; coefficients aligned with
// `support` (zero for linearly dependent atoms). Serial QR in the fixed
// support order — deterministic by construction.
Result<std::vector<double>> LeastSquaresOnSupport(
    const Dictionary& dictionary, const std::vector<size_t>& support,
    const std::vector<double>& y) {
  la::IncrementalQr qr(dictionary.atom_length());
  std::vector<double> atom(dictionary.atom_length());
  std::vector<size_t> kept;
  for (size_t pos = 0; pos < support.size(); ++pos) {
    dictionary.FillAtom(support[pos], atom.data());
    CSOD_ASSIGN_OR_RETURN(double ortho, qr.AppendColumn(atom));
    if (ortho > 0.0) kept.push_back(pos);
  }
  std::vector<double> coeffs(support.size(), 0.0);
  if (!kept.empty()) {
    CSOD_ASSIGN_OR_RETURN(std::vector<double> z, qr.SolveLeastSquares(y));
    for (size_t i = 0; i < kept.size(); ++i) coeffs[kept[i]] = z[i];
  }
  return coeffs;
}

// Re-solves least squares on the detected support so the soft-threshold
// shrinkage (every surviving coefficient is biased toward zero by θ) is
// removed from the reported values. The support is the unthresholded
// atoms plus the strongest remaining nonzeros of `x`, capped at M/4 so
// the QR stays well-posed far from the M-column degeneracy.
Status Debias(const Dictionary& dictionary, const std::vector<double>& y,
              const std::vector<bool>& unthresholded,
              std::vector<double>* x) {
  const size_t m = dictionary.atom_length();
  const size_t cap = std::max<size_t>(1, m / 4);

  std::vector<size_t> support;
  std::vector<size_t> candidates;
  for (size_t j = 0; j < x->size(); ++j) {
    if (unthresholded[j]) {
      support.push_back(j);
    } else if ((*x)[j] != 0.0) {
      candidates.push_back(j);
    }
  }
  if (support.size() < cap && !candidates.empty()) {
    const size_t take = std::min(candidates.size(), cap - support.size());
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end(), [&](size_t a, size_t b) {
                        const double fa = std::fabs((*x)[a]);
                        const double fb = std::fabs((*x)[b]);
                        if (fa != fb) return fa > fb;
                        return a < b;
                      });
    candidates.resize(take);
    std::sort(candidates.begin(), candidates.end());
    support.insert(support.end(), candidates.begin(), candidates.end());
    std::sort(support.begin(), support.end());
  }
  if (support.empty()) return Status::OK();

  CSOD_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                        LeastSquaresOnSupport(dictionary, support, y));
  std::fill(x->begin(), x->end(), 0.0);
  for (size_t i = 0; i < support.size(); ++i) {
    (*x)[support[i]] = coeffs[i];
  }
  return Status::OK();
}

}  // namespace

size_t DefaultAmpIterations() { return 40; }

Result<AmpResult> RunAmp(const Dictionary& dictionary,
                         const std::vector<double>& y,
                         const AmpOptions& options) {
  const size_t m = dictionary.atom_length();
  const size_t n = dictionary.num_atoms();
  if (y.size() != m) {
    return Status::InvalidArgument("RunAmp: y size " +
                                   std::to_string(y.size()) + " != M " +
                                   std::to_string(m));
  }
  if (options.threshold_multiplier <= 0.0) {
    return Status::InvalidArgument(
        "RunAmp: threshold_multiplier must be > 0");
  }
  std::vector<bool> unthresholded(n, false);
  for (size_t idx : options.unthresholded_atoms) {
    if (idx >= n) {
      return Status::OutOfRange("RunAmp: unthresholded atom " +
                                std::to_string(idx) + " out of range");
    }
    unthresholded[idx] = true;
  }
  const size_t iterations = options.max_iterations == 0
                                ? DefaultAmpIterations()
                                : options.max_iterations;

  obs::TraceSpan span(options.telemetry, "amp.recover");
  AmpResult result;
  result.x.assign(n, 0.0);
  if (la::Norm2(y) == 0.0) return result;  // Nothing to recover.

  const double inv_sqrt_m = 1.0 / std::sqrt(static_cast<double>(m));
  std::vector<double> z = y;          // Onsager-corrected residual.
  std::vector<double> x_next(n);
  std::vector<double> z_next(m);
  std::vector<double> magnitudes;

  // Support cap. θ = λ·σ̂ keeps roughly 2(1−Φ(λ))·N atoms alive; at small
  // undersampling ratios M/N (the protocols run at 1-2%) that is far more
  // than M, the Onsager coefficient |supp|/M blows past 1, and the
  // iteration diverges. Whenever the λ·σ̂ threshold would keep more than
  // M/3 atoms, θ is raised to the (cap+1)-th largest pseudo-data
  // magnitude so at most M/3 survive — an order statistic of a fixed
  // multiset, so the capped threshold is as deterministic as the plain
  // one and bit-identity across thread limits and ISAs is preserved.
  const size_t cap = std::max<size_t>(1, m / 3);

  for (size_t iter = 0; iter < iterations; ++iter) {
    // Pseudo-data v = x_t + Φᵀ z_t: the correlation is the dictionary's
    // ParallelFor-blocked kernel; the element-wise add is serial.
    CSOD_ASSIGN_OR_RETURN(std::vector<double> corr, dictionary.Correlate(z));

    // State-evolution noise estimate and threshold.
    const double sigma = la::Norm2(z) * inv_sqrt_m;
    if (!std::isfinite(sigma)) break;  // Diverged; keep the last iterate.
    result.sigma_trace.push_back(sigma);
    const double theta = options.threshold_multiplier * sigma;

    // Raw pseudo-data first, so the capped threshold can be computed
    // before any shrinkage is applied.
    for (size_t j = 0; j < n; ++j) x_next[j] = result.x[j] + corr[j];
    double theta_eff = theta;
    size_t alive = 0;
    for (size_t j = 0; j < n; ++j) {
      if (!unthresholded[j] && std::fabs(x_next[j]) > theta) ++alive;
    }
    if (alive > cap) {
      magnitudes.clear();
      for (size_t j = 0; j < n; ++j) {
        if (!unthresholded[j]) magnitudes.push_back(std::fabs(x_next[j]));
      }
      std::nth_element(magnitudes.begin(), magnitudes.begin() + cap,
                       magnitudes.end(), std::greater<double>());
      theta_eff = std::max(theta, magnitudes[cap]);
    }

    size_t active = 0;
    for (size_t j = 0; j < n; ++j) {
      const double v = x_next[j];
      if (unthresholded[j]) {
        x_next[j] = v;
        ++active;
      } else {
        x_next[j] = SoftThreshold(v, theta_eff);
        if (x_next[j] != 0.0) ++active;
      }
    }

    // z_{t+1} = y − Φ x_{t+1} + (|supp|/M)·z_t. The Onsager term is what
    // keeps the effective noise Gaussian — dropping it degrades AMP to
    // plain iterative soft thresholding with a much slower contraction.
    CSOD_ASSIGN_OR_RETURN(std::vector<double> fitted,
                          dictionary.MultiplyDense(x_next));
    const double onsager =
        static_cast<double>(active) / static_cast<double>(m);
    for (size_t j = 0; j < m; ++j) {
      z_next[j] = y[j] - fitted[j] + onsager * z[j];
    }

    const double change = la::DistanceL2(x_next, result.x);
    const double scale = std::max(la::Norm2(x_next), 1e-300);
    result.x.swap(x_next);
    z.swap(z_next);
    result.iterations = iter + 1;
    if (options.telemetry != nullptr && options.telemetry->enabled()) {
      options.telemetry->RecordValue("amp.residual_norm",
                                     la::DistanceL2(fitted, y));
      options.telemetry->RecordValue("amp.support_size",
                                     static_cast<double>(active));
    }
    if (change / scale < options.tolerance) break;
    if (sigma == 0.0) break;
  }

  if (options.debias) {
    CSOD_RETURN_NOT_OK(Debias(dictionary, y, unthresholded, &result.x));
  }
  CSOD_ASSIGN_OR_RETURN(std::vector<double> fitted,
                        dictionary.MultiplyDense(result.x));
  result.final_residual_norm = la::DistanceL2(fitted, y);
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.telemetry->AddCounter("amp.runs");
    options.telemetry->RecordValue("amp.iterations",
                                   static_cast<double>(result.iterations));
    options.telemetry->RecordValue("amp.final_residual_norm",
                                   result.final_residual_norm);
  }
  return result;
}

Result<AmpResult> RunAmp(const MeasurementMatrix& matrix,
                         const std::vector<double>& y,
                         const AmpOptions& options) {
  MatrixDictionary dictionary(&matrix);
  return RunAmp(dictionary, y, options);
}

Result<BompResult> RunBiasedAmp(const MeasurementMatrix& matrix,
                                const std::vector<double>& y,
                                const AmpOptions& options) {
  ExtendedDictionary dictionary(&matrix);
  AmpOptions inner = options;
  inner.unthresholded_atoms.push_back(0);  // The bias coefficient is free.
  CSOD_ASSIGN_OR_RETURN(AmpResult amp, RunAmp(dictionary, y, inner));

  BompResult out;
  const double z0 = amp.x.empty() ? 0.0 : amp.x[0];
  out.bias_selected = z0 != 0.0;
  out.mode = z0 / std::sqrt(static_cast<double>(matrix.n()));
  for (size_t j = 1; j < amp.x.size(); ++j) {
    if (amp.x[j] == 0.0) continue;
    RecoveredEntry e;
    e.index = j - 1;
    e.value = amp.x[j] + out.mode;
    out.entries.push_back(e);
  }
  out.iterations = amp.iterations;
  out.final_residual_norm = amp.final_residual_norm;
  return out;
}

}  // namespace csod::cs
