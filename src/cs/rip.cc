#include "cs/rip.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "la/vector_ops.h"

namespace csod::cs {

Result<RipEstimate> EstimateRipConstant(const MeasurementMatrix& matrix,
                                        size_t s, size_t trials,
                                        uint64_t seed) {
  if (s == 0 || s > matrix.n()) {
    return Status::InvalidArgument("EstimateRipConstant: need 0 < s <= N");
  }
  if (trials == 0) {
    return Status::InvalidArgument("EstimateRipConstant: trials must be > 0");
  }

  Rng rng(seed);
  RipEstimate estimate;
  estimate.trials = trials;
  estimate.min_ratio = 1e300;
  estimate.max_ratio = -1e300;

  std::vector<size_t> support;
  std::vector<double> values;
  for (size_t t = 0; t < trials; ++t) {
    // Random s-sparse vector: uniform support, Gaussian values.
    std::unordered_set<size_t> chosen;
    while (chosen.size() < s) {
      chosen.insert(static_cast<size_t>(rng.NextBounded(matrix.n())));
    }
    support.assign(chosen.begin(), chosen.end());
    values.resize(s);
    double norm_sq = 0.0;
    for (double& v : values) {
      v = rng.NextGaussian();
      norm_sq += v * v;
    }
    if (norm_sq == 0.0) continue;

    CSOD_ASSIGN_OR_RETURN(std::vector<double> y,
                          matrix.MultiplySparse(support, values));
    const double ratio = la::Norm2Squared(y) / norm_sq;
    estimate.min_ratio = std::min(estimate.min_ratio, ratio);
    estimate.max_ratio = std::max(estimate.max_ratio, ratio);
    estimate.delta = std::max(estimate.delta, std::fabs(ratio - 1.0));
  }
  return estimate;
}

}  // namespace csod::cs
