#include "cs/basis_pursuit.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/random.h"
#include "la/vector_ops.h"

namespace csod::cs {

namespace {

// Largest squared singular value of the dictionary operator, by power
// iteration on ΦᵀΦ.
Result<double> EstimateLipschitz(const Dictionary& dictionary) {
  Rng rng(0x9d5f1c2b7ULL ^ dictionary.num_atoms());
  std::vector<double> v(dictionary.num_atoms());
  for (double& e : v) e = rng.NextGaussian();
  double eigen = 1.0;
  for (int it = 0; it < 30; ++it) {
    CSOD_ASSIGN_OR_RETURN(std::vector<double> w, dictionary.MultiplyDense(v));
    CSOD_ASSIGN_OR_RETURN(std::vector<double> u, dictionary.Correlate(w));
    const double norm = la::Norm2(u);
    if (norm == 0.0) break;
    eigen = norm / std::max(la::Norm2(v), 1e-300);
    la::Scale(1.0 / norm, &u);
    v = std::move(u);
  }
  return eigen;
}

double SoftThreshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

}  // namespace

Result<BasisPursuitResult> RunBasisPursuit(
    const Dictionary& dictionary, const std::vector<double>& y,
    const BasisPursuitOptions& options) {
  if (y.size() != dictionary.atom_length()) {
    return Status::InvalidArgument(
        "RunBasisPursuit: y size " + std::to_string(y.size()) + " != M " +
        std::to_string(dictionary.atom_length()));
  }
  const size_t n = dictionary.num_atoms();

  std::vector<bool> penalized(n, true);
  for (size_t idx : options.unpenalized_atoms) {
    if (idx >= n) {
      return Status::OutOfRange("RunBasisPursuit: unpenalized atom " +
                                std::to_string(idx) + " out of range");
    }
    penalized[idx] = false;
  }

  double lambda = options.lambda;
  if (lambda <= 0.0) {
    CSOD_ASSIGN_OR_RETURN(std::vector<double> corr, dictionary.Correlate(y));
    double max_abs = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (penalized[j]) max_abs = std::max(max_abs, std::fabs(corr[j]));
    }
    lambda = 0.01 * max_abs;
    if (lambda == 0.0) lambda = 1e-12;
  }

  CSOD_ASSIGN_OR_RETURN(double lipschitz, EstimateLipschitz(dictionary));
  // Small safety factor: power iteration under-estimates slightly.
  const double step = 1.0 / (lipschitz * 1.05);

  obs::TraceSpan span(options.telemetry, "fista.recover");
  BasisPursuitResult result;
  std::vector<double> x(n, 0.0);
  std::vector<double> momentum = x;  // FISTA extrapolation point.
  std::vector<double> residual;      // Reused across iterations.
  double t_prev = 1.0;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient of the smooth part at the extrapolation point:
    // Φᵀ(Φ z − y).
    CSOD_ASSIGN_OR_RETURN(std::vector<double> fitted,
                          dictionary.MultiplyDense(momentum));
    la::SubtractInto(fitted, y, &residual);
    CSOD_ASSIGN_OR_RETURN(std::vector<double> grad,
                          dictionary.Correlate(residual));

    std::vector<double> x_next(n);
    const double threshold = lambda * step;
    for (size_t i = 0; i < n; ++i) {
      const double candidate = momentum[i] - step * grad[i];
      x_next[i] =
          penalized[i] ? SoftThreshold(candidate, threshold) : candidate;
    }

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_prev * t_prev));
    const double beta = (t_prev - 1.0) / t_next;
    for (size_t i = 0; i < n; ++i) {
      momentum[i] = x_next[i] + beta * (x_next[i] - x[i]);
    }

    const double change = la::DistanceL2(x_next, x);
    const double scale = std::max(la::Norm2(x_next), 1e-300);
    x = std::move(x_next);
    t_prev = t_next;
    result.iterations = iter + 1;
    if (options.telemetry != nullptr && options.telemetry->enabled()) {
      // Per-iteration trajectory, recorded serially like the greedy
      // engines' histograms so snapshots stay deterministic. The residual
      // at the extrapolation point is already in hand — no extra matvec.
      options.telemetry->RecordValue("fista.residual_norm",
                                     la::Norm2(residual));
      options.telemetry->RecordValue("fista.relative_change",
                                     change / scale);
    }
    if (change / scale < options.tolerance) break;
  }

  CSOD_ASSIGN_OR_RETURN(std::vector<double> fitted,
                        dictionary.MultiplyDense(x));
  result.final_residual_norm = la::DistanceL2(fitted, y);
  result.x = std::move(x);
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.telemetry->AddCounter("fista.runs");
    options.telemetry->RecordValue("fista.iterations",
                                   static_cast<double>(result.iterations));
    options.telemetry->RecordValue("fista.final_residual_norm",
                                   result.final_residual_norm);
  }
  return result;
}

Result<BasisPursuitResult> RunBasisPursuit(
    const MeasurementMatrix& matrix, const std::vector<double>& y,
    const BasisPursuitOptions& options) {
  MatrixDictionary dictionary(&matrix);
  return RunBasisPursuit(dictionary, y, options);
}

Result<BompResult> RunBiasedBasisPursuit(const MeasurementMatrix& matrix,
                                         const std::vector<double>& y,
                                         const BasisPursuitOptions& options) {
  ExtendedDictionary dictionary(&matrix);
  BasisPursuitOptions inner = options;
  inner.unpenalized_atoms.push_back(0);  // The bias coefficient is free.
  CSOD_ASSIGN_OR_RETURN(BasisPursuitResult bp,
                        RunBasisPursuit(dictionary, y, inner));

  BompResult out;
  const double z0 = bp.x.empty() ? 0.0 : bp.x[0];
  out.bias_selected = z0 != 0.0;
  out.mode = z0 / std::sqrt(static_cast<double>(matrix.n()));
  for (size_t j = 1; j < bp.x.size(); ++j) {
    if (bp.x[j] == 0.0) continue;
    RecoveredEntry e;
    e.index = j - 1;
    e.value = bp.x[j] + out.mode;
    out.entries.push_back(e);
  }
  out.iterations = bp.iterations;
  out.final_residual_norm = bp.final_residual_norm;
  return out;
}

}  // namespace csod::cs
