#include "cs/measurement_matrix.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/parallel.h"
#include "common/simd.h"

namespace csod::cs {

namespace {
// Minimum per-thread column count before ParallelFor spawns workers — the
// kernels below cost >= M flops per column, so tiny jobs stay serial.
constexpr size_t kMinColumnsPerChunk = 256;

// Column *generation* (Box-Muller: log/sqrt/sincos per pair) is an order of
// magnitude heavier than an M-flop pass, so the implicit batch kernel
// parallelizes generation at a much finer grain.
constexpr size_t kMinColumnsPerGeneration = 32;

// Fixed block geometry for the reduction kernels (Multiply, MultiplySparse,
// MultiplySparseBatch, BiasColumn). Each block accumulates a private partial
// vector; partials are combined serially in block order. The block size must
// NOT depend on the parallelism limit: that keeps the floating-point
// summation tree — and so the result — bit-identical at any thread count.
constexpr size_t kReductionBlockColumns = 2048;
constexpr size_t kReductionBlockNnz = 512;

// Streams (column pointer, coefficient) pairs into `acc` eight at a time
// via the fused simd::Axpy8, falling back to Axpy4/Axpy for the remainder.
// Every fused form is bit-identical to one simd::Axpy per entry in push
// order (common/simd.h), so batch boundaries never affect the result — only
// the number of passes over acc and the number of concurrent load streams.
class AxpyBatcher {
 public:
  AxpyBatcher(double* acc, size_t m) : acc_(acc), m_(m) {}

  void Push(const double* col, double x) {
    cols_[filled_] = col;
    xs_[filled_] = x;
    if (++filled_ == 8) Flush();
  }

  void Flush() {
    size_t k = 0;
    if (filled_ == 8) {
      simd::Axpy8(acc_, cols_, xs_, m_);
      k = 8;
    } else if (filled_ >= 4) {
      simd::Axpy4(acc_, cols_[0], xs_[0], cols_[1], xs_[1], cols_[2], xs_[2],
                  cols_[3], xs_[3], m_);
      k = 4;
    }
    for (; k < filled_; ++k) simd::Axpy(acc_, cols_[k], xs_[k], m_);
    filled_ = 0;
  }

 private:
  double* acc_;
  size_t m_;
  const double* cols_[8];
  double xs_[8];
  size_t filled_ = 0;
};

// Same idea for unscaled column sums (BiasColumn).
class AddBatcher {
 public:
  AddBatcher(double* acc, size_t m) : acc_(acc), m_(m) {}

  void Push(const double* col) {
    cols_[filled_] = col;
    if (++filled_ == 4) Flush();
  }

  void Flush() {
    if (filled_ == 4) {
      simd::Add4(acc_, cols_[0], cols_[1], cols_[2], cols_[3], m_);
    } else {
      for (size_t k = 0; k < filled_; ++k) simd::Add(acc_, cols_[k], m_);
    }
    filled_ = 0;
  }

 private:
  double* acc_;
  size_t m_;
  const double* cols_[4];
  size_t filled_ = 0;
};

// Folds a candidate (index, value) into the running chunk-local argmax.
// Strict > with ascending candidate order == lowest index wins on ties.
inline void FoldArgmax(size_t index, double value,
                       CorrelateArgmaxResult* best) {
  const double abs_value = std::fabs(value);
  if (abs_value > best->abs_correlation) {
    best->index = index;
    best->correlation = value;
    best->abs_correlation = abs_value;
  }
}

}  // namespace

MeasurementMatrix::MeasurementMatrix(size_t m, size_t n, uint64_t seed,
                                     size_t cache_budget_bytes)
    : m_(m), n_(n), seed_(seed), inv_sqrt_m_(1.0 / std::sqrt(double(m))) {
  const size_t bytes = m_ * n_ * sizeof(double);
  if (cache_budget_bytes > 0 && bytes <= cache_budget_bytes) {
    cache_.resize(m_ * n_);
    // Column-parallel and deterministic: each column's entries are a pure
    // function of (seed, col, row), written to a disjoint cache range.
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      for (size_t col = begin; col < end; ++col) {
        CounterGaussian gen(HashCombine(seed_, col));
        double* dst = cache_.data() + col * m_;
        gen.Fill(m_, dst);
        simd::Scale(dst, inv_sqrt_m_, m_);
      }
    });
  }
}

void MeasurementMatrix::FillColumn(size_t col, double* out) const {
  if (!cache_.empty()) {
    const double* src = cache_.data() + col * m_;
    std::copy(src, src + m_, out);
    return;
  }
  CounterGaussian gen(HashCombine(seed_, col));
  gen.Fill(m_, out);
  simd::Scale(out, inv_sqrt_m_, m_);
}

std::vector<double> MeasurementMatrix::Column(size_t col) const {
  std::vector<double> out(m_);
  FillColumn(col, out.data());
  return out;
}

Result<std::vector<double>> MeasurementMatrix::Multiply(
    const std::vector<double>& x) const {
  if (x.size() != n_) {
    return Status::InvalidArgument("Multiply: x size " +
                                   std::to_string(x.size()) + " != N " +
                                   std::to_string(n_));
  }
  std::vector<double> y(m_, 0.0);
  // Accumulates columns [col_begin, col_end) into acc (size M). The scratch
  // column is only needed when the matrix is implicit.
  auto accumulate = [&](size_t col_begin, size_t col_end, double* acc) {
    if (!cache_.empty()) {
      AxpyBatcher batch(acc, m_);
      for (size_t j = col_begin; j < col_end; ++j) {
        const double xj = x[j];
        if (xj == 0.0) continue;
        batch.Push(cache_.data() + j * m_, xj);
      }
      batch.Flush();
    } else {
      std::vector<double> col(m_);
      for (size_t j = col_begin; j < col_end; ++j) {
        const double xj = x[j];
        if (xj == 0.0) continue;
        FillColumn(j, col.data());
        simd::Axpy(acc, col.data(), xj, m_);
      }
    }
  };

  const size_t num_blocks =
      (n_ + kReductionBlockColumns - 1) / kReductionBlockColumns;
  if (num_blocks <= 1) {
    accumulate(0, n_, y.data());
    return y;
  }
  // Fixed-geometry blocked reduction: block b accumulates its private
  // partial; partials are folded in block order below, independent of which
  // thread computed them.
  std::vector<double> partials(num_blocks * m_, 0.0);
  ParallelFor(num_blocks, 1, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const size_t col_begin = b * kReductionBlockColumns;
      const size_t col_end = std::min(n_, col_begin + kReductionBlockColumns);
      accumulate(col_begin, col_end, partials.data() + b * m_);
    }
  });
  for (size_t b = 0; b < num_blocks; ++b) {
    simd::Add(y.data(), partials.data() + b * m_, m_);
  }
  return y;
}

Result<std::vector<double>> MeasurementMatrix::MultiplySparse(
    const std::vector<size_t>& indices,
    const std::vector<double>& values) const {
  if (indices.size() != values.size()) {
    return Status::InvalidArgument(
        "MultiplySparse: indices/values size mismatch");
  }
  for (size_t j : indices) {
    if (j >= n_) {
      return Status::OutOfRange("MultiplySparse: index " + std::to_string(j) +
                                " out of N " + std::to_string(n_));
    }
  }
  const size_t nnz = indices.size();
  std::vector<double> y(m_, 0.0);
  auto accumulate = [&](size_t k_begin, size_t k_end, double* acc) {
    if (!cache_.empty()) {
      AxpyBatcher batch(acc, m_);
      for (size_t k = k_begin; k < k_end; ++k) {
        const double xj = values[k];
        if (xj == 0.0) continue;
        batch.Push(cache_.data() + indices[k] * m_, xj);
      }
      batch.Flush();
    } else {
      std::vector<double> col(m_);
      for (size_t k = k_begin; k < k_end; ++k) {
        const double xj = values[k];
        if (xj == 0.0) continue;
        FillColumn(indices[k], col.data());
        simd::Axpy(acc, col.data(), xj, m_);
      }
    }
  };

  const size_t num_blocks = (nnz + kReductionBlockNnz - 1) / kReductionBlockNnz;
  if (num_blocks <= 1) {
    accumulate(0, nnz, y.data());
    return y;
  }
  std::vector<double> partials(num_blocks * m_, 0.0);
  ParallelFor(num_blocks, 1, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const size_t k_begin = b * kReductionBlockNnz;
      const size_t k_end = std::min(nnz, k_begin + kReductionBlockNnz);
      accumulate(k_begin, k_end, partials.data() + b * m_);
    }
  });
  for (size_t b = 0; b < num_blocks; ++b) {
    simd::Add(y.data(), partials.data() + b * m_, m_);
  }
  return y;
}

Status MeasurementMatrix::MultiplySparseBatch(
    const std::vector<SparseVectorView>& slices, std::vector<double>* sum_out,
    std::vector<double>* per_slice_out, size_t scratch_budget_bytes) const {
  // Validate up front so the parallel phase below cannot fail.
  for (const SparseVectorView& s : slices) {
    for (size_t k = 0; k < s.nnz; ++k) {
      if (s.indices[k] >= n_) {
        return Status::OutOfRange(
            "MultiplySparseBatch: index " + std::to_string(s.indices[k]) +
            " out of N " + std::to_string(n_));
      }
    }
  }

  // Per-slice fixed block geometry, identical to MultiplySparse: slice l's
  // entries are cut at multiples of kReductionBlockNnz in original order.
  struct Block {
    size_t slice;
    size_t k_begin;
    size_t k_end;
  };
  std::vector<Block> blocks;
  for (size_t l = 0; l < slices.size(); ++l) {
    for (size_t k = 0; k < slices[l].nnz; k += kReductionBlockNnz) {
      blocks.push_back(
          Block{l, k, std::min(slices[l].nnz, k + kReductionBlockNnz)});
    }
  }

  if (per_slice_out != nullptr) per_slice_out->assign(slices.size() * m_, 0.0);
  if (sum_out != nullptr) sum_out->assign(m_, 0.0);
  if (blocks.empty()) return Status::OK();  // Every slice empty: y = 0.

  // Processing schedule: block-ordinal-major (block 0 of every slice, then
  // block 1 of every slice, ...). Blocks accumulate into disjoint partials,
  // so processing order cannot change bits — only the serial folds below fix
  // the floating-point order. Ordinal-major scheduling is a locality win:
  // slices are typically index-sorted (SparseSlice::FromDense, the cluster
  // simulator), so block k of different slices covers a similar column
  // range, and columns shared across nodes (hot keys) stay cache-resident
  // across the whole batch instead of being re-fetched per node.
  std::vector<size_t> schedule(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) schedule[b] = b;
  std::stable_sort(schedule.begin(), schedule.end(), [&](size_t a, size_t b) {
    return blocks[a].k_begin < blocks[b].k_begin;
  });

  // Block b's entries accumulate into partials[b*M, (b+1)*M) exactly as
  // MultiplySparse would (same order, same 4-wide fusion); `column` resolves
  // an entry to its column storage.
  std::vector<double> partials(blocks.size() * m_, 0.0);
  auto run_block = [&](size_t b, auto&& column) {
    const Block& blk = blocks[b];
    const SparseVectorView& s = slices[blk.slice];
    AxpyBatcher batch(partials.data() + b * m_, m_);
    for (size_t k = blk.k_begin; k < blk.k_end; ++k) {
      const double xj = s.values[k];
      if (xj == 0.0) continue;
      batch.Push(column(s.indices[k]), xj);
    }
    batch.Flush();
  };

  if (!cache_.empty()) {
    // Cross-slice parallel over all blocks at once, in schedule order.
    ParallelFor(schedule.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        run_block(schedule[i],
                  [&](size_t j) { return cache_.data() + j * m_; });
      }
    });
  } else {
    // Implicit matrix: tiered column scratch. Schedule-consecutive blocks
    // are grouped into waves small enough that one generated column per
    // entry fits the scratch budget (distinct columns only are actually
    // generated); within a wave every distinct column is generated exactly
    // once, no matter how many slices reference it. The ordinal-major
    // schedule makes a wave span block k of many slices, so columns shared
    // across nodes land in the same wave and are generated once per batch.
    // Wave composition depends only on the data and the budget — never on
    // thread scheduling — and generation is pure, so the accumulated bits
    // match the generate-per-entry path exactly.
    const size_t max_wave_entries = std::max(
        kReductionBlockNnz, scratch_budget_bytes / (m_ * sizeof(double)));
    std::vector<size_t> wave_cols;
    std::vector<double> scratch;
    size_t wave_begin = 0;
    while (wave_begin < schedule.size()) {
      size_t wave_end = wave_begin;
      size_t entries = 0;
      while (wave_end < schedule.size()) {
        const Block& blk = blocks[schedule[wave_end]];
        const size_t blk_entries = blk.k_end - blk.k_begin;
        if (wave_end > wave_begin && entries + blk_entries > max_wave_entries) {
          break;
        }
        entries += blk_entries;
        ++wave_end;
      }

      wave_cols.clear();
      for (size_t i = wave_begin; i < wave_end; ++i) {
        const Block& blk = blocks[schedule[i]];
        const SparseVectorView& s = slices[blk.slice];
        wave_cols.insert(wave_cols.end(), s.indices + blk.k_begin,
                         s.indices + blk.k_end);
      }
      std::sort(wave_cols.begin(), wave_cols.end());
      wave_cols.erase(std::unique(wave_cols.begin(), wave_cols.end()),
                      wave_cols.end());

      scratch.resize(wave_cols.size() * m_);
      ParallelFor(wave_cols.size(), kMinColumnsPerGeneration,
                  [&](size_t begin, size_t end) {
                    for (size_t c = begin; c < end; ++c) {
                      FillColumn(wave_cols[c], scratch.data() + c * m_);
                    }
                  });

      ParallelFor(wave_end - wave_begin, 1, [&](size_t begin, size_t end) {
        for (size_t rel = begin; rel < end; ++rel) {
          run_block(schedule[wave_begin + rel], [&](size_t j) {
            const size_t slot = static_cast<size_t>(
                std::lower_bound(wave_cols.begin(), wave_cols.end(), j) -
                wave_cols.begin());
            return scratch.data() + slot * m_;
          });
        }
      });
      wave_begin = wave_end;
    }
  }

  // Serial folds in fixed (slice, block) order — scheduling-independent and
  // bit-identical to MultiplySparse's per-slice partial fold followed by
  // AggregateMeasurements' slice-order sum.
  if (per_slice_out != nullptr) {
    for (size_t b = 0; b < blocks.size(); ++b) {
      simd::Add(per_slice_out->data() + blocks[b].slice * m_,
                partials.data() + b * m_, m_);
    }
    if (sum_out != nullptr) {
      for (size_t l = 0; l < slices.size(); ++l) {
        simd::Add(sum_out->data(), per_slice_out->data() + l * m_, m_);
      }
    }
    return Status::OK();
  }
  if (sum_out != nullptr) {
    std::vector<double> slice_acc;
    size_t b = 0;
    for (size_t l = 0; l < slices.size(); ++l) {
      const size_t b_begin = b;
      while (b < blocks.size() && blocks[b].slice == l) ++b;
      if (b == b_begin) continue;  // Empty slice: y_l = 0, a bit-exact no-op.
      if (b - b_begin == 1) {
        simd::Add(sum_out->data(), partials.data() + b_begin * m_, m_);
      } else {
        slice_acc.assign(m_, 0.0);
        for (size_t bb = b_begin; bb < b; ++bb) {
          simd::Add(slice_acc.data(), partials.data() + bb * m_, m_);
        }
        simd::Add(sum_out->data(), slice_acc.data(), m_);
      }
    }
  }
  return Status::OK();
}

Status MeasurementMatrix::CorrelateAllInto(const std::vector<double>& r,
                                           double* out) const {
  if (r.size() != m_) {
    return Status::InvalidArgument("CorrelateAllInto: r size " +
                                   std::to_string(r.size()) + " != M " +
                                   std::to_string(m_));
  }
  const double* rp = r.data();
  if (!cache_.empty()) {
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      size_t j = begin;
      for (; j + 4 <= end; j += 4) {
        const double* base = cache_.data() + j * m_;
        simd::Dot4(base, base + m_, base + 2 * m_, base + 3 * m_, rp, m_,
                   out + j);
      }
      for (; j < end; ++j) {
        out[j] = simd::Dot(cache_.data() + j * m_, rp, m_);
      }
    });
  } else {
    // Pre-scaled generation (FillColumn) so the dot sees the same column
    // bits as the cached path — cached and implicit correlations are
    // bit-identical, not merely close.
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      std::vector<double> col(m_);
      for (size_t j = begin; j < end; ++j) {
        FillColumn(j, col.data());
        out[j] = simd::Dot(col.data(), rp, m_);
      }
    });
  }
  return Status::OK();
}

Result<std::vector<double>> MeasurementMatrix::CorrelateAll(
    const std::vector<double>& r) const {
  std::vector<double> c(n_, 0.0);
  CSOD_RETURN_NOT_OK(CorrelateAllInto(r, c.data()));
  return c;
}

Result<CorrelateArgmaxResult> MeasurementMatrix::CorrelateArgmax(
    const std::vector<double>& r, const std::vector<bool>* skip,
    size_t skip_offset) const {
  if (r.size() != m_) {
    return Status::InvalidArgument("CorrelateArgmax: r size " +
                                   std::to_string(r.size()) + " != M " +
                                   std::to_string(m_));
  }
  if (skip != nullptr && skip->size() < n_ + skip_offset) {
    return Status::InvalidArgument("CorrelateArgmax: skip mask size " +
                                   std::to_string(skip->size()) +
                                   " < N + offset " +
                                   std::to_string(n_ + skip_offset));
  }
  const double* rp = r.data();
  // Chunk-local argmax over [begin, end); candidates are visited in
  // ascending index order so ties resolve to the lowest index.
  auto local_argmax = [&](size_t begin, size_t end) {
    CorrelateArgmaxResult best;
    if (!cache_.empty()) {
      // Batch unmasked columns four at a time; batch order is ascending, so
      // folding the four dots in order preserves the tie-break.
      size_t batch[4];
      size_t filled = 0;
      double dots[4];
      auto flush = [&] {
        if (filled == 4) {
          simd::Dot4(cache_.data() + batch[0] * m_,
                     cache_.data() + batch[1] * m_,
                     cache_.data() + batch[2] * m_,
                     cache_.data() + batch[3] * m_, rp, m_, dots);
          for (size_t k = 0; k < 4; ++k) FoldArgmax(batch[k], dots[k], &best);
        } else {
          for (size_t k = 0; k < filled; ++k) {
            FoldArgmax(batch[k],
                       simd::Dot(cache_.data() + batch[k] * m_, rp, m_), &best);
          }
        }
        filled = 0;
      };
      for (size_t j = begin; j < end; ++j) {
        if (skip != nullptr && (*skip)[j + skip_offset]) continue;
        batch[filled++] = j;
        if (filled == 4) flush();
      }
      flush();
    } else {
      std::vector<double> col(m_);
      for (size_t j = begin; j < end; ++j) {
        if (skip != nullptr && (*skip)[j + skip_offset]) continue;
        FillColumn(j, col.data());
        FoldArgmax(j, simd::Dot(col.data(), rp, m_), &best);
      }
    }
    return best;
  };

  const size_t chunk_count = ParallelChunkCount(n_, kMinColumnsPerChunk);
  if (chunk_count <= 1) return local_argmax(0, n_);

  std::vector<CorrelateArgmaxResult> locals(chunk_count);
  ParallelForChunks(n_, chunk_count,
                    [&](size_t chunk, size_t begin, size_t end) {
                      locals[chunk] = local_argmax(begin, end);
                    });
  // Fixed-order reduction over chunk-local winners. Chunks cover ascending
  // index ranges and FoldArgmax keeps strict >, so the lowest index still
  // wins global ties regardless of how many chunks the limit produced.
  CorrelateArgmaxResult best;
  for (const CorrelateArgmaxResult& local : locals) {
    if (local.index == CorrelateArgmaxResult::kNoIndex) continue;
    if (local.abs_correlation > best.abs_correlation) best = local;
  }
  return best;
}

std::vector<double> MeasurementMatrix::BiasColumn() const {
  std::vector<double> phi0(m_, 0.0);
  auto accumulate = [&](size_t col_begin, size_t col_end, double* acc) {
    if (!cache_.empty()) {
      AddBatcher batch(acc, m_);
      for (size_t j = col_begin; j < col_end; ++j) {
        batch.Push(cache_.data() + j * m_);
      }
      batch.Flush();
    } else {
      std::vector<double> col(m_);
      for (size_t j = col_begin; j < col_end; ++j) {
        FillColumn(j, col.data());
        simd::Add(acc, col.data(), m_);
      }
    }
  };

  const size_t num_blocks =
      (n_ + kReductionBlockColumns - 1) / kReductionBlockColumns;
  if (num_blocks <= 1) {
    accumulate(0, n_, phi0.data());
  } else {
    std::vector<double> partials(num_blocks * m_, 0.0);
    ParallelFor(num_blocks, 1, [&](size_t begin, size_t end) {
      for (size_t b = begin; b < end; ++b) {
        const size_t col_begin = b * kReductionBlockColumns;
        const size_t col_end =
            std::min(n_, col_begin + kReductionBlockColumns);
        accumulate(col_begin, col_end, partials.data() + b * m_);
      }
    });
    for (size_t b = 0; b < num_blocks; ++b) {
      simd::Add(phi0.data(), partials.data() + b * m_, m_);
    }
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  simd::Scale(phi0.data(), scale, m_);
  return phi0;
}

const std::vector<double>& MeasurementMatrix::CachedBiasColumn() const {
  std::call_once(bias_once_, [this] { bias_column_ = BiasColumn(); });
  return bias_column_;
}

}  // namespace csod::cs
