#include "cs/measurement_matrix.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/parallel.h"

namespace csod::cs {

namespace {
// Minimum per-thread column count before ParallelFor spawns workers — the
// kernels below cost >= M flops per column, so tiny jobs stay serial.
constexpr size_t kMinColumnsPerChunk = 256;

// Fixed block geometry for the reduction kernels (Multiply, MultiplySparse,
// BiasColumn). Each block accumulates a private partial vector; partials are
// combined serially in block order. The block size must NOT depend on the
// parallelism limit: that keeps the floating-point summation tree — and so
// the result — bit-identical at any thread count.
constexpr size_t kReductionBlockColumns = 2048;
constexpr size_t kReductionBlockNnz = 512;

// Register-blocked correlation over four cached column streams: four
// independent accumulators amortize one pass over r across four columns.
// Each column's accumulation order over i is unchanged versus the scalar
// loop, so results are bit-identical to the unblocked kernel.
inline void DotFourColumns(const double* c0, const double* c1,
                           const double* c2, const double* c3,
                           const double* r, size_t m, double out[4]) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double ri = r[i];
    a0 += c0[i] * ri;
    a1 += c1[i] * ri;
    a2 += c2[i] * ri;
    a3 += c3[i] * ri;
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

inline double DotColumn(const double* col, const double* r, size_t m) {
  double acc = 0.0;
  for (size_t i = 0; i < m; ++i) acc += col[i] * r[i];
  return acc;
}

// Folds a candidate (index, value) into the running chunk-local argmax.
// Strict > with ascending candidate order == lowest index wins on ties.
inline void FoldArgmax(size_t index, double value,
                       CorrelateArgmaxResult* best) {
  const double abs_value = std::fabs(value);
  if (abs_value > best->abs_correlation) {
    best->index = index;
    best->correlation = value;
    best->abs_correlation = abs_value;
  }
}

}  // namespace

MeasurementMatrix::MeasurementMatrix(size_t m, size_t n, uint64_t seed,
                                     size_t cache_budget_bytes)
    : m_(m), n_(n), seed_(seed), inv_sqrt_m_(1.0 / std::sqrt(double(m))) {
  const size_t bytes = m_ * n_ * sizeof(double);
  if (cache_budget_bytes > 0 && bytes <= cache_budget_bytes) {
    cache_.resize(m_ * n_);
    // Column-parallel and deterministic: each column's entries are a pure
    // function of (seed, col, row), written to a disjoint cache range.
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      for (size_t col = begin; col < end; ++col) {
        CounterGaussian gen(HashCombine(seed_, col));
        double* dst = cache_.data() + col * m_;
        gen.Fill(m_, dst);
        for (size_t row = 0; row < m_; ++row) dst[row] *= inv_sqrt_m_;
      }
    });
  }
}

void MeasurementMatrix::FillColumn(size_t col, double* out) const {
  if (!cache_.empty()) {
    const double* src = cache_.data() + col * m_;
    for (size_t row = 0; row < m_; ++row) out[row] = src[row];
    return;
  }
  CounterGaussian gen(HashCombine(seed_, col));
  gen.Fill(m_, out);
  for (size_t row = 0; row < m_; ++row) out[row] *= inv_sqrt_m_;
}

std::vector<double> MeasurementMatrix::Column(size_t col) const {
  std::vector<double> out(m_);
  FillColumn(col, out.data());
  return out;
}

Result<std::vector<double>> MeasurementMatrix::Multiply(
    const std::vector<double>& x) const {
  if (x.size() != n_) {
    return Status::InvalidArgument("Multiply: x size " +
                                   std::to_string(x.size()) + " != N " +
                                   std::to_string(n_));
  }
  std::vector<double> y(m_, 0.0);
  // Accumulates columns [col_begin, col_end) into acc (size M). The scratch
  // column is only needed when the matrix is implicit.
  auto accumulate = [&](size_t col_begin, size_t col_end, double* acc) {
    std::vector<double> col;
    if (cache_.empty()) col.resize(m_);
    for (size_t j = col_begin; j < col_end; ++j) {
      const double xj = x[j];
      if (xj == 0.0) continue;
      if (!cache_.empty()) {
        const double* src = cache_.data() + j * m_;
        for (size_t i = 0; i < m_; ++i) acc[i] += src[i] * xj;
      } else {
        FillColumn(j, col.data());
        for (size_t i = 0; i < m_; ++i) acc[i] += col[i] * xj;
      }
    }
  };

  const size_t num_blocks =
      (n_ + kReductionBlockColumns - 1) / kReductionBlockColumns;
  if (num_blocks <= 1) {
    accumulate(0, n_, y.data());
    return y;
  }
  // Fixed-geometry blocked reduction: block b accumulates its private
  // partial; partials are folded in block order below, independent of which
  // thread computed them.
  std::vector<double> partials(num_blocks * m_, 0.0);
  ParallelFor(num_blocks, 1, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const size_t col_begin = b * kReductionBlockColumns;
      const size_t col_end = std::min(n_, col_begin + kReductionBlockColumns);
      accumulate(col_begin, col_end, partials.data() + b * m_);
    }
  });
  for (size_t b = 0; b < num_blocks; ++b) {
    const double* part = partials.data() + b * m_;
    for (size_t i = 0; i < m_; ++i) y[i] += part[i];
  }
  return y;
}

Result<std::vector<double>> MeasurementMatrix::MultiplySparse(
    const std::vector<size_t>& indices,
    const std::vector<double>& values) const {
  if (indices.size() != values.size()) {
    return Status::InvalidArgument(
        "MultiplySparse: indices/values size mismatch");
  }
  for (size_t j : indices) {
    if (j >= n_) {
      return Status::OutOfRange("MultiplySparse: index " + std::to_string(j) +
                                " out of N " + std::to_string(n_));
    }
  }
  const size_t nnz = indices.size();
  std::vector<double> y(m_, 0.0);
  auto accumulate = [&](size_t k_begin, size_t k_end, double* acc) {
    std::vector<double> col;
    if (cache_.empty()) col.resize(m_);
    for (size_t k = k_begin; k < k_end; ++k) {
      const double xj = values[k];
      if (xj == 0.0) continue;
      if (!cache_.empty()) {
        const double* src = cache_.data() + indices[k] * m_;
        for (size_t i = 0; i < m_; ++i) acc[i] += src[i] * xj;
      } else {
        FillColumn(indices[k], col.data());
        for (size_t i = 0; i < m_; ++i) acc[i] += col[i] * xj;
      }
    }
  };

  const size_t num_blocks = (nnz + kReductionBlockNnz - 1) / kReductionBlockNnz;
  if (num_blocks <= 1) {
    accumulate(0, nnz, y.data());
    return y;
  }
  std::vector<double> partials(num_blocks * m_, 0.0);
  ParallelFor(num_blocks, 1, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const size_t k_begin = b * kReductionBlockNnz;
      const size_t k_end = std::min(nnz, k_begin + kReductionBlockNnz);
      accumulate(k_begin, k_end, partials.data() + b * m_);
    }
  });
  for (size_t b = 0; b < num_blocks; ++b) {
    const double* part = partials.data() + b * m_;
    for (size_t i = 0; i < m_; ++i) y[i] += part[i];
  }
  return y;
}

Status MeasurementMatrix::CorrelateAllInto(const std::vector<double>& r,
                                           double* out) const {
  if (r.size() != m_) {
    return Status::InvalidArgument("CorrelateAllInto: r size " +
                                   std::to_string(r.size()) + " != M " +
                                   std::to_string(m_));
  }
  const double* rp = r.data();
  if (!cache_.empty()) {
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      size_t j = begin;
      for (; j + 4 <= end; j += 4) {
        const double* base = cache_.data() + j * m_;
        DotFourColumns(base, base + m_, base + 2 * m_, base + 3 * m_, rp, m_,
                       out + j);
      }
      for (; j < end; ++j) {
        out[j] = DotColumn(cache_.data() + j * m_, rp, m_);
      }
    });
  } else {
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      std::vector<double> col(m_);
      for (size_t j = begin; j < end; ++j) {
        CounterGaussian gen(HashCombine(seed_, j));
        gen.Fill(m_, col.data());
        out[j] = DotColumn(col.data(), rp, m_) * inv_sqrt_m_;
      }
    });
  }
  return Status::OK();
}

Result<std::vector<double>> MeasurementMatrix::CorrelateAll(
    const std::vector<double>& r) const {
  std::vector<double> c(n_, 0.0);
  CSOD_RETURN_NOT_OK(CorrelateAllInto(r, c.data()));
  return c;
}

Result<CorrelateArgmaxResult> MeasurementMatrix::CorrelateArgmax(
    const std::vector<double>& r, const std::vector<bool>* skip,
    size_t skip_offset) const {
  if (r.size() != m_) {
    return Status::InvalidArgument("CorrelateArgmax: r size " +
                                   std::to_string(r.size()) + " != M " +
                                   std::to_string(m_));
  }
  if (skip != nullptr && skip->size() < n_ + skip_offset) {
    return Status::InvalidArgument("CorrelateArgmax: skip mask size " +
                                   std::to_string(skip->size()) +
                                   " < N + offset " +
                                   std::to_string(n_ + skip_offset));
  }
  const double* rp = r.data();
  // Chunk-local argmax over [begin, end); candidates are visited in
  // ascending index order so ties resolve to the lowest index.
  auto local_argmax = [&](size_t begin, size_t end) {
    CorrelateArgmaxResult best;
    if (!cache_.empty()) {
      // Batch unmasked columns four at a time; batch order is ascending, so
      // folding the four dots in order preserves the tie-break.
      size_t batch[4];
      size_t filled = 0;
      double dots[4];
      auto flush = [&] {
        if (filled == 4) {
          DotFourColumns(cache_.data() + batch[0] * m_,
                         cache_.data() + batch[1] * m_,
                         cache_.data() + batch[2] * m_,
                         cache_.data() + batch[3] * m_, rp, m_, dots);
          for (size_t k = 0; k < 4; ++k) FoldArgmax(batch[k], dots[k], &best);
        } else {
          for (size_t k = 0; k < filled; ++k) {
            FoldArgmax(batch[k], DotColumn(cache_.data() + batch[k] * m_, rp, m_),
                       &best);
          }
        }
        filled = 0;
      };
      for (size_t j = begin; j < end; ++j) {
        if (skip != nullptr && (*skip)[j + skip_offset]) continue;
        batch[filled++] = j;
        if (filled == 4) flush();
      }
      flush();
    } else {
      std::vector<double> col(m_);
      for (size_t j = begin; j < end; ++j) {
        if (skip != nullptr && (*skip)[j + skip_offset]) continue;
        CounterGaussian gen(HashCombine(seed_, j));
        gen.Fill(m_, col.data());
        FoldArgmax(j, DotColumn(col.data(), rp, m_) * inv_sqrt_m_, &best);
      }
    }
    return best;
  };

  const size_t chunk_count = ParallelChunkCount(n_, kMinColumnsPerChunk);
  if (chunk_count <= 1) return local_argmax(0, n_);

  std::vector<CorrelateArgmaxResult> locals(chunk_count);
  ParallelForChunks(n_, chunk_count,
                    [&](size_t chunk, size_t begin, size_t end) {
                      locals[chunk] = local_argmax(begin, end);
                    });
  // Fixed-order reduction over chunk-local winners. Chunks cover ascending
  // index ranges and FoldArgmax keeps strict >, so the lowest index still
  // wins global ties regardless of how many chunks the limit produced.
  CorrelateArgmaxResult best;
  for (const CorrelateArgmaxResult& local : locals) {
    if (local.index == CorrelateArgmaxResult::kNoIndex) continue;
    if (local.abs_correlation > best.abs_correlation) best = local;
  }
  return best;
}

std::vector<double> MeasurementMatrix::BiasColumn() const {
  std::vector<double> phi0(m_, 0.0);
  auto accumulate = [&](size_t col_begin, size_t col_end, double* acc) {
    std::vector<double> col;
    if (cache_.empty()) col.resize(m_);
    for (size_t j = col_begin; j < col_end; ++j) {
      if (!cache_.empty()) {
        const double* src = cache_.data() + j * m_;
        for (size_t i = 0; i < m_; ++i) acc[i] += src[i];
      } else {
        FillColumn(j, col.data());
        for (size_t i = 0; i < m_; ++i) acc[i] += col[i];
      }
    }
  };

  const size_t num_blocks =
      (n_ + kReductionBlockColumns - 1) / kReductionBlockColumns;
  if (num_blocks <= 1) {
    accumulate(0, n_, phi0.data());
  } else {
    std::vector<double> partials(num_blocks * m_, 0.0);
    ParallelFor(num_blocks, 1, [&](size_t begin, size_t end) {
      for (size_t b = begin; b < end; ++b) {
        const size_t col_begin = b * kReductionBlockColumns;
        const size_t col_end =
            std::min(n_, col_begin + kReductionBlockColumns);
        accumulate(col_begin, col_end, partials.data() + b * m_);
      }
    });
    for (size_t b = 0; b < num_blocks; ++b) {
      const double* part = partials.data() + b * m_;
      for (size_t i = 0; i < m_; ++i) phi0[i] += part[i];
    }
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  for (double& v : phi0) v *= scale;
  return phi0;
}

const std::vector<double>& MeasurementMatrix::CachedBiasColumn() const {
  std::call_once(bias_once_, [this] { bias_column_ = BiasColumn(); });
  return bias_column_;
}

}  // namespace csod::cs
