#include "cs/measurement_matrix.h"

#include <cmath>
#include <string>

#include "common/parallel.h"

namespace csod::cs {

namespace {
// Minimum per-thread column count before ParallelFor spawns workers — the
// kernels below cost >= M flops per column, so tiny jobs stay serial.
constexpr size_t kMinColumnsPerChunk = 256;
}  // namespace

MeasurementMatrix::MeasurementMatrix(size_t m, size_t n, uint64_t seed,
                                     size_t cache_budget_bytes)
    : m_(m), n_(n), seed_(seed), inv_sqrt_m_(1.0 / std::sqrt(double(m))) {
  const size_t bytes = m_ * n_ * sizeof(double);
  if (cache_budget_bytes > 0 && bytes <= cache_budget_bytes) {
    cache_.resize(m_ * n_);
    // Column-parallel and deterministic: each column's entries are a pure
    // function of (seed, col, row), written to a disjoint cache range.
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      for (size_t col = begin; col < end; ++col) {
        CounterGaussian gen(HashCombine(seed_, col));
        double* dst = cache_.data() + col * m_;
        gen.Fill(m_, dst);
        for (size_t row = 0; row < m_; ++row) dst[row] *= inv_sqrt_m_;
      }
    });
  }
}

void MeasurementMatrix::FillColumn(size_t col, double* out) const {
  if (!cache_.empty()) {
    const double* src = cache_.data() + col * m_;
    for (size_t row = 0; row < m_; ++row) out[row] = src[row];
    return;
  }
  CounterGaussian gen(HashCombine(seed_, col));
  gen.Fill(m_, out);
  for (size_t row = 0; row < m_; ++row) out[row] *= inv_sqrt_m_;
}

std::vector<double> MeasurementMatrix::Column(size_t col) const {
  std::vector<double> out(m_);
  FillColumn(col, out.data());
  return out;
}

Result<std::vector<double>> MeasurementMatrix::Multiply(
    const std::vector<double>& x) const {
  if (x.size() != n_) {
    return Status::InvalidArgument("Multiply: x size " +
                                   std::to_string(x.size()) + " != N " +
                                   std::to_string(n_));
  }
  std::vector<double> y(m_, 0.0);
  std::vector<double> col(m_);
  for (size_t j = 0; j < n_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    if (!cache_.empty()) {
      const double* src = cache_.data() + j * m_;
      for (size_t i = 0; i < m_; ++i) y[i] += src[i] * xj;
    } else {
      FillColumn(j, col.data());
      for (size_t i = 0; i < m_; ++i) y[i] += col[i] * xj;
    }
  }
  return y;
}

Result<std::vector<double>> MeasurementMatrix::MultiplySparse(
    const std::vector<size_t>& indices,
    const std::vector<double>& values) const {
  if (indices.size() != values.size()) {
    return Status::InvalidArgument(
        "MultiplySparse: indices/values size mismatch");
  }
  std::vector<double> y(m_, 0.0);
  std::vector<double> col(m_);
  for (size_t k = 0; k < indices.size(); ++k) {
    const size_t j = indices[k];
    if (j >= n_) {
      return Status::OutOfRange("MultiplySparse: index " + std::to_string(j) +
                                " out of N " + std::to_string(n_));
    }
    const double xj = values[k];
    if (xj == 0.0) continue;
    if (!cache_.empty()) {
      const double* src = cache_.data() + j * m_;
      for (size_t i = 0; i < m_; ++i) y[i] += src[i] * xj;
    } else {
      FillColumn(j, col.data());
      for (size_t i = 0; i < m_; ++i) y[i] += col[i] * xj;
    }
  }
  return y;
}

Result<std::vector<double>> MeasurementMatrix::CorrelateAll(
    const std::vector<double>& r) const {
  if (r.size() != m_) {
    return Status::InvalidArgument("CorrelateAll: r size " +
                                   std::to_string(r.size()) + " != M " +
                                   std::to_string(m_));
  }
  std::vector<double> c(n_, 0.0);
  if (!cache_.empty()) {
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        const double* src = cache_.data() + j * m_;
        double acc = 0.0;
        for (size_t i = 0; i < m_; ++i) acc += src[i] * r[i];
        c[j] = acc;
      }
    });
  } else {
    ParallelFor(n_, kMinColumnsPerChunk, [&](size_t begin, size_t end) {
      std::vector<double> col(m_);
      for (size_t j = begin; j < end; ++j) {
        CounterGaussian gen(HashCombine(seed_, j));
        gen.Fill(m_, col.data());
        double acc = 0.0;
        for (size_t i = 0; i < m_; ++i) acc += col[i] * r[i];
        c[j] = acc * inv_sqrt_m_;
      }
    });
  }
  return c;
}

std::vector<double> MeasurementMatrix::BiasColumn() const {
  std::vector<double> phi0(m_, 0.0);
  std::vector<double> col(m_);
  for (size_t j = 0; j < n_; ++j) {
    FillColumn(j, col.data());
    for (size_t i = 0; i < m_; ++i) phi0[i] += col[i];
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_));
  for (double& v : phi0) v *= scale;
  return phi0;
}

}  // namespace csod::cs
