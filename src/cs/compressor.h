#ifndef CSOD_CS_COMPRESSOR_H_
#define CSOD_CS_COMPRESSOR_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "cs/measurement_matrix.h"
#include "obs/telemetry.h"

namespace csod::cs {

/// \brief A local data slice in sparse coordinate form: the non-zero
/// aggregated values a node holds, keyed by global-dictionary index.
///
/// Local slices are typically sparse even when the global aggregate is not
/// (a node only sees a subset of keys), so compression iterates non-zeros.
struct SparseSlice {
  std::vector<size_t> indices;
  std::vector<double> values;

  size_t nnz() const { return indices.size(); }

  /// Non-owning view over this slice's storage (for batched compression).
  SparseVectorView View() const {
    return SparseVectorView{indices.data(), values.data(), indices.size()};
  }

  /// Materializes the dense N-vector (zeros elsewhere; duplicate indices
  /// accumulate). Returns OutOfRange if any index is >= n — a slice carrying
  /// keys outside the dictionary is a bug upstream, not data to drop.
  Result<std::vector<double>> ToDense(size_t n) const;

  /// Builds a sparse slice from a dense vector, dropping zeros.
  static SparseSlice FromDense(const std::vector<double>& x);
};

/// \brief Local compression (Section 3.1): `y_l = Φ0 x_l`.
///
/// The measurement is what a node transmits instead of its slice; its size
/// M is the per-node communication cost. Linearity guarantees
/// `Σ_l Compress(x_l) = Compress(Σ_l x_l)`, which is why per-node sketches
/// aggregate exactly (Equation 1).
class Compressor {
 public:
  /// Uses (and must not outlive) `matrix`.
  explicit Compressor(const MeasurementMatrix* matrix) : matrix_(matrix) {}

  /// Compresses a dense slice of size N.
  Result<std::vector<double>> Compress(const std::vector<double>& slice) const {
    return matrix_->Multiply(slice);
  }

  /// Compresses a sparse slice; cost O(nnz * M).
  Result<std::vector<double>> Compress(const SparseSlice& slice) const {
    return matrix_->MultiplySparse(slice.indices, slice.values);
  }

  /// \brief Fused compress-and-accumulate over a whole cluster's slices:
  /// writes `y = Σ_l Φ0 x_l` (length M) into `*y_out` without materializing
  /// any per-node `y_l`.
  ///
  /// Bit-identical to Compress(slice) per node followed by
  /// AggregateMeasurements, at any parallelism limit and SIMD level — the
  /// guarantee the fault-free protocol fast path relies on when fault runs
  /// (which keep the per-node path) are compared bitwise against it. An
  /// empty batch yields y = 0, matching a cluster of empty slices.
  Status CompressAccumulate(const std::vector<const SparseSlice*>& slices,
                            std::vector<double>* y_out) const;

  /// Convenience overload for an owned slice vector.
  Status CompressAccumulate(const std::vector<SparseSlice>& slices,
                            std::vector<double>* y_out) const;

  /// Compresses every slice in one batched pass: element l is bit-identical
  /// to Compress(slices[l]). Cheaper than L separate calls when the matrix
  /// is implicit (columns shared across slices are generated once per batch,
  /// not once per node) and parallelizes across nodes, not just within one.
  Result<std::vector<std::vector<double>>> CompressEach(
      const std::vector<const SparseSlice*>& slices) const;

  /// Aggregates local measurements into the global measurement
  /// `y = Σ_l y_l` (Equation 1). All measurements must have length M.
  static Result<std::vector<double>> AggregateMeasurements(
      const std::vector<std::vector<double>>& measurements);

  /// Measurement length M.
  size_t measurement_size() const { return matrix_->m(); }

  /// Telemetry sink for batch sketching ("sketch.batch" span and
  /// "sketch.slices"/"sketch.nnz" counters). Null or disabled is free.
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  void RecordBatch(const std::vector<SparseVectorView>& views) const;

  const MeasurementMatrix* matrix_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace csod::cs

#endif  // CSOD_CS_COMPRESSOR_H_
