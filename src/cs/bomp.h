#ifndef CSOD_CS_BOMP_H_
#define CSOD_CS_BOMP_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "cs/measurement_matrix.h"
#include "cs/omp.h"

namespace csod::cs {

/// One recovered non-mode component of the data vector.
struct RecoveredEntry {
  /// Position in the global key dictionary, 0 <= index < N.
  size_t index = 0;
  /// Recovered value x̂_index (already includes the mode shift z0/√N).
  double value = 0.0;
};

/// Tuning knobs for BOMP (Algorithm 1).
struct BompOptions {
  /// OMP iteration budget R. The paper uses R = f(k) ∈ [2k, 5k]
  /// (Section 5); see `DefaultIterationsForK`.
  size_t max_iterations = 0;

  /// Record the mode estimate b after every iteration (Figures 4(b), 9).
  /// Costs an extra least-squares solve per iteration.
  bool record_mode_trace = false;

  /// Passed through to the inner OMP (Section 5 remedy).
  bool stop_on_residual_stagnation = true;
  double residual_tolerance = 1e-9;

  /// Telemetry sink ("bomp.*" histograms + the "bomp.recover" span; also
  /// forwarded to the inner OMP). Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Outcome of a BOMP recovery.
struct BompResult {
  /// Estimated mode b = z0 / √N. Zero when the bias atom was never
  /// selected (data sparse at zero).
  double mode = 0.0;

  /// True when the bias atom was selected by some OMP iteration.
  bool bias_selected = false;

  /// Recovered non-mode components (the outlier candidate set O), in OMP
  /// selection order. At most R - 1 entries (Section 3.2).
  std::vector<RecoveredEntry> entries;

  /// Mode estimate after each OMP iteration (empty unless
  /// BompOptions::record_mode_trace). trace[i] is the estimate after
  /// iteration i+1; zero before the bias atom is selected.
  std::vector<double> mode_trace;

  /// Inner OMP diagnostics.
  size_t iterations = 0;
  bool stopped_by_stagnation = false;
  double final_residual_norm = 0.0;

  /// Materializes the full recovered vector x̂ of size `n`: `mode`
  /// everywhere except the recovered entries.
  std::vector<double> Materialize(size_t n) const;
};

/// The paper's default iteration budget R = f(k): midpoint of the tuned
/// range [2k, 5k] (Section 5), never below 8 so tiny k still converges.
size_t DefaultIterationsForK(size_t k);

/// \brief Biased OMP (Algorithm 1): recovers a vector whose values
/// concentrate around an *unknown* non-zero mode from the measurement
/// `y = Φ0 x`.
///
/// Extends the measurement matrix with the bias column
/// `φ0 = (1/√N) Σ φ_i`, runs standard OMP on the extended problem, and
/// maps the extended solution ẑ back:
/// `b = z0/√N`, `x̂_i = z_i + z0/√N` (Equation 4).
Result<BompResult> RunBomp(const MeasurementMatrix& matrix,
                           const std::vector<double>& y,
                           const BompOptions& options);

/// \brief Standard-OMP recovery with a mode that is known in advance
/// (the Figure 4(a) baseline "OMP+known mode").
///
/// Shifts the measurement by the known bias (`y' = y - b·Φ0·1`), recovers
/// the sparse deviation with plain OMP, and shifts back.
Result<BompResult> RecoverWithKnownMode(const MeasurementMatrix& matrix,
                                        const std::vector<double>& y,
                                        double known_mode,
                                        const BompOptions& options);

}  // namespace csod::cs

#endif  // CSOD_CS_BOMP_H_
