#ifndef CSOD_CS_BASIS_PURSUIT_H_
#define CSOD_CS_BASIS_PURSUIT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "cs/bomp.h"
#include "cs/dictionary.h"
#include "cs/measurement_matrix.h"

namespace csod::cs {

/// Tuning knobs for the FISTA basis-pursuit solver.
struct BasisPursuitOptions {
  /// L1 regularization weight λ in  min ½||y - Φx||² + λ||x||₁.
  /// When <= 0, a data-dependent default λ = 0.01 * ||Φᵀy||_∞ is used.
  double lambda = 0.0;
  /// Maximum FISTA iterations.
  size_t max_iterations = 500;
  /// Stop when the relative change of the iterate drops below this.
  double tolerance = 1e-8;
  /// Atom indices exempt from the L1 penalty (used by the biased variant
  /// to leave the bias coefficient free). Must be sorted or small.
  std::vector<size_t> unpenalized_atoms;
  /// Telemetry sink ("fista.*" histograms + the "fista.recover" span) —
  /// the same parity as the OMP/CoSaMP engines. Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Outcome of a basis-pursuit recovery.
struct BasisPursuitResult {
  /// Recovered dense vector x̂ (size N).
  std::vector<double> x;
  /// Iterations executed.
  size_t iterations = 0;
  /// ||y - Φx̂||₂ at termination.
  double final_residual_norm = 0.0;
};

/// \brief Basis Pursuit denoising via FISTA — the convex-relaxation
/// recovery alternative the paper contrasts OMP against (Section 2.2).
///
/// Solves `min_x ½||y − Φ0 x||² + λ||x||₁` with the accelerated proximal
/// gradient method; the step size comes from a power-iteration estimate of
/// `σ_max(Φ0)²`. Only suitable for data sparse at zero (the limitation
/// that motivates BOMP); used as a baseline and in ablation benches.
Result<BasisPursuitResult> RunBasisPursuit(const MeasurementMatrix& matrix,
                                           const std::vector<double>& y,
                                           const BasisPursuitOptions& options);

/// Basis pursuit over an abstract dictionary (the generic form; the
/// matrix overload above delegates here).
Result<BasisPursuitResult> RunBasisPursuit(const Dictionary& dictionary,
                                           const std::vector<double>& y,
                                           const BasisPursuitOptions& options);

/// \brief Biased Basis Pursuit: the library's L1 counterpart to BOMP.
///
/// Applies FISTA to the BOMP-extended dictionary `[φ0, Φ0]` — only the
/// data coefficients are L1-penalized; the bias coefficient is left free
/// (it is not sparse). Recovers both the unknown mode and the outliers by
/// convex relaxation; compared against BOMP in `bench/ablation_recovery`.
Result<BompResult> RunBiasedBasisPursuit(const MeasurementMatrix& matrix,
                                         const std::vector<double>& y,
                                         const BasisPursuitOptions& options);

}  // namespace csod::cs

#endif  // CSOD_CS_BASIS_PURSUIT_H_
