#include "cs/solver.h"

#include <algorithm>

#include "cs/amp.h"
#include "cs/basis_pursuit.h"
#include "cs/cosamp.h"

namespace csod::cs {

const char* SolverName(RecoverySolver solver) {
  switch (solver) {
    case RecoverySolver::kOmp:
      return "omp";
    case RecoverySolver::kCosamp:
      return "cosamp";
    case RecoverySolver::kFista:
      return "fista";
    case RecoverySolver::kAmp:
      return "amp";
  }
  return "omp";
}

Result<RecoverySolver> ParseSolverName(const std::string& name) {
  if (name == "omp" || name == "bomp") return RecoverySolver::kOmp;
  if (name == "cosamp") return RecoverySolver::kCosamp;
  if (name == "fista") return RecoverySolver::kFista;
  if (name == "amp") return RecoverySolver::kAmp;
  return Status::InvalidArgument(
      "unknown solver '" + name + "' (expected omp|cosamp|fista|amp)");
}

Result<BompResult> RecoverBiased(const MeasurementMatrix& matrix,
                                 const std::vector<double>& y,
                                 const SolverOptions& options) {
  switch (options.solver) {
    case RecoverySolver::kOmp: {
      BompOptions bomp;
      bomp.max_iterations = options.iterations;
      bomp.telemetry = options.telemetry;
      return RunBomp(matrix, y, bomp);
    }
    case RecoverySolver::kCosamp: {
      CosampOptions cosamp;
      cosamp.sparsity =
          std::max<size_t>(8, (2 * options.iterations) / 7);
      cosamp.telemetry = options.telemetry;
      return RunBiasedCosamp(matrix, y, cosamp);
    }
    case RecoverySolver::kFista: {
      BasisPursuitOptions bp;
      bp.max_iterations = std::min<size_t>(options.iterations * 4, 500);
      if (bp.max_iterations == 0) bp.max_iterations = 500;
      bp.telemetry = options.telemetry;
      return RunBiasedBasisPursuit(matrix, y, bp);
    }
    case RecoverySolver::kAmp: {
      AmpOptions amp;
      if (options.iterations != 0) {
        amp.max_iterations =
            std::min(options.iterations, DefaultAmpIterations());
      }
      amp.telemetry = options.telemetry;
      return RunBiasedAmp(matrix, y, amp);
    }
  }
  return Status::Internal("RecoverBiased: unreachable solver");
}

}  // namespace csod::cs
