#ifndef CSOD_CS_AMP_H_
#define CSOD_CS_AMP_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "cs/bomp.h"
#include "cs/dictionary.h"
#include "cs/measurement_matrix.h"

namespace csod::cs {

/// Tuning knobs for the AMP (approximate message passing) solver.
struct AmpOptions {
  /// Iteration budget T. 0 selects `DefaultAmpIterations()`. Unlike the
  /// greedy solvers, the per-iteration cost is support-independent (one
  /// Φ·x and one Φᵀ·z matvec), so T stays flat as sparsity grows — that
  /// flatness is the whole point of the engine (see DESIGN.md §14).
  size_t max_iterations = 0;

  /// Threshold multiplier λ: each iteration soft-thresholds the pseudo-
  /// data at θ_t = λ·σ̂_t with σ̂_t = ||z_t||₂/√M, the AMP state-evolution
  /// estimate of the effective noise. Values in [1.2, 2] trade support
  /// precision against convergence speed; 1.4 is a robust default for the
  /// undersampling regimes the protocols run at. Whenever λ·σ̂ would keep
  /// more than M/3 atoms alive (small M/N makes the Onsager coefficient
  /// |supp|/M explode otherwise), the threshold is raised to the order
  /// statistic that caps the support at M/3 — deterministic, so the
  /// bit-identity contract is unaffected.
  double threshold_multiplier = 1.4;

  /// Stop when the relative iterate change ||x_{t+1}−x_t||/||x_{t+1}||
  /// drops below this.
  double tolerance = 1e-9;

  /// Atom indices exempt from thresholding (the biased variant leaves the
  /// bias coefficient free, exactly like FISTA's `unpenalized_atoms`).
  std::vector<size_t> unthresholded_atoms;

  /// After the iterations stop, re-solve least squares on the detected
  /// support (capped at `M/4` atoms, strongest first). Soft thresholding
  /// shrinks every surviving coefficient by θ; the debias pass removes
  /// that bias so AMP values are comparable to the greedy solvers'
  /// least-squares values at ~one OMP iteration of extra cost.
  bool debias = true;

  /// Telemetry sink ("amp.*" histograms + the "amp.recover" span). Null
  /// or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Outcome of an AMP recovery.
struct AmpResult {
  /// Recovered dense coefficient vector (size = num_atoms). Exactly zero
  /// outside the detected support.
  std::vector<double> x;
  size_t iterations = 0;
  /// ||y − Φx̂||₂ at termination (after the debias pass when enabled).
  double final_residual_norm = 0.0;
  /// Per-iteration effective-noise estimates σ̂_t (the state-evolution
  /// trajectory; decays geometrically when AMP is converging).
  std::vector<double> sigma_trace;
};

/// Default AMP iteration budget: a fixed 40. AMP converges geometrically
/// in the regimes the protocols operate in (σ̂ contracts per iteration),
/// so unlike OMP's R = f(k) the budget does not scale with sparsity; the
/// tolerance check usually stops the loop much earlier.
size_t DefaultAmpIterations();

/// \brief AMP recovery over an abstract dictionary (Donoho–Maleki–
/// Montanari iteration):
///
///     x_{t+1} = η(x_t + Φᵀ z_t; θ_t)                      (soft threshold)
///     z_{t+1} = y − Φ x_{t+1} + (|supp x_{t+1}|/M) · z_t  (Onsager term)
///
/// Both matvecs are the dictionary's existing `ParallelFor`-blocked SIMD
/// kernels (fixed-lane summation trees, fixed block geometry), and every
/// element-wise update runs serially, so the result is bit-identical
/// across thread limits and ISAs — the same determinism contract as the
/// greedy solvers. Cost per iteration is 2·M·N flops regardless of
/// sparsity; see `bench/bench_recovery` for the crossover against OMP.
Result<AmpResult> RunAmp(const Dictionary& dictionary,
                         const std::vector<double>& y,
                         const AmpOptions& options);

/// AMP over the plain measurement matrix (data sparse at zero).
Result<AmpResult> RunAmp(const MeasurementMatrix& matrix,
                         const std::vector<double>& y,
                         const AmpOptions& options);

/// \brief Biased AMP: AMP over the BOMP-extended dictionary `[φ0, Φ0]`
/// with the bias coefficient unthresholded, recovering data concentrated
/// around an unknown mode. Returns the same shape as BOMP (mode +
/// recovered entries) for drop-in use by the protocols and the Detector.
Result<BompResult> RunBiasedAmp(const MeasurementMatrix& matrix,
                                const std::vector<double>& y,
                                const AmpOptions& options);

}  // namespace csod::cs

#endif  // CSOD_CS_AMP_H_
