#include "cs/dictionary.h"

#include "la/vector_ops.h"

namespace csod::cs {

void ExtendedDictionary::FillAtom(size_t j, double* out) const {
  if (j == 0) {
    for (size_t i = 0; i < bias_column_.size(); ++i) out[i] = bias_column_[i];
    return;
  }
  matrix_->FillColumn(j - 1, out);
}

Result<std::vector<double>> ExtendedDictionary::Correlate(
    const std::vector<double>& r) const {
  CSOD_ASSIGN_OR_RETURN(std::vector<double> base, matrix_->CorrelateAll(r));
  std::vector<double> out(base.size() + 1);
  out[0] = la::Dot(bias_column_, r);
  for (size_t j = 0; j < base.size(); ++j) out[j + 1] = base[j];
  return out;
}

Result<std::vector<double>> ExtendedDictionary::MultiplyDense(
    const std::vector<double>& z) const {
  if (z.size() != num_atoms()) {
    return Status::InvalidArgument(
        "ExtendedDictionary::MultiplyDense: size mismatch");
  }
  std::vector<double> rest(z.begin() + 1, z.end());
  CSOD_ASSIGN_OR_RETURN(std::vector<double> y, matrix_->Multiply(rest));
  for (size_t i = 0; i < y.size(); ++i) y[i] += z[0] * bias_column_[i];
  return y;
}

}  // namespace csod::cs
