#include "cs/dictionary.h"

#include <cmath>
#include <string>

#include "la/vector_ops.h"

namespace csod::cs {

Result<CorrelateArgmaxResult> Dictionary::CorrelateArgmax(
    const std::vector<double>& r,
    const std::vector<bool>& selected_mask) const {
  if (selected_mask.size() != num_atoms()) {
    return Status::InvalidArgument(
        "CorrelateArgmax: mask size " + std::to_string(selected_mask.size()) +
        " != num_atoms " + std::to_string(num_atoms()));
  }
  CSOD_ASSIGN_OR_RETURN(std::vector<double> correlations, Correlate(r));
  CorrelateArgmaxResult best;
  for (size_t j = 0; j < correlations.size(); ++j) {
    if (selected_mask[j]) continue;
    const double a = std::fabs(correlations[j]);
    if (a > best.abs_correlation) {
      best.index = j;
      best.correlation = correlations[j];
      best.abs_correlation = a;
    }
  }
  return best;
}

void ExtendedDictionary::FillAtom(size_t j, double* out) const {
  if (j == 0) {
    for (size_t i = 0; i < bias_column_.size(); ++i) out[i] = bias_column_[i];
    return;
  }
  matrix_->FillColumn(j - 1, out);
}

Result<std::vector<double>> ExtendedDictionary::Correlate(
    const std::vector<double>& r) const {
  std::vector<double> out(matrix_->n() + 1);
  // Matrix correlations land directly in out[1..N]; no shift-by-one copy.
  CSOD_RETURN_NOT_OK(matrix_->CorrelateAllInto(r, out.data() + 1));
  out[0] = la::Dot(bias_column_, r);
  return out;
}

Result<CorrelateArgmaxResult> ExtendedDictionary::CorrelateArgmax(
    const std::vector<double>& r,
    const std::vector<bool>& selected_mask) const {
  if (selected_mask.size() != num_atoms()) {
    return Status::InvalidArgument(
        "CorrelateArgmax: mask size " + std::to_string(selected_mask.size()) +
        " != num_atoms " + std::to_string(num_atoms()));
  }
  CorrelateArgmaxResult best;
  if (!selected_mask[0]) {
    best.index = 0;
    best.correlation = la::Dot(bias_column_, r);
    best.abs_correlation = std::fabs(best.correlation);
  }
  // Atom j+1 is matrix column j; the mask is passed with offset 1 instead
  // of being re-indexed. Strict > keeps the bias atom (index 0) on ties,
  // matching a lowest-index-first scan over the extended dictionary.
  CSOD_ASSIGN_OR_RETURN(CorrelateArgmaxResult rest,
                        matrix_->CorrelateArgmax(r, &selected_mask,
                                                 /*skip_offset=*/1));
  if (rest.index != CorrelateArgmaxResult::kNoIndex &&
      rest.abs_correlation > best.abs_correlation) {
    best.index = rest.index + 1;
    best.correlation = rest.correlation;
    best.abs_correlation = rest.abs_correlation;
  }
  return best;
}

Result<std::vector<double>> ExtendedDictionary::MultiplyDense(
    const std::vector<double>& z) const {
  if (z.size() != num_atoms()) {
    return Status::InvalidArgument(
        "ExtendedDictionary::MultiplyDense: size mismatch");
  }
  std::vector<double> rest(z.begin() + 1, z.end());
  CSOD_ASSIGN_OR_RETURN(std::vector<double> y, matrix_->Multiply(rest));
  for (size_t i = 0; i < y.size(); ++i) y[i] += z[0] * bias_column_[i];
  return y;
}

}  // namespace csod::cs
