#include "cs/compressor.h"

#include <string>

namespace csod::cs {

std::vector<double> SparseSlice::ToDense(size_t n) const {
  std::vector<double> x(n, 0.0);
  for (size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] < n) x[indices[k]] += values[k];
  }
  return x;
}

SparseSlice SparseSlice::FromDense(const std::vector<double>& x) {
  SparseSlice slice;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0) {
      slice.indices.push_back(i);
      slice.values.push_back(x[i]);
    }
  }
  return slice;
}

Result<std::vector<double>> Compressor::AggregateMeasurements(
    const std::vector<std::vector<double>>& measurements) {
  if (measurements.empty()) {
    return Status::InvalidArgument("AggregateMeasurements: no measurements");
  }
  const size_t m = measurements.front().size();
  std::vector<double> y(m, 0.0);
  for (const auto& yl : measurements) {
    if (yl.size() != m) {
      return Status::InvalidArgument(
          "AggregateMeasurements: inconsistent measurement sizes (" +
          std::to_string(yl.size()) + " vs " + std::to_string(m) + ")");
    }
    for (size_t i = 0; i < m; ++i) y[i] += yl[i];
  }
  return y;
}

}  // namespace csod::cs
