#include "cs/compressor.h"

#include <string>

#include "common/parallel.h"

namespace csod::cs {

namespace {
// Below this M the ParallelFor dispatch costs more than the adds it saves.
constexpr size_t kMinEntriesPerChunk = 4096;
}  // namespace

std::vector<double> SparseSlice::ToDense(size_t n) const {
  std::vector<double> x(n, 0.0);
  for (size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] < n) x[indices[k]] += values[k];
  }
  return x;
}

SparseSlice SparseSlice::FromDense(const std::vector<double>& x) {
  SparseSlice slice;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0) {
      slice.indices.push_back(i);
      slice.values.push_back(x[i]);
    }
  }
  return slice;
}

Result<std::vector<double>> Compressor::AggregateMeasurements(
    const std::vector<std::vector<double>>& measurements) {
  if (measurements.empty()) {
    return Status::InvalidArgument("AggregateMeasurements: no measurements");
  }
  const size_t m = measurements.front().size();
  for (const auto& yl : measurements) {
    if (yl.size() != m) {
      return Status::InvalidArgument(
          "AggregateMeasurements: inconsistent measurement sizes (" +
          std::to_string(yl.size()) + " vs " + std::to_string(m) + ")");
    }
  }
  // Per-index sums: entry i only ever touches index i of every measurement,
  // and the inner accumulation order (measurement 0, 1, ...) is fixed, so
  // the result is bit-identical at any parallelism limit.
  std::vector<double> y(m, 0.0);
  ParallelFor(m, kMinEntriesPerChunk, [&](size_t begin, size_t end) {
    for (const auto& yl : measurements) {
      for (size_t i = begin; i < end; ++i) y[i] += yl[i];
    }
  });
  return y;
}

}  // namespace csod::cs
