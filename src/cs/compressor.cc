#include "cs/compressor.h"

#include <cstdint>
#include <string>

#include "common/parallel.h"

namespace csod::cs {

namespace {
// Below this M the ParallelFor dispatch costs more than the adds it saves.
constexpr size_t kMinEntriesPerChunk = 4096;
}  // namespace

Result<std::vector<double>> SparseSlice::ToDense(size_t n) const {
  for (size_t j : indices) {
    if (j >= n) {
      return Status::OutOfRange("ToDense: index " + std::to_string(j) +
                                " out of N " + std::to_string(n));
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t k = 0; k < indices.size(); ++k) {
    x[indices[k]] += values[k];
  }
  return x;
}

SparseSlice SparseSlice::FromDense(const std::vector<double>& x) {
  size_t nnz = 0;
  for (double v : x) {
    if (v != 0.0) ++nnz;
  }
  SparseSlice slice;
  slice.indices.reserve(nnz);
  slice.values.reserve(nnz);
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0) {
      slice.indices.push_back(i);
      slice.values.push_back(x[i]);
    }
  }
  return slice;
}

void Compressor::RecordBatch(
    const std::vector<SparseVectorView>& views) const {
  if (telemetry_ == nullptr || !telemetry_->enabled()) return;
  uint64_t nnz = 0;
  for (const SparseVectorView& v : views) nnz += v.nnz;
  telemetry_->AddCounter("sketch.slices", views.size());
  telemetry_->AddCounter("sketch.nnz", nnz);
}

Status Compressor::CompressAccumulate(
    const std::vector<const SparseSlice*>& slices,
    std::vector<double>* y_out) const {
  obs::TraceSpan span(telemetry_, "sketch.batch");
  std::vector<SparseVectorView> views;
  views.reserve(slices.size());
  for (const SparseSlice* slice : slices) views.push_back(slice->View());
  RecordBatch(views);
  return matrix_->MultiplySparseBatch(views, y_out);
}

Status Compressor::CompressAccumulate(const std::vector<SparseSlice>& slices,
                                      std::vector<double>* y_out) const {
  obs::TraceSpan span(telemetry_, "sketch.batch");
  std::vector<SparseVectorView> views;
  views.reserve(slices.size());
  for (const SparseSlice& slice : slices) views.push_back(slice.View());
  RecordBatch(views);
  return matrix_->MultiplySparseBatch(views, y_out);
}

Result<std::vector<std::vector<double>>> Compressor::CompressEach(
    const std::vector<const SparseSlice*>& slices) const {
  obs::TraceSpan span(telemetry_, "sketch.batch");
  std::vector<SparseVectorView> views;
  views.reserve(slices.size());
  for (const SparseSlice* slice : slices) views.push_back(slice->View());
  RecordBatch(views);
  std::vector<double> flat;
  CSOD_RETURN_NOT_OK(
      matrix_->MultiplySparseBatch(views, /*sum_out=*/nullptr, &flat));
  const size_t m = matrix_->m();
  std::vector<std::vector<double>> out(slices.size());
  for (size_t l = 0; l < slices.size(); ++l) {
    out[l].assign(flat.begin() + l * m, flat.begin() + (l + 1) * m);
  }
  return out;
}

Result<std::vector<double>> Compressor::AggregateMeasurements(
    const std::vector<std::vector<double>>& measurements) {
  if (measurements.empty()) {
    return Status::InvalidArgument("AggregateMeasurements: no measurements");
  }
  const size_t m = measurements.front().size();
  for (const auto& yl : measurements) {
    if (yl.size() != m) {
      return Status::InvalidArgument(
          "AggregateMeasurements: inconsistent measurement sizes (" +
          std::to_string(yl.size()) + " vs " + std::to_string(m) + ")");
    }
  }
  // Per-index sums: entry i only ever touches index i of every measurement,
  // and the inner accumulation order (measurement 0, 1, ...) is fixed, so
  // the result is bit-identical at any parallelism limit.
  std::vector<double> y(m, 0.0);
  ParallelFor(m, kMinEntriesPerChunk, [&](size_t begin, size_t end) {
    for (const auto& yl : measurements) {
      for (size_t i = begin; i < end; ++i) y[i] += yl[i];
    }
  });
  return y;
}

}  // namespace csod::cs
