#include "cs/cosamp.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "la/incremental_qr.h"
#include "la/vector_ops.h"

namespace csod::cs {

namespace {

// Indices of the `count` largest |values| (ties by index).
std::vector<size_t> TopAbsIndices(const std::vector<double>& values,
                                  size_t count) {
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  count = std::min(count, order.size());
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&](size_t a, size_t b) {
                      const double fa = std::fabs(values[a]);
                      const double fb = std::fabs(values[b]);
                      if (fa != fb) return fa > fb;
                      return a < b;
                    });
  order.resize(count);
  return order;
}

// Least squares of y over the given atoms; returns coefficients aligned
// with `support` (zero for dependent atoms).
Result<std::vector<double>> SolveOnSupport(const Dictionary& dictionary,
                                           const std::vector<size_t>& support,
                                           const std::vector<double>& y) {
  la::IncrementalQr qr(dictionary.atom_length());
  std::vector<double> atom(dictionary.atom_length());
  std::vector<size_t> kept;  // Positions in `support` that entered the QR.
  for (size_t pos = 0; pos < support.size(); ++pos) {
    dictionary.FillAtom(support[pos], atom.data());
    CSOD_ASSIGN_OR_RETURN(double ortho, qr.AppendColumn(atom));
    if (ortho > 0.0) kept.push_back(pos);
  }
  std::vector<double> coeffs(support.size(), 0.0);
  if (!kept.empty()) {
    CSOD_ASSIGN_OR_RETURN(std::vector<double> z, qr.SolveLeastSquares(y));
    for (size_t i = 0; i < kept.size(); ++i) coeffs[kept[i]] = z[i];
  }
  return coeffs;
}

}  // namespace

Result<CosampResult> RunCosamp(const Dictionary& dictionary,
                               const std::vector<double>& y,
                               const CosampOptions& options) {
  const size_t m = dictionary.atom_length();
  if (y.size() != m) {
    return Status::InvalidArgument("RunCosamp: y size " +
                                   std::to_string(y.size()) + " != M " +
                                   std::to_string(m));
  }
  if (options.sparsity == 0) {
    return Status::InvalidArgument("RunCosamp: sparsity must be > 0");
  }
  const size_t s = std::min(options.sparsity, m);

  CosampResult result;
  const double y_norm = la::Norm2(y);
  if (y_norm == 0.0) return result;

  std::vector<size_t> support;
  std::vector<double> coefficients;
  std::vector<double> residual = y;
  // Scratch reused across iterations for the residual update.
  std::vector<double> fitted(m);
  std::vector<double> atom(m);
  double prev_residual_norm = y_norm;
  double last_residual_norm = y_norm;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // 1. Identify: 2s strongest correlations, merged with the support.
    CSOD_ASSIGN_OR_RETURN(std::vector<double> correlations,
                          dictionary.Correlate(residual));
    std::vector<size_t> candidates = TopAbsIndices(correlations, 2 * s);
    std::unordered_set<size_t> merged(candidates.begin(), candidates.end());
    for (size_t idx : support) merged.insert(idx);
    std::vector<size_t> omega(merged.begin(), merged.end());
    std::sort(omega.begin(), omega.end());

    // 2. Estimate: least squares over the merged support.
    CSOD_ASSIGN_OR_RETURN(std::vector<double> omega_coeffs,
                          SolveOnSupport(dictionary, omega, y));

    // 3. Prune to the s largest coefficients, re-solve on the pruned
    //    support for unbiased coefficients.
    std::vector<size_t> top_positions = TopAbsIndices(omega_coeffs, s);
    std::vector<size_t> new_support;
    new_support.reserve(top_positions.size());
    for (size_t pos : top_positions) new_support.push_back(omega[pos]);
    std::sort(new_support.begin(), new_support.end());
    CSOD_ASSIGN_OR_RETURN(std::vector<double> new_coeffs,
                          SolveOnSupport(dictionary, new_support, y));

    // 4. Update residual.
    fitted.assign(m, 0.0);
    for (size_t i = 0; i < new_support.size(); ++i) {
      if (new_coeffs[i] == 0.0) continue;
      dictionary.FillAtom(new_support[i], atom.data());
      la::Axpy(new_coeffs[i], atom, &fitted);
    }
    la::SubtractInto(y, fitted, &residual);
    // Computed once per iteration; the loop's checks and the final
    // diagnostics below all reuse this value (no recompute at the end).
    const double residual_norm = la::Norm2(residual);
    last_residual_norm = residual_norm;

    support = std::move(new_support);
    coefficients = std::move(new_coeffs);
    result.iterations = iter + 1;
    if (options.telemetry != nullptr && options.telemetry->enabled()) {
      options.telemetry->RecordValue("cosamp.residual_norm", residual_norm);
      options.telemetry->RecordValue("cosamp.support_size",
                                     static_cast<double>(support.size()));
    }

    if (residual_norm <= options.residual_tolerance * y_norm) break;
    // Halting on stagnation (the same Section-5 remedy as OMP).
    if (residual_norm >= prev_residual_norm * (1.0 - 1e-9)) break;
    prev_residual_norm = residual_norm;
  }

  result.selected = std::move(support);
  result.coefficients = std::move(coefficients);
  result.final_residual_norm = last_residual_norm;
  if (options.telemetry != nullptr && options.telemetry->enabled()) {
    options.telemetry->AddCounter("cosamp.runs");
    options.telemetry->RecordValue("cosamp.iterations",
                                   static_cast<double>(result.iterations));
    options.telemetry->RecordValue("cosamp.final_residual_norm",
                                   result.final_residual_norm);
  }
  return result;
}

Result<BompResult> RunBiasedCosamp(const MeasurementMatrix& matrix,
                                   const std::vector<double>& y,
                                   const CosampOptions& options) {
  ExtendedDictionary dictionary(&matrix);
  CosampOptions inner = options;
  inner.sparsity = options.sparsity + 1;  // Budget the bias column too.
  CSOD_ASSIGN_OR_RETURN(CosampResult cosamp, RunCosamp(dictionary, y, inner));

  BompResult out;
  double z0 = 0.0;
  for (size_t i = 0; i < cosamp.selected.size(); ++i) {
    if (cosamp.selected[i] == 0) {
      z0 = cosamp.coefficients[i];
      out.bias_selected = true;
      break;
    }
  }
  out.mode = z0 / std::sqrt(static_cast<double>(matrix.n()));
  for (size_t i = 0; i < cosamp.selected.size(); ++i) {
    if (cosamp.selected[i] == 0) continue;
    RecoveredEntry e;
    e.index = cosamp.selected[i] - 1;
    e.value = cosamp.coefficients[i] + out.mode;
    out.entries.push_back(e);
  }
  out.iterations = cosamp.iterations;
  out.final_residual_norm = cosamp.final_residual_norm;
  return out;
}

}  // namespace csod::cs
