#ifndef CSOD_CS_OMP_H_
#define CSOD_CS_OMP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "cs/dictionary.h"
#include "obs/telemetry.h"

namespace csod::cs {

/// Per-iteration snapshot passed to OmpOptions::iteration_callback.
/// References stay valid only for the duration of the callback.
struct OmpIterationInfo {
  /// 1-based iteration count.
  size_t iteration = 0;
  /// Atom selected this iteration.
  size_t selected_atom = 0;
  /// ||r||_2 after the projection update of this iteration.
  double residual_norm = 0.0;
  /// All selected atoms so far, in selection order.
  const std::vector<size_t>* selected = nullptr;
  /// Least-squares coefficients for `selected` (same order). Only populated
  /// when OmpOptions::solve_coefficients_each_iteration is set.
  const std::vector<double>* coefficients = nullptr;
};

/// Tuning knobs for the OMP column-selection loop (Algorithm 2).
struct OmpOptions {
  /// Maximum number of iterations R. The paper tunes R = f(k) in [2k, 5k]
  /// (Section 5). The effective cap is min(R, M, num_atoms).
  size_t max_iterations = 0;

  /// Stop when ||r||_2 <= residual_tolerance * ||y||_2.
  double residual_tolerance = 1e-9;

  /// Section 5 floating-point remedy: "terminate the recovery process once
  /// the residual stops decreasing".
  bool stop_on_residual_stagnation = true;

  /// Relative decrease below which the residual counts as "not decreasing".
  double stagnation_tolerance = 1e-12;

  /// Solve the least-squares coefficients after every iteration (needed for
  /// per-iteration mode traces, Figs. 4(b)/9). Adds O(r*M) per iteration.
  bool solve_coefficients_each_iteration = false;

  /// Optional observer invoked after each iteration.
  std::function<void(const OmpIterationInfo&)> iteration_callback;

  /// Telemetry sink for the iteration/residual trajectory (DESIGN.md §9:
  /// "omp.*" histograms). Null or disabled costs one branch per iteration.
  obs::Telemetry* telemetry = nullptr;
};

/// Outcome of an OMP run.
struct OmpResult {
  /// Selected atom indices in selection order.
  std::vector<size_t> selected;
  /// Final least-squares coefficients z (same order as `selected`):
  /// y ≈ Σ z_i * atom(selected_i).
  std::vector<double> coefficients;
  /// ||r||_2 after each iteration.
  std::vector<double> residual_norms;
  /// Number of iterations executed.
  size_t iterations = 0;
  /// True when the Section-5 stagnation rule fired.
  bool stopped_by_stagnation = false;
  /// Final residual norm (== residual_norms.back() when non-empty).
  double final_residual_norm = 0.0;
};

/// \brief Orthogonal Matching Pursuit (Tropp & Gilbert) over an abstract
/// dictionary, with QR-based projection.
///
/// Each iteration selects the atom with the largest absolute inner product
/// with the residual, appends it to an incremental QR factorization, and
/// re-projects `y` onto the selected subspace. Runs standard OMP when given
/// a MatrixDictionary and the BOMP inner loop when given an
/// ExtendedDictionary.
Result<OmpResult> RunOmp(const Dictionary& dictionary,
                         const std::vector<double>& y,
                         const OmpOptions& options);

}  // namespace csod::cs

#endif  // CSOD_CS_OMP_H_
