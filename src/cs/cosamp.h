#ifndef CSOD_CS_COSAMP_H_
#define CSOD_CS_COSAMP_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "cs/bomp.h"
#include "cs/dictionary.h"
#include "cs/measurement_matrix.h"

namespace csod::cs {

/// Tuning knobs for CoSaMP.
struct CosampOptions {
  /// Target sparsity s (the algorithm maintains an s-sized support).
  size_t sparsity = 0;
  /// Maximum halving iterations.
  size_t max_iterations = 50;
  /// Stop when ||r||_2 <= tolerance * ||y||_2.
  double residual_tolerance = 1e-9;
  /// Telemetry sink ("cosamp.*" histograms). Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Outcome of a CoSaMP run.
struct CosampResult {
  /// Final support (atom indices), unordered.
  std::vector<size_t> selected;
  /// Least-squares coefficients for `selected` (same order).
  std::vector<double> coefficients;
  size_t iterations = 0;
  double final_residual_norm = 0.0;
};

/// \brief CoSaMP (Needell & Tropp): compressive sampling matching pursuit
/// over an abstract dictionary.
///
/// An alternative greedy recovery to OMP with uniform guarantees: each
/// iteration merges the 2s best-correlated atoms into the support, solves
/// least squares, and prunes back to the s largest coefficients.
/// Implemented as a library extension (the paper evaluates OMP only) and
/// compared in `bench/ablation_recovery`.
Result<CosampResult> RunCosamp(const Dictionary& dictionary,
                               const std::vector<double>& y,
                               const CosampOptions& options);

/// \brief Biased CoSaMP: CoSaMP over the BOMP-extended dictionary
/// `[φ0, Φ0]`, recovering data concentrated around an unknown mode.
/// `options.sparsity` counts the outliers (the bias column is budgeted
/// automatically). Returns the same shape as BOMP for easy comparison.
Result<BompResult> RunBiasedCosamp(const MeasurementMatrix& matrix,
                                   const std::vector<double>& y,
                                   const CosampOptions& options);

}  // namespace csod::cs

#endif  // CSOD_CS_COSAMP_H_
