#ifndef CSOD_CS_MEASUREMENT_MATRIX_H_
#define CSOD_CS_MEASUREMENT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace csod::cs {

/// \brief The paper's random Gaussian measurement matrix
/// `Φ0 (M x N, entries i.i.d. N(0, 1/M))`, generated deterministically
/// from a seed.
///
/// Key property (Section 3.1, "by a consensus, each node randomly generates
/// the same M x N measurement matrix"): entry (i, j) is a pure function of
/// `(seed, j, i)`, so every node in a distributed system derives the
/// identical matrix from the shared seed without any matrix transmission,
/// and individual columns can be regenerated in any order — which is what
/// OMP's column-selection loop needs.
///
/// An optional dense column-major cache trades memory for speed; when
/// `M * N * 8` exceeds the cache budget the matrix stays implicit and
/// columns are regenerated on the fly.
class MeasurementMatrix {
 public:
  /// Creates the M x N matrix for `seed`. A dense cache is materialized iff
  /// the storage fits `cache_budget_bytes` (0 disables caching).
  MeasurementMatrix(size_t m, size_t n, uint64_t seed,
                    size_t cache_budget_bytes = kDefaultCacheBudgetBytes);

  size_t m() const { return m_; }
  size_t n() const { return n_; }
  uint64_t seed() const { return seed_; }
  bool cached() const { return !cache_.empty(); }

  /// Entry (row, col) — N(0, 1/M) distributed.
  double Entry(size_t row, size_t col) const {
    if (!cache_.empty()) return cache_[col * m_ + row];
    return GenerateEntry(row, col);
  }

  /// Writes column `col` (length M) into `out`.
  void FillColumn(size_t col, double* out) const;

  /// Returns column `col` as a vector.
  std::vector<double> Column(size_t col) const;

  /// y = Φ0 * x for a dense x of size N.
  Result<std::vector<double>> Multiply(const std::vector<double>& x) const;

  /// y = Φ0 * x for x given in sparse coordinate form; cost O(nnz * M).
  /// This is the local-compression fast path: local slices have few
  /// non-zero keys.
  Result<std::vector<double>> MultiplySparse(
      const std::vector<size_t>& indices,
      const std::vector<double>& values) const;

  /// c = Φ0^T * r (size N), the OMP correlation kernel.
  Result<std::vector<double>> CorrelateAll(const std::vector<double>& r) const;

  /// Sum of all columns scaled by 1/sqrt(N): the BOMP bias column
  /// `φ0 = (1/√N) Σ_i φ_i` (Equation 3).
  std::vector<double> BiasColumn() const;

  static constexpr size_t kDefaultCacheBudgetBytes = size_t{512} << 20;

 private:
  double GenerateEntry(size_t row, size_t col) const {
    return CounterGaussian(HashCombine(seed_, col)).At(row) * inv_sqrt_m_;
  }

  size_t m_;
  size_t n_;
  uint64_t seed_;
  double inv_sqrt_m_;
  // Column-major cache (cache_[col * m_ + row]) or empty when implicit.
  std::vector<double> cache_;
};

}  // namespace csod::cs

#endif  // CSOD_CS_MEASUREMENT_MATRIX_H_
