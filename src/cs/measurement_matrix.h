#ifndef CSOD_CS_MEASUREMENT_MATRIX_H_
#define CSOD_CS_MEASUREMENT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace csod::cs {

/// Result of the fused correlate+argmax kernel (OMP statement 4): the
/// unmasked column with the largest |<column, r>|, ties broken toward the
/// lowest index.
struct CorrelateArgmaxResult {
  /// Sentinel index meaning "every column was masked out".
  static constexpr size_t kNoIndex = ~size_t{0};

  /// Winning column index (an *atom* index when returned through the
  /// Dictionary interface), or kNoIndex.
  size_t index = kNoIndex;
  /// Signed correlation <column_index, r>.
  double correlation = 0.0;
  /// |correlation|; -1 when index == kNoIndex so any real column wins.
  double abs_correlation = -1.0;
};

/// \brief Non-owning view of one node's sparse slice, for the batched
/// sketching kernel (MultiplySparseBatch). The pointed-to arrays must stay
/// alive for the duration of the call.
struct SparseVectorView {
  const size_t* indices = nullptr;
  const double* values = nullptr;
  size_t nnz = 0;
};

/// \brief The paper's random Gaussian measurement matrix
/// `Φ0 (M x N, entries i.i.d. N(0, 1/M))`, generated deterministically
/// from a seed.
///
/// Key property (Section 3.1, "by a consensus, each node randomly generates
/// the same M x N measurement matrix"): entry (i, j) is a pure function of
/// `(seed, j, i)`, so every node in a distributed system derives the
/// identical matrix from the shared seed without any matrix transmission,
/// and individual columns can be regenerated in any order — which is what
/// OMP's column-selection loop needs.
///
/// An optional dense column-major cache trades memory for speed; when
/// `M * N * 8` exceeds the cache budget the matrix stays implicit and
/// columns are regenerated on the fly.
///
/// Determinism: every kernel below returns bit-identical results at any
/// parallelism limit. Per-index kernels (cache fill, CorrelateAll) write
/// disjoint slots; reductions (Multiply, MultiplySparse, BiasColumn) use a
/// fixed block geometry independent of the thread count with partials
/// combined in block order; CorrelateArgmax reduces chunk-local winners in
/// chunk order with lowest-index tie-breaking, which composes to the global
/// lowest-index argmax under any chunking.
class MeasurementMatrix {
 public:
  /// Creates the M x N matrix for `seed`. A dense cache is materialized iff
  /// the storage fits `cache_budget_bytes` (0 disables caching).
  MeasurementMatrix(size_t m, size_t n, uint64_t seed,
                    size_t cache_budget_bytes = kDefaultCacheBudgetBytes);

  size_t m() const { return m_; }
  size_t n() const { return n_; }
  uint64_t seed() const { return seed_; }
  bool cached() const { return !cache_.empty(); }

  /// Entry (row, col) — N(0, 1/M) distributed.
  double Entry(size_t row, size_t col) const {
    if (!cache_.empty()) return cache_[col * m_ + row];
    return GenerateEntry(row, col);
  }

  /// Writes column `col` (length M) into `out`.
  void FillColumn(size_t col, double* out) const;

  /// Returns column `col` as a vector.
  std::vector<double> Column(size_t col) const;

  /// y = Φ0 * x for a dense x of size N.
  Result<std::vector<double>> Multiply(const std::vector<double>& x) const;

  /// y = Φ0 * x for x given in sparse coordinate form; cost O(nnz * M).
  /// This is the local-compression fast path: local slices have few
  /// non-zero keys.
  Result<std::vector<double>> MultiplySparse(
      const std::vector<size_t>& indices,
      const std::vector<double>& values) const;

  /// \brief Batched sketching: y_l = Φ0 x_l for many slices in one pass.
  ///
  /// Writes, when the out-pointers are non-null (each may independently be
  /// null):
  ///  - `per_slice_out` (resized to `slices.size() * M`): slice l's
  ///    measurement at [l*M, (l+1)*M), bit-identical to
  ///    MultiplySparse(slice l);
  ///  - `sum_out` (resized to M): Σ_l Φ0 x_l folded in slice order,
  ///    bit-identical to per-slice MultiplySparse followed by
  ///    Compressor::AggregateMeasurements. An empty batch yields zeros.
  ///
  /// Each slice keeps MultiplySparse's fixed per-slice block geometry and
  /// entry order; all blocks across all slices run in parallel, and the
  /// block partials are folded serially in (slice, block) order — so the
  /// result is bit-identical at any parallelism limit AND to the serial
  /// per-node path, which is what lets the fault-free protocol fast path
  /// coexist with the bit-compared per-node fault path.
  ///
  /// When the matrix is implicit, columns are generated into a tiered
  /// scratch: consecutive blocks are grouped into waves whose entry count
  /// fits `scratch_budget_bytes` worth of columns, and each distinct column
  /// is generated once per wave (once per batch when the batch fits)
  /// instead of once per referencing entry. Regeneration is pure, so
  /// sharing never changes the accumulated bits.
  Status MultiplySparseBatch(
      const std::vector<SparseVectorView>& slices,
      std::vector<double>* sum_out, std::vector<double>* per_slice_out = nullptr,
      size_t scratch_budget_bytes = kDefaultBatchScratchBytes) const;

  /// c = Φ0^T * r (size N), the OMP correlation kernel.
  Result<std::vector<double>> CorrelateAll(const std::vector<double>& r) const;

  /// Writes Φ0^T * r into out[0..N) without allocating; the zero-copy form
  /// ExtendedDictionary uses to fill out[1..N] directly.
  Status CorrelateAllInto(const std::vector<double>& r, double* out) const;

  /// Fused correlate+argmax: the column j maximizing |<φ_j, r>| over all j
  /// with `skip == nullptr || !(*skip)[j + skip_offset]`, ties toward the
  /// lowest j. Never materializes the N-vector of correlations — chunk-local
  /// winners are reduced in fixed chunk order, so the result is bit-identical
  /// at any thread count. `skip_offset` lets ExtendedDictionary pass its
  /// atom-indexed mask (atom j+1 == column j) without copying it.
  Result<CorrelateArgmaxResult> CorrelateArgmax(
      const std::vector<double>& r, const std::vector<bool>* skip = nullptr,
      size_t skip_offset = 0) const;

  /// Sum of all columns scaled by 1/sqrt(N): the BOMP bias column
  /// `φ0 = (1/√N) Σ_i φ_i` (Equation 3). Recomputes on every call; prefer
  /// CachedBiasColumn() on hot paths.
  std::vector<double> BiasColumn() const;

  /// BiasColumn() computed once on first use and memoized (thread-safe).
  /// Bit-identical to a fresh BiasColumn() call: both run the same fixed
  /// block reduction. Saves an O(M·N) pass per ExtendedDictionary
  /// construction / known-mode recovery.
  const std::vector<double>& CachedBiasColumn() const;

  static constexpr size_t kDefaultCacheBudgetBytes = size_t{512} << 20;
  /// Default per-wave column scratch for the implicit batched kernel.
  static constexpr size_t kDefaultBatchScratchBytes = size_t{128} << 20;

 private:
  double GenerateEntry(size_t row, size_t col) const {
    return CounterGaussian(HashCombine(seed_, col)).At(row) * inv_sqrt_m_;
  }

  size_t m_;
  size_t n_;
  uint64_t seed_;
  double inv_sqrt_m_;
  // Column-major cache (cache_[col * m_ + row]) or empty when implicit.
  std::vector<double> cache_;
  // Lazily memoized bias column (CachedBiasColumn).
  mutable std::once_flag bias_once_;
  mutable std::vector<double> bias_column_;
};

}  // namespace csod::cs

#endif  // CSOD_CS_MEASUREMENT_MATRIX_H_
