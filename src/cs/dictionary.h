#ifndef CSOD_CS_DICTIONARY_H_
#define CSOD_CS_DICTIONARY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "cs/measurement_matrix.h"

namespace csod::cs {

/// \brief Abstract over-complete dictionary as seen by the OMP column
/// selection loop (Algorithm 2 in the paper).
///
/// OMP only needs two operations on the dictionary: fetch one atom
/// (column) and correlate the current residual against all atoms. Both the
/// plain measurement matrix (standard OMP) and the bias-extended matrix
/// `Φ = [φ0, Φ0]` used by BOMP implement this interface, so a single OMP
/// implementation serves both algorithms.
class Dictionary {
 public:
  virtual ~Dictionary() = default;

  /// Number of atoms (columns).
  virtual size_t num_atoms() const = 0;
  /// Length of each atom (the measurement size M).
  virtual size_t atom_length() const = 0;

  /// Writes atom `j` (length atom_length()) into `out`.
  virtual void FillAtom(size_t j, double* out) const = 0;

  /// c_j = <atom_j, r> for all atoms. r.size() must equal atom_length().
  virtual Result<std::vector<double>> Correlate(
      const std::vector<double>& r) const = 0;

  /// Fused correlate+argmax (OMP statement 4): the atom j maximizing
  /// |<atom_j, r>| over all j with !selected_mask[j], ties toward the lowest
  /// j; index == CorrelateArgmaxResult::kNoIndex when every atom is masked.
  /// selected_mask.size() must equal num_atoms().
  ///
  /// The default implementation correlates all atoms and scans (any
  /// Dictionary stays correct); MatrixDictionary and ExtendedDictionary
  /// override it with the measurement matrix's fused kernel, which never
  /// materializes, copies, or rescans the N-vector of correlations.
  virtual Result<CorrelateArgmaxResult> CorrelateArgmax(
      const std::vector<double>& r,
      const std::vector<bool>& selected_mask) const;

  /// y = Σ_j z_j * atom_j for a dense coefficient vector z of size
  /// num_atoms() (the forward operator, needed by gradient-based
  /// recoveries like FISTA).
  virtual Result<std::vector<double>> MultiplyDense(
      const std::vector<double>& z) const = 0;

  /// Atom `j` as a vector.
  std::vector<double> Atom(size_t j) const {
    std::vector<double> out(atom_length());
    FillAtom(j, out.data());
    return out;
  }
};

/// \brief Dictionary view over a plain measurement matrix (standard OMP).
/// Does not own the matrix; the matrix must outlive the view.
class MatrixDictionary final : public Dictionary {
 public:
  explicit MatrixDictionary(const MeasurementMatrix* matrix)
      : matrix_(matrix) {}

  size_t num_atoms() const override { return matrix_->n(); }
  size_t atom_length() const override { return matrix_->m(); }
  void FillAtom(size_t j, double* out) const override {
    matrix_->FillColumn(j, out);
  }
  Result<std::vector<double>> Correlate(
      const std::vector<double>& r) const override {
    return matrix_->CorrelateAll(r);
  }
  Result<CorrelateArgmaxResult> CorrelateArgmax(
      const std::vector<double>& r,
      const std::vector<bool>& selected_mask) const override {
    return matrix_->CorrelateArgmax(r, &selected_mask);
  }
  Result<std::vector<double>> MultiplyDense(
      const std::vector<double>& z) const override {
    return matrix_->Multiply(z);
  }

 private:
  const MeasurementMatrix* matrix_;
};

/// \brief The BOMP extended dictionary `Φ = [φ0, Φ0]` with
/// `φ0 = (1/√N) Σ_i φ_i` (Equation 2/3 in the paper).
///
/// Atom 0 is the bias column; atom j (j >= 1) is column j-1 of Φ0. The
/// bias column is the matrix's memoized CachedBiasColumn(), so repeated
/// dictionary constructions over the same matrix (one per recovery call)
/// share a single O(M·N) column-sum pass.
class ExtendedDictionary final : public Dictionary {
 public:
  explicit ExtendedDictionary(const MeasurementMatrix* matrix)
      : matrix_(matrix), bias_column_(matrix->CachedBiasColumn()) {}

  size_t num_atoms() const override { return matrix_->n() + 1; }
  size_t atom_length() const override { return matrix_->m(); }

  void FillAtom(size_t j, double* out) const override;
  Result<std::vector<double>> Correlate(
      const std::vector<double>& r) const override;
  Result<CorrelateArgmaxResult> CorrelateArgmax(
      const std::vector<double>& r,
      const std::vector<bool>& selected_mask) const override;
  Result<std::vector<double>> MultiplyDense(
      const std::vector<double>& z) const override;

  /// The materialized bias column φ0.
  const std::vector<double>& bias_column() const { return bias_column_; }

 private:
  const MeasurementMatrix* matrix_;
  const std::vector<double>& bias_column_;
};

}  // namespace csod::cs

#endif  // CSOD_CS_DICTIONARY_H_
