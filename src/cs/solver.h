#ifndef CSOD_CS_SOLVER_H_
#define CSOD_CS_SOLVER_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"

namespace csod::cs {

/// The recovery engines the library ships (DESIGN.md §14 compares them).
/// Every engine solves the same biased problem — recover data concentrated
/// around an unknown mode from `y = Φ0 x` via the extended dictionary
/// `[φ0, Φ0]` — and returns the common `BompResult` currency, so callers
/// (Detector, protocols, serve, CLI) switch engines without code changes.
enum class RecoverySolver {
  kOmp,     ///< BOMP — the paper's Algorithm 1 (greedy, default).
  kCosamp,  ///< Biased CoSaMP (greedy with uniform guarantees).
  kFista,   ///< Biased basis pursuit via FISTA (convex relaxation).
  kAmp,     ///< Biased AMP (fixed-cost iterations; fastest at large k).
};

/// Canonical lowercase name ("omp", "cosamp", "fista", "amp") — the
/// `--solver=` flag values and the provenance-block spelling.
const char* SolverName(RecoverySolver solver);

/// Parses a `--solver=` flag value; InvalidArgument on unknown names.
Result<RecoverySolver> ParseSolverName(const std::string& name);

/// Options for the engine-agnostic recovery entry point.
struct SolverOptions {
  RecoverySolver solver = RecoverySolver::kOmp;
  /// Unified iteration budget R (the paper's f(k) knob). Per-engine
  /// mapping, documented so cross-solver runs are comparable:
  ///  - omp:    OMP iterations = R (0 → caller must size it, as today).
  ///  - cosamp: sparsity s = max(8, 2R/7) — the inverse of the paper's
  ///            R = f(k) ≈ 3.5k midpoint, so the same R targets the same
  ///            outlier count; halving iterations stay at their default.
  ///  - fista:  FISTA iterations = min(R·4, 500) — proximal steps are
  ///            ~R/4 the cost of an OMP iteration at equal M·N.
  ///  - amp:    AMP keeps its fixed default budget (iterations are
  ///            support-independent); R only caps it when R is smaller.
  size_t iterations = 0;
  /// Telemetry sink, forwarded to the selected engine.
  obs::Telemetry* telemetry = nullptr;
};

/// Runs the selected engine on the biased problem and returns the common
/// result shape. This is the single dispatch point the Detector, the
/// serve layer, and the CLI share.
Result<BompResult> RecoverBiased(const MeasurementMatrix& matrix,
                                 const std::vector<double>& y,
                                 const SolverOptions& options);

}  // namespace csod::cs

#endif  // CSOD_CS_SOLVER_H_
