#ifndef CSOD_SERVE_NET_H_
#define CSOD_SERVE_NET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "cs/compressor.h"
#include "cs/solver.h"
#include "outlier/outlier.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace csod::serve {

/// \brief The wire-facing deployment surface of the streaming service:
/// binary-framed requests/responses over a transport (docs/STREAMING.md,
/// "Deployment").
///
/// Every message is one dist::wire_format frame
/// ([u32 magic][u8 kind][u64 count][payload][u64 checksum]); ingest frames
/// embed the exact EncodeKeyValues message the batch protocols transmit,
/// so the 32-bit key-space and non-finite rejection rules are inherited,
/// not re-implemented. Corruption anywhere (torn frame, flipped bit) fails
/// the checksum and surfaces as DataLoss — the one error code the client
/// retries, exactly once per call.
///
/// Request kinds (client → server) start at 16, responses at 32; dist
/// payload kinds 1–15 stay reserved for protocol messages, and 24 is the
/// checkpoint frame (serve/checkpoint.h), which doubles as the
/// fetch-checkpoint response.
enum class NetFrameKind : uint8_t {
  kIngestBatch = 16,     ///< tenant + embedded key-values message.
  kAdvance = 17,         ///< tenant + virtual-clock tick.
  kQuery = 18,           ///< query text (tenant named by the FROM clause).
  kSnapshotFetch = 19,   ///< tenant — latest published snapshot.
  kCheckpointFetch = 20, ///< tenant — full detector checkpoint.
  kAck = 32,             ///< u64 result (events accepted / epoch reached).
  kQueryResult = 33,     ///< StreamingQueryResult.
  kSnapshot = 34,        ///< SketchSnapshot.
  kError = 35,           ///< status code + message.
  kPushback = 36,        ///< admission refusal: queue bytes + limit.
};

/// Admission control knobs of a NetServer.
struct NetServerOptions {
  /// Hard cap on a single frame (requests larger than this are rejected
  /// with InvalidArgument before decoding).
  size_t max_frame_bytes = 16u << 20;
  /// Per-tenant bound on deferred (stalled-shard backlog) bytes. An ingest
  /// that would push the tenant's queued bytes past this limit is refused
  /// with a kPushback frame and nothing is ingested — the client sees
  /// ResourceExhausted and must back off (drain happens on unstall).
  size_t max_tenant_backlog_bytes = 64u << 20;
};

/// \brief Server half: turns request frames into response frames against a
/// StreamingService. Transport-agnostic and thread-safe (tenant state
/// synchronizes inside the service; counters are atomic), so any number of
/// connections can share one server.
class NetServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit NetServer(StreamingService* service, NetServerOptions options = {});

  /// Handles one request frame and returns the response frame. Never
  /// fails: every error becomes a kError (or kPushback) frame, including
  /// corrupted requests (kError carrying DataLoss, which the client
  /// retries).
  std::string HandleFrame(const std::string& request);

  const NetServerOptions& options() const { return options_; }
  uint64_t frames_handled() const {
    return frames_.load(std::memory_order_relaxed);
  }
  /// Frames refused before reaching a tenant (corruption, bad kind, size).
  uint64_t frames_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Ingest frames refused by per-tenant admission control.
  uint64_t pushbacks() const {
    return pushbacks_.load(std::memory_order_relaxed);
  }

 private:
  StreamingService* service_;
  NetServerOptions options_;
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> pushbacks_{0};
};

/// \brief One synchronous request/response exchange with a server.
///
/// Implementations: LoopbackTransport (in-process, deterministic — the
/// simulation and unit tests), SocketTransport (a connected stream socket
/// — socketpair in tests, TCP in deployment).
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;
  /// Delivers `frame` and returns the peer's response frame. A transport
  /// error (closed socket) fails the call; a *corrupted* frame does not —
  /// corruption rides inside the frames for the endpoint checksums to
  /// catch.
  virtual Result<std::string> RoundTrip(const std::string& frame) = 0;
};

/// In-process transport: requests go straight to NetServer::HandleFrame.
/// Under Buggify, the `serve.net.torn_frame` section tears request frames
/// in flight (deterministically, keyed on the frame ordinal) — but never
/// the frame immediately following a torn one, mirroring the fault model's
/// reliable-retransmission assumption (docs/FAULT_MODEL.md), so a single
/// client retry always suffices.
class LoopbackTransport final : public FrameTransport {
 public:
  explicit LoopbackTransport(NetServer* server) : server_(server) {}
  Result<std::string> RoundTrip(const std::string& frame) override;

  /// Test hook: corrupt the next frame regardless of Buggify.
  void TearNextFrame() { tear_next_ = true; }
  uint64_t frames_torn() const { return torn_; }

 private:
  NetServer* server_;
  uint64_t frame_ordinal_ = 0;
  uint64_t torn_ = 0;
  bool last_torn_ = false;
  bool tear_next_ = false;
};

/// Blocking transport over a connected stream socket. Frames travel
/// length-prefixed ([u32 length][frame bytes]); the checksum discipline
/// stays inside the frames. Owns the fd.
class SocketTransport final : public FrameTransport {
 public:
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;
  Result<std::string> RoundTrip(const std::string& frame) override;

 private:
  int fd_;
};

/// Serves length-prefixed frames on a connected socket until the peer
/// closes it (clean EOF returns OK). Does not close `fd`.
Status ServeConnection(int fd, NetServer* server);

/// \brief Client half: typed calls over a FrameTransport.
///
/// Exactly one retry on DataLoss (a torn/corrupted frame in either
/// direction); every other error propagates, including ResourceExhausted
/// pushback — backing off is the caller's policy, not the client's.
class NetClient {
 public:
  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t retries = 0;
    uint64_t pushbacks = 0;
  };

  /// `transport` is borrowed and must outlive the client.
  explicit NetClient(FrameTransport* transport) : transport_(transport) {}

  /// Frames and ingests one keyed score-delta batch. ResourceExhausted if
  /// the server refused admission (nothing was ingested).
  Status Ingest(const std::string& tenant, const std::vector<size_t>& keys,
                const std::vector<double>& deltas);

  /// Advances the tenant's virtual clock; returns the epoch reached.
  Result<uint64_t> AdvanceTo(const std::string& tenant, uint64_t tick);

  /// `SELECT Outlier|Top K ... FROM <tenant>` against the server.
  Result<StreamingQueryResult> Query(const std::string& query_text);

  /// The tenant's latest published snapshot (FailedPrecondition if none).
  Result<SketchSnapshot> FetchSnapshot(const std::string& tenant);

  /// The tenant's serialized checkpoint frame (serve/checkpoint.h decodes
  /// and restores it).
  Result<std::string> FetchCheckpoint(const std::string& tenant);

  const Stats& stats() const { return stats_; }

 private:
  /// One round trip with the single-retry-on-DataLoss policy.
  Result<std::string> Call(const std::string& frame);

  FrameTransport* transport_;
  Stats stats_;
};

// Frame codecs (the client uses these; exposed for tests and custom
// transports).
Result<std::string> EncodeIngestRequest(const std::string& tenant,
                                        const cs::SparseSlice& events);
Result<std::string> EncodeAdvanceRequest(const std::string& tenant,
                                         uint64_t tick);
Result<std::string> EncodeQueryRequest(const std::string& query_text);
Result<std::string> EncodeSnapshotRequest(const std::string& tenant);
Result<std::string> EncodeCheckpointRequest(const std::string& tenant);
Result<std::string> EncodeSnapshotResponse(const SketchSnapshot& snapshot);
Result<SketchSnapshot> DecodeSnapshotResponse(const std::string& frame);

/// Configuration of a SnapshotFollower — the subset of
/// StreamingDetectorOptions a replica needs to rebuild Φ0 and answer
/// queries (same n/m/seed ⇒ the same consensus matrix as the leader).
struct SnapshotFollowerOptions {
  size_t n = 0;
  size_t m = 0;
  uint64_t seed = 1;
  size_t iterations = 0;  ///< 0 = the paper's f(k) at query time.
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
};

/// \brief A read replica fed only published snapshots.
///
/// Because a snapshot carries the whole window measurement, a follower
/// needs nothing else to serve detection queries: same Φ0 (n/m/seed) +
/// same `y` bytes ⇒ answers bit-identical to the leader's for the same
/// snapshot version. Applying snapshots is monotone in version — stale or
/// duplicate deliveries are ignored, so replication is idempotent and
/// order-tolerant.
class SnapshotFollower {
 public:
  static Result<std::unique_ptr<SnapshotFollower>> Create(
      const SnapshotFollowerOptions& options);

  /// Installs `snapshot` if it is newer than the current one (no-op
  /// otherwise). InvalidArgument if its `y` does not match M.
  Status ApplySnapshot(const SketchSnapshot& snapshot);

  /// Fetches the leader's latest snapshot for `tenant` through `client`
  /// and applies it. FailedPrecondition (from the leader) if the tenant
  /// has not published yet.
  Status ReplicateOnce(NetClient* client, const std::string& tenant);

  /// The follower's current snapshot, or null before the first apply.
  std::shared_ptr<const SketchSnapshot> Snapshot() const;

  /// Detection against the follower's snapshot — the same recovery path
  /// as StreamingDetector::QueryOutliers/QueryTopK, so answers are
  /// bit-identical to the leader's for the same snapshot version.
  Result<outlier::OutlierSet> QueryOutliers(size_t k) const;
  Result<std::vector<outlier::Outlier>> QueryTopK(size_t k) const;

  const cs::MeasurementMatrix& matrix() const { return *matrix_; }

 private:
  explicit SnapshotFollower(const SnapshotFollowerOptions& options);

  SnapshotFollowerOptions options_;
  std::unique_ptr<cs::MeasurementMatrix> matrix_;
  mutable std::mutex mu_;
  std::shared_ptr<const SketchSnapshot> snapshot_;
};

}  // namespace csod::serve

#endif  // CSOD_SERVE_NET_H_
