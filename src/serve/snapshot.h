#ifndef CSOD_SERVE_SNAPSHOT_H_
#define CSOD_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

namespace csod::serve {

/// \brief An immutable, epoch-versioned window sketch published by a
/// `StreamingDetector` at an epoch boundary.
///
/// This is the unit of isolation between ingestion and queries: the
/// detector builds a fresh snapshot while closing an epoch and swaps it in
/// atomically (a `shared_ptr` exchange), so a query holds a consistent
/// window measurement for as long as it needs without ever blocking — or
/// being blocked by — concurrent ingestion. Because CS measurements are
/// linear, the whole window is one M-vector (`y = Σ_epochs y_epoch`), so a
/// snapshot costs O(M) to build and O(1) to publish regardless of how many
/// events the window absorbed.
///
/// Staleness contract (docs/STREAMING.md): a snapshot covers every event
/// ingested into epochs `[first_epoch, last_epoch]` on non-stalled shards;
/// events of the in-progress epoch `last_epoch + 1` are *never* visible.
/// Queries against the latest snapshot are therefore stale by less than
/// one epoch of ingestion (exactly the current epoch's partial data).
struct SketchSnapshot {
  /// Publish counter, strictly increasing per detector (1 = first).
  uint64_t version = 0;
  /// Newest epoch whose data is included.
  uint64_t last_epoch = 0;
  /// Oldest epoch whose data is included.
  uint64_t first_epoch = 0;
  /// Number of epoch sketches summed into `y` (== last - first + 1).
  size_t epochs_covered = 0;
  /// The window measurement `y = Σ_{e ∈ window} y_e`, length M, folded in
  /// ascending epoch order.
  std::vector<double> y;
  /// Events folded into the covered epochs (excludes deferred events of
  /// stalled shards).
  uint64_t events = 0;
  /// Shards that were stalled when this snapshot was published: their
  /// deferred events are missing from `y` (degraded mode; the linearity
  /// argument of docs/THEORY.md §7 bounds the induced error).
  std::vector<uint32_t> stalled_shards;
};

}  // namespace csod::serve

#endif  // CSOD_SERVE_SNAPSHOT_H_
