#ifndef CSOD_SERVE_STREAMING_DETECTOR_H_
#define CSOD_SERVE_STREAMING_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/windowed_detector.h"
#include "cs/bomp.h"
#include "cs/solver.h"
#include "obs/telemetry.h"
#include "outlier/outlier.h"
#include "serve/snapshot.h"

namespace csod::serve {

/// How epochs compose into the queryable window.
enum class WindowKind {
  /// Every epoch close publishes a snapshot over the last `window_epochs`
  /// closed epochs (overlapping windows; snapshot age < 1 epoch).
  kSliding,
  /// A snapshot is published only when `window_epochs` consecutive closed
  /// epochs complete a disjoint window (non-overlapping windows; between
  /// publications queries answer from the previous full window, so the
  /// age bound is `window_epochs` rather than 1).
  kTumbling,
};

/// Configuration of a StreamingDetector.
struct StreamingDetectorOptions {
  /// Key space, measurement size, consensus seed, BOMP iteration budget
  /// (0 = the paper's f(k) at query time) — as WindowedDetectorOptions.
  size_t n = 0;
  size_t m = 0;
  uint64_t seed = 1;
  size_t iterations = 0;
  /// Recovery engine for QueryOutliers / QueryTopK / QueryRecovery
  /// (cs/solver.h). A query-time preference: snapshots are engine-agnostic.
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;
  /// Closed epochs a window covers (the in-progress epoch is extra).
  size_t window_epochs = 0;
  /// Ingestion shards; a batch is radix-partitioned across them and folded
  /// shard-by-shard in shard order (the determinism contract below).
  size_t num_shards = 8;
  WindowKind window = WindowKind::kSliding;
  /// Virtual-clock ticks per epoch (AdvanceTo closes an epoch every
  /// `epoch_ticks` ticks).
  uint64_t epoch_ticks = 1;
  size_t cache_budget_bytes = cs::MeasurementMatrix::kDefaultCacheBudgetBytes;
  /// Telemetry sink ("serve.*" metrics; docs/STREAMING.md names them all).
  /// Null means disabled.
  obs::Telemetry* telemetry = nullptr;
};

/// A full copy of one detector's mutable state at one instant: the epoch
/// ring, per-epoch event counts, stall flags, backlogs, virtual clock, and
/// the latest published snapshot. Because CS measurements are linear the
/// ring *is* the window — restoring this struct restores the detector
/// exactly, bit for bit (serve/checkpoint.h serializes it with checksums).
struct DetectorCheckpoint {
  bool started = false;
  uint64_t current_epoch = 0;
  /// Publications so far (the version counter continues from here).
  uint64_t version = 0;
  uint64_t last_tick = 0;
  /// Retained epoch sketches, oldest-first; the last is the in-progress
  /// epoch. Parallel to `epoch_events`.
  std::vector<std::vector<double>> epoch_sketches;
  std::vector<uint64_t> epoch_events;
  /// Per-shard stall flags (size num_shards).
  std::vector<uint8_t> stalled;
  /// Per-shard deferred batch-shares in arrival order (size num_shards).
  std::vector<std::vector<cs::SparseSlice>> backlogs;
  /// Latest published snapshot, or null before the first publication.
  std::shared_ptr<const SketchSnapshot> snapshot;
};

/// \brief Always-on sharded streaming outlier detection over one keyed
/// score stream (one tenant; StreamingService multiplexes tenants).
///
/// The production scenario of Section 1 as a service: keyed score-delta
/// batches arrive continuously, epochs advance on a deterministic virtual
/// clock, and analysts ask top-k / outlier queries about "the last W
/// epochs" while ingestion continues. Built on the library's existing
/// layers rather than new math:
///
///  - **Ingestion** radix-partitions each batch across `num_shards` shards
///    with `mr::ScatterPartitions` (the PR 6 columnar pass) into exact-size
///    arena-backed columns, sketches all shards in one
///    `MultiplySparseBatch` call, and folds the per-shard measurements into
///    the current epoch's sketch via `WindowedOutlierDetector` — because
///    measurements are linear this is `y_epoch += Φ0·Δx` per shard, never a
///    recompression.
///  - **Epochs** live in the windowed detector's ring (sized
///    `window_epochs + 1`: W closed epochs plus the in-progress one).
///  - **Queries** never touch the ring: every epoch close publishes an
///    immutable `SketchSnapshot` (swap-on-advance `shared_ptr`), and
///    QueryOutliers/QueryTopK run BOMP against the snapshot they grabbed.
///    Ingestion is never blocked by a query and vice versa; the only shared
///    lock is the pointer swap.
///
/// **Determinism contract** (tested in serve_test.cc, gated in
/// bench_streaming): the published window measurement — and therefore
/// every detection answer — is *bit-identical* to a
/// `WindowedOutlierDetector` fed the same batches as per-shard
/// `SparseSlice`s in shard order (stalled shards' slices withheld until
/// replay), at any parallelism limit. This holds by construction:
/// `MultiplySparseBatch`'s per-slice output is bit-identical to
/// `MultiplySparse`, shard measurements fold in fixed shard order through
/// `IngestMeasurement` (the same `la::Axpy` the reference uses), and the
/// snapshot folds epoch sketches oldest-first exactly like
/// `WindowMeasurement`. Floating-point addition is non-associative, so the
/// *batch and shard boundaries are part of the contract* — the reference
/// must ingest the same per-(batch, shard) slices, not one merged slice.
///
/// **Bounded staleness**: a query's snapshot never includes the in-progress
/// epoch and (sliding mode) always includes every closed epoch in the
/// window, so the answer lags ingestion by less than one epoch, always.
///
/// **Degraded mode** (docs/STREAMING.md): a stalled shard's share of every
/// batch is deferred to a per-shard backlog — delayed, never lost — and
/// replayed, per original batch in arrival order, into the then-current
/// epoch on unstall. Snapshots published while a shard is stalled list it
/// in `stalled_shards`; docs/THEORY.md §7 bounds the detection error of
/// such partial-window answers via linearity.
///
/// Thread safety: any number of concurrent callers. Mutating calls
/// (IngestBatch / AdvanceTo / AdvanceEpoch / SetShardStalled) serialize on
/// an ingest mutex; Snapshot()/Query* only copy the published pointer.
class StreamingDetector {
 public:
  static Result<std::unique_ptr<StreamingDetector>> Create(
      const StreamingDetectorOptions& options);

  /// Creates a detector that continues `checkpoint` exactly: the next
  /// publication is bit-identical to what the checkpointed detector would
  /// have published, versions continue from the checkpointed counter, and
  /// deferred backlogs replay as if the restart never happened. `options`
  /// must describe the same stream (same n/m/seed/window/shards) as the
  /// detector the checkpoint was taken from.
  static Result<std::unique_ptr<StreamingDetector>> Restore(
      const StreamingDetectorOptions& options,
      const DetectorCheckpoint& checkpoint);

  /// Copies the full mutable state (blocks ingestion for the duration of
  /// the copy; concurrent queries are unaffected).
  DetectorCheckpoint CheckpointState() const;

  /// The shard a key routes to: `SplitMix64(key) % num_shards` (the same
  /// mixed hash as the MapReduce default partitioner — never identity).
  static uint32_t ShardOfKey(size_t key, size_t num_shards);

  /// Ingests one batch of keyed score deltas into the current epoch
  /// (`keys[i]` gains `deltas[i]`; duplicate keys accumulate). Fails
  /// before the first AdvanceTo/AdvanceEpoch and on any key >= N.
  Status IngestBatch(const size_t* keys, const double* deltas, size_t count);
  Status IngestBatch(const std::vector<size_t>& keys,
                     const std::vector<double>& deltas);

  /// Moves the virtual clock to `tick` (monotone), closing an epoch at
  /// every multiple of `epoch_ticks` crossed and publishing snapshots per
  /// the window kind. The first call opens epoch 0. Returns the current
  /// epoch index after the move.
  Result<uint64_t> AdvanceTo(uint64_t tick);

  /// Closes the current epoch (publishing per the window kind) and opens
  /// the next; the first call opens epoch 0 without closing anything.
  /// Returns the new current epoch index. (AdvanceTo is this on a clock.)
  uint64_t AdvanceEpoch();

  /// The latest published snapshot, or null before the first publication.
  /// The snapshot is immutable and outlives any later publication for as
  /// long as the caller holds it.
  std::shared_ptr<const SketchSnapshot> Snapshot() const;

  /// k-outlier / top-k detection against the latest snapshot (BOMP on the
  /// snapshot's window measurement; never blocks or observes ingestion).
  /// Fails with FailedPrecondition before the first publication.
  Result<outlier::OutlierSet> QueryOutliers(size_t k) const;
  Result<std::vector<outlier::Outlier>> QueryTopK(size_t k) const;

  /// Full BOMP recovery of the latest snapshot (0 = f(k) default is not
  /// applicable here; `iterations` must be > 0).
  Result<cs::BompResult> QueryRecovery(size_t iterations) const;

  /// Marks a shard stalled (its share of every batch is deferred) or
  /// replays its backlog into the current epoch and resumes it. Replay
  /// preserves per-batch boundaries and arrival order.
  Status SetShardStalled(uint32_t shard, bool stalled);

  /// Index of the current (in-progress) epoch; 0 before the first
  /// AdvanceTo/AdvanceEpoch (which also opens epoch 0).
  uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_relaxed);
  }
  /// True once the first epoch is open.
  bool started() const { return started_.load(std::memory_order_relaxed); }
  /// Publications so far (== version of the latest snapshot).
  uint64_t snapshot_version() const {
    return version_.load(std::memory_order_relaxed);
  }
  /// Events deferred to stalled-shard backlogs and not yet replayed.
  uint64_t backlog_events() const;

  const StreamingDetectorOptions& options() const { return options_; }
  const cs::MeasurementMatrix& matrix() const { return window_->matrix(); }

 private:
  explicit StreamingDetector(const StreamingDetectorOptions& options);

  // All Locked methods require ingest_mu_.
  uint64_t AdvanceEpochLocked();
  void PublishLocked();
  void FlushIngestTelemetryLocked();
  Status FoldShardMeasurementsLocked(size_t num_slices, uint64_t events);
  Status SetShardStalledLocked(uint32_t shard, bool stalled);

  StreamingDetectorOptions options_;
  obs::Telemetry* telemetry_;  // Never null (Disabled() when unset).

  mutable std::mutex ingest_mu_;
  // The epoch ring, matrix, and fold primitives — window_epochs + 1 deep
  // so the ring holds W closed epochs plus the in-progress one.
  std::unique_ptr<core::WindowedOutlierDetector> window_;
  // Events folded per retained epoch (parallel to the window ring).
  std::deque<uint64_t> epoch_events_;
  // Per-shard stall flags and backlogs (one deferred slice per batch that
  // arrived while stalled, in arrival order).
  std::vector<bool> stalled_;
  std::vector<std::deque<cs::SparseSlice>> backlog_;
  uint64_t backlog_events_locked_ = 0;
  uint64_t last_tick_ = 0;
  // Reused ingest scratch (guarded by ingest_mu_).
  std::vector<double> per_slice_scratch_;
  std::vector<double> shard_y_scratch_;
  // Ingest telemetry accumulated locally and flushed to the registry once
  // per epoch close: the always-on hot path pays plain integer adds and
  // stopwatch reads, never a registry lock per batch.
  uint64_t pending_batches_ = 0;
  uint64_t pending_events_ = 0;
  uint64_t pending_deferred_ = 0;
  double pending_ingest_seconds_ = 0.0;
  // Batches seen since construction — the deterministic ordinal the
  // Buggify stall-storm hook keys its per-batch decisions on.
  uint64_t buggify_batches_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<uint64_t> current_epoch_{0};
  std::atomic<uint64_t> version_{0};

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const SketchSnapshot> snapshot_;
};

}  // namespace csod::serve

#endif  // CSOD_SERVE_STREAMING_DETECTOR_H_
