#ifndef CSOD_SERVE_CHECKPOINT_H_
#define CSOD_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/streaming_detector.h"

namespace csod::serve {

/// \brief Checkpoint/restore of a StreamingDetector as one checksummed
/// dist::wire_format frame.
///
/// Because CS measurements are linear, the epoch ring *is* the window
/// state: serializing the per-epoch `y` vectors (each as an embedded,
/// individually checksummed measurement message), the stall flags, the
/// deferred backlogs (embedded key-value messages), and the published
/// snapshot captures the detector exactly. A restart that restores the
/// latest checkpoint republishes a bit-identical `SketchSnapshot`
/// (version, epoch range, and `y` bytes) and continues ingestion as if the
/// process never died.
///
/// Torn writes are detected, never trusted: the outer frame checksum
/// covers the whole checkpoint, so a crash mid-write (or the Buggify
/// section `serve.net.mid_checkpoint_crash`) yields a frame DecodeCheckpoint
/// rejects with DataLoss — operators keep the previous good checkpoint.

/// Frame kind of a serialized checkpoint (outside the dist payload kinds
/// 1–15 and the serve RPC kinds of serve/net.h; a checkpoint frame doubles
/// as the fetch-checkpoint RPC response).
inline constexpr uint8_t kCheckpointFrameKind = 24;

/// Serializes the stream geometry of `options` plus the full mutable
/// state. The count field holds the number of retained epochs. Fails if a
/// backlog slice cannot be wire-encoded (keys beyond 32 bits).
Result<std::string> EncodeCheckpoint(const StreamingDetectorOptions& options,
                                     const DetectorCheckpoint& checkpoint);

/// A decoded checkpoint: the geometry it was taken under plus the state.
struct DecodedCheckpoint {
  /// Stream geometry — must match the restoring detector's options.
  size_t n = 0;
  size_t m = 0;
  uint64_t seed = 1;
  size_t window_epochs = 0;
  size_t num_shards = 0;
  uint64_t epoch_ticks = 1;
  WindowKind window = WindowKind::kSliding;
  DetectorCheckpoint state;
};

/// Validates checksums (outer frame and every embedded message) and
/// decodes. DataLoss on torn/corrupted bytes, InvalidArgument on a
/// structurally inconsistent payload.
Result<DecodedCheckpoint> DecodeCheckpoint(const std::string& frame);

/// Decodes `frame`, checks its geometry against `options` (same
/// n/m/seed/window/shards/ticks — a checkpoint only restores the stream it
/// was taken from), and builds the restored detector. `options` supplies
/// the runtime-only fields (telemetry sink, solver, cache budget).
Result<std::unique_ptr<StreamingDetector>> RestoreDetector(
    const std::string& frame, const StreamingDetectorOptions& options);

}  // namespace csod::serve

#endif  // CSOD_SERVE_CHECKPOINT_H_
