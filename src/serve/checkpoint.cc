#include "serve/checkpoint.h"

#include <cstring>
#include <utility>

#include "dist/wire_format.h"
#include "sim/buggify.h"

namespace csod::serve {

namespace {

using dist::AppendU32;
using dist::AppendU64;
using dist::ReadU32;
using dist::ReadU64;

// Payload layout (after the generic [magic][kind][count] envelope header;
// count = retained epochs):
//   u64 n, m, seed, window_epochs, num_shards, epoch_ticks
//   u8  window_kind, started, has_snapshot
//   u64 current_epoch, version, last_tick
//   u64 num_epochs
//   per epoch: u64 events, u32 len, EncodeMeasurement bytes (own checksum)
//   per shard: u8 stalled
//   per shard: u64 num_slices; per slice: u32 len, EncodeKeyValues bytes
//   if has_snapshot:
//     u64 version, last_epoch, first_epoch, epochs_covered, events
//     u32 num_stalled; u32 per stalled shard
//     u32 len, EncodeMeasurement(y) bytes

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

Status AppendMessage(std::string* out, const Result<std::string>& message) {
  CSOD_RETURN_NOT_OK(message.status());
  if (message.Value().size() > UINT32_MAX) {
    return Status::InvalidArgument(
        "checkpoint: embedded message exceeds 4 GiB");
  }
  AppendU32(out, static_cast<uint32_t>(message.Value().size()));
  out->append(message.Value());
  return Status::OK();
}

// Bounds-checked cursor over the frame payload. Structural overruns are
// InvalidArgument: the outer checksum already validated, so a short read
// here means a malformed payload, not bit rot.
struct Reader {
  const char* p;
  size_t remaining;

  Status Need(size_t bytes) {
    if (remaining < bytes) {
      return Status::InvalidArgument("checkpoint: truncated payload field");
    }
    return Status::OK();
  }
  Status U8(uint8_t* v) {
    CSOD_RETURN_NOT_OK(Need(1));
    *v = static_cast<uint8_t>(*p);
    ++p;
    --remaining;
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    CSOD_RETURN_NOT_OK(Need(4));
    *v = ReadU32(p);
    p += 4;
    remaining -= 4;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    CSOD_RETURN_NOT_OK(Need(8));
    *v = ReadU64(p);
    p += 8;
    remaining -= 8;
    return Status::OK();
  }
  Status Bytes(size_t n, std::string* out) {
    CSOD_RETURN_NOT_OK(Need(n));
    out->assign(p, n);
    p += n;
    remaining -= n;
    return Status::OK();
  }
  Status Message(std::string* out) {
    uint32_t len = 0;
    CSOD_RETURN_NOT_OK(U32(&len));
    return Bytes(len, out);
  }
};

}  // namespace

Result<std::string> EncodeCheckpoint(const StreamingDetectorOptions& options,
                                     const DetectorCheckpoint& checkpoint) {
  std::string payload;
  AppendU64(&payload, options.n);
  AppendU64(&payload, options.m);
  AppendU64(&payload, options.seed);
  AppendU64(&payload, options.window_epochs);
  AppendU64(&payload, options.num_shards);
  AppendU64(&payload, options.epoch_ticks);
  AppendU8(&payload, options.window == WindowKind::kTumbling ? 1 : 0);
  AppendU8(&payload, checkpoint.started ? 1 : 0);
  AppendU8(&payload, checkpoint.snapshot != nullptr ? 1 : 0);
  AppendU64(&payload, checkpoint.current_epoch);
  AppendU64(&payload, checkpoint.version);
  AppendU64(&payload, checkpoint.last_tick);

  if (checkpoint.epoch_events.size() != checkpoint.epoch_sketches.size()) {
    return Status::InvalidArgument(
        "checkpoint: epoch events/sketches size mismatch");
  }
  const uint64_t num_epochs = checkpoint.epoch_sketches.size();
  AppendU64(&payload, num_epochs);
  for (uint64_t e = 0; e < num_epochs; ++e) {
    AppendU64(&payload, checkpoint.epoch_events[e]);
    CSOD_RETURN_NOT_OK(AppendMessage(
        &payload, dist::EncodeMeasurement(checkpoint.epoch_sketches[e])));
  }

  if (checkpoint.stalled.size() != options.num_shards ||
      checkpoint.backlogs.size() != options.num_shards) {
    return Status::InvalidArgument("checkpoint: shard state size mismatch");
  }
  for (uint8_t flag : checkpoint.stalled) AppendU8(&payload, flag ? 1 : 0);
  for (const std::vector<cs::SparseSlice>& backlog : checkpoint.backlogs) {
    AppendU64(&payload, backlog.size());
    for (const cs::SparseSlice& slice : backlog) {
      CSOD_RETURN_NOT_OK(AppendMessage(&payload, dist::EncodeKeyValues(slice)));
    }
  }

  if (checkpoint.snapshot != nullptr) {
    const SketchSnapshot& snapshot = *checkpoint.snapshot;
    AppendU64(&payload, snapshot.version);
    AppendU64(&payload, snapshot.last_epoch);
    AppendU64(&payload, snapshot.first_epoch);
    AppendU64(&payload, snapshot.epochs_covered);
    AppendU64(&payload, snapshot.events);
    AppendU32(&payload, static_cast<uint32_t>(snapshot.stalled_shards.size()));
    for (uint32_t shard : snapshot.stalled_shards) AppendU32(&payload, shard);
    CSOD_RETURN_NOT_OK(
        AppendMessage(&payload, dist::EncodeMeasurement(snapshot.y)));
  }

  std::string frame =
      dist::EncodeFrame(kCheckpointFrameKind, num_epochs, payload);
  // Buggify: crash mid-checkpoint — the writer dies partway through, so
  // the reader sees a torn frame. Keyed on the checkpointed epoch: the
  // same epoch's checkpoint is torn on every attempt (a crashed writer
  // stays crashed), the next epoch's succeeds. Decoding must reject the
  // torn bytes via the outer checksum, never restore from them.
  if (CSOD_BUGGIFY_AT("serve.net.mid_checkpoint_crash",
                      checkpoint.current_epoch)) {
    frame.resize(frame.size() / 2);
  }
  return frame;
}

Result<DecodedCheckpoint> DecodeCheckpoint(const std::string& frame) {
  CSOD_ASSIGN_OR_RETURN(dist::FrameView view, dist::DecodeFrame(frame));
  if (view.kind != kCheckpointFrameKind) {
    return Status::InvalidArgument(
        "checkpoint: unexpected frame kind " + std::to_string(view.kind));
  }
  Reader reader{view.payload, view.payload_size};
  DecodedCheckpoint decoded;
  uint64_t u = 0;
  CSOD_RETURN_NOT_OK(reader.U64(&u));
  decoded.n = static_cast<size_t>(u);
  CSOD_RETURN_NOT_OK(reader.U64(&u));
  decoded.m = static_cast<size_t>(u);
  CSOD_RETURN_NOT_OK(reader.U64(&decoded.seed));
  CSOD_RETURN_NOT_OK(reader.U64(&u));
  decoded.window_epochs = static_cast<size_t>(u);
  CSOD_RETURN_NOT_OK(reader.U64(&u));
  decoded.num_shards = static_cast<size_t>(u);
  CSOD_RETURN_NOT_OK(reader.U64(&decoded.epoch_ticks));
  uint8_t window_kind = 0, started = 0, has_snapshot = 0;
  CSOD_RETURN_NOT_OK(reader.U8(&window_kind));
  CSOD_RETURN_NOT_OK(reader.U8(&started));
  CSOD_RETURN_NOT_OK(reader.U8(&has_snapshot));
  decoded.window =
      window_kind != 0 ? WindowKind::kTumbling : WindowKind::kSliding;
  decoded.state.started = started != 0;
  CSOD_RETURN_NOT_OK(reader.U64(&decoded.state.current_epoch));
  CSOD_RETURN_NOT_OK(reader.U64(&decoded.state.version));
  CSOD_RETURN_NOT_OK(reader.U64(&decoded.state.last_tick));

  uint64_t num_epochs = 0;
  CSOD_RETURN_NOT_OK(reader.U64(&num_epochs));
  if (num_epochs != view.count) {
    return Status::InvalidArgument(
        "checkpoint: epoch count disagrees with the frame envelope");
  }
  if (num_epochs > decoded.window_epochs + 1) {
    return Status::InvalidArgument("checkpoint: more epochs than the ring");
  }
  decoded.state.epoch_events.reserve(num_epochs);
  decoded.state.epoch_sketches.reserve(num_epochs);
  std::string message;
  for (uint64_t e = 0; e < num_epochs; ++e) {
    CSOD_RETURN_NOT_OK(reader.U64(&u));
    decoded.state.epoch_events.push_back(u);
    CSOD_RETURN_NOT_OK(reader.Message(&message));
    CSOD_ASSIGN_OR_RETURN(std::vector<double> sketch,
                          dist::DecodeMeasurement(message));
    if (sketch.size() != decoded.m) {
      return Status::InvalidArgument("checkpoint: epoch sketch size " +
                                     std::to_string(sketch.size()) +
                                     " != M " + std::to_string(decoded.m));
    }
    decoded.state.epoch_sketches.push_back(std::move(sketch));
  }

  decoded.state.stalled.reserve(decoded.num_shards);
  for (size_t p = 0; p < decoded.num_shards; ++p) {
    uint8_t flag = 0;
    CSOD_RETURN_NOT_OK(reader.U8(&flag));
    decoded.state.stalled.push_back(flag);
  }
  decoded.state.backlogs.resize(decoded.num_shards);
  for (size_t p = 0; p < decoded.num_shards; ++p) {
    uint64_t num_slices = 0;
    CSOD_RETURN_NOT_OK(reader.U64(&num_slices));
    for (uint64_t i = 0; i < num_slices; ++i) {
      CSOD_RETURN_NOT_OK(reader.Message(&message));
      CSOD_ASSIGN_OR_RETURN(cs::SparseSlice slice,
                            dist::DecodeKeyValues(message));
      decoded.state.backlogs[p].push_back(std::move(slice));
    }
  }

  if (has_snapshot != 0) {
    auto snapshot = std::make_shared<SketchSnapshot>();
    CSOD_RETURN_NOT_OK(reader.U64(&snapshot->version));
    CSOD_RETURN_NOT_OK(reader.U64(&snapshot->last_epoch));
    CSOD_RETURN_NOT_OK(reader.U64(&snapshot->first_epoch));
    CSOD_RETURN_NOT_OK(reader.U64(&u));
    snapshot->epochs_covered = static_cast<size_t>(u);
    CSOD_RETURN_NOT_OK(reader.U64(&snapshot->events));
    uint32_t num_stalled = 0;
    CSOD_RETURN_NOT_OK(reader.U32(&num_stalled));
    snapshot->stalled_shards.reserve(num_stalled);
    for (uint32_t i = 0; i < num_stalled; ++i) {
      uint32_t shard = 0;
      CSOD_RETURN_NOT_OK(reader.U32(&shard));
      snapshot->stalled_shards.push_back(shard);
    }
    CSOD_RETURN_NOT_OK(reader.Message(&message));
    CSOD_ASSIGN_OR_RETURN(snapshot->y, dist::DecodeMeasurement(message));
    if (snapshot->y.size() != decoded.m) {
      return Status::InvalidArgument("checkpoint: snapshot y size mismatch");
    }
    decoded.state.snapshot = std::move(snapshot);
  }

  if (reader.remaining != 0) {
    return Status::InvalidArgument("checkpoint: trailing payload bytes");
  }
  return decoded;
}

Result<std::unique_ptr<StreamingDetector>> RestoreDetector(
    const std::string& frame, const StreamingDetectorOptions& options) {
  CSOD_ASSIGN_OR_RETURN(DecodedCheckpoint decoded, DecodeCheckpoint(frame));
  if (decoded.n != options.n || decoded.m != options.m ||
      decoded.seed != options.seed ||
      decoded.window_epochs != options.window_epochs ||
      decoded.num_shards != options.num_shards ||
      decoded.epoch_ticks != options.epoch_ticks ||
      decoded.window != options.window) {
    return Status::InvalidArgument(
        "RestoreDetector: checkpoint geometry (n=" + std::to_string(decoded.n) +
        " m=" + std::to_string(decoded.m) +
        " seed=" + std::to_string(decoded.seed) +
        " window=" + std::to_string(decoded.window_epochs) +
        " shards=" + std::to_string(decoded.num_shards) +
        ") does not match the detector options");
  }
  return StreamingDetector::Restore(options, decoded.state);
}

}  // namespace csod::serve
