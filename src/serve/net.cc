#include "serve/net.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

#include "dist/comm.h"
#include "dist/wire_format.h"
#include "serve/checkpoint.h"
#include "sim/buggify.h"

namespace csod::serve {

namespace {

using dist::AppendF64;
using dist::AppendU32;
using dist::AppendU64;
using dist::ReadF64;
using dist::ReadU32;
using dist::ReadU64;

uint8_t KindByte(NetFrameKind kind) { return static_cast<uint8_t>(kind); }

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked payload cursor (structural errors after the outer
// checksum passed are InvalidArgument, not DataLoss).
struct Reader {
  const char* p;
  size_t remaining;

  Status Need(size_t bytes) {
    if (remaining < bytes) {
      return Status::InvalidArgument("net: truncated payload field");
    }
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    CSOD_RETURN_NOT_OK(Need(4));
    *v = ReadU32(p);
    p += 4;
    remaining -= 4;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    CSOD_RETURN_NOT_OK(Need(8));
    *v = ReadU64(p);
    p += 8;
    remaining -= 8;
    return Status::OK();
  }
  Status F64(double* v) {
    CSOD_RETURN_NOT_OK(Need(8));
    *v = ReadF64(p);
    p += 8;
    remaining -= 8;
    return Status::OK();
  }
  Status Str(std::string* out) {
    uint32_t len = 0;
    CSOD_RETURN_NOT_OK(U32(&len));
    CSOD_RETURN_NOT_OK(Need(len));
    out->assign(p, len);
    p += len;
    remaining -= len;
    return Status::OK();
  }
};

std::string TenantRequest(NetFrameKind kind, const std::string& tenant) {
  std::string payload;
  AppendString(&payload, tenant);
  return dist::EncodeFrame(KindByte(kind), 0, payload);
}

std::string ErrorFrame(const Status& status) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(status.code()));
  AppendString(&payload, status.message());
  return dist::EncodeFrame(KindByte(NetFrameKind::kError), 0, payload);
}

std::string PushbackFrame(uint64_t queued_bytes, uint64_t limit_bytes,
                          const std::string& message) {
  std::string payload;
  AppendU64(&payload, queued_bytes);
  AppendU64(&payload, limit_bytes);
  AppendString(&payload, message);
  return dist::EncodeFrame(KindByte(NetFrameKind::kPushback), 0, payload);
}

std::string AckFrame(uint64_t value) {
  std::string payload;
  AppendU64(&payload, value);
  return dist::EncodeFrame(KindByte(NetFrameKind::kAck), 0, payload);
}

// Turns a decoded kError / kPushback frame back into the Status the server
// produced. Any other kind returns OK (the caller proceeds to decode it).
Status StatusOfResponse(const dist::FrameView& view) {
  if (view.kind == KindByte(NetFrameKind::kError)) {
    Reader reader{view.payload, view.payload_size};
    uint32_t code = 0;
    std::string message;
    CSOD_RETURN_NOT_OK(reader.U32(&code));
    CSOD_RETURN_NOT_OK(reader.Str(&message));
    if (code == 0 || code > static_cast<uint32_t>(StatusCode::kDataLoss)) {
      return Status::Internal("net: error frame with unknown status code " +
                              std::to_string(code));
    }
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  if (view.kind == KindByte(NetFrameKind::kPushback)) {
    Reader reader{view.payload, view.payload_size};
    uint64_t queued = 0, limit = 0;
    std::string message;
    CSOD_RETURN_NOT_OK(reader.U64(&queued));
    CSOD_RETURN_NOT_OK(reader.U64(&limit));
    CSOD_RETURN_NOT_OK(reader.Str(&message));
    return Status::ResourceExhausted(
        message + " (queued " + std::to_string(queued) + " of " +
        std::to_string(limit) + " bytes)");
  }
  return Status::OK();
}

Status ExpectKind(const dist::FrameView& view, NetFrameKind kind) {
  CSOD_RETURN_NOT_OK(StatusOfResponse(view));
  if (view.kind != KindByte(kind)) {
    return Status::Internal("net: unexpected response kind " +
                            std::to_string(view.kind) + " (want " +
                            std::to_string(KindByte(kind)) + ")");
  }
  return Status::OK();
}

Result<uint64_t> DecodeAck(const dist::FrameView& view) {
  CSOD_RETURN_NOT_OK(ExpectKind(view, NetFrameKind::kAck));
  Reader reader{view.payload, view.payload_size};
  uint64_t value = 0;
  CSOD_RETURN_NOT_OK(reader.U64(&value));
  return value;
}

std::string EncodeQueryResultResponse(const StreamingQueryResult& result) {
  std::string payload;
  AppendF64(&payload, result.mode);
  AppendU64(&payload, result.key_space);
  AppendU64(&payload, result.snapshot_version);
  AppendU64(&payload, result.snapshot_first_epoch);
  AppendU64(&payload, result.snapshot_last_epoch);
  AppendU64(&payload, result.staleness_epochs);
  AppendU32(&payload, static_cast<uint32_t>(result.stalled_shards.size()));
  for (uint32_t shard : result.stalled_shards) AppendU32(&payload, shard);
  AppendU64(&payload, result.rows.size());
  for (const query::ResultRow& row : result.rows) {
    AppendString(&payload, row.group_key);
    AppendF64(&payload, row.value);
    AppendF64(&payload, row.rank_score);
  }
  return dist::EncodeFrame(KindByte(NetFrameKind::kQueryResult),
                           result.rows.size(), payload);
}

Result<StreamingQueryResult> DecodeQueryResultResponse(
    const dist::FrameView& view) {
  CSOD_RETURN_NOT_OK(ExpectKind(view, NetFrameKind::kQueryResult));
  Reader reader{view.payload, view.payload_size};
  StreamingQueryResult result;
  CSOD_RETURN_NOT_OK(reader.F64(&result.mode));
  uint64_t u = 0;
  CSOD_RETURN_NOT_OK(reader.U64(&u));
  result.key_space = static_cast<size_t>(u);
  CSOD_RETURN_NOT_OK(reader.U64(&result.snapshot_version));
  CSOD_RETURN_NOT_OK(reader.U64(&result.snapshot_first_epoch));
  CSOD_RETURN_NOT_OK(reader.U64(&result.snapshot_last_epoch));
  CSOD_RETURN_NOT_OK(reader.U64(&result.staleness_epochs));
  uint32_t num_stalled = 0;
  CSOD_RETURN_NOT_OK(reader.U32(&num_stalled));
  result.stalled_shards.reserve(num_stalled);
  for (uint32_t i = 0; i < num_stalled; ++i) {
    uint32_t shard = 0;
    CSOD_RETURN_NOT_OK(reader.U32(&shard));
    result.stalled_shards.push_back(shard);
  }
  uint64_t num_rows = 0;
  CSOD_RETURN_NOT_OK(reader.U64(&num_rows));
  if (num_rows != view.count) {
    return Status::InvalidArgument(
        "net: row count disagrees with the frame envelope");
  }
  result.rows.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    query::ResultRow row;
    CSOD_RETURN_NOT_OK(reader.Str(&row.group_key));
    CSOD_RETURN_NOT_OK(reader.F64(&row.value));
    CSOD_RETURN_NOT_OK(reader.F64(&row.rank_score));
    result.rows.push_back(std::move(row));
  }
  if (reader.remaining != 0) {
    return Status::InvalidArgument("net: trailing query-result bytes");
  }
  return result;
}

// Full POSIX read/write loops (handle partial transfers and EINTR).
// `eof_ok` distinguishes a clean peer close at a frame boundary.
Status ReadFull(int fd, char* buf, size_t size, bool* clean_eof) {
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd, buf + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("net: read failed (errno " +
                              std::to_string(errno) + ")");
    }
    if (got == 0) {
      if (clean_eof != nullptr && done == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::DataLoss("net: peer closed mid-frame");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* buf, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t put = ::write(fd, buf + done, size - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("net: write failed (errno " +
                              std::to_string(errno) + ")");
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Status WriteLengthPrefixed(int fd, const std::string& frame) {
  char prefix[4];
  const uint32_t length = static_cast<uint32_t>(frame.size());
  std::memcpy(prefix, &length, 4);
  CSOD_RETURN_NOT_OK(WriteFull(fd, prefix, 4));
  return WriteFull(fd, frame.data(), frame.size());
}

// Reads one length-prefixed frame. Sets `clean_eof` (and returns OK with
// an empty frame) when the peer closed at a frame boundary.
Status ReadLengthPrefixed(int fd, size_t max_frame_bytes, std::string* frame,
                          bool* clean_eof) {
  char prefix[4];
  CSOD_RETURN_NOT_OK(ReadFull(fd, prefix, 4, clean_eof));
  if (clean_eof != nullptr && *clean_eof) return Status::OK();
  uint32_t length = 0;
  std::memcpy(&length, prefix, 4);
  if (length > max_frame_bytes) {
    return Status::InvalidArgument("net: frame of " + std::to_string(length) +
                                   " bytes exceeds the " +
                                   std::to_string(max_frame_bytes) +
                                   "-byte limit");
  }
  frame->resize(length);
  return ReadFull(fd, frame->data(), length, nullptr);
}

// Shared recovery path of leader and follower queries: same solver, same
// iteration rule, same y ⇒ bit-identical answers.
Result<cs::BompResult> RecoverSnapshot(const cs::MeasurementMatrix& matrix,
                                       const SketchSnapshot& snapshot,
                                       cs::RecoverySolver solver,
                                       size_t configured_iterations,
                                       size_t k) {
  const size_t iterations = configured_iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : configured_iterations;
  cs::SolverOptions solve;
  solve.solver = solver;
  solve.iterations = iterations;
  return cs::RecoverBiased(matrix, snapshot.y, solve);
}

}  // namespace

// ---------------------------------------------------------------------------
// Request/response codecs
// ---------------------------------------------------------------------------

Result<std::string> EncodeIngestRequest(const std::string& tenant,
                                        const cs::SparseSlice& events) {
  if (tenant.empty()) {
    return Status::InvalidArgument("net: tenant name must be non-empty");
  }
  // The batch rides as the exact key-value message the batch protocols
  // transmit — 32-bit key ids and finite values enforced at encode time.
  CSOD_ASSIGN_OR_RETURN(std::string kv, dist::EncodeKeyValues(events));
  std::string payload;
  AppendString(&payload, tenant);
  AppendString(&payload, kv);
  return dist::EncodeFrame(KindByte(NetFrameKind::kIngestBatch), events.nnz(),
                           payload);
}

Result<std::string> EncodeAdvanceRequest(const std::string& tenant,
                                         uint64_t tick) {
  if (tenant.empty()) {
    return Status::InvalidArgument("net: tenant name must be non-empty");
  }
  std::string payload;
  AppendString(&payload, tenant);
  AppendU64(&payload, tick);
  return dist::EncodeFrame(KindByte(NetFrameKind::kAdvance), 0, payload);
}

Result<std::string> EncodeQueryRequest(const std::string& query_text) {
  if (query_text.empty()) {
    return Status::InvalidArgument("net: query text must be non-empty");
  }
  std::string payload;
  AppendString(&payload, query_text);
  return dist::EncodeFrame(KindByte(NetFrameKind::kQuery), 0, payload);
}

Result<std::string> EncodeSnapshotRequest(const std::string& tenant) {
  if (tenant.empty()) {
    return Status::InvalidArgument("net: tenant name must be non-empty");
  }
  return TenantRequest(NetFrameKind::kSnapshotFetch, tenant);
}

Result<std::string> EncodeCheckpointRequest(const std::string& tenant) {
  if (tenant.empty()) {
    return Status::InvalidArgument("net: tenant name must be non-empty");
  }
  return TenantRequest(NetFrameKind::kCheckpointFetch, tenant);
}

Result<std::string> EncodeSnapshotResponse(const SketchSnapshot& snapshot) {
  std::string payload;
  AppendU64(&payload, snapshot.version);
  AppendU64(&payload, snapshot.last_epoch);
  AppendU64(&payload, snapshot.first_epoch);
  AppendU64(&payload, snapshot.epochs_covered);
  AppendU64(&payload, snapshot.events);
  AppendU32(&payload, static_cast<uint32_t>(snapshot.stalled_shards.size()));
  for (uint32_t shard : snapshot.stalled_shards) AppendU32(&payload, shard);
  // The window measurement travels as an embedded measurement message with
  // its own checksum — the same bytes a protocol node would transmit.
  CSOD_ASSIGN_OR_RETURN(std::string y, dist::EncodeMeasurement(snapshot.y));
  AppendString(&payload, y);
  return dist::EncodeFrame(KindByte(NetFrameKind::kSnapshot),
                           snapshot.y.size(), payload);
}

Result<SketchSnapshot> DecodeSnapshotResponse(const std::string& frame) {
  CSOD_ASSIGN_OR_RETURN(dist::FrameView view, dist::DecodeFrame(frame));
  CSOD_RETURN_NOT_OK(ExpectKind(view, NetFrameKind::kSnapshot));
  Reader reader{view.payload, view.payload_size};
  SketchSnapshot snapshot;
  CSOD_RETURN_NOT_OK(reader.U64(&snapshot.version));
  CSOD_RETURN_NOT_OK(reader.U64(&snapshot.last_epoch));
  CSOD_RETURN_NOT_OK(reader.U64(&snapshot.first_epoch));
  uint64_t covered = 0;
  CSOD_RETURN_NOT_OK(reader.U64(&covered));
  snapshot.epochs_covered = static_cast<size_t>(covered);
  CSOD_RETURN_NOT_OK(reader.U64(&snapshot.events));
  uint32_t num_stalled = 0;
  CSOD_RETURN_NOT_OK(reader.U32(&num_stalled));
  snapshot.stalled_shards.reserve(num_stalled);
  for (uint32_t i = 0; i < num_stalled; ++i) {
    uint32_t shard = 0;
    CSOD_RETURN_NOT_OK(reader.U32(&shard));
    snapshot.stalled_shards.push_back(shard);
  }
  std::string y_message;
  CSOD_RETURN_NOT_OK(reader.Str(&y_message));
  CSOD_ASSIGN_OR_RETURN(snapshot.y, dist::DecodeMeasurement(y_message));
  if (snapshot.y.size() != view.count) {
    return Status::InvalidArgument(
        "net: snapshot y length disagrees with the frame envelope");
  }
  if (reader.remaining != 0) {
    return Status::InvalidArgument("net: trailing snapshot bytes");
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// NetServer
// ---------------------------------------------------------------------------

NetServer::NetServer(StreamingService* service, NetServerOptions options)
    : service_(service), options_(options) {}

std::string NetServer::HandleFrame(const std::string& request) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  if (request.size() > options_.max_frame_bytes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(Status::InvalidArgument(
        "net: request of " + std::to_string(request.size()) +
        " bytes exceeds the " + std::to_string(options_.max_frame_bytes) +
        "-byte limit"));
  }
  const Result<dist::FrameView> decoded = dist::DecodeFrame(request);
  if (!decoded.ok()) {
    // DataLoss — the client's retry signal for torn request frames.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(decoded.status());
  }
  const dist::FrameView& view = decoded.Value();
  Reader reader{view.payload, view.payload_size};

  switch (static_cast<NetFrameKind>(view.kind)) {
    case NetFrameKind::kIngestBatch: {
      std::string tenant, kv;
      Status parsed = reader.Str(&tenant);
      if (parsed.ok()) parsed = reader.Str(&kv);
      if (!parsed.ok()) return ErrorFrame(parsed);
      Result<cs::SparseSlice> slice = dist::DecodeKeyValues(kv);
      if (!slice.ok()) return ErrorFrame(slice.status());
      if (slice.Value().nnz() != view.count) {
        return ErrorFrame(Status::InvalidArgument(
            "net: ingest event count disagrees with the frame envelope"));
      }
      Result<std::shared_ptr<StreamingDetector>> detector =
          service_->Tenant(tenant);
      if (!detector.ok()) return ErrorFrame(detector.status());
      // Admission control: a tenant whose stalled-shard backlog has grown
      // past the byte budget gets pushback instead of more queue growth.
      // Queued bytes are idealized tuple bytes (dist::kKeyValueBytes per
      // deferred event) — the same accounting CommStats uses.
      const uint64_t queued =
          detector.Value()->backlog_events() * dist::kKeyValueBytes;
      const uint64_t incoming = view.count * dist::kKeyValueBytes;
      if (queued + incoming > options_.max_tenant_backlog_bytes) {
        pushbacks_.fetch_add(1, std::memory_order_relaxed);
        return PushbackFrame(queued, options_.max_tenant_backlog_bytes,
                             "net: tenant '" + tenant +
                                 "' backlog over budget; retry after drain");
      }
      const Status ingested = detector.Value()->IngestBatch(
          slice.Value().indices.data(), slice.Value().values.data(),
          slice.Value().nnz());
      if (!ingested.ok()) return ErrorFrame(ingested);
      return AckFrame(view.count);
    }
    case NetFrameKind::kAdvance: {
      std::string tenant;
      uint64_t tick = 0;
      Status parsed = reader.Str(&tenant);
      if (parsed.ok()) parsed = reader.U64(&tick);
      if (!parsed.ok()) return ErrorFrame(parsed);
      Result<uint64_t> epoch = service_->AdvanceTo(tenant, tick);
      if (!epoch.ok()) return ErrorFrame(epoch.status());
      return AckFrame(epoch.Value());
    }
    case NetFrameKind::kQuery: {
      std::string text;
      const Status parsed = reader.Str(&text);
      if (!parsed.ok()) return ErrorFrame(parsed);
      Result<StreamingQueryResult> result = service_->Query(text);
      if (!result.ok()) return ErrorFrame(result.status());
      return EncodeQueryResultResponse(result.Value());
    }
    case NetFrameKind::kSnapshotFetch: {
      std::string tenant;
      const Status parsed = reader.Str(&tenant);
      if (!parsed.ok()) return ErrorFrame(parsed);
      Result<std::shared_ptr<StreamingDetector>> detector =
          service_->Tenant(tenant);
      if (!detector.ok()) return ErrorFrame(detector.status());
      const std::shared_ptr<const SketchSnapshot> snapshot =
          detector.Value()->Snapshot();
      if (snapshot == nullptr) {
        return ErrorFrame(Status::FailedPrecondition(
            "net: tenant '" + tenant + "' has not published a snapshot yet"));
      }
      Result<std::string> response = EncodeSnapshotResponse(*snapshot);
      if (!response.ok()) return ErrorFrame(response.status());
      return response.MoveValue();
    }
    case NetFrameKind::kCheckpointFetch: {
      std::string tenant;
      const Status parsed = reader.Str(&tenant);
      if (!parsed.ok()) return ErrorFrame(parsed);
      Result<std::shared_ptr<StreamingDetector>> detector =
          service_->Tenant(tenant);
      if (!detector.ok()) return ErrorFrame(detector.status());
      Result<std::string> frame = EncodeCheckpoint(
          detector.Value()->options(), detector.Value()->CheckpointState());
      if (!frame.ok()) return ErrorFrame(frame.status());
      // The checkpoint frame (kind 24) is the response, verbatim.
      return frame.MoveValue();
    }
    default:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return ErrorFrame(Status::InvalidArgument(
          "net: unknown request kind " + std::to_string(view.kind)));
  }
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

Result<std::string> LoopbackTransport::RoundTrip(const std::string& frame) {
  const uint64_t ordinal = frame_ordinal_++;
  // Buggify: tear the frame in flight. Never two in a row — the fault
  // model treats retransmission as reliable (docs/FAULT_MODEL.md), so one
  // client retry always recovers and every ingested batch folds exactly
  // once.
  bool tear = tear_next_;
  tear_next_ = false;
  if (!tear && !last_torn_ &&
      CSOD_BUGGIFY_AT("serve.net.torn_frame", ordinal)) {
    tear = true;
  }
  last_torn_ = tear;
  if (tear) {
    ++torn_;
    std::string torn = frame.substr(0, frame.size() - frame.size() / 3 - 1);
    return server_->HandleFrame(torn);
  }
  return server_->HandleFrame(frame);
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> SocketTransport::RoundTrip(const std::string& frame) {
  CSOD_RETURN_NOT_OK(WriteLengthPrefixed(fd_, frame));
  std::string response;
  CSOD_RETURN_NOT_OK(
      ReadLengthPrefixed(fd_, SIZE_MAX, &response, nullptr));
  return response;
}

Status ServeConnection(int fd, NetServer* server) {
  std::string request;
  while (true) {
    bool clean_eof = false;
    CSOD_RETURN_NOT_OK(ReadLengthPrefixed(
        fd, server->options().max_frame_bytes, &request, &clean_eof));
    if (clean_eof) return Status::OK();
    const std::string response = server->HandleFrame(request);
    CSOD_RETURN_NOT_OK(WriteLengthPrefixed(fd, response));
  }
}

// ---------------------------------------------------------------------------
// NetClient
// ---------------------------------------------------------------------------

Result<std::string> NetClient::Call(const std::string& frame) {
  for (int attempt = 0;; ++attempt) {
    CSOD_ASSIGN_OR_RETURN(std::string response, transport_->RoundTrip(frame));
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
    stats_.bytes_received += response.size();
    // Retry (once) exactly the corruption case: a torn response frame, or
    // the server reporting a torn request. Everything else is the
    // endpoint's answer and propagates.
    Status failure;
    const Result<dist::FrameView> view = dist::DecodeFrame(response);
    if (!view.ok()) {
      failure = view.status();
    } else {
      failure = StatusOfResponse(view.Value());
      if (failure.code() == StatusCode::kResourceExhausted) {
        ++stats_.pushbacks;
      }
    }
    if (failure.code() == StatusCode::kDataLoss && attempt == 0) {
      ++stats_.retries;
      continue;
    }
    if (!failure.ok()) return failure;
    return response;
  }
}

Status NetClient::Ingest(const std::string& tenant,
                         const std::vector<size_t>& keys,
                         const std::vector<double>& deltas) {
  if (keys.size() != deltas.size()) {
    return Status::InvalidArgument("net: keys/deltas size mismatch");
  }
  cs::SparseSlice slice;
  slice.indices = keys;
  slice.values = deltas;
  CSOD_ASSIGN_OR_RETURN(std::string request,
                        EncodeIngestRequest(tenant, slice));
  CSOD_ASSIGN_OR_RETURN(std::string response, Call(request));
  CSOD_ASSIGN_OR_RETURN(dist::FrameView view, dist::DecodeFrame(response));
  CSOD_ASSIGN_OR_RETURN(uint64_t accepted, DecodeAck(view));
  if (accepted != keys.size()) {
    return Status::Internal("net: server accepted " +
                            std::to_string(accepted) + " of " +
                            std::to_string(keys.size()) + " events");
  }
  return Status::OK();
}

Result<uint64_t> NetClient::AdvanceTo(const std::string& tenant,
                                      uint64_t tick) {
  CSOD_ASSIGN_OR_RETURN(std::string request,
                        EncodeAdvanceRequest(tenant, tick));
  CSOD_ASSIGN_OR_RETURN(std::string response, Call(request));
  CSOD_ASSIGN_OR_RETURN(dist::FrameView view, dist::DecodeFrame(response));
  return DecodeAck(view);
}

Result<StreamingQueryResult> NetClient::Query(const std::string& query_text) {
  CSOD_ASSIGN_OR_RETURN(std::string request, EncodeQueryRequest(query_text));
  CSOD_ASSIGN_OR_RETURN(std::string response, Call(request));
  CSOD_ASSIGN_OR_RETURN(dist::FrameView view, dist::DecodeFrame(response));
  return DecodeQueryResultResponse(view);
}

Result<SketchSnapshot> NetClient::FetchSnapshot(const std::string& tenant) {
  CSOD_ASSIGN_OR_RETURN(std::string request, EncodeSnapshotRequest(tenant));
  CSOD_ASSIGN_OR_RETURN(std::string response, Call(request));
  return DecodeSnapshotResponse(response);
}

Result<std::string> NetClient::FetchCheckpoint(const std::string& tenant) {
  CSOD_ASSIGN_OR_RETURN(std::string request, EncodeCheckpointRequest(tenant));
  CSOD_ASSIGN_OR_RETURN(std::string response, Call(request));
  CSOD_ASSIGN_OR_RETURN(dist::FrameView view, dist::DecodeFrame(response));
  CSOD_RETURN_NOT_OK(StatusOfResponse(view));
  if (view.kind != kCheckpointFrameKind) {
    return Status::Internal("net: unexpected checkpoint response kind " +
                            std::to_string(view.kind));
  }
  return response;
}

// ---------------------------------------------------------------------------
// SnapshotFollower
// ---------------------------------------------------------------------------

SnapshotFollower::SnapshotFollower(const SnapshotFollowerOptions& options)
    : options_(options),
      matrix_(std::make_unique<cs::MeasurementMatrix>(
          options.m, options.n, options.seed, options.cache_budget_bytes)) {}

Result<std::unique_ptr<SnapshotFollower>> SnapshotFollower::Create(
    const SnapshotFollowerOptions& options) {
  if (options.n == 0) {
    return Status::InvalidArgument("SnapshotFollowerOptions.n must be > 0");
  }
  if (options.m == 0) {
    return Status::InvalidArgument("SnapshotFollowerOptions.m must be > 0");
  }
  return std::unique_ptr<SnapshotFollower>(new SnapshotFollower(options));
}

Status SnapshotFollower::ApplySnapshot(const SketchSnapshot& snapshot) {
  if (snapshot.y.size() != options_.m) {
    return Status::InvalidArgument(
        "ApplySnapshot: y size " + std::to_string(snapshot.y.size()) +
        " != M " + std::to_string(options_.m));
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Monotone in version: duplicate or reordered deliveries are no-ops, so
  // replication can be retried or raced freely.
  if (snapshot_ != nullptr && snapshot.version <= snapshot_->version) {
    return Status::OK();
  }
  snapshot_ = std::make_shared<const SketchSnapshot>(snapshot);
  return Status::OK();
}

Status SnapshotFollower::ReplicateOnce(NetClient* client,
                                       const std::string& tenant) {
  CSOD_ASSIGN_OR_RETURN(SketchSnapshot snapshot,
                        client->FetchSnapshot(tenant));
  return ApplySnapshot(snapshot);
}

std::shared_ptr<const SketchSnapshot> SnapshotFollower::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

Result<outlier::OutlierSet> SnapshotFollower::QueryOutliers(size_t k) const {
  if (k == 0) return Status::InvalidArgument("QueryOutliers: k must be > 0");
  const std::shared_ptr<const SketchSnapshot> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "QueryOutliers: no snapshot replicated yet");
  }
  CSOD_ASSIGN_OR_RETURN(
      cs::BompResult recovery,
      RecoverSnapshot(*matrix_, *snapshot, options_.solver,
                      options_.iterations, k));
  return outlier::KOutliersFromRecovery(recovery, k);
}

Result<std::vector<outlier::Outlier>> SnapshotFollower::QueryTopK(
    size_t k) const {
  if (k == 0) return Status::InvalidArgument("QueryTopK: k must be > 0");
  const std::shared_ptr<const SketchSnapshot> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("QueryTopK: no snapshot replicated yet");
  }
  CSOD_ASSIGN_OR_RETURN(
      cs::BompResult recovery,
      RecoverSnapshot(*matrix_, *snapshot, options_.solver,
                      options_.iterations, k));
  // Same ranking as StreamingDetector::QueryTopK: value descending, ties
  // toward the lower key.
  std::vector<outlier::Outlier> top;
  top.reserve(recovery.entries.size());
  for (const cs::RecoveredEntry& e : recovery.entries) {
    top.push_back(outlier::Outlier{e.index, e.value, e.value});
  }
  std::sort(top.begin(), top.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key_index < b.key_index;
            });
  if (top.size() > k) top.resize(k);
  return top;
}

}  // namespace csod::serve
