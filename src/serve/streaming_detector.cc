#include "serve/streaming_detector.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/arena.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "mapreduce/shuffle.h"
#include "sim/buggify.h"

namespace csod::serve {

StreamingDetector::StreamingDetector(const StreamingDetectorOptions& options)
    : options_(options),
      telemetry_(options.telemetry != nullptr ? options.telemetry
                                              : obs::Telemetry::Disabled()),
      stalled_(options.num_shards, false),
      backlog_(options.num_shards) {}

Result<std::unique_ptr<StreamingDetector>> StreamingDetector::Create(
    const StreamingDetectorOptions& options) {
  if (options.n == 0) {
    return Status::InvalidArgument("StreamingDetectorOptions.n must be > 0");
  }
  if (options.m == 0) {
    return Status::InvalidArgument("StreamingDetectorOptions.m must be > 0");
  }
  if (options.window_epochs == 0) {
    return Status::InvalidArgument(
        "StreamingDetectorOptions.window_epochs must be > 0");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument(
        "StreamingDetectorOptions.num_shards must be > 0");
  }
  if (options.epoch_ticks == 0) {
    return Status::InvalidArgument(
        "StreamingDetectorOptions.epoch_ticks must be > 0");
  }
  core::WindowedDetectorOptions wopts;
  wopts.n = options.n;
  wopts.m = options.m;
  wopts.seed = options.seed;
  wopts.iterations = options.iterations;
  wopts.solver = options.solver;
  // The ring holds the W closed epochs a snapshot covers plus the
  // in-progress epoch still accepting data.
  wopts.window_epochs = options.window_epochs + 1;
  wopts.cache_budget_bytes = options.cache_budget_bytes;
  auto detector =
      std::unique_ptr<StreamingDetector>(new StreamingDetector(options));
  CSOD_ASSIGN_OR_RETURN(detector->window_,
                        core::WindowedOutlierDetector::Create(wopts));
  return detector;
}

Result<std::unique_ptr<StreamingDetector>> StreamingDetector::Restore(
    const StreamingDetectorOptions& options,
    const DetectorCheckpoint& checkpoint) {
  CSOD_ASSIGN_OR_RETURN(std::unique_ptr<StreamingDetector> detector,
                        Create(options));
  if (checkpoint.epoch_sketches.size() != checkpoint.epoch_events.size()) {
    return Status::InvalidArgument(
        "Restore: " + std::to_string(checkpoint.epoch_sketches.size()) +
        " epoch sketches vs " + std::to_string(checkpoint.epoch_events.size()) +
        " epoch event counts");
  }
  if (checkpoint.stalled.size() != options.num_shards ||
      checkpoint.backlogs.size() != options.num_shards) {
    return Status::InvalidArgument(
        "Restore: checkpoint shard count (" +
        std::to_string(checkpoint.stalled.size()) + " stall flags, " +
        std::to_string(checkpoint.backlogs.size()) + " backlogs) != " +
        std::to_string(options.num_shards));
  }
  if (checkpoint.started) {
    if (checkpoint.epoch_sketches.empty()) {
      return Status::InvalidArgument(
          "Restore: a started checkpoint must retain at least the "
          "in-progress epoch");
    }
    CSOD_RETURN_NOT_OK(detector->window_->RestoreEpochs(
        checkpoint.current_epoch, checkpoint.epoch_sketches));
  } else if (!checkpoint.epoch_sketches.empty()) {
    return Status::InvalidArgument(
        "Restore: an unstarted checkpoint cannot retain epochs");
  }
  std::lock_guard<std::mutex> lock(detector->ingest_mu_);
  detector->epoch_events_.assign(checkpoint.epoch_events.begin(),
                                 checkpoint.epoch_events.end());
  detector->backlog_events_locked_ = 0;
  for (uint32_t p = 0; p < options.num_shards; ++p) {
    detector->stalled_[p] = checkpoint.stalled[p] != 0;
    detector->backlog_[p].assign(checkpoint.backlogs[p].begin(),
                                 checkpoint.backlogs[p].end());
    for (const cs::SparseSlice& slice : checkpoint.backlogs[p]) {
      detector->backlog_events_locked_ += slice.nnz();
    }
  }
  detector->last_tick_ = checkpoint.last_tick;
  detector->started_.store(checkpoint.started, std::memory_order_relaxed);
  detector->current_epoch_.store(checkpoint.current_epoch,
                                 std::memory_order_relaxed);
  detector->version_.store(checkpoint.version, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> snapshot_lock(detector->snapshot_mu_);
    detector->snapshot_ = checkpoint.snapshot;
  }
  return detector;
}

DetectorCheckpoint StreamingDetector::CheckpointState() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  DetectorCheckpoint checkpoint;
  checkpoint.started = started_.load(std::memory_order_relaxed);
  checkpoint.current_epoch = current_epoch_.load(std::memory_order_relaxed);
  checkpoint.version = version_.load(std::memory_order_relaxed);
  checkpoint.last_tick = last_tick_;
  const std::deque<std::vector<double>>& ring = window_->EpochSketches();
  checkpoint.epoch_sketches.assign(ring.begin(), ring.end());
  checkpoint.epoch_events.assign(epoch_events_.begin(), epoch_events_.end());
  checkpoint.stalled.reserve(options_.num_shards);
  checkpoint.backlogs.resize(options_.num_shards);
  for (uint32_t p = 0; p < options_.num_shards; ++p) {
    checkpoint.stalled.push_back(stalled_[p] ? 1 : 0);
    checkpoint.backlogs[p].assign(backlog_[p].begin(), backlog_[p].end());
  }
  checkpoint.snapshot = Snapshot();
  return checkpoint;
}

uint32_t StreamingDetector::ShardOfKey(size_t key, size_t num_shards) {
  return static_cast<uint32_t>(SplitMix64(static_cast<uint64_t>(key)) %
                               num_shards);
}

Status StreamingDetector::IngestBatch(const std::vector<size_t>& keys,
                                      const std::vector<double>& deltas) {
  if (keys.size() != deltas.size()) {
    return Status::InvalidArgument(
        "IngestBatch: keys/deltas size mismatch (" +
        std::to_string(keys.size()) + " vs " + std::to_string(deltas.size()) +
        ")");
  }
  return IngestBatch(keys.data(), deltas.data(), keys.size());
}

Status StreamingDetector::IngestBatch(const size_t* keys, const double* deltas,
                                      size_t count) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (!started_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "IngestBatch: call AdvanceTo/AdvanceEpoch before ingesting data");
  }
  // Ingest telemetry is accumulated into plain members here and flushed to
  // the registry at the next epoch close (FlushIngestTelemetryLocked): an
  // always-on path sketching thousands of batches per second must not pay
  // a registry lock per batch.
  const bool traced = telemetry_->enabled();
  Stopwatch watch;
  ++pending_batches_;
  if (count == 0) return Status::OK();
  for (size_t i = 0; i < count; ++i) {
    if (keys[i] >= options_.n) {
      return Status::OutOfRange("IngestBatch: key " + std::to_string(keys[i]) +
                                " out of N " + std::to_string(options_.n));
    }
  }

  // Buggify: stall/unstall storm — before partitioning the batch, flip a
  // deterministic subset of shards (keyed on the batch ordinal) through
  // the real stall machinery. Stalling defers this batch's share; a flip
  // back replays the backlog into the current epoch, so every event is
  // still folded exactly once (the conservation invariant).
  if (sim::BuggifyEnabled()) {
    const uint64_t batch_ordinal = buggify_batches_++;
    for (uint32_t p = 0; p < options_.num_shards; ++p) {
      if (CSOD_BUGGIFY_AT("serve.ingest.stall_storm",
                          HashCombine(batch_ordinal, p))) {
        CSOD_RETURN_NOT_OK(SetShardStalledLocked(p, !stalled_[p]));
      }
    }
  }

  // Radix-partition the batch across shards (the PR 6 columnar pass):
  // exact-size contiguous per-shard key/delta columns, stable within a
  // shard, partition hash applied once per event. ScatterPartitions moves
  // values out of the run; moving a double copies and leaves the source
  // untouched, so viewing the caller's const array as mutable is safe.
  const size_t num_shards = options_.num_shards;
  Arena arena;
  std::vector<ColumnChunks<size_t>> key_store;
  std::vector<ColumnChunks<double>> value_store;
  std::vector<mr::PartitionBlock<size_t, double>> blocks;
  double* deltas_mut = const_cast<double*>(deltas);
  auto one_run = [&](auto&& fn) { fn(keys, deltas_mut, count); };
  mr::ScatterPartitions(
      count, num_shards, &arena,
      [](size_t key) { return SplitMix64(static_cast<uint64_t>(key)); },
      one_run, &key_store, &value_store, &blocks);

  // Stalled shards' shares go to the backlog (deferred, not lost); every
  // other shard becomes one slice view of the batched sketching kernel.
  std::vector<cs::SparseVectorView> views(num_shards);
  uint64_t folded = 0;
  uint64_t deferred = 0;
  for (size_t p = 0; p < num_shards; ++p) {
    const size_t shard_count = key_store[p].size();
    if (shard_count == 0) continue;  // Empty view folds zeros below.
    const size_t* shard_keys = key_store[p].chunk_data(0);
    const double* shard_deltas = value_store[p].chunk_data(0);
    if (stalled_[p]) {
      cs::SparseSlice slice;
      slice.indices.assign(shard_keys, shard_keys + shard_count);
      slice.values.assign(shard_deltas, shard_deltas + shard_count);
      backlog_[p].push_back(std::move(slice));
      backlog_events_locked_ += shard_count;
      deferred += shard_count;
      continue;
    }
    views[p] = cs::SparseVectorView{shard_keys, shard_deltas, shard_count};
    folded += shard_count;
  }
  pending_events_ += folded;
  pending_deferred_ += deferred;

  // One batched sketching pass over all shards, then fold the per-shard
  // measurements into the current epoch in fixed shard order — including
  // empty (zero) shards, exactly like the per-shard-slice reference. This
  // is the bit-identity contract: per_slice_out segment p is bit-identical
  // to MultiplySparse(shard p's slice), and IngestMeasurement is the same
  // Axpy the reference's Ingest performs. Stalled shards are skipped on
  // both sides (their slices are withheld until replay).
  CSOD_RETURN_NOT_OK(
      matrix().MultiplySparseBatch(views, nullptr, &per_slice_scratch_));
  const size_t m = options_.m;
  for (size_t p = 0; p < num_shards; ++p) {
    if (stalled_[p]) continue;
    const double* segment = per_slice_scratch_.data() + p * m;
    shard_y_scratch_.assign(segment, segment + m);
    CSOD_RETURN_NOT_OK(window_->IngestMeasurement(shard_y_scratch_));
  }
  epoch_events_.back() += folded;
  if (traced) pending_ingest_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

void StreamingDetector::FlushIngestTelemetryLocked() {
  if (pending_batches_ > 0) {
    telemetry_->AddCounter("serve.ingest.batches", pending_batches_);
    telemetry_->AddCounter("serve.ingest.events", pending_events_);
    if (pending_deferred_ > 0) {
      telemetry_->AddCounter("serve.ingest.deferred_events",
                             pending_deferred_);
    }
    telemetry_->RecordSpan("serve.ingest", pending_ingest_seconds_);
    pending_batches_ = 0;
    pending_events_ = 0;
    pending_deferred_ = 0;
    pending_ingest_seconds_ = 0.0;
  }
  if (!epoch_events_.empty()) {
    // Events folded into the epoch being closed (replays included).
    telemetry_->RecordValue("serve.epoch.events",
                            static_cast<double>(epoch_events_.back()));
  }
}

Result<uint64_t> StreamingDetector::AdvanceTo(uint64_t tick) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (started_.load(std::memory_order_relaxed) && tick < last_tick_) {
    return Status::InvalidArgument(
        "AdvanceTo: virtual clock moved backwards (" + std::to_string(tick) +
        " < " + std::to_string(last_tick_) + ")");
  }
  last_tick_ = tick;
  const uint64_t target_epoch = tick / options_.epoch_ticks;
  if (!started_.load(std::memory_order_relaxed)) AdvanceEpochLocked();
  while (current_epoch_.load(std::memory_order_relaxed) < target_epoch) {
    AdvanceEpochLocked();
  }
  return current_epoch_.load(std::memory_order_relaxed);
}

uint64_t StreamingDetector::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return AdvanceEpochLocked();
}

uint64_t StreamingDetector::AdvanceEpochLocked() {
  obs::TraceSpan span(telemetry_, "serve.epoch.advance");
  // Closing an epoch is where accumulated ingest telemetry reaches the
  // registry (a no-op on the very first open).
  FlushIngestTelemetryLocked();
  const uint64_t epoch = window_->AdvanceEpoch();
  started_.store(true, std::memory_order_relaxed);
  current_epoch_.store(epoch, std::memory_order_relaxed);
  epoch_events_.push_back(0);
  while (epoch_events_.size() > options_.window_epochs + 1) {
    epoch_events_.pop_front();
  }
  telemetry_->AddCounter("serve.epochs");

  const size_t closed = epoch_events_.size() - 1;
  if (closed > 0) {
    bool publish = true;
    if (options_.window == WindowKind::kTumbling) {
      // Publish only when a disjoint window of exactly W closed epochs
      // completes: at the close of epoch W-1, 2W-1, ... (i.e. when the new
      // current epoch index is a multiple of W). The W+1-deep ring then
      // holds precisely that window plus the fresh epoch, so consecutive
      // publications cover disjoint epoch ranges with no extra state.
      publish = closed >= options_.window_epochs &&
                epoch % options_.window_epochs == 0;
    }
    if (publish) {
      PublishLocked();
      // Buggify: epoch-advance race — a second publisher runs before the
      // first one's swap is observed. Publication is idempotent up to the
      // version counter, so the race must only bump version/snapshots.
      if (CSOD_BUGGIFY_AT("serve.epoch.republish", epoch)) PublishLocked();
    }
  }
  return epoch;
}

void StreamingDetector::PublishLocked() {
  obs::TraceSpan span(telemetry_, "serve.snapshot.publish");
  Result<std::vector<double>> y = window_->ClosedWindowMeasurement();
  y.status().Check();  // Callers guarantee a closed epoch is retained.

  auto snapshot = std::make_shared<SketchSnapshot>();
  const size_t covered = epoch_events_.size() - 1;
  snapshot->version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
  snapshot->last_epoch = current_epoch_.load(std::memory_order_relaxed) - 1;
  snapshot->first_epoch =
      snapshot->last_epoch - static_cast<uint64_t>(covered - 1);
  snapshot->epochs_covered = covered;
  snapshot->y = y.MoveValue();
  for (size_t e = 0; e < covered; ++e) snapshot->events += epoch_events_[e];
  for (uint32_t p = 0; p < options_.num_shards; ++p) {
    if (stalled_[p]) snapshot->stalled_shards.push_back(p);
  }
  telemetry_->AddCounter("serve.snapshots");

  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const SketchSnapshot> StreamingDetector::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<outlier::OutlierSet> StreamingDetector::QueryOutliers(size_t k) const {
  if (k == 0) return Status::InvalidArgument("QueryOutliers: k must be > 0");
  std::shared_ptr<const SketchSnapshot> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "QueryOutliers: no snapshot published yet (close an epoch first)");
  }
  obs::TraceSpan span(telemetry_, "serve.query");
  telemetry_->AddCounter("serve.queries");
  telemetry_->RecordValue(
      "serve.query.age_epochs",
      static_cast<double>(current_epoch_.load(std::memory_order_relaxed) -
                          snapshot->last_epoch));
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;
  cs::SolverOptions solve;
  solve.solver = options_.solver;
  solve.iterations = iterations;
  solve.telemetry = telemetry_;
  CSOD_ASSIGN_OR_RETURN(cs::BompResult recovery,
                        cs::RecoverBiased(matrix(), snapshot->y, solve));
  return outlier::KOutliersFromRecovery(recovery, k);
}

Result<std::vector<outlier::Outlier>> StreamingDetector::QueryTopK(
    size_t k) const {
  if (k == 0) return Status::InvalidArgument("QueryTopK: k must be > 0");
  std::shared_ptr<const SketchSnapshot> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "QueryTopK: no snapshot published yet (close an epoch first)");
  }
  obs::TraceSpan span(telemetry_, "serve.query");
  telemetry_->AddCounter("serve.queries");
  telemetry_->RecordValue(
      "serve.query.age_epochs",
      static_cast<double>(current_epoch_.load(std::memory_order_relaxed) -
                          snapshot->last_epoch));
  const size_t iterations = options_.iterations == 0
                                ? cs::DefaultIterationsForK(k)
                                : options_.iterations;
  cs::SolverOptions solve;
  solve.solver = options_.solver;
  solve.iterations = iterations;
  solve.telemetry = telemetry_;
  CSOD_ASSIGN_OR_RETURN(cs::BompResult recovery,
                        cs::RecoverBiased(matrix(), snapshot->y, solve));
  // Rank recovered entries by value, ties toward the lower key — the same
  // ordering as DistributedOutlierDetector::DetectTopK.
  std::vector<outlier::Outlier> top;
  top.reserve(recovery.entries.size());
  for (const cs::RecoveredEntry& e : recovery.entries) {
    top.push_back(outlier::Outlier{e.index, e.value, e.value});
  }
  std::sort(top.begin(), top.end(),
            [](const outlier::Outlier& a, const outlier::Outlier& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.key_index < b.key_index;
            });
  if (top.size() > k) top.resize(k);
  return top;
}

Result<cs::BompResult> StreamingDetector::QueryRecovery(
    size_t iterations) const {
  if (iterations == 0) {
    return Status::InvalidArgument("QueryRecovery: iterations must be > 0");
  }
  std::shared_ptr<const SketchSnapshot> snapshot = Snapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "QueryRecovery: no snapshot published yet (close an epoch first)");
  }
  obs::TraceSpan span(telemetry_, "serve.query");
  telemetry_->AddCounter("serve.queries");
  cs::SolverOptions solve;
  solve.solver = options_.solver;
  solve.iterations = iterations;
  solve.telemetry = telemetry_;
  return cs::RecoverBiased(matrix(), snapshot->y, solve);
}

Status StreamingDetector::SetShardStalled(uint32_t shard, bool stalled) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return SetShardStalledLocked(shard, stalled);
}

Status StreamingDetector::SetShardStalledLocked(uint32_t shard, bool stalled) {
  if (shard >= options_.num_shards) {
    return Status::InvalidArgument(
        "SetShardStalled: shard " + std::to_string(shard) + " out of " +
        std::to_string(options_.num_shards));
  }
  if (stalled_[shard] == stalled) return Status::OK();  // Idempotent.
  stalled_[shard] = stalled;
  if (stalled) {
    telemetry_->AddCounter("serve.shard.stalls");
    return Status::OK();
  }
  telemetry_->AddCounter("serve.shard.unstalls");
  // Replay the backlog into the *current* epoch, one deferred batch-share
  // at a time in arrival order — each replay is exactly the reference
  // Ingest of the withheld slice, so determinism survives the stall.
  std::deque<cs::SparseSlice>& backlog = backlog_[shard];
  while (!backlog.empty()) {
    const cs::SparseSlice slice = std::move(backlog.front());
    backlog.pop_front();
    backlog_events_locked_ -= slice.nnz();
    CSOD_RETURN_NOT_OK(window_->Ingest(slice));
    epoch_events_.back() += slice.nnz();
    telemetry_->AddCounter("serve.shard.replays");
    telemetry_->AddCounter("serve.ingest.replayed_events", slice.nnz());
  }
  return Status::OK();
}

uint64_t StreamingDetector::backlog_events() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return backlog_events_locked_;
}

}  // namespace csod::serve
