#ifndef CSOD_SERVE_SERVICE_H_
#define CSOD_SERVE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/telemetry.h"
#include "query/executor.h"
#include "query/query.h"
#include "serve/streaming_detector.h"

namespace csod::serve {

/// A streaming query answer: the rows of the paper's query template plus
/// the snapshot provenance a service client needs to reason about
/// staleness (which batch of data it is actually looking at).
struct StreamingQueryResult {
  /// Answer rows in rank order — `group_key` is the key index rendered as
  /// text, `value` the recovered aggregate, `rank_score` the divergence
  /// (Outlier) or the value itself (Top), exactly like
  /// query::QueryResult rows.
  std::vector<query::ResultRow> rows;
  /// Recovered mode (0 for Top queries).
  double mode = 0.0;
  /// Key space N of the tenant's stream.
  size_t key_space = 0;
  /// Version / epoch range of the snapshot that answered the query.
  uint64_t snapshot_version = 0;
  uint64_t snapshot_first_epoch = 0;
  uint64_t snapshot_last_epoch = 0;
  /// current_epoch - snapshot_last_epoch at answer time; 1 means "as fresh
  /// as the staleness contract allows" (the in-progress epoch is never
  /// visible).
  uint64_t staleness_epochs = 0;
  /// Shards whose deferred events are missing from the answer (degraded).
  std::vector<uint32_t> stalled_shards;
};

/// \brief Multi-tenant streaming front-end: named tenants, each an
/// independent `StreamingDetector` (own key space, seed, window, shards),
/// plus a textual query endpoint speaking the paper's query template.
///
/// Tenancy is coarse-grained by design: tenants share nothing but the
/// telemetry sink, so one tenant's ingestion or recovery never perturbs
/// another's determinism contract. The service mutex only guards the
/// tenant map — ingestion and queries run on the tenant's own
/// synchronization (see StreamingDetector's thread-safety notes).
///
/// The query endpoint accepts `SELECT Outlier K SUM(score), key FROM
/// <tenant>` / `SELECT Top K ...` (query::ParseQuery — the same grammar as
/// the batch executor; the FROM clause names the tenant, and attribute
/// names are informational because streaming events are already keyed by
/// dictionary index). Answers carry the snapshot version/epoch range and
/// staleness so clients can correlate them with ingestion progress.
class StreamingService {
 public:
  /// `telemetry` may be null (disabled); it becomes the default sink of
  /// every tenant created without an explicit one.
  explicit StreamingService(obs::Telemetry* telemetry = nullptr);

  /// Registers a tenant. `options.telemetry` inherits the service sink
  /// when unset. Fails with AlreadyExists on a duplicate name.
  Status AddTenant(const std::string& name,
                   StreamingDetectorOptions options);

  /// Unregisters a tenant. Holders of the detector handle (and of its
  /// published snapshots) keep a valid object until they drop it; the
  /// service just stops routing new calls to it.
  Status RemoveTenant(const std::string& name);

  /// The tenant's detector, or NotFound. The returned handle keeps the
  /// detector alive even across a concurrent RemoveTenant — an in-flight
  /// ingest or query finishes against a detached detector rather than
  /// racing its destruction (use-after-free otherwise).
  Result<std::shared_ptr<StreamingDetector>> Tenant(
      const std::string& name) const;

  std::vector<std::string> TenantNames() const;

  /// Ingests one keyed score-delta batch into `tenant`'s current epoch.
  Status Ingest(const std::string& tenant, const std::vector<size_t>& keys,
                const std::vector<double>& deltas);

  /// Advances `tenant`'s virtual clock (see StreamingDetector::AdvanceTo).
  Result<uint64_t> AdvanceTo(const std::string& tenant, uint64_t tick);

  /// Advances every tenant's clock to `tick` (tenants whose clock is
  /// already past `tick` fail the monotonicity check individually; the
  /// first error is returned after every tenant was attempted).
  Status AdvanceAllTo(uint64_t tick);

  /// Parses and answers `SELECT Outlier K ... FROM <tenant>` /
  /// `SELECT Top K ... FROM <tenant>` against the tenant's latest
  /// snapshot. The tenant is named by the FROM clause.
  Result<StreamingQueryResult> Query(const std::string& query_text) const;

  /// Same, with an explicit parsed query and tenant name.
  Result<StreamingQueryResult> QueryTenant(const std::string& tenant,
                                           const query::Query& query) const;

 private:
  obs::Telemetry* telemetry_;  // Never null (Disabled() when unset).

  mutable std::mutex mu_;
  // shared_ptr, not unique_ptr: Tenant() hands out ref-holding handles, so
  // RemoveTenant only detaches a tenant — destruction waits for the last
  // in-flight caller to finish.
  std::map<std::string, std::shared_ptr<StreamingDetector>> tenants_;
};

}  // namespace csod::serve

#endif  // CSOD_SERVE_SERVICE_H_
