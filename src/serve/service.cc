#include "serve/service.h"

#include <utility>

namespace csod::serve {

StreamingService::StreamingService(obs::Telemetry* telemetry)
    : telemetry_(telemetry != nullptr ? telemetry
                                      : obs::Telemetry::Disabled()) {}

Status StreamingService::AddTenant(const std::string& name,
                                   StreamingDetectorOptions options) {
  if (name.empty()) {
    return Status::InvalidArgument("AddTenant: tenant name must be non-empty");
  }
  if (options.telemetry == nullptr) options.telemetry = telemetry_;
  CSOD_ASSIGN_OR_RETURN(std::unique_ptr<StreamingDetector> detector,
                        StreamingDetector::Create(options));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(
      name, std::shared_ptr<StreamingDetector>(std::move(detector)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("AddTenant: tenant '" + name +
                                 "' already exists");
  }
  return Status::OK();
}

Status StreamingService::RemoveTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.erase(name) == 0) {
    return Status::NotFound("RemoveTenant: no tenant '" + name + "'");
  }
  return Status::OK();
}

Result<std::shared_ptr<StreamingDetector>> StreamingService::Tenant(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> StreamingService::TenantNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, detector] : tenants_) names.push_back(name);
  return names;
}

Status StreamingService::Ingest(const std::string& tenant,
                                const std::vector<size_t>& keys,
                                const std::vector<double>& deltas) {
  CSOD_ASSIGN_OR_RETURN(std::shared_ptr<StreamingDetector> detector,
                        Tenant(tenant));
  return detector->IngestBatch(keys, deltas);
}

Result<uint64_t> StreamingService::AdvanceTo(const std::string& tenant,
                                             uint64_t tick) {
  CSOD_ASSIGN_OR_RETURN(std::shared_ptr<StreamingDetector> detector,
                        Tenant(tenant));
  return detector->AdvanceTo(tick);
}

Status StreamingService::AdvanceAllTo(uint64_t tick) {
  std::vector<std::shared_ptr<StreamingDetector>> detectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    detectors.reserve(tenants_.size());
    for (const auto& [name, detector] : tenants_) {
      detectors.push_back(detector);
    }
  }
  Status first_error;
  for (const std::shared_ptr<StreamingDetector>& detector : detectors) {
    const Result<uint64_t> epoch = detector->AdvanceTo(tick);
    if (!epoch.ok() && first_error.ok()) first_error = epoch.status();
  }
  return first_error;
}

Result<StreamingQueryResult> StreamingService::Query(
    const std::string& query_text) const {
  CSOD_ASSIGN_OR_RETURN(query::Query query, query::ParseQuery(query_text));
  return QueryTenant(query.source, query);
}

Result<StreamingQueryResult> StreamingService::QueryTenant(
    const std::string& tenant, const query::Query& query) const {
  CSOD_ASSIGN_OR_RETURN(std::shared_ptr<StreamingDetector> detector,
                        Tenant(tenant));

  StreamingQueryResult result;
  result.key_space = detector->options().n;
  if (query.kind == query::QueryKind::kOutlier) {
    CSOD_ASSIGN_OR_RETURN(outlier::OutlierSet outliers,
                          detector->QueryOutliers(query.k));
    result.mode = outliers.mode;
    result.rows.reserve(outliers.outliers.size());
    for (const outlier::Outlier& o : outliers.outliers) {
      result.rows.push_back(query::ResultRow{std::to_string(o.key_index),
                                             o.value, o.divergence});
    }
  } else {
    CSOD_ASSIGN_OR_RETURN(std::vector<outlier::Outlier> top,
                          detector->QueryTopK(query.k));
    result.rows.reserve(top.size());
    for (const outlier::Outlier& o : top) {
      result.rows.push_back(
          query::ResultRow{std::to_string(o.key_index), o.value, o.value});
    }
  }

  // Provenance from the snapshot that answered (grab it once — the answer
  // above used the snapshot current at its own Query* call; re-grabbing
  // here can only observe the same or a newer version, which is the
  // provenance a client acting on the answer needs anyway).
  const std::shared_ptr<const SketchSnapshot> snapshot = detector->Snapshot();
  if (snapshot != nullptr) {
    result.snapshot_version = snapshot->version;
    result.snapshot_first_epoch = snapshot->first_epoch;
    result.snapshot_last_epoch = snapshot->last_epoch;
    result.staleness_epochs =
        detector->current_epoch() - snapshot->last_epoch;
    result.stalled_shards = snapshot->stalled_shards;
  }
  return result;
}

}  // namespace csod::serve
