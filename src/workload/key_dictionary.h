#ifndef CSOD_WORKLOAD_KEY_DICTIONARY_H_
#define CSOD_WORKLOAD_KEY_DICTIONARY_H_

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace csod::workload {

/// \brief The paper's "global key dictionary" (Section 3.1, Vectorization).
///
/// Assigns every key a fixed dense index so that all nodes arrange their
/// local values into vectors with identical key positions; looking up the
/// dictionary with a vector position recovers the key. Keys are strings
/// (e.g. "2015-05-01|en-US|web|url123").
class GlobalKeyDictionary {
 public:
  GlobalKeyDictionary() = default;

  /// Returns the index of `key`, interning it if new.
  size_t Intern(const std::string& key);

  /// Index of an existing key, or NotFound.
  Result<size_t> Lookup(const std::string& key) const;

  /// Key at `index`, or OutOfRange.
  Result<std::string> KeyOf(size_t index) const;

  /// Number of interned keys N.
  size_t size() const { return keys_.size(); }

  /// All keys in index order.
  const std::vector<std::string>& keys() const { return keys_; }

  /// Writes the dictionary (one key per line, index order) so every node
  /// can load the identical key → position mapping — how the "global key
  /// dictionary" is distributed in practice. Keys must not contain
  /// newlines.
  Status Save(std::ostream& out) const;

  /// Reads a dictionary written by Save. Replaces the current content.
  Status Load(std::istream& in);

  /// Interns every key of `other` (in `other`'s index order) and returns
  /// the index remapping: result[i] is this dictionary's index for
  /// other's key i. Merging per-node dictionaries this way yields the
  /// consensus dictionary plus each node's local → global translation.
  std::vector<size_t> Merge(const GlobalKeyDictionary& other);

 private:
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::string> keys_;
};

}  // namespace csod::workload

#endif  // CSOD_WORKLOAD_KEY_DICTIONARY_H_
