#ifndef CSOD_WORKLOAD_PARTITIONER_H_
#define CSOD_WORKLOAD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cs/compressor.h"

namespace csod::workload {

/// How a global vector is split additively across nodes.
enum class PartitionStrategy {
  /// Every key's value is split across all nodes with random positive
  /// weights. Local slices are dense and individually featureless.
  kUniformSplit,
  /// Every key lives on a random subset of nodes, split with random
  /// weights, plus optional zero-sum "cancellation noise" (± pairs) that
  /// makes keys look like outliers locally while summing to normal
  /// globally — the k5 phenomenon of Figure 1. This is the adversarial
  /// regime for local-estimation baselines like K+δ.
  kSkewedSplit,
  /// Every key lives entirely on one node (hash placement). Local outliers
  /// equal global outliers; the easy regime.
  kByKey,
};

/// Options for PartitionAdditive.
struct PartitionOptions {
  size_t num_nodes = 8;
  PartitionStrategy strategy = PartitionStrategy::kSkewedSplit;
  uint64_t seed = 1;
  /// kSkewedSplit only: magnitude of the zero-sum noise injected per key
  /// (two nodes receive +delta/-delta with delta up to this value).
  double cancellation_noise = 0.0;
  /// kSkewedSplit only: maximum number of nodes hosting one key
  /// (0 = up to num_nodes).
  size_t max_hosts_per_key = 0;
};

/// \brief Splits a global vector `x` into `num_nodes` sparse slices with
/// `Σ_l slice_l = x` **exactly** (the additive model of Section 2.1).
///
/// Exactness matters: CS aggregation is lossless across nodes
/// (Equation 1), so any discrepancy would be a partitioner bug, not an
/// algorithm property. The implementation keeps per-key splits exactly
/// summing by construction (last share = value - others).
Result<std::vector<cs::SparseSlice>> PartitionAdditive(
    const std::vector<double>& x, const PartitionOptions& options);

}  // namespace csod::workload

#endif  // CSOD_WORKLOAD_PARTITIONER_H_
