#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "common/grid.h"
#include "common/random.h"

namespace csod::workload {

namespace {

// Draws `count` distinct indices from [0, n) using Floyd's algorithm.
std::vector<size_t> SampleDistinct(size_t count, size_t n, Rng* rng) {
  std::unordered_set<size_t> chosen;
  chosen.reserve(count);
  for (size_t j = n - count; j < n; ++j) {
    size_t t = static_cast<size_t>(rng->NextBounded(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<size_t>(chosen.begin(), chosen.end());
}

// Outlier value: mode +/- U(min_div, max_div), random sign.
double DrawOutlierValue(double mode, double min_div, double max_div,
                        Rng* rng) {
  const double magnitude = min_div + (max_div - min_div) * rng->NextDouble();
  const double sign = (rng->NextU64() & 1) ? 1.0 : -1.0;
  // Grid quantization keeps distributed re-aggregation bitwise exact (see
  // common/grid.h).
  return QuantizeToGrid(mode + sign * magnitude);
}

}  // namespace

Result<std::vector<double>> GenerateMajorityDominated(
    const MajorityDominatedOptions& options) {
  if (options.n == 0) {
    return Status::InvalidArgument("GenerateMajorityDominated: n must be > 0");
  }
  if (options.sparsity >= options.n) {
    return Status::InvalidArgument(
        "GenerateMajorityDominated: sparsity " +
        std::to_string(options.sparsity) + " must be < n " +
        std::to_string(options.n));
  }
  if (options.min_divergence <= 0.0 ||
      options.max_divergence < options.min_divergence) {
    return Status::InvalidArgument(
        "GenerateMajorityDominated: need 0 < min_divergence <= "
        "max_divergence");
  }
  Rng rng(options.seed);
  std::vector<double> x(options.n, QuantizeToGrid(options.mode));
  for (size_t idx : SampleDistinct(options.sparsity, options.n, &rng)) {
    x[idx] = DrawOutlierValue(options.mode, options.min_divergence,
                              options.max_divergence, &rng);
  }
  return x;
}

Result<std::vector<double>> GeneratePowerLaw(const PowerLawOptions& options) {
  if (options.n == 0) {
    return Status::InvalidArgument("GeneratePowerLaw: n must be > 0");
  }
  if (options.alpha <= 0.0) {
    return Status::InvalidArgument("GeneratePowerLaw: alpha must be > 0");
  }
  if (options.scale <= 0.0) {
    return Status::InvalidArgument("GeneratePowerLaw: scale must be > 0");
  }
  Rng rng(options.seed);
  std::vector<double> x(options.n);
  const double inv_alpha = 1.0 / options.alpha;
  for (size_t i = 0; i < options.n; ++i) {
    const double u = ToOpenUnitDouble(rng.NextU64());
    x[i] = QuantizeToGrid(options.scale * std::pow(u, -inv_alpha));
  }
  return x;
}

const char* ClickScoreTypeName(ClickScoreType type) {
  switch (type) {
    case ClickScoreType::kCoreSearch:
      return "core-search";
    case ClickScoreType::kAds:
      return "ads";
    case ClickScoreType::kAnswer:
      return "answer";
  }
  return "unknown";
}

ClickScoreCalibration CalibrationFor(ClickScoreType type) {
  // N from Section 6.1.2 (10.4K, 9K, 10K keys after predicate filtering);
  // s from the Figure 9 mode-stabilization iterations (300, 650, 610).
  switch (type) {
    case ClickScoreType::kCoreSearch:
      return {10400, 300};
    case ClickScoreType::kAds:
      return {9000, 650};
    case ClickScoreType::kAnswer:
      return {10000, 610};
  }
  return {10000, 300};
}

Result<ClickLogData> GenerateClickLog(const ClickLogOptions& options) {
  const ClickScoreCalibration cal = CalibrationFor(options.score_type);
  const size_t n = options.n_override ? options.n_override : cal.n;
  const size_t s =
      options.sparsity_override ? options.sparsity_override : cal.sparsity;
  if (s >= n) {
    return Status::InvalidArgument("GenerateClickLog: sparsity " +
                                   std::to_string(s) + " must be < n " +
                                   std::to_string(n));
  }
  if (options.jitter_fraction < 0.0 || options.jitter_fraction > 1.0) {
    return Status::InvalidArgument(
        "GenerateClickLog: jitter_fraction must be in [0, 1]");
  }

  Rng rng(options.seed);
  ClickLogData data;
  data.mode = QuantizeToGrid(options.mode);
  data.sparsity = s;
  data.global.assign(n, data.mode);

  // Small jitter on a fraction of the "normal" keys: production aggregates
  // concentrate around the mode without equalling it exactly.
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < options.jitter_fraction) {
      data.global[i] = QuantizeToGrid(
          data.global[i] + (2.0 * rng.NextDouble() - 1.0) * options.jitter);
    }
  }

  // Plant the s true outliers with heavy-tailed (Pareto) divergences — the
  // production regime where a handful of keys diverge enormously.
  if (options.divergence_alpha <= 0.0) {
    return Status::InvalidArgument(
        "GenerateClickLog: divergence_alpha must be > 0");
  }
  data.outlier_indices = SampleDistinct(s, n, &rng);
  for (size_t idx : data.outlier_indices) {
    const double u = ToOpenUnitDouble(rng.NextU64());
    double magnitude = options.min_divergence *
                       std::pow(u, -1.0 / options.divergence_alpha);
    magnitude = std::min(magnitude, options.max_divergence);
    const double sign = (rng.NextU64() & 1) ? 1.0 : -1.0;
    data.global[idx] = QuantizeToGrid(data.mode + sign * magnitude);
  }
  return data;
}

std::string ClickLogKeyForIndex(size_t i) {
  // Deterministic structured key covering the production GROUP-BY
  // attributes. 49 markets and 62 verticals as in the paper's log streams.
  static const char* kVerticalPool[] = {"web", "image", "video", "news",
                                        "shopping", "maps", "local"};
  const size_t day = i % 7;
  const size_t market = (i / 7) % 49;
  const size_t vertical = (i / (7 * 49)) % 62;
  const size_t dc = i % 8;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "2015-05-%02zu|mkt-%02zu|%s-%02zu|url-%zu|DC%zu",
                day + 1, market, kVerticalPool[vertical % 7], vertical,
                i, dc + 1);
  return buf;
}

}  // namespace csod::workload
