#ifndef CSOD_WORKLOAD_GENERATORS_H_
#define CSOD_WORKLOAD_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace csod::workload {

/// \brief Synthetic data set 1 of Section 6.1.1: majority-dominated data.
///
/// N observations; N - s equal the mode b exactly; the remaining s
/// (the outliers) diverge from b by at least `min_divergence`.
struct MajorityDominatedOptions {
  size_t n = 1000;
  size_t sparsity = 50;  ///< s: number of outliers.
  double mode = 5000.0;  ///< b (the paper sets b = 5000).
  /// Outlier values are b ± U(min_divergence, max_divergence), random sign.
  double min_divergence = 100.0;
  double max_divergence = 10000.0;
  uint64_t seed = 1;
};

/// Generates the majority-dominated vector. Outlier positions are uniform
/// without replacement. Requires sparsity < n.
Result<std::vector<double>> GenerateMajorityDominated(
    const MajorityDominatedOptions& options);

/// \brief Synthetic data set 2 of Section 6.1.1: continuous Power-Law
/// (Pareto) distributed values with skewness parameter alpha.
///
/// Values are `scale * U^(-1/alpha)` — heavy-tailed, no two equal, with the
/// density peaking at `scale` (the distribution's mode in the density
/// sense, as the paper notes).
struct PowerLawOptions {
  size_t n = 10000;
  double alpha = 0.9;
  double scale = 1.0;
  uint64_t seed = 1;
};

Result<std::vector<double>> GeneratePowerLaw(const PowerLawOptions& options);

/// The three production score types of Section 6.1.2, with the key-space
/// sizes and sparsities the paper reports (N = 10.4K/9K/10K; mode trace
/// stabilizes at s ≈ 300/650/610 — Figure 9).
enum class ClickScoreType {
  kCoreSearch,
  kAds,
  kAnswer,
};

/// Human-readable name of a score type.
const char* ClickScoreTypeName(ClickScoreType type);

/// Calibration (N, s) per score type as reported by the paper.
struct ClickScoreCalibration {
  size_t n;
  size_t sparsity;
};
ClickScoreCalibration CalibrationFor(ClickScoreType type);

/// \brief Substitute for the paper's proprietary Bing click-log workload.
///
/// Produces a *global aggregate* with the production structure the paper
/// describes: values concentrate near a non-zero mode b but are not exactly
/// b (a fraction carries small jitter — the "weaker notion of sparse
/// structure" of Section 2.1), and s keys are true outliers with large
/// divergence. The per-data-center slices are produced separately by the
/// partitioners (partitioner.h), which make local distributions unlike the
/// global one.
struct ClickLogOptions {
  ClickScoreType score_type = ClickScoreType::kCoreSearch;
  /// Override N (0 = use the paper calibration for the score type).
  size_t n_override = 0;
  /// Override s (0 = use the paper calibration).
  size_t sparsity_override = 0;
  double mode = 1800.0;  ///< Figure 1(a)'s example mode.
  /// Fraction of non-outlier keys carrying small jitter around the mode.
  double jitter_fraction = 0.3;
  /// Jitter magnitude (uniform in [-jitter, +jitter]).
  double jitter = 2.0;
  /// Outlier divergences are heavy-tailed (Pareto), matching the
  /// production aggregates of Figure 1(a): a few keys diverge enormously,
  /// most outliers are moderate. magnitude = min_divergence * U^(-1/alpha),
  /// capped at max_divergence; random sign.
  double min_divergence = 500.0;
  double max_divergence = 5.0e6;
  double divergence_alpha = 0.8;
  uint64_t seed = 1;
};

/// A generated click-log global aggregate.
struct ClickLogData {
  std::vector<double> global;
  /// Indices of the planted true outliers (size s), unordered.
  std::vector<size_t> outlier_indices;
  double mode = 0.0;
  size_t sparsity = 0;
};

Result<ClickLogData> GenerateClickLog(const ClickLogOptions& options);

/// Builds the structured key string for index `i` in a click-log key
/// space: "date|market|vertical|url|datacenter" (the GROUP-BY attributes
/// of the production query template in Section 6.1.2).
std::string ClickLogKeyForIndex(size_t i);

}  // namespace csod::workload

#endif  // CSOD_WORKLOAD_GENERATORS_H_
