#include "workload/key_dictionary.h"

namespace csod::workload {

size_t GlobalKeyDictionary::Intern(const std::string& key) {
  auto [it, inserted] = index_.try_emplace(key, keys_.size());
  if (inserted) keys_.push_back(key);
  return it->second;
}

Result<size_t> GlobalKeyDictionary::Lookup(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key not in dictionary: " + key);
  }
  return it->second;
}

Status GlobalKeyDictionary::Save(std::ostream& out) const {
  for (const std::string& key : keys_) {
    if (key.find('\n') != std::string::npos) {
      return Status::InvalidArgument("Save: key contains newline: " + key);
    }
    out << key << '\n';
  }
  if (!out.good()) {
    return Status::Internal("Save: stream write failed");
  }
  return Status::OK();
}

Status GlobalKeyDictionary::Load(std::istream& in) {
  index_.clear();
  keys_.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (index_.count(line)) {
      return Status::InvalidArgument("Load: duplicate key: " + line);
    }
    Intern(line);
  }
  return Status::OK();
}

std::vector<size_t> GlobalKeyDictionary::Merge(
    const GlobalKeyDictionary& other) {
  std::vector<size_t> remap;
  remap.reserve(other.size());
  for (const std::string& key : other.keys()) {
    remap.push_back(Intern(key));
  }
  return remap;
}

Result<std::string> GlobalKeyDictionary::KeyOf(size_t index) const {
  if (index >= keys_.size()) {
    return Status::OutOfRange("key index " + std::to_string(index) +
                              " out of dictionary size " +
                              std::to_string(keys_.size()));
  }
  return keys_[index];
}

}  // namespace csod::workload
