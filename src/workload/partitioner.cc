#include "workload/partitioner.h"

#include <algorithm>
#include <string>

#include "common/grid.h"
#include "common/random.h"

namespace csod::workload {

namespace {

// Accumulates per-node (index, value) pairs and finalizes into slices.
class SliceBuilder {
 public:
  explicit SliceBuilder(size_t num_nodes) : slices_(num_nodes) {}

  void Add(size_t node, size_t index, double value) {
    if (value == 0.0) return;
    slices_[node].indices.push_back(index);
    slices_[node].values.push_back(value);
  }

  std::vector<cs::SparseSlice> Take() { return std::move(slices_); }

 private:
  std::vector<cs::SparseSlice> slices_;
};

void SplitUniform(const std::vector<double>& x, size_t num_nodes, Rng* rng,
                  SliceBuilder* builder) {
  std::vector<double> weights(num_nodes);
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) continue;
    double total = 0.0;
    for (double& w : weights) {
      w = rng->NextDouble() + 1e-3;
      total += w;
    }
    // Shares are grid multiples and the last share closes the sum, so the
    // per-key split re-sums bitwise exactly (common/grid.h).
    double assigned = 0.0;
    for (size_t l = 0; l + 1 < num_nodes; ++l) {
      const double share = QuantizeToGrid(x[i] * (weights[l] / total));
      builder->Add(l, i, share);
      assigned += share;
    }
    builder->Add(num_nodes - 1, i, x[i] - assigned);
  }
}

void SplitSkewed(const std::vector<double>& x,
                 const PartitionOptions& options, Rng* rng,
                 SliceBuilder* builder) {
  const size_t num_nodes = options.num_nodes;
  const size_t max_hosts = options.max_hosts_per_key == 0
                               ? num_nodes
                               : std::min(options.max_hosts_per_key, num_nodes);
  std::vector<size_t> hosts;
  std::vector<double> weights;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0 && options.cancellation_noise == 0.0) continue;
    // Choose 1..max_hosts hosting nodes (with replacement then dedup is
    // fine for skew; duplicates just merge shares).
    const size_t h = 1 + rng->NextBounded(max_hosts);
    hosts.clear();
    for (size_t j = 0; j < h; ++j) {
      hosts.push_back(static_cast<size_t>(rng->NextBounded(num_nodes)));
    }
    std::sort(hosts.begin(), hosts.end());
    hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());

    weights.assign(hosts.size(), 0.0);
    double total = 0.0;
    for (double& w : weights) {
      w = rng->NextDouble() + 1e-3;
      total += w;
    }
    double assigned = 0.0;
    for (size_t j = 0; j + 1 < hosts.size(); ++j) {
      const double share = QuantizeToGrid(x[i] * (weights[j] / total));
      builder->Add(hosts[j], i, share);
      assigned += share;
    }
    builder->Add(hosts.back(), i, x[i] - assigned);

    // Zero-sum cancellation noise: +delta on one node, -delta on another.
    // Locally this key looks divergent; globally the noise vanishes, so
    // the aggregated vector is unchanged — the Figure 1 k5 phenomenon.
    if (options.cancellation_noise > 0.0 && num_nodes >= 2) {
      const double delta =
          QuantizeToGrid(options.cancellation_noise * rng->NextDouble());
      if (delta != 0.0) {
        const size_t a = static_cast<size_t>(rng->NextBounded(num_nodes));
        size_t b = static_cast<size_t>(rng->NextBounded(num_nodes - 1));
        if (b >= a) ++b;
        builder->Add(a, i, delta);
        builder->Add(b, i, -delta);
      }
    }
  }
}

void SplitByKey(const std::vector<double>& x, size_t num_nodes, uint64_t seed,
                SliceBuilder* builder) {
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) continue;
    const size_t node =
        static_cast<size_t>(HashCombine(seed, i) % num_nodes);
    builder->Add(node, i, x[i]);
  }
}

}  // namespace

Result<std::vector<cs::SparseSlice>> PartitionAdditive(
    const std::vector<double>& x, const PartitionOptions& options) {
  if (options.num_nodes == 0) {
    return Status::InvalidArgument("PartitionAdditive: num_nodes must be > 0");
  }
  if (options.cancellation_noise < 0.0) {
    return Status::InvalidArgument(
        "PartitionAdditive: cancellation_noise must be >= 0");
  }
  SliceBuilder builder(options.num_nodes);
  Rng rng(options.seed);
  switch (options.strategy) {
    case PartitionStrategy::kUniformSplit:
      SplitUniform(x, options.num_nodes, &rng, &builder);
      break;
    case PartitionStrategy::kSkewedSplit:
      SplitSkewed(x, options, &rng, &builder);
      break;
    case PartitionStrategy::kByKey:
      SplitByKey(x, options.num_nodes, options.seed, &builder);
      break;
  }
  return builder.Take();
}

}  // namespace csod::workload
