#include "query/query.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace csod::query {

namespace {

// --- Tokenizer ---------------------------------------------------------

struct Token {
  enum class Kind { kWord, kString, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        const size_t close = text_.find('\'', i + 1);
        if (close == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        tokens.push_back(
            {Token::Kind::kString, text_.substr(i + 1, close - i - 1)});
        i = close + 1;
        continue;
      }
      if (c == '!' || c == '<') {
        // != or <>.
        if (i + 1 < text_.size() &&
            ((c == '!' && text_[i + 1] == '=') ||
             (c == '<' && text_[i + 1] == '>'))) {
          tokens.push_back({Token::Kind::kPunct, "!="});
          i += 2;
          continue;
        }
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
      }
      if (c == '(' || c == ')' || c == ',' || c == ';' || c == '=') {
        tokens.push_back({Token::Kind::kPunct, std::string(1, c)});
        ++i;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-' || c == '|') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_' || text_[j] == '.' || text_[j] == '-' ||
                text_[j] == '|')) {
          ++j;
        }
        tokens.push_back({Token::Kind::kWord, text_.substr(i, j - i)});
        i = j;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    tokens.push_back({Token::Kind::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& text_;
};

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// --- Parser ------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    Query query;
    CSOD_RETURN_NOT_OK(ExpectKeyword("select"));

    // Outlier K | Top K.
    const Token& kind = Peek();
    const std::string kind_word = Lower(kind.text);
    if (kind.kind != Token::Kind::kWord ||
        (kind_word != "outlier" && kind_word != "top")) {
      return Status::InvalidArgument(
          "expected 'Outlier K' or 'Top K' after SELECT");
    }
    query.kind =
        kind_word == "outlier" ? QueryKind::kOutlier : QueryKind::kTop;
    Advance();
    CSOD_ASSIGN_OR_RETURN(query.k, ParseCount());

    // SUM ( col ).
    CSOD_RETURN_NOT_OK(ExpectKeyword("sum"));
    CSOD_RETURN_NOT_OK(ExpectPunct("("));
    CSOD_ASSIGN_OR_RETURN(query.score_column, ParseIdentifier());
    CSOD_RETURN_NOT_OK(ExpectPunct(")"));

    // , G1, ..., Gm (the select-list attributes).
    std::vector<std::string> select_attrs;
    while (PeekPunct(",")) {
      Advance();
      CSOD_ASSIGN_OR_RETURN(std::string attr, ParseIdentifier());
      select_attrs.push_back(std::move(attr));
    }

    // FROM source [PARAMS(...)].
    CSOD_RETURN_NOT_OK(ExpectKeyword("from"));
    CSOD_ASSIGN_OR_RETURN(query.source, ParseIdentifier());
    if (PeekKeyword("params")) {
      Advance();
      CSOD_RETURN_NOT_OK(ExpectPunct("("));
      int depth = 1;
      while (depth > 0) {
        const Token& t = Peek();
        if (t.kind == Token::Kind::kEnd) {
          return Status::InvalidArgument("unterminated PARAMS(...)");
        }
        if (t.kind == Token::Kind::kPunct && t.text == "(") ++depth;
        if (t.kind == Token::Kind::kPunct && t.text == ")") --depth;
        Advance();
      }
    }

    // WHERE conjunction.
    if (PeekKeyword("where")) {
      Advance();
      while (true) {
        Predicate predicate;
        CSOD_ASSIGN_OR_RETURN(predicate.column, ParseIdentifier());
        if (PeekPunct("=")) {
          predicate.op = Predicate::Op::kEquals;
        } else if (PeekPunct("!=")) {
          predicate.op = Predicate::Op::kNotEquals;
        } else {
          return Status::InvalidArgument("expected '=' or '!=' in WHERE");
        }
        Advance();
        const Token& value = Peek();
        if (value.kind != Token::Kind::kString &&
            value.kind != Token::Kind::kWord) {
          return Status::InvalidArgument("expected value in WHERE predicate");
        }
        predicate.value = value.text;
        Advance();
        query.predicates.push_back(std::move(predicate));
        if (PeekKeyword("and")) {
          Advance();
          continue;
        }
        break;
      }
    }

    // GROUP BY G1, ..., Gm.
    CSOD_RETURN_NOT_OK(ExpectKeyword("group"));
    CSOD_RETURN_NOT_OK(ExpectKeyword("by"));
    while (true) {
      CSOD_ASSIGN_OR_RETURN(std::string attr, ParseIdentifier());
      query.group_by.push_back(std::move(attr));
      if (PeekPunct(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (PeekPunct(";")) Advance();
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument("trailing input after GROUP BY: '" +
                                     Peek().text + "'");
    }

    // The select-list attributes must match GROUP BY (the template's
    // G1...Gm appear in both positions).
    if (!select_attrs.empty() && select_attrs != query.group_by) {
      return Status::InvalidArgument(
          "SELECT attributes must match GROUP BY attributes");
    }
    if (query.group_by.empty()) {
      return Status::InvalidArgument("GROUP BY must list attributes");
    }
    if (query.k == 0) {
      return Status::InvalidArgument("K must be a positive integer");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool PeekKeyword(const std::string& word) const {
    return Peek().kind == Token::Kind::kWord && Lower(Peek().text) == word;
  }
  bool PeekPunct(const std::string& punct) const {
    return Peek().kind == Token::Kind::kPunct && Peek().text == punct;
  }

  Status ExpectKeyword(const std::string& word) {
    if (!PeekKeyword(word)) {
      return Status::InvalidArgument("expected keyword '" + word +
                                     "', found '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectPunct(const std::string& punct) {
    if (!PeekPunct(punct)) {
      return Status::InvalidArgument("expected '" + punct + "', found '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ParseIdentifier() {
    if (Peek().kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected identifier, found '" +
                                     Peek().text + "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Result<size_t> ParseCount() {
    if (Peek().kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected K after Outlier/Top");
    }
    char* end = nullptr;
    const long long value = std::strtoll(Peek().text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value <= 0) {
      return Status::InvalidArgument("K must be a positive integer, found '" +
                                     Peek().text + "'");
    }
    Advance();
    return static_cast<size_t>(value);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  Tokenizer tokenizer(text);
  CSOD_ASSIGN_OR_RETURN(std::vector<Token> tokens, tokenizer.Run());
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace csod::query
