#include "query/executor.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "core/detector.h"
#include "dist/comm.h"
#include "outlier/outlier.h"
#include "workload/key_dictionary.h"

namespace csod::query {

Result<size_t> LogTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return Status::NotFound("no column '" + name + "'");
}

Status LogTable::AddRow(std::vector<std::string> row) {
  if (row.size() != columns.size()) {
    return Status::InvalidArgument(
        "AddRow: row has " + std::to_string(row.size()) + " cells, table has " +
        std::to_string(columns.size()) + " columns");
  }
  rows.push_back(std::move(row));
  return Status::OK();
}

namespace {

// Per-table resolved column positions for one query.
struct ResolvedColumns {
  size_t score = 0;
  std::vector<size_t> group_by;
  std::vector<size_t> predicate;
};

Result<ResolvedColumns> Resolve(const Query& query, const LogTable& table) {
  ResolvedColumns resolved;
  CSOD_ASSIGN_OR_RETURN(resolved.score,
                        table.ColumnIndex(query.score_column));
  for (const std::string& attr : query.group_by) {
    CSOD_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(attr));
    resolved.group_by.push_back(idx);
  }
  for (const Predicate& predicate : query.predicates) {
    CSOD_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(predicate.column));
    resolved.predicate.push_back(idx);
  }
  return resolved;
}

bool RowPasses(const Query& query, const ResolvedColumns& resolved,
               const std::vector<std::string>& row) {
  for (size_t p = 0; p < query.predicates.size(); ++p) {
    const bool equal = row[resolved.predicate[p]] == query.predicates[p].value;
    const bool want_equal =
        query.predicates[p].op == Predicate::Op::kEquals;
    if (equal != want_equal) return false;
  }
  return true;
}

std::string CompositeKey(const ResolvedColumns& resolved,
                         const std::vector<std::string>& row) {
  std::string key;
  for (size_t g = 0; g < resolved.group_by.size(); ++g) {
    if (g > 0) key += '|';
    key += row[resolved.group_by[g]];
  }
  return key;
}

// Per-node aggregation: composite key -> partial SUM(score).
Result<std::map<std::string, double>> AggregateNode(const Query& query,
                                                    const LogTable& table) {
  CSOD_ASSIGN_OR_RETURN(ResolvedColumns resolved, Resolve(query, table));
  std::map<std::string, double> sums;
  for (const auto& row : table.rows) {
    if (!RowPasses(query, resolved, row)) continue;
    char* end = nullptr;
    const double score = std::strtod(row[resolved.score].c_str(), &end);
    if (end == row[resolved.score].c_str()) {
      return Status::InvalidArgument("non-numeric score value: '" +
                                     row[resolved.score] + "'");
    }
    sums[CompositeKey(resolved, row)] += score;
  }
  return sums;
}

// Shared pre-pass: per-node aggregates + the consensus dictionary.
struct PreparedInput {
  std::vector<std::map<std::string, double>> node_sums;
  workload::GlobalKeyDictionary dictionary;
};

Result<PreparedInput> Prepare(const Query& query,
                              const std::vector<LogTable>& node_tables) {
  if (node_tables.empty()) {
    return Status::InvalidArgument("no node tables");
  }
  PreparedInput prepared;
  for (const LogTable& table : node_tables) {
    CSOD_ASSIGN_OR_RETURN(auto sums, AggregateNode(query, table));
    for (const auto& [key, value] : sums) {
      prepared.dictionary.Intern(key);
      (void)value;
    }
    prepared.node_sums.push_back(std::move(sums));
  }
  if (prepared.dictionary.size() == 0) {
    return Status::InvalidArgument(
        "no rows matched the WHERE predicates");
  }
  return prepared;
}

}  // namespace

Result<QueryResult> ExecuteDistributed(
    const Query& query, const std::vector<LogTable>& node_tables,
    const ExecutionOptions& options) {
  if (options.m == 0) {
    return Status::InvalidArgument("ExecutionOptions.m must be > 0");
  }
  CSOD_ASSIGN_OR_RETURN(PreparedInput prepared,
                        Prepare(query, node_tables));
  const size_t n = prepared.dictionary.size();

  core::DetectorOptions detector_options;
  detector_options.n = n;
  detector_options.m = std::min(options.m, n);
  detector_options.seed = options.seed;
  detector_options.iterations = options.iterations;
  CSOD_ASSIGN_OR_RETURN(
      auto detector, core::DistributedOutlierDetector::Create(detector_options));

  for (const auto& sums : prepared.node_sums) {
    cs::SparseSlice slice;
    for (const auto& [key, value] : sums) {
      CSOD_ASSIGN_OR_RETURN(size_t index, prepared.dictionary.Lookup(key));
      slice.indices.push_back(index);
      slice.values.push_back(value);
    }
    CSOD_RETURN_NOT_OK(detector->AddSource(slice).status());
  }

  QueryResult result;
  result.key_space = n;
  result.bytes_shipped = static_cast<uint64_t>(node_tables.size()) *
                         detector_options.m * dist::kMeasurementBytes;
  result.bytes_all = static_cast<uint64_t>(node_tables.size()) * n *
                     dist::kValueBytes;

  if (query.kind == QueryKind::kOutlier) {
    CSOD_ASSIGN_OR_RETURN(outlier::OutlierSet set, detector->Detect(query.k));
    result.mode = set.mode;
    for (const auto& o : set.outliers) {
      CSOD_ASSIGN_OR_RETURN(std::string key,
                            prepared.dictionary.KeyOf(o.key_index));
      result.rows.push_back(ResultRow{std::move(key), o.value, o.divergence});
    }
  } else {
    CSOD_ASSIGN_OR_RETURN(auto top, detector->DetectTopK(query.k));
    for (const auto& o : top) {
      CSOD_ASSIGN_OR_RETURN(std::string key,
                            prepared.dictionary.KeyOf(o.key_index));
      result.rows.push_back(ResultRow{std::move(key), o.value, o.value});
    }
  }
  return result;
}

Result<QueryResult> ExecuteExact(const Query& query,
                                 const std::vector<LogTable>& node_tables) {
  CSOD_ASSIGN_OR_RETURN(PreparedInput prepared,
                        Prepare(query, node_tables));
  const size_t n = prepared.dictionary.size();
  std::vector<double> global(n, 0.0);
  for (const auto& sums : prepared.node_sums) {
    for (const auto& [key, value] : sums) {
      CSOD_ASSIGN_OR_RETURN(size_t index, prepared.dictionary.Lookup(key));
      global[index] += value;
    }
  }

  QueryResult result;
  result.key_space = n;
  result.bytes_shipped = static_cast<uint64_t>(node_tables.size()) * n *
                         dist::kValueBytes;
  result.bytes_all = result.bytes_shipped;

  if (query.kind == QueryKind::kOutlier) {
    outlier::OutlierSet set = outlier::ExactKOutliers(global, query.k);
    result.mode = set.mode;
    for (const auto& o : set.outliers) {
      CSOD_ASSIGN_OR_RETURN(std::string key,
                            prepared.dictionary.KeyOf(o.key_index));
      result.rows.push_back(ResultRow{std::move(key), o.value, o.divergence});
    }
  } else {
    for (const auto& o : outlier::TopK(global, query.k)) {
      CSOD_ASSIGN_OR_RETURN(std::string key,
                            prepared.dictionary.KeyOf(o.key_index));
      result.rows.push_back(ResultRow{std::move(key), o.value, o.value});
    }
  }
  return result;
}

}  // namespace csod::query
