#ifndef CSOD_QUERY_EXECUTOR_H_
#define CSOD_QUERY_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace csod::query {

/// \brief One node's slice of the log stream: named string columns plus
/// rows of cells. The score column holds decimal numbers.
struct LogTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Index of a column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a row; must match the column count.
  Status AddRow(std::vector<std::string> row);
};

/// Tuning of the distributed execution.
struct ExecutionOptions {
  /// Per-node measurement budget M.
  size_t m = 400;
  /// Consensus seed for Φ0.
  uint64_t seed = 42;
  /// BOMP iterations; 0 = the paper's f(k).
  size_t iterations = 0;
};

/// One answer row.
struct ResultRow {
  /// The composite GROUP BY key, attributes joined with '|'.
  std::string group_key;
  /// Aggregated (recovered) SUM of the score column.
  double value = 0.0;
  /// |value - mode| for Outlier queries; == value for Top queries.
  double rank_score = 0.0;
};

/// Query answer plus execution telemetry.
struct QueryResult {
  std::vector<ResultRow> rows;
  /// Recovered mode (Outlier queries; 0 for Top).
  double mode = 0.0;
  /// Number of distinct composite keys N.
  size_t key_space = 0;
  /// Bytes the CS execution shipped (L * M * 8).
  uint64_t bytes_shipped = 0;
  /// Bytes the ALL baseline would ship (L * N * 8).
  uint64_t bytes_all = 0;
};

/// \brief Executes the parsed query with the paper's CS pipeline: each
/// node filters (WHERE), aggregates SUM(score) per composite GROUP BY key
/// against a consensus key dictionary, compresses to M measurements, and
/// the aggregator recovers the Outlier-K / Top-K answer with BOMP.
///
/// The consensus dictionary is built from the union of the nodes' keys
/// (in a deployment it is a shared catalog artifact; see
/// workload::GlobalKeyDictionary::Merge for the node-side mechanics).
Result<QueryResult> ExecuteDistributed(
    const Query& query, const std::vector<LogTable>& node_tables,
    const ExecutionOptions& options);

/// Exact centralized reference execution of the same query (ships
/// everything; used for validation and the accuracy baseline).
Result<QueryResult> ExecuteExact(const Query& query,
                                 const std::vector<LogTable>& node_tables);

}  // namespace csod::query

#endif  // CSOD_QUERY_EXECUTOR_H_
