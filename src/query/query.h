#ifndef CSOD_QUERY_QUERY_H_
#define CSOD_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace csod::query {

/// \brief The paper's production query template (Section 6.1.2):
///
///     SELECT Outlier K SUM(Score), G1...Gm
///     FROM Log_Streams PARAMS(StartDate, EndDate)
///     WHERE Predicates
///     GROUP BY G1...Gm;
///
/// This module parses the template into a Query and executes it with the
/// CS-based distributed pipeline (see executor.h). `Top K` is accepted in
/// place of `Outlier K` for the Section 6.2 extension.

/// What the SELECT asks for.
enum class QueryKind {
  kOutlier,  ///< k keys furthest from the (unknown) mode.
  kTop,      ///< k keys with the largest aggregates (zero-mode extension).
};

/// One predicate `column op 'value'`; conjunctions only (AND).
struct Predicate {
  enum class Op { kEquals, kNotEquals };
  std::string column;
  Op op = Op::kEquals;
  std::string value;
};

/// A parsed query.
struct Query {
  QueryKind kind = QueryKind::kOutlier;
  size_t k = 0;
  /// The aggregated column inside SUM(...).
  std::string score_column;
  /// GROUP BY attributes, in order (they form the composite key).
  std::vector<std::string> group_by;
  /// Source name after FROM (informational).
  std::string source;
  /// WHERE conjuncts (possibly empty).
  std::vector<Predicate> predicates;
};

/// Parses the query template. Case-insensitive keywords; the SELECT list
/// must be `SUM(col)` followed by the same attributes as GROUP BY.
/// Returns InvalidArgument with a description on malformed input.
Result<Query> ParseQuery(const std::string& text);

}  // namespace csod::query

#endif  // CSOD_QUERY_QUERY_H_
