#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace csod {

namespace {

std::atomic<size_t> g_max_threads{0};  // 0 = uninitialized -> hardware.

size_t EffectiveLimit() {
  size_t limit = g_max_threads.load(std::memory_order_relaxed);
  if (limit == 0) {
    limit = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return limit;
}

}  // namespace

void SetParallelismLimit(size_t max_threads) {
  g_max_threads.store(std::max<size_t>(1, max_threads),
                      std::memory_order_relaxed);
}

size_t GetParallelismLimit() { return EffectiveLimit(); }

void ParallelFor(size_t count, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  min_chunk = std::max<size_t>(1, min_chunk);
  const size_t limit = EffectiveLimit();
  // Deterministic chunking: depends only on count and the limit.
  const size_t chunks =
      std::min(limit, std::max<size_t>(1, count / min_chunk));
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  const size_t chunk_size = (count + chunks - 1) / chunks;

  std::vector<std::thread> workers;
  workers.reserve(chunks - 1);
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] { body(begin, end); });
  }
  body(0, std::min(count, chunk_size));  // First chunk on this thread.
  for (std::thread& worker : workers) worker.join();
}

}  // namespace csod
