#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/thread_pool.h"

namespace csod {

namespace {

std::atomic<size_t> g_max_threads{0};  // 0 = uninitialized -> hardware.

size_t EffectiveLimit() {
  size_t limit = g_max_threads.load(std::memory_order_relaxed);
  if (limit == 0) {
    limit = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return limit;
}

// Trampolines bridging the std::function bodies to the pool's raw
// ChunkFn + context calling convention (no per-call allocation).
void InvokeRangeBody(void* ctx, size_t /*chunk*/, size_t begin, size_t end) {
  (*static_cast<const std::function<void(size_t, size_t)>*>(ctx))(begin, end);
}

void InvokeChunkBody(void* ctx, size_t chunk, size_t begin, size_t end) {
  (*static_cast<const std::function<void(size_t, size_t, size_t)>*>(ctx))(
      chunk, begin, end);
}

}  // namespace

void SetParallelismLimit(size_t max_threads) {
  g_max_threads.store(std::max<size_t>(1, max_threads),
                      std::memory_order_relaxed);
}

size_t GetParallelismLimit() { return EffectiveLimit(); }

size_t ParallelChunkCount(size_t count, size_t min_chunk) {
  if (count == 0) return 0;
  min_chunk = std::max<size_t>(1, min_chunk);
  return std::min(EffectiveLimit(), std::max<size_t>(1, count / min_chunk));
}

void ParallelFor(size_t count, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  // Deterministic chunking: depends only on count, min_chunk and the limit.
  const size_t chunks = ParallelChunkCount(count, min_chunk);
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  const size_t chunk_size = (count + chunks - 1) / chunks;
  ThreadPool::Global().RunChunked(
      &InvokeRangeBody,
      const_cast<void*>(static_cast<const void*>(&body)), count, chunks,
      chunk_size);
}

void ParallelForEach(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) return;
  const std::function<void(size_t, size_t)> range = [&body](size_t begin,
                                                            size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  };
  ParallelFor(count, 1, range);
}

void ParallelForChunks(
    size_t count, size_t chunk_count,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (count == 0 || chunk_count == 0) return;
  chunk_count = std::min(chunk_count, count);
  if (chunk_count <= 1) {
    body(0, 0, count);
    return;
  }
  const size_t chunk_size = (count + chunk_count - 1) / chunk_count;
  ThreadPool::Global().RunChunked(
      &InvokeChunkBody,
      const_cast<void*>(static_cast<const void*>(&body)), count, chunk_count,
      chunk_size);
}

}  // namespace csod
