#ifndef CSOD_COMMON_STATUS_H_
#define CSOD_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace csod {

/// Error categories used across the library. Mirrors the coarse categories
/// used by Arrow/RocksDB-style status objects: the category tells the caller
/// how to react, the message tells a human what happened.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kInternal = 6,
  kUnimplemented = 7,
  /// A bounded resource (queue bytes, admission quota) is exhausted; the
  /// caller should back off and retry later. The serve-layer pushback
  /// frames (serve/net.h) carry this code across the wire.
  kResourceExhausted = 8,
  /// Data was lost or corrupted in flight or at rest (checksum mismatch,
  /// torn frame). Distinct from kInvalidArgument so transports can retry
  /// exactly the corruption case and nothing else.
  kDataLoss = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a value.
///
/// CSOD does not use exceptions for recoverable errors (following the
/// Arrow/RocksDB idiom from the style guides): fallible operations return
/// `Status`, fallible operations with a value return `Result<T>`.
/// `Status` is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only where
  /// failure indicates a programming error.
  void Check() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type `T` or an error `Status`.
///
/// The value accessors abort on misuse (calling `Value()` on an error),
/// matching the library's no-exceptions policy.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (this->status().ok()) {
      Status::Internal("Result constructed from OK status").Check();
    }
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the held value; aborts if this holds an error.
  const T& Value() const& {
    CheckHasValue();
    return std::get<T>(repr_);
  }
  T& Value() & {
    CheckHasValue();
    return std::get<T>(repr_);
  }
  /// Moves the held value out (returns by value — safe to call on a
  /// temporary Result, e.g. `auto v = F().MoveValue();`).
  T MoveValue() {
    CheckHasValue();
    return std::move(std::get<T>(repr_));
  }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void CheckHasValue() const {
    if (!ok()) std::get<Status>(repr_).Check();
  }

  std::variant<T, Status> repr_;
};

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>`.
#define CSOD_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::csod::Status _csod_st = (expr);       \
    if (!_csod_st.ok()) return _csod_st;    \
  } while (false)

/// Assigns the value of a `Result<T>` expression to `lhs`, propagating
/// errors. `lhs` must be a declaration or assignable lvalue.
#define CSOD_ASSIGN_OR_RETURN(lhs, rexpr)           \
  CSOD_ASSIGN_OR_RETURN_IMPL(                       \
      CSOD_CONCAT_NAME(_csod_result_, __LINE__), lhs, rexpr)

#define CSOD_CONCAT_NAME_INNER(a, b) a##b
#define CSOD_CONCAT_NAME(a, b) CSOD_CONCAT_NAME_INNER(a, b)
#define CSOD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.MoveValue()

}  // namespace csod

#endif  // CSOD_COMMON_STATUS_H_
