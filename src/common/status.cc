#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace csod {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "CSOD fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace csod
