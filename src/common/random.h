#ifndef CSOD_COMMON_RANDOM_H_
#define CSOD_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace csod {

/// \brief Stateless 64-bit mixing function (the SplitMix64 finalizer).
///
/// Used both as the step function of `Rng` and as the hash behind the
/// counter-based generators. Every distributed node derives identical
/// pseudo-random streams from a shared seed through this function, which is
/// what makes the paper's "by a consensus, each node randomly generates the
/// same measurement matrix" practical without transmitting the matrix.
inline uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit words into one; order-sensitive.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Maps a 64-bit word to a double in [0, 1) with 53 bits of precision.
inline double ToUnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Maps a 64-bit word to a double in (0, 1] (never zero, safe for log()).
inline double ToOpenUnitDouble(uint64_t bits) {
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

/// \brief Small, fast, seedable sequential PRNG (xorshift-free SplitMix64
/// stream). Deterministic across platforms.
class Rng {
 public:
  /// Seeds the stream. Two `Rng`s with the same seed emit identical streams.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit word.
  uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return ToUnitDouble(NextU64()); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used in this library (< 2^40).
    return static_cast<uint64_t>(NextDouble() * static_cast<double>(bound));
  }

  /// Standard normal variate (Box-Muller; consumes two words per pair,
  /// caches the second).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = ToOpenUnitDouble(NextU64());
    double u2 = ToUnitDouble(NextU64());
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * kPi * u2;
    cached_ = radius * std::sin(angle);
    has_cached_ = true;
    return radius * std::cos(angle);
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  uint64_t state_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// \brief Counter-based Gaussian source: `At(i)` is a pure function of
/// (seed, i).
///
/// This is what makes measurement-matrix columns regenerable in any order
/// and on any node: entry (row, col) of the matrix is
/// `CounterGaussian(HashCombine(seed, col)).At(row)`.
///
/// Positions 2p and 2p+1 form one Box-Muller pair (cos/sin of the same
/// draw), so bulk generation via `Fill` costs one log + sqrt per two
/// variates while `At` stays a pure per-position function.
class CounterGaussian {
 public:
  explicit CounterGaussian(uint64_t seed) : seed_(seed) {}

  /// Standard normal variate for counter position `i`. Deterministic
  /// across platforms and call orders; positions are jointly i.i.d.
  double At(uint64_t i) const {
    const uint64_t p = i >> 1;
    double radius;
    double angle;
    PairDraw(p, &radius, &angle);
    return (i & 1) ? radius * std::sin(angle) : radius * std::cos(angle);
  }

  /// Writes variates for positions [0, count) into `out`; identical values
  /// to calling At(i) per position, ~2x faster for bulk use.
  void Fill(uint64_t count, double* out) const {
    uint64_t i = 0;
    for (; i + 2 <= count; i += 2) {
      double radius;
      double angle;
      PairDraw(i >> 1, &radius, &angle);
      out[i] = radius * std::cos(angle);
      out[i + 1] = radius * std::sin(angle);
    }
    if (i < count) out[i] = At(i);
  }

 private:
  static constexpr double kTwoPi = 6.28318530717958647692;

  // The shared Box-Muller draw of pair `p` (positions 2p and 2p+1).
  void PairDraw(uint64_t p, double* radius, double* angle) const {
    const uint64_t w1 = SplitMix64(seed_ ^ SplitMix64(2 * p));
    const uint64_t w2 = SplitMix64(seed_ ^ SplitMix64(2 * p + 1));
    *radius = std::sqrt(-2.0 * std::log(ToOpenUnitDouble(w1)));
    *angle = kTwoPi * ToUnitDouble(w2);
  }

  uint64_t seed_;
};

}  // namespace csod

#endif  // CSOD_COMMON_RANDOM_H_
