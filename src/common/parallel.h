#ifndef CSOD_COMMON_PARALLEL_H_
#define CSOD_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace csod {

/// Number of worker threads ParallelFor may use. Defaults to the hardware
/// concurrency; override globally (e.g. 1 to force serial execution in
/// tests or when the caller owns threading). The limit may be raised or
/// lowered at any point between calls: the backing pool grows lazily to the
/// high-water mark and simply leaves extra workers parked when the limit
/// shrinks.
void SetParallelismLimit(size_t max_threads);
size_t GetParallelismLimit();

/// \brief Deterministic data-parallel loop: invokes `body(begin, end)` on
/// disjoint contiguous chunks covering [0, count).
///
/// Guarantees:
///  - chunk boundaries depend only on `count`, `min_chunk`, and the
///    parallelism limit, never on scheduling, so writes to per-index output
///    slots yield bit-identical results at any thread count;
///  - `body` runs on the calling thread when the range is small or the
///    limit is 1 (no dispatch cost for tiny work);
///  - nested calls (a body that itself calls ParallelFor) degrade to serial
///    execution instead of deadlocking;
///  - exceptions are not expected from `body` (the library is
///    no-exceptions); a throwing body terminates.
///
/// Chunks are executed by a lazily-initialized persistent worker pool
/// (common/thread_pool.h); no threads are spawned per call.
///
/// Used by the measurement-matrix kernels (cache construction,
/// correlation) where each output element depends only on its own index.
void ParallelFor(size_t count, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& body);

/// The number of chunks ParallelFor would use for (count, min_chunk) under
/// the current parallelism limit: min(limit, max(1, count / min_chunk)).
/// Use it to size chunk-local accumulators for ParallelForChunks.
size_t ParallelChunkCount(size_t count, size_t min_chunk);

/// \brief Task-parallel loop: invokes `body(index)` once per index in
/// [0, count), distributing indices over ParallelFor's deterministic
/// chunking (min_chunk = 1, so up to `limit` coarse chunks).
///
/// Convenience for stages whose unit of work is one self-contained *task*
/// writing its own pre-sized output slot — the MapReduce engine's map and
/// reduce tasks — rather than one element of a dense range. Size the
/// per-task buffers to `count` up front (not to the chunk count): slots
/// are indexed by task, so results are bit-identical at any parallelism
/// limit. `body` must be safe to invoke concurrently for distinct indices.
void ParallelForEach(size_t count, const std::function<void(size_t)>& body);

/// \brief ParallelFor variant for chunk-local reductions: the body also
/// receives the chunk index, and the caller fixes `chunk_count` explicitly
/// (typically ParallelChunkCount(...), read once so concurrent limit
/// changes cannot desynchronize accumulator sizing from dispatch).
///
/// Chunk c covers [c * ceil(count / chunk_count),
/// min(count, (c+1) * ceil(count / chunk_count))). Each chunk writes its
/// own accumulator slot; reducing the slots afterwards in fixed chunk order
/// is scheduling-independent, which is how the fused correlate/argmax
/// kernel keeps bit-identical results at any thread count.
void ParallelForChunks(
    size_t count, size_t chunk_count,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body);

}  // namespace csod

#endif  // CSOD_COMMON_PARALLEL_H_
