#ifndef CSOD_COMMON_PARALLEL_H_
#define CSOD_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace csod {

/// Number of worker threads ParallelFor may use. Defaults to the hardware
/// concurrency; override globally (e.g. 1 to force serial execution in
/// tests or when the caller owns threading).
void SetParallelismLimit(size_t max_threads);
size_t GetParallelismLimit();

/// \brief Deterministic data-parallel loop: invokes `body(begin, end)` on
/// disjoint contiguous chunks covering [0, count).
///
/// Guarantees:
///  - chunk boundaries depend only on `count` and the parallelism limit,
///    never on scheduling, so writes to per-index output slots yield
///    bit-identical results at any thread count;
///  - `body` runs on the calling thread when the range is small or the
///    limit is 1 (no thread spawn cost for tiny work);
///  - exceptions are not expected from `body` (the library is
///    no-exceptions); a throwing body terminates.
///
/// Used by the measurement-matrix kernels (cache construction,
/// correlation) where each output element depends only on its own index.
void ParallelFor(size_t count, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace csod

#endif  // CSOD_COMMON_PARALLEL_H_
