#include "common/flags.h"

#include <cstdlib>

namespace csod {

namespace {

// Returns true if `arg` looks like "--name" or "--name=value" and extracts
// the pieces.
bool SplitFlag(const std::string& arg, std::string* name, std::string* value,
               bool* has_value) {
  if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') return false;
  std::string body = arg.substr(2);
  auto eq = body.find('=');
  if (eq == std::string::npos) {
    *name = body;
    *has_value = false;
  } else {
    *name = body.substr(0, eq);
    *value = body.substr(eq + 1);
    *has_value = true;
  }
  return !name->empty();
}

}  // namespace

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name;
    std::string value;
    bool has_value = false;
    if (!SplitFlag(arg, &name, &value, &has_value)) {
      positional_.push_back(arg);
      continue;
    }
    if (!has_value) {
      // "--name value" when the next token is not itself a flag, else a
      // boolean "--name".
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[name] = value;
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<int64_t> FlagParser::GetIntList(
    const std::string& name, std::vector<int64_t> fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<int64_t> out;
  const std::string& s = it->second;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoll(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace csod
