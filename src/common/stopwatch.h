#ifndef CSOD_COMMON_STOPWATCH_H_
#define CSOD_COMMON_STOPWATCH_H_

#include <chrono>

namespace csod {

/// \brief Monotonic wall-clock stopwatch used by the MapReduce cost model
/// and the benchmark harnesses.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch() { Restart(); }

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace csod

#endif  // CSOD_COMMON_STOPWATCH_H_
