#include "common/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define CSOD_SIMD_X86 1
#include <immintrin.h>
#else
#define CSOD_SIMD_X86 0
#endif

namespace csod::simd {

namespace {

// ---------------------------------------------------------------------------
// Portable kernels. The 8-lane split in DotPortable is the canonical
// summation tree; every other implementation must reproduce it bit-for-bit.
// ---------------------------------------------------------------------------

double DotPortable(const double* a, const double* b, size_t n) {
  double lane[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lane[0] += a[i] * b[i];
    lane[1] += a[i + 1] * b[i + 1];
    lane[2] += a[i + 2] * b[i + 2];
    lane[3] += a[i + 3] * b[i + 3];
    lane[4] += a[i + 4] * b[i + 4];
    lane[5] += a[i + 5] * b[i + 5];
    lane[6] += a[i + 6] * b[i + 6];
    lane[7] += a[i + 7] * b[i + 7];
  }
  // Tail elements continue the i mod 8 lane assignment.
  for (size_t l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

void Dot4Portable(const double* c0, const double* c1, const double* c2,
                  const double* c3, const double* r, size_t n, double out[4]) {
  // Four independent canonical dots; the AVX2 path fuses the r loads but
  // the per-column arithmetic — and so the bits — are the same.
  out[0] = DotPortable(c0, r, n);
  out[1] = DotPortable(c1, r, n);
  out[2] = DotPortable(c2, r, n);
  out[3] = DotPortable(c3, r, n);
}

void AxpyPortable(double* acc, const double* col, double x, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += col[i] * x;
}

void Axpy4Portable(double* acc, const double* c0, double x0, const double* c1,
                   double x1, const double* c2, double x2, const double* c3,
                   double x3, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double t = acc[i];
    t += c0[i] * x0;
    t += c1[i] * x1;
    t += c2[i] * x2;
    t += c3[i] * x3;
    acc[i] = t;
  }
}

void Axpy8Portable(double* acc, const double* const cols[8],
                   const double xs[8], size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double t = acc[i];
    for (size_t k = 0; k < 8; ++k) t += cols[k][i] * xs[k];
    acc[i] = t;
  }
}

void AddPortable(double* acc, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += src[i];
}

void Add4Portable(double* acc, const double* s0, const double* s1,
                  const double* s2, const double* s3, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double t = acc[i];
    t += s0[i];
    t += s1[i];
    t += s2[i];
    t += s3[i];
    acc[i] = t;
  }
}

void ScalePortable(double* v, double s, size_t n) {
  for (size_t i = 0; i < n; ++i) v[i] *= s;
}

#if CSOD_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 kernels. target("avx2") without "fma": the compiler cannot contract
// the mul/add pairs below into FMAs, which keeps every rounding step — and
// so every bit — identical to the portable kernels above.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double DotAvx2(const double* a,
                                               const double* b, size_t n) {
  // acc0 holds lanes 0..3, acc1 lanes 4..7 of the canonical split.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                             _mm256_loadu_pd(b + i + 4)));
  }
  double lane[8];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t l = 0; i < n; ++i, ++l) lane[l] += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

__attribute__((target("avx2"))) void Dot4Avx2(const double* c0,
                                              const double* c1,
                                              const double* c2,
                                              const double* c3,
                                              const double* r, size_t n,
                                              double out[4]) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a20 = _mm256_setzero_pd(), a21 = _mm256_setzero_pd();
  __m256d a30 = _mm256_setzero_pd(), a31 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d r0 = _mm256_loadu_pd(r + i);
    const __m256d r1 = _mm256_loadu_pd(r + i + 4);
    a00 = _mm256_add_pd(a00, _mm256_mul_pd(_mm256_loadu_pd(c0 + i), r0));
    a01 = _mm256_add_pd(a01, _mm256_mul_pd(_mm256_loadu_pd(c0 + i + 4), r1));
    a10 = _mm256_add_pd(a10, _mm256_mul_pd(_mm256_loadu_pd(c1 + i), r0));
    a11 = _mm256_add_pd(a11, _mm256_mul_pd(_mm256_loadu_pd(c1 + i + 4), r1));
    a20 = _mm256_add_pd(a20, _mm256_mul_pd(_mm256_loadu_pd(c2 + i), r0));
    a21 = _mm256_add_pd(a21, _mm256_mul_pd(_mm256_loadu_pd(c2 + i + 4), r1));
    a30 = _mm256_add_pd(a30, _mm256_mul_pd(_mm256_loadu_pd(c3 + i), r0));
    a31 = _mm256_add_pd(a31, _mm256_mul_pd(_mm256_loadu_pd(c3 + i + 4), r1));
  }
  const __m256d* accs0[4] = {&a00, &a10, &a20, &a30};
  const __m256d* accs1[4] = {&a01, &a11, &a21, &a31};
  const double* cols[4] = {c0, c1, c2, c3};
  for (size_t k = 0; k < 4; ++k) {
    double lane[8];
    _mm256_storeu_pd(lane, *accs0[k]);
    _mm256_storeu_pd(lane + 4, *accs1[k]);
    size_t j = i;
    for (size_t l = 0; j < n; ++j, ++l) lane[l] += cols[k][j] * r[j];
    out[k] = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
             ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  }
}

__attribute__((target("avx2"))) void AxpyAvx2(double* acc, const double* col,
                                              double x, size_t n) {
  const __m256d vx = _mm256_set1_pd(x);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                    _mm256_mul_pd(_mm256_loadu_pd(col + i), vx));
    _mm256_storeu_pd(acc + i, t);
  }
  for (; i < n; ++i) acc[i] += col[i] * x;
}

__attribute__((target("avx2"))) void Axpy4Avx2(double* acc, const double* c0,
                                               double x0, const double* c1,
                                               double x1, const double* c2,
                                               double x2, const double* c3,
                                               double x3, size_t n) {
  const __m256d v0 = _mm256_set1_pd(x0);
  const __m256d v1 = _mm256_set1_pd(x1);
  const __m256d v2 = _mm256_set1_pd(x2);
  const __m256d v3 = _mm256_set1_pd(x3);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t = _mm256_loadu_pd(acc + i);
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(c0 + i), v0));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(c1 + i), v1));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(c2 + i), v2));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(c3 + i), v3));
    _mm256_storeu_pd(acc + i, t);
  }
  for (; i < n; ++i) {
    double t = acc[i];
    t += c0[i] * x0;
    t += c1[i] * x1;
    t += c2[i] * x2;
    t += c3[i] * x3;
    acc[i] = t;
  }
}

__attribute__((target("avx2"))) void Axpy8Avx2(double* acc,
                                               const double* const cols[8],
                                               const double xs[8], size_t n) {
  // Eight broadcast coefficients stay resident; each 4-element group of acc
  // folds the eight streams in order, reading all eight columns in the same
  // iteration — eight concurrent load streams for the memory system.
  const __m256d v0 = _mm256_set1_pd(xs[0]);
  const __m256d v1 = _mm256_set1_pd(xs[1]);
  const __m256d v2 = _mm256_set1_pd(xs[2]);
  const __m256d v3 = _mm256_set1_pd(xs[3]);
  const __m256d v4 = _mm256_set1_pd(xs[4]);
  const __m256d v5 = _mm256_set1_pd(xs[5]);
  const __m256d v6 = _mm256_set1_pd(xs[6]);
  const __m256d v7 = _mm256_set1_pd(xs[7]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t = _mm256_loadu_pd(acc + i);
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[0] + i), v0));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[1] + i), v1));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[2] + i), v2));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[3] + i), v3));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[4] + i), v4));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[5] + i), v5));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[6] + i), v6));
    t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_loadu_pd(cols[7] + i), v7));
    _mm256_storeu_pd(acc + i, t);
  }
  for (; i < n; ++i) {
    double t = acc[i];
    for (size_t k = 0; k < 8; ++k) t += cols[k][i] * xs[k];
    acc[i] = t;
  }
}

__attribute__((target("avx2"))) void AddAvx2(double* acc, const double* src,
                                             size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) acc[i] += src[i];
}

__attribute__((target("avx2"))) void Add4Avx2(double* acc, const double* s0,
                                              const double* s1,
                                              const double* s2,
                                              const double* s3, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d t = _mm256_loadu_pd(acc + i);
    t = _mm256_add_pd(t, _mm256_loadu_pd(s0 + i));
    t = _mm256_add_pd(t, _mm256_loadu_pd(s1 + i));
    t = _mm256_add_pd(t, _mm256_loadu_pd(s2 + i));
    t = _mm256_add_pd(t, _mm256_loadu_pd(s3 + i));
    _mm256_storeu_pd(acc + i, t);
  }
  for (; i < n; ++i) {
    double t = acc[i];
    t += s0[i];
    t += s1[i];
    t += s2[i];
    t += s3[i];
    acc[i] = t;
  }
}

__attribute__((target("avx2"))) void ScaleAvx2(double* v, double s, size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), vs));
  }
  for (; i < n; ++i) v[i] *= s;
}

#endif  // CSOD_SIMD_X86

Level DetectLevel() {
#if defined(CSOD_FORCE_PORTABLE_SIMD)
  return Level::kPortable;
#else
  const char* force = std::getenv("CSOD_FORCE_PORTABLE_SIMD");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Level::kPortable;
  }
  return Avx2Supported() ? Level::kAvx2 : Level::kPortable;
#endif
}

std::atomic<Level>& ActiveLevelSlot() {
  static std::atomic<Level> level{DetectLevel()};
  return level;
}

}  // namespace

const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "portable";
}

bool Avx2Supported() {
#if CSOD_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level ActiveLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

Level SetLevelForTesting(Level level) {
  if (level == Level::kAvx2 && !Avx2Supported()) level = Level::kPortable;
  return ActiveLevelSlot().exchange(level, std::memory_order_relaxed);
}

double Dot(const double* a, const double* b, size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) return DotAvx2(a, b, n);
#endif
  return DotPortable(a, b, n);
}

void Dot4(const double* c0, const double* c1, const double* c2,
          const double* c3, const double* r, size_t n, double out[4]) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    Dot4Avx2(c0, c1, c2, c3, r, n, out);
    return;
  }
#endif
  Dot4Portable(c0, c1, c2, c3, r, n, out);
}

void Axpy(double* acc, const double* col, double x, size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    AxpyAvx2(acc, col, x, n);
    return;
  }
#endif
  AxpyPortable(acc, col, x, n);
}

void Axpy4(double* acc, const double* c0, double x0, const double* c1,
           double x1, const double* c2, double x2, const double* c3, double x3,
           size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    Axpy4Avx2(acc, c0, x0, c1, x1, c2, x2, c3, x3, n);
    return;
  }
#endif
  Axpy4Portable(acc, c0, x0, c1, x1, c2, x2, c3, x3, n);
}

void Axpy8(double* acc, const double* const cols[8], const double xs[8],
           size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    Axpy8Avx2(acc, cols, xs, n);
    return;
  }
#endif
  Axpy8Portable(acc, cols, xs, n);
}

void Add(double* acc, const double* src, size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    AddAvx2(acc, src, n);
    return;
  }
#endif
  AddPortable(acc, src, n);
}

void Add4(double* acc, const double* s0, const double* s1, const double* s2,
          const double* s3, size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    Add4Avx2(acc, s0, s1, s2, s3, n);
    return;
  }
#endif
  Add4Portable(acc, s0, s1, s2, s3, n);
}

void Scale(double* v, double s, size_t n) {
#if CSOD_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    ScaleAvx2(v, s, n);
    return;
  }
#endif
  ScalePortable(v, s, n);
}

}  // namespace csod::simd
