#ifndef CSOD_COMMON_FORMAT_H_
#define CSOD_COMMON_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace csod {

/// Formats a byte count with a binary-prefix unit, e.g. "1.50 MiB".
inline std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

/// Formats a fraction as a percentage with the given precision,
/// e.g. FormatPercent(0.0132, 1) == "1.3%".
inline std::string FormatPercent(double fraction, int precision = 1) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

/// Formats seconds with millisecond resolution, e.g. "12.345 s".
inline std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  return buf;
}

}  // namespace csod

#endif  // CSOD_COMMON_FORMAT_H_
