#ifndef CSOD_COMMON_FLAGS_H_
#define CSOD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace csod {

/// \brief Minimal `--flag=value` / `--flag value` command-line parser for
/// the benchmark harnesses and examples.
///
/// Supported forms: `--name=value`, `--name value`, and bare `--name`
/// (boolean true). Unrecognized positional arguments are collected.
class FlagParser {
 public:
  /// Parses argv. Returns InvalidArgument on malformed input.
  Status Parse(int argc, char** argv);

  /// True if `--name` appeared on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters: return `fallback` when the flag is absent. Malformed
  /// numeric values abort (benchmark harness misuse, not user data).
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. `--m=100,200,300`.
  std::vector<int64_t> GetIntList(const std::string& name,
                                  std::vector<int64_t> fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace csod

#endif  // CSOD_COMMON_FLAGS_H_
