#include "common/thread_pool.h"

#include <algorithm>

namespace csod {

namespace {
// Set for the lifetime of a worker thread; lets nested ParallelFor calls
// (a chunk body that itself parallelizes) degrade to serial execution
// instead of deadlocking on dispatch_mu_.
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

size_t ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

uint64_t ThreadPool::jobs_dispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_dispatched_;
}

void ThreadPool::EnsureWorkersLocked(size_t target) {
  while (workers_.size() < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::ExecuteChunks(Job* job) {
  for (;;) {
    const size_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->chunk_count) break;
    const size_t begin = c * job->chunk_size;
    const size_t end = std::min(job->count, begin + job->chunk_size);
    if (begin < end) job->fn(job->ctx, c, begin, end);
    // Release so the dispatcher's acquire load of `done` sees the chunk's
    // output writes; the last chunk wakes the dispatcher.
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->chunk_count) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  std::shared_ptr<Job> last;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || job_ != last; });
    if (shutdown_) return;
    last = job_;  // Snapshot under the lock: always a consistent job.
    lock.unlock();
    ExecuteChunks(last.get());
    lock.lock();
  }
}

void ThreadPool::RunChunked(ChunkFn fn, void* ctx, size_t count,
                            size_t chunk_count, size_t chunk_size) {
  if (count == 0 || chunk_count == 0) return;
  auto run_serial = [&] {
    for (size_t c = 0; c < chunk_count; ++c) {
      const size_t begin = c * chunk_size;
      const size_t end = std::min(count, begin + chunk_size);
      if (begin < end) fn(ctx, c, begin, end);
    }
  };
  // Nested call from a worker, or the pool already running another job:
  // execute serially in chunk order. try_lock keeps concurrent dispatchers
  // from blocking on each other (and a body that re-enters ParallelFor on
  // the dispatching thread from deadlocking).
  if (chunk_count <= 1 || InWorker() || !dispatch_mu_.try_lock()) {
    run_serial();
    return;
  }
  std::lock_guard<std::mutex> dispatch_guard(dispatch_mu_, std::adopt_lock);

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->ctx = ctx;
  job->count = count;
  job->chunk_count = chunk_count;
  job->chunk_size = chunk_size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      run_serial();
      return;
    }
    // The dispatcher executes chunks too, so chunk_count - 1 workers
    // suffice; the pool keeps the high-water mark across limit changes.
    EnsureWorkersLocked(chunk_count - 1);
    job_ = job;
    ++jobs_dispatched_;
  }
  work_cv_.notify_all();

  ExecuteChunks(job.get());

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) >= job->chunk_count;
  });
}

}  // namespace csod
