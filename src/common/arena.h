#ifndef CSOD_COMMON_ARENA_H_
#define CSOD_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace csod {

/// \brief Page-based bump allocator for task-local scratch data.
///
/// One `Arena` backs one unit of work (a map task's shuffle buffers, a
/// reduce task's group build): allocation is a pointer bump within the
/// current page, a new page is grabbed only when the current one is full,
/// and everything is released at once when the arena dies. Compared to
/// per-element `new` (the `std::map` node churn the old shuffle paid per
/// key) this costs one malloc per `page_bytes` of data and never frees in
/// the hot path — which is also what keeps concurrent map tasks from
/// serializing on the global allocator lock.
///
/// Not thread-safe: each task owns its arena. Memory is returned raw;
/// callers placement-new non-trivial objects and own their destruction
/// (ColumnChunks below does both).
class Arena {
 public:
  static constexpr size_t kDefaultPageBytes = size_t{256} * 1024;
  static constexpr size_t kMaxAlignment = alignof(std::max_align_t);

  explicit Arena(size_t page_bytes = kDefaultPageBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `alignment`
  /// (power of two, at most kMaxAlignment). Requests larger than the page
  /// size get a dedicated page — they are legal, just not amortized.
  void* Allocate(size_t bytes, size_t alignment);

  /// Typed convenience: uninitialized storage for `count` `T`s.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(alignof(T) <= kMaxAlignment,
                  "over-aligned types are not supported");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Payload bytes handed out so far (excludes alignment padding).
  uint64_t allocated_bytes() const { return allocated_bytes_; }
  /// Pages grabbed from the system allocator so far.
  size_t page_count() const { return pages_.size(); }
  size_t page_bytes() const { return page_bytes_; }

 private:
  struct Page {
    std::unique_ptr<unsigned char[]> data;
    size_t capacity = 0;
  };

  void AddPage(size_t min_bytes);

  size_t page_bytes_;
  std::vector<Page> pages_;
  unsigned char* cur_ = nullptr;
  unsigned char* end_ = nullptr;
  uint64_t allocated_bytes_ = 0;
};

/// \brief Chunked, arena-backed typed column: the struct-of-arrays
/// building block of the shuffle (one column for keys, one for values).
///
/// Appends bump a pointer within the current chunk; a full chunk is left
/// in place (elements never move, unlike `std::vector` growth, so there is
/// no O(n) realloc-and-copy and readers can hold spans across appends) and
/// a fresh chunk is carved from the arena. Elements are placement-newed on
/// append and destroyed by the column's destructor when `T` needs it.
///
/// Iteration is chunk-wise (`ForEachChunk`) so hot loops run over
/// contiguous memory with no per-element indirection.
template <typename T>
class ColumnChunks {
 public:
  static constexpr size_t kDefaultChunkElems = 4096;

  /// `chunk_elems` fixes the chunk granularity: the first chunk allocated
  /// holds exactly `chunk_elems` elements, as does every later one. Pass
  /// the exact final size when it is known up front (scatter destinations)
  /// to get a single contiguous chunk.
  explicit ColumnChunks(Arena* arena,
                        size_t chunk_elems = kDefaultChunkElems)
      : arena_(arena), chunk_elems_(chunk_elems == 0 ? 1 : chunk_elems) {}

  ColumnChunks(const ColumnChunks&) = delete;
  ColumnChunks& operator=(const ColumnChunks&) = delete;
  ColumnChunks(ColumnChunks&& other) noexcept
      : arena_(other.arena_),
        chunk_elems_(other.chunk_elems_),
        chunks_(std::move(other.chunks_)),
        cur_(other.cur_),
        cur_end_(other.cur_end_),
        size_(other.size_) {
    other.chunks_.clear();
    other.cur_ = other.cur_end_ = nullptr;
    other.size_ = 0;
  }

  ~ColumnChunks() { DestroyAll(); }

  void Append(T value) {
    if (cur_ == cur_end_) Grow();
    ::new (static_cast<void*>(cur_)) T(std::move(value));
    ++cur_;
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t chunk_count() const { return chunks_.size(); }
  size_t chunk_elems() const { return chunk_elems_; }

  /// Element `i` in append order (test/diagnostic access; hot paths use
  /// ForEachChunk or the chunk accessors).
  T& operator[](size_t i) {
    return chunks_[i / chunk_elems_][i % chunk_elems_];
  }
  const T& operator[](size_t i) const {
    return chunks_[i / chunk_elems_][i % chunk_elems_];
  }

  /// Start of chunk `c` (contiguous for chunk_size(c) elements).
  T* chunk_data(size_t c) { return chunks_[c]; }
  const T* chunk_data(size_t c) const { return chunks_[c]; }
  /// Live element count of chunk `c` (== chunk_elems() except possibly
  /// the last chunk).
  size_t chunk_size(size_t c) const { return ChunkSize(c); }

  /// Invokes `fn(T* data, size_t count)` per chunk, in append order.
  template <typename Fn>
  void ForEachChunk(Fn&& fn) {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const size_t count = ChunkSize(c);
      if (count > 0) fn(chunks_[c], count);
    }
  }
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const size_t count = ChunkSize(c);
      if (count > 0) fn(static_cast<const T*>(chunks_[c]), count);
    }
  }

 private:
  size_t ChunkSize(size_t c) const {
    if (c + 1 < chunks_.size()) return chunk_elems_;
    return size_ - (chunks_.size() - 1) * chunk_elems_;
  }

  void Grow() {
    T* chunk = arena_->AllocateArray<T>(chunk_elems_);
    chunks_.push_back(chunk);
    cur_ = chunk;
    cur_end_ = chunk + chunk_elems_;
  }

  void DestroyAll() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (size_t c = 0; c < chunks_.size(); ++c) {
        const size_t count = ChunkSize(c);
        for (size_t i = 0; i < count; ++i) chunks_[c][i].~T();
      }
    }
  }

  Arena* arena_;
  size_t chunk_elems_;
  std::vector<T*> chunks_;
  T* cur_ = nullptr;
  T* cur_end_ = nullptr;
  size_t size_ = 0;
};

}  // namespace csod

#endif  // CSOD_COMMON_ARENA_H_
