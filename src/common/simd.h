#ifndef CSOD_COMMON_SIMD_H_
#define CSOD_COMMON_SIMD_H_

#include <cstddef>

namespace csod::simd {

/// \brief Runtime-dispatched dense kernels with a *canonical* floating-point
/// summation tree, shared by every ISA path.
///
/// The repo's determinism contract ("bit-identical results at any
/// parallelism limit", DESIGN.md §6) extends here across instruction sets:
/// the AVX2 and portable implementations of every kernel below produce
/// bit-identical results, by construction rather than by accident.
///
/// How: reductions (`Dot`, `Dot4`) split the index space into a fixed
/// 8-accumulator lane split — lane `l` sums the elements at positions
/// `i ≡ l (mod 8)` in ascending order, the tail continues the same pattern,
/// and the eight lane sums are folded in the fixed order
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. The AVX2 path holds the lanes in
/// two 4-wide vector accumulators and performs the identical per-lane
/// additions; the portable path keeps eight scalars (which the compiler may
/// itself vectorize — any lane-preserving vectorization is bit-safe because
/// the lanes never mix). Element-wise kernels (`Axpy*`, `Add*`, `Scale`)
/// have no reduction at all, so per-element identity is automatic.
///
/// FMA is deliberately NOT used: a fused multiply-add rounds once where
/// mul-then-add rounds twice, which would break bit-identity between the
/// AVX2 and portable paths (and against the pre-existing scalar kernels).
/// Dispatch therefore keys on AVX2 only.
///
/// The fused 4-stream variants (`Dot4`, `Axpy4`, `Add4`) amortize one pass
/// over the shared operand across four streams; each stream's per-element
/// operation order is identical to the 1-stream kernel, so
/// `Axpy4(acc, c0,x0, ..., c3,x3)` is bit-identical to four sequential
/// `Axpy` calls — callers may batch freely without changing results.
enum class Level {
  kPortable = 0,  ///< Fixed-8-lane scalar kernels (any platform).
  kAvx2 = 1,      ///< AVX2 4-wide double kernels (x86-64, no FMA).
};

/// Human-readable name ("portable" / "avx2") for logs and bench output.
const char* LevelName(Level level);

/// True iff the running CPU supports AVX2 (raw probe; ignores overrides).
bool Avx2Supported();

/// The level the kernels currently dispatch to. Resolved once on first use:
/// AVX2 when the CPU supports it, unless compiled with
/// -DCSOD_FORCE_PORTABLE_SIMD or run with CSOD_FORCE_PORTABLE_SIMD=1 in the
/// environment (both force the portable path).
Level ActiveLevel();

/// Overrides the dispatch level (clamped to kPortable when AVX2 is
/// unavailable) and returns the previously active level. For tests and
/// benchmarks that compare the two paths inside one binary; also works in
/// CSOD_FORCE_PORTABLE_SIMD builds, where the AVX2 code is still compiled.
Level SetLevelForTesting(Level level);

/// Σ_i a[i] * b[i] over the canonical 8-lane split.
double Dot(const double* a, const double* b, size_t n);

/// Four dots sharing one pass over r: out[k] = Σ_i ck[i] * r[i].
/// Each out[k] is bit-identical to Dot(ck, r, n).
void Dot4(const double* c0, const double* c1, const double* c2,
          const double* c3, const double* r, size_t n, double out[4]);

/// acc[i] += col[i] * x (element-wise; bit-identical on every path).
void Axpy(double* acc, const double* col, double x, size_t n);

/// Four fused axpys in one pass over acc:
/// acc[i] = (((acc[i] + c0[i]*x0) + c1[i]*x1) + c2[i]*x2) + c3[i]*x3,
/// bit-identical to four sequential Axpy calls in that order.
void Axpy4(double* acc, const double* c0, double x0, const double* c1,
           double x1, const double* c2, double x2, const double* c3,
           double x3, size_t n);

/// Eight fused axpys in one pass over acc (array-of-streams form):
/// acc[i] folds cols[0][i]*xs[0] .. cols[7][i]*xs[7] in stream order,
/// bit-identical to eight sequential Axpy calls. Eight concurrent column
/// streams keep more memory requests in flight than four, which is what
/// hides DRAM latency when the columns miss cache.
void Axpy8(double* acc, const double* const cols[8], const double xs[8],
           size_t n);

/// acc[i] += src[i].
void Add(double* acc, const double* src, size_t n);

/// Four fused adds in one pass over acc, bit-identical to four sequential
/// Add calls in s0..s3 order.
void Add4(double* acc, const double* s0, const double* s1, const double* s2,
          const double* s3, size_t n);

/// v[i] *= s.
void Scale(double* v, double s, size_t n);

}  // namespace csod::simd

#endif  // CSOD_COMMON_SIMD_H_
