#ifndef CSOD_COMMON_THREAD_POOL_H_
#define CSOD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace csod {

/// \brief Lazily-initialized persistent worker pool behind ParallelFor.
///
/// The seed implementation spawned and joined fresh `std::thread`s on every
/// ParallelFor call; one BOMP recovery performs thousands of correlate calls,
/// so the spawn/join cost dominated small-M recoveries. This pool spawns
/// workers once (high-water mark of the requested chunk counts) and parks
/// them on a condition variable between jobs, so a dispatch costs one
/// notify_all plus wakeups.
///
/// Determinism contract: the pool never decides chunk *boundaries* — callers
/// pass a fixed (count, chunk_count, chunk_size) geometry and the pool only
/// decides which thread executes which chunk. Kernels that write per-index
/// outputs or reduce chunk-local accumulators in fixed chunk order therefore
/// produce bit-identical results at any thread count and under any
/// scheduling.
///
/// Jobs are tracked as shared_ptr snapshots: a worker that wakes late for an
/// already-finished job operates on that job's own (exhausted) chunk counter
/// and can never steal chunks from a newer job.
class ThreadPool {
 public:
  /// Chunk body: fn(ctx, chunk, begin, end) over [begin, end).
  using ChunkFn = void (*)(void* ctx, size_t chunk, size_t begin, size_t end);

  /// The process-wide pool used by ParallelFor.
  static ThreadPool& Global();

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `fn(ctx, c, c * chunk_size, min(count, (c+1) * chunk_size))` for
  /// every chunk c in [0, chunk_count). The calling thread participates in
  /// chunk execution and the call returns only when every chunk has
  /// completed. Falls back to serial in-order execution on the calling
  /// thread when the pool is busy with another job, shutting down, or the
  /// caller is itself a pool worker (nested parallelism) — the results are
  /// identical either way because the chunk geometry is fixed by the caller.
  void RunChunked(ChunkFn fn, void* ctx, size_t count, size_t chunk_count,
                  size_t chunk_size);

  /// True when the current thread is one of this process's pool workers.
  static bool InWorker();

  /// Number of persistent workers spawned so far (observability for tests
  /// and the ParallelFor-overhead benchmark; monotone non-decreasing).
  size_t worker_count() const;

  /// Number of jobs handed to the pool (serial fallbacks not counted).
  uint64_t jobs_dispatched() const;

 private:
  struct Job {
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    size_t count = 0;
    size_t chunk_count = 0;
    size_t chunk_size = 0;
    /// Next chunk index to claim (fetch_add work stealing).
    std::atomic<size_t> next{0};
    /// Chunks fully executed; the job is complete at == chunk_count.
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  /// Claims and runs chunks of `job` until its counter is exhausted.
  void ExecuteChunks(Job* job);
  /// Spawns workers until worker_count() >= target. Requires mu_ held.
  void EnsureWorkersLocked(size_t target);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Workers park here between jobs.
  std::condition_variable done_cv_;  // Dispatchers wait for job completion.
  std::mutex dispatch_mu_;           // At most one pool job at a time.
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;  // Latest dispatched job (workers snapshot it).
  uint64_t jobs_dispatched_ = 0;
  bool shutdown_ = false;
};

}  // namespace csod

#endif  // CSOD_COMMON_THREAD_POOL_H_
