#ifndef CSOD_COMMON_GRID_H_
#define CSOD_COMMON_GRID_H_

#include <cmath>

namespace csod {

/// \brief Fixed-point value grid used by generators and partitioners.
///
/// All generated data values and all partition shares are multiples of
/// `kValueGrid` (2^-16). Sums and differences of such multiples with
/// magnitude below ~2^37 are *exact* in double arithmetic regardless of
/// association order, so the additive slice model `Σ_l x_l = x` holds
/// bitwise — which keeps exact-equality mode detection (Definition 2)
/// meaningful on re-aggregated data.
inline constexpr double kValueGrid = 1.0 / 65536.0;

/// Rounds `v` to the nearest grid multiple.
inline double QuantizeToGrid(double v) {
  return std::round(v * 65536.0) * kValueGrid;
}

}  // namespace csod

#endif  // CSOD_COMMON_GRID_H_
