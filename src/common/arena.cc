#include "common/arena.h"

#include <cstdint>

namespace csod {

Arena::Arena(size_t page_bytes)
    : page_bytes_(page_bytes == 0 ? kDefaultPageBytes : page_bytes) {}

Arena::~Arena() = default;

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  if (alignment == 0) alignment = 1;
  // Align the bump pointer within the current page.
  uintptr_t p = reinterpret_cast<uintptr_t>(cur_);
  uintptr_t aligned = (p + (alignment - 1)) & ~uintptr_t(alignment - 1);
  if (cur_ == nullptr || aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
    // The new page comes max_align-aligned from operator new[], so
    // re-aligning inside it is a no-op for any supported alignment.
    AddPage(bytes);
    aligned = reinterpret_cast<uintptr_t>(cur_);
  }
  cur_ = reinterpret_cast<unsigned char*>(aligned + bytes);
  allocated_bytes_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::AddPage(size_t min_bytes) {
  const size_t capacity = min_bytes > page_bytes_ ? min_bytes : page_bytes_;
  Page page;
  page.data = std::make_unique<unsigned char[]>(capacity);
  page.capacity = capacity;
  cur_ = page.data.get();
  end_ = cur_ + capacity;
  pages_.push_back(std::move(page));
}

}  // namespace csod
