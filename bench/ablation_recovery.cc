// Ablation: recovery-algorithm choice (DESIGN.md decision 2/3).
//
// The paper argues (Section 2.2) that OMP is the right recovery for the
// outlier problem — simple, fast, and "greedy on the significant
// components". This harness quantifies that choice on biased-sparse data,
// comparing four recoveries at equal measurement budgets:
//   BOMP           (the paper's algorithm)
//   OMP+known-mode (oracle mode)
//   Biased CoSaMP  (greedy with uniform guarantees)
//   Biased BP      (convex L1 via FISTA, bias unpenalized)
//
// Flags: --n --s --trials --m-list

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "cs/basis_pursuit.h"
#include "cs/bomp.h"
#include "cs/cosamp.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "workload/generators.h"

namespace {

using namespace csod;

struct MethodStats {
  std::vector<double> ek;       // Per M: average EK.
  std::vector<double> millis;   // Per M: average recovery time.
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000));
  const size_t s = static_cast<size_t>(flags.GetInt("s", 25));
  const size_t k = 5;
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 2 : 5));
  const std::vector<int64_t> m_list =
      flags.GetIntList("m-list", {100, 150, 200, 300, 400});

  bench::Banner("Ablation: recovery algorithm",
                "EK and recovery time on biased-sparse data, equal M");
  std::printf("N = %zu, s = %zu, k = %zu, trials = %zu, mode b = 5000\n\n", n,
              s, k, trials);

  MethodStats bomp_stats, omp_stats, cosamp_stats, bp_stats;
  for (int64_t m64 : m_list) {
    const size_t m = static_cast<size_t>(m64);
    double ek[4] = {0, 0, 0, 0};
    double ms[4] = {0, 0, 0, 0};
    for (size_t t = 0; t < trials; ++t) {
      workload::MajorityDominatedOptions gen;
      gen.n = n;
      gen.sparsity = s;
      gen.seed = 600 + t;
      auto x = workload::GenerateMajorityDominated(gen).MoveValue();
      const auto truth = outlier::ExactKOutliers(x, k);

      cs::MeasurementMatrix matrix(m, n, 8100 + t * 37 + m);
      auto y = matrix.Multiply(x).MoveValue();

      Stopwatch watch;

      // BOMP.
      cs::BompOptions bomp_options;
      bomp_options.max_iterations = s + 3;
      watch.Restart();
      auto bomp = cs::RunBomp(matrix, y, bomp_options).MoveValue();
      ms[0] += watch.ElapsedMillis();
      ek[0] += outlier::ErrorOnKey(truth,
                                   outlier::KOutliersFromRecovery(bomp, k));

      // OMP with known mode.
      watch.Restart();
      auto omp =
          cs::RecoverWithKnownMode(matrix, y, gen.mode, bomp_options)
              .MoveValue();
      ms[1] += watch.ElapsedMillis();
      ek[1] +=
          outlier::ErrorOnKey(truth, outlier::KOutliersFromRecovery(omp, k));

      // Biased CoSaMP.
      cs::CosampOptions cosamp_options;
      cosamp_options.sparsity = s;
      watch.Restart();
      auto cosamp = cs::RunBiasedCosamp(matrix, y, cosamp_options).MoveValue();
      ms[2] += watch.ElapsedMillis();
      ek[2] += outlier::ErrorOnKey(truth,
                                   outlier::KOutliersFromRecovery(cosamp, k));

      // Biased Basis Pursuit.
      cs::BasisPursuitOptions bp_options;
      bp_options.max_iterations = 1500;
      bp_options.lambda = 2.0;
      watch.Restart();
      auto bp = cs::RunBiasedBasisPursuit(matrix, y, bp_options).MoveValue();
      ms[3] += watch.ElapsedMillis();
      ek[3] +=
          outlier::ErrorOnKey(truth, outlier::KOutliersFromRecovery(bp, k));
    }
    bomp_stats.ek.push_back(ek[0] / trials);
    bomp_stats.millis.push_back(ms[0] / trials);
    omp_stats.ek.push_back(ek[1] / trials);
    omp_stats.millis.push_back(ms[1] / trials);
    cosamp_stats.ek.push_back(ek[2] / trials);
    cosamp_stats.millis.push_back(ms[2] / trials);
    bp_stats.ek.push_back(ek[3] / trials);
    bp_stats.millis.push_back(ms[3] / trials);
  }

  bench::PrintHeader("M =", m_list);
  bench::PrintPercentRow("EK BOMP", bomp_stats.ek);
  bench::PrintPercentRow("EK OMP+known-mode", omp_stats.ek);
  bench::PrintPercentRow("EK Biased CoSaMP", cosamp_stats.ek);
  bench::PrintPercentRow("EK Biased BP", bp_stats.ek);
  std::printf("\n");
  bench::PrintDoubleRow("ms BOMP", bomp_stats.millis);
  bench::PrintDoubleRow("ms OMP+known-mode", omp_stats.millis);
  bench::PrintDoubleRow("ms Biased CoSaMP", cosamp_stats.millis);
  bench::PrintDoubleRow("ms Biased BP", bp_stats.millis);

  std::printf(
      "\nExpected: BOMP matches the oracle's accuracy without knowing the "
      "mode and is the cheapest at small recovery budgets; BP needs many "
      "more iterations for comparable accuracy (the Section 2.2 argument "
      "for OMP).\n");
  return 0;
}
