// Figures 10 and 11: end-to-end MapReduce job duration (and its
// mapper/reducer breakdown) vs measurement size M, for the CS-based job
// against the traditional shuffle-everything top-k job, on
//   (a) Power-Law alpha = 1.5 synthetic data, small input,
//   (b) the same data with a much larger raw input (more splits and more
//       raw events per key — the regime where the paper's savings grow),
//   (c) the production click-log workload.
//
// The paper ran Hadoop 2.4.0 on a 10-node cluster (1 Gbps); here the jobs
// execute for real in-process (map compute, compression, recovery, sort
// are measured) and IO/shuffle times come from the byte-exact cost model
// calibrated to that cluster (see mapreduce/cost_model.h).
//
// The in-process engine itself runs map tasks (and reduce tasks)
// concurrently under --threads (0 = hardware limit); each scenario prints
// the measured engine wall clock per phase so the parallel executor's
// speedup on this machine is visible next to the simulated cluster
// timings (bench_mapreduce sweeps thread limits and digests outputs).
//
// Default N = 20K (the paper's synthetic N = 100K; use --n=100000 for
// paper scale). Flags: --n --m-list --threads --quick

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "mapreduce/jobs.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

struct Scenario {
  std::string name;
  std::vector<std::vector<mr::ScoreEvent>> splits;
  size_t n;
};

Scenario MakeSyntheticScenario(const std::string& name, size_t n,
                               size_t num_splits, size_t events_per_key,
                               uint64_t seed) {
  workload::PowerLawOptions gen;
  gen.n = n;
  gen.alpha = 1.5;
  gen.seed = seed;
  auto global = workload::GeneratePowerLaw(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = num_splits;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();

  Scenario s;
  s.name = name;
  s.n = n;
  s.splits = mr::ExpandSlicesToEvents(slices, events_per_key, seed + 2);
  return s;
}

Scenario MakeProductScenario(size_t n, uint64_t seed) {
  workload::ClickLogOptions gen;
  gen.score_type = workload::ClickScoreType::kCoreSearch;
  gen.n_override = n;
  gen.sparsity_override = n / 35;  // Paper ratio s/N ≈ 300/10.4K.
  gen.seed = seed;
  auto data = workload::GenerateClickLog(gen).MoveValue();
  // Section 6.2: "we change the data's mode to 0 by subtracting the mode".
  for (double& v : data.global) v -= data.mode;

  workload::PartitionOptions part;
  part.num_nodes = 12;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(data.global, part).MoveValue();

  Scenario s;
  s.name = "product (click-log)";
  s.n = n;
  s.splits = mr::ExpandSlicesToEvents(slices, 4, seed + 2);
  return s;
}

void RunScenario(const Scenario& scenario,
                 const std::vector<int64_t>& m_list, size_t k) {
  mr::ClusterCostModel model;  // 10 workers, 1 Gbps, Hadoop-era constants.

  auto traditional = mr::RunTraditionalTopKJob(scenario.splits, k).MoveValue();
  const double trad_map = model.MapPhaseSeconds(traditional.stats);
  const double trad_reduce = model.ReducePhaseSeconds(traditional.stats);
  const double trad_total = trad_map + trad_reduce;

  std::vector<double> bomp_total, bomp_map, bomp_reduce;
  for (int64_t m64 : m_list) {
    mr::CsJobOptions options;
    options.n = scenario.n;
    options.m = static_cast<size_t>(m64);
    options.k = k;
    options.seed = 77;
    options.cache_budget_bytes = size_t{2} << 30;
    auto result = mr::RunCsOutlierJob(scenario.splits, options).MoveValue();
    bomp_map.push_back(model.MapPhaseSeconds(result.stats));
    bomp_reduce.push_back(model.ReducePhaseSeconds(result.stats));
    bomp_total.push_back(bomp_map.back() + bomp_reduce.back());
  }

  std::printf("\n=== %s: N = %zu, %zu map splits, %.1f M raw events ===\n",
              scenario.name.c_str(), scenario.n, scenario.splits.size(),
              [&] {
                size_t events = 0;
                for (const auto& split : scenario.splits)
                  events += split.size();
                return static_cast<double>(events) / 1e6;
              }());
  bench::PrintHeader("M =", m_list);
  bench::PrintDoubleRow("BOMP end-to-end (s)", bomp_total);
  bench::PrintDoubleRow("BOMP mapper (s)", bomp_map);
  bench::PrintDoubleRow("BOMP reducer (s)", bomp_reduce);
  std::printf("%-24s %8.2f (independent of M; map %.2f, reduce %.2f)\n",
              "Traditional top-k (s)", trad_total, trad_map, trad_reduce);
  std::printf("%-24s %s vs %s shuffled\n", "shuffle volume",
              "BOMP: L*M*8B",
              (std::to_string(traditional.stats.shuffle_bytes / 1024) +
               " KiB traditional")
                  .c_str());
  std::printf("%-24s map %.1f ms, shuffle %.1f ms, reduce %.1f ms "
              "(traditional job, %zu-thread engine on this box)\n",
              "engine wall clock", traditional.stats.map_wall_sec * 1e3,
              traditional.stats.shuffle_wall_sec * 1e3,
              traditional.stats.reduce_wall_sec * 1e3,
              csod::GetParallelismLimit());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 20000));
  const bool quick = flags.GetBool("quick", false);
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) SetParallelismLimit(static_cast<size_t>(threads));
  const std::vector<int64_t> m_list = flags.GetIntList(
      "m-list", quick ? std::vector<int64_t>{100, 400, 800}
                      : std::vector<int64_t>{100, 200, 300, 400, 500, 600,
                                             700, 800, 900, 1000});
  const size_t k = 5;

  bench::Banner("Figures 10 & 11",
                "Hadoop end-to-end time and map/reduce breakdown vs M: "
                "CS-based job vs traditional top-k");
  std::printf("Cost model: 10 workers, 1 Gbps network, 100 MB/s disk, "
              "10 us/tuple; compute measured for real.\n");

  RunScenario(MakeSyntheticScenario("alpha=1.5, small input", n, 8,
                                    /*events_per_key=*/2, 1),
              m_list, k);
  RunScenario(MakeSyntheticScenario("alpha=1.5, big input", n, 40,
                                    /*events_per_key=*/10, 5),
              m_list, k);
  RunScenario(MakeProductScenario(n / 2, 9), m_list, k);

  std::printf(
      "\nExpected shape: BOMP beats the traditional job while M is small "
      "(less shuffle, cheaper reducers) and loses once the recovery cost "
      "at large M dominates; the crossover moves right — and the savings "
      "grow — as the input gets bigger (Figure 10(b)).\n");
  return 0;
}
