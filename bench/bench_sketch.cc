// End-to-end node-side sketching benchmark: the fault-free coordinator path
// (compress every node's slice, aggregate into the global y) timed four ways
// per matrix mode (cached / implicit):
//
//   per_node_seed       — transcription of the pre-SIMD per-node path:
//                         scalar accumulate with the fixed 512-entry block
//                         geometry, then a scalar per-index aggregate. This
//                         is the baseline the speedup numbers are against.
//   per_node_simd       — the library per-node path (Compressor::Compress
//                         per node + AggregateMeasurements), which now runs
//                         on the dispatched SIMD kernels.
//   compress_accumulate — the fused batched kernel the fault-free protocols
//                         use (Compressor::CompressAccumulate).
//   compress_each       — the batched per-slice kernel the MapReduce mapper
//                         uses (per-node outputs retained), aggregated after.
//
// The workload is a cluster with hot-key overlap: every node carries the
// same --hot hot keys plus private cold keys, which is what makes the
// implicit batch kernel's shared column generation pay off.
//
// All four paths must produce the same y down to the last bit (the axpy
// kernels are element-wise, so SIMD never reassociates sums); the binary
// asserts this and emits an FNV-1a digest of y. Timings vary run to run,
// but the digest/bit-identity lines are deterministic —
// scripts/run_bench_kernels.sh runs the bench twice and diffs exactly
// those lines.
//
// Flags: --l --m --n --nnz --hot --trials --seed --out --quick

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "cs/compressor.h"
#include "cs/measurement_matrix.h"

namespace {

using namespace csod;

// Matches the fixed per-slice reduction geometry of the library kernels.
constexpr size_t kSeedBlockNnz = 512;

// Pre-SIMD per-node compression: scalar accumulate over a hoisted column
// pointer (exactly the pre-SIMD kernel's loop shape), fixed block geometry.
// `cache` is the bench's own column-major copy of the matrix (pre-SIMD code
// read straight out of the member cache); empty when the matrix is implicit.
std::vector<double> SeedCompressNode(const cs::MeasurementMatrix& matrix,
                                     const std::vector<double>& cache,
                                     const cs::SparseSlice& slice) {
  const size_t m = matrix.m();
  const size_t nnz = slice.nnz();
  std::vector<double> scratch(m);
  auto accumulate = [&](size_t k_begin, size_t k_end, double* acc) {
    for (size_t k = k_begin; k < k_end; ++k) {
      const double xj = slice.values[k];
      if (xj == 0.0) continue;
      const size_t j = slice.indices[k];
      if (!cache.empty()) {
        const double* col = cache.data() + j * m;
        for (size_t i = 0; i < m; ++i) acc[i] += col[i] * xj;
      } else {
        matrix.FillColumn(j, scratch.data());
        for (size_t i = 0; i < m; ++i) acc[i] += scratch[i] * xj;
      }
    }
  };
  std::vector<double> y(m, 0.0);
  const size_t num_blocks = (nnz + kSeedBlockNnz - 1) / kSeedBlockNnz;
  if (num_blocks <= 1) {
    accumulate(0, nnz, y.data());
    return y;
  }
  std::vector<double> partials(num_blocks * m, 0.0);
  for (size_t b = 0; b < num_blocks; ++b) {
    accumulate(b * kSeedBlockNnz, std::min(nnz, (b + 1) * kSeedBlockNnz),
               partials.data() + b * m);
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    for (size_t i = 0; i < m; ++i) y[i] += partials[b * m + i];
  }
  return y;
}

std::vector<double> SeedAggregate(
    const std::vector<std::vector<double>>& measurements, size_t m) {
  std::vector<double> y(m, 0.0);
  for (const auto& yl : measurements) {
    for (size_t i = 0; i < m; ++i) y[i] += yl[i];
  }
  return y;
}

// FNV-1a over the raw bits of y — the deterministic output digest.
uint64_t DigestBits(const std::vector<double>& y) {
  uint64_t h = 1469598103934665603ull;
  for (double v : y) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (size_t byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// Hot-key-overlap cluster: every node holds all `hot` hot keys (ids
// [0, hot)) plus private cold keys drawn from the rest of the key space.
std::vector<cs::SparseSlice> MakeCluster(size_t l, size_t n, size_t nnz,
                                         size_t hot, uint64_t seed) {
  std::vector<cs::SparseSlice> slices(l);
  Rng rng(seed);
  for (size_t node = 0; node < l; ++node) {
    cs::SparseSlice& slice = slices[node];
    slice.indices.reserve(nnz);
    slice.values.reserve(nnz);
    for (size_t h = 0; h < hot && h < nnz; ++h) {
      slice.indices.push_back(h);
      slice.values.push_back(rng.NextGaussian() * 10.0);
    }
    while (slice.nnz() < nnz) {
      slice.indices.push_back(
          hot + static_cast<size_t>(rng.NextDouble() *
                                    static_cast<double>(n - hot)) %
                    (n - hot));
      slice.values.push_back(rng.NextGaussian());
    }
  }
  return slices;
}

struct ModeResult {
  const char* mode;
  double seed_ms = 0.0;
  double simd_ms = 0.0;
  double accumulate_ms = 0.0;
  double each_ms = 0.0;
  uint64_t digest = 0;
  bool bit_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const bool quick = flags.GetBool("quick", false);
  const size_t l = static_cast<size_t>(flags.GetInt("l", quick ? 16 : 64));
  const size_t m = static_cast<size_t>(flags.GetInt("m", quick ? 128 : 512));
  const size_t n =
      static_cast<size_t>(flags.GetInt("n", quick ? 20000 : 100000));
  const size_t nnz =
      static_cast<size_t>(flags.GetInt("nnz", quick ? 300 : 1000));
  const size_t hot = static_cast<size_t>(
      flags.GetInt("hot", static_cast<int64_t>(2 * nnz / 5)));
  const size_t trials =
      static_cast<size_t>(flags.GetInt("trials", quick ? 2 : 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out_path = flags.GetString("out", "BENCH_sketch.json");

  bench::Banner("Sketch pipeline",
                "batched fused compress-and-accumulate vs per-node paths");
  std::printf(
      "L = %zu nodes, M = %zu, N = %zu, nnz/node = %zu (%zu hot), trials = "
      "%zu, simd = %s\n\n",
      l, m, n, nnz, hot, trials, simd::LevelName(simd::ActiveLevel()));

  const std::vector<cs::SparseSlice> slices = MakeCluster(l, n, nnz, hot, seed);
  std::vector<const cs::SparseSlice*> slice_ptrs;
  for (const auto& slice : slices) slice_ptrs.push_back(&slice);

  std::vector<ModeResult> results;
  for (const bool cached : {true, false}) {
    cs::MeasurementMatrix matrix(
        m, n, seed + 7,
        cached ? cs::MeasurementMatrix::kDefaultCacheBudgetBytes : 0);
    if (cached && !matrix.cached()) {
      std::fprintf(stderr, "M x N exceeds the default cache budget\n");
      return 1;
    }
    cs::Compressor compressor(&matrix);
    ModeResult res;
    res.mode = cached ? "cached" : "implicit";

    // The seed baseline's own dense column-major copy (what the pre-SIMD
    // kernel's member cache held); left empty in implicit mode.
    std::vector<double> seed_cache;
    if (cached) {
      seed_cache.resize(m * n);
      for (size_t j = 0; j < n; ++j) {
        matrix.FillColumn(j, seed_cache.data() + j * m);
      }
    }

    std::vector<double> y_seed, y_simd, y_accumulate, y_each;
    auto run_seed = [&] {
      std::vector<std::vector<double>> measurements;
      measurements.reserve(l);
      for (const auto& slice : slices) {
        measurements.push_back(SeedCompressNode(matrix, seed_cache, slice));
      }
      y_seed = SeedAggregate(measurements, m);
    };
    auto run_simd = [&] {
      std::vector<std::vector<double>> measurements;
      measurements.reserve(l);
      for (const auto& slice : slices) {
        measurements.push_back(compressor.Compress(slice).MoveValue());
      }
      y_simd = cs::Compressor::AggregateMeasurements(measurements).MoveValue();
    };
    auto run_accumulate = [&] {
      compressor.CompressAccumulate(slices, &y_accumulate).Check();
    };
    auto run_each = [&] {
      auto each = compressor.CompressEach(slice_ptrs).MoveValue();
      y_each = SeedAggregate(each, m);
    };

    // Trials are interleaved round-robin so a transient load spike hits all
    // four paths alike instead of whichever one owned that time window; each
    // path reports its best trial. One untimed warm-up pass first.
    run_seed();
    run_simd();
    run_accumulate();
    run_each();
    double best[4] = {1e300, 1e300, 1e300, 1e300};
    auto time_into = [&](double* slot, auto&& body) {
      Stopwatch watch;
      body();
      *slot = std::min(*slot, watch.ElapsedMillis());
    };
    for (size_t t = 0; t < trials; ++t) {
      time_into(&best[0], run_seed);
      time_into(&best[1], run_simd);
      time_into(&best[2], run_accumulate);
      time_into(&best[3], run_each);
    }
    res.seed_ms = best[0];
    res.simd_ms = best[1];
    res.accumulate_ms = best[2];
    res.each_ms = best[3];

    res.digest = DigestBits(y_accumulate);
    res.bit_identical =
        y_seed == y_simd && y_simd == y_accumulate && y_accumulate == y_each;
    results.push_back(res);

    std::printf("%-9s per_node_seed %9.2f ms | per_node_simd %9.2f ms "
                "(%4.2fx) | fused %9.2f ms (%4.2fx) | each %9.2f ms (%4.2fx)\n",
                res.mode, res.seed_ms, res.simd_ms, res.seed_ms / res.simd_ms,
                res.accumulate_ms, res.seed_ms / res.accumulate_ms, res.each_ms,
                res.seed_ms / res.each_ms);
    std::printf("          y digest 0x%016" PRIx64 ", all paths bit-identical:"
                " %s\n",
                res.digest, res.bit_identical ? "yes" : "NO");
    if (!res.bit_identical) return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sketch\",\n");
  std::fprintf(out,
               "  \"config\": {\"l\": %zu, \"m\": %zu, \"n\": %zu, "
               "\"nnz\": %zu, \"hot\": %zu, \"trials\": %zu, \"seed\": %llu, "
               "\"simd\": \"%s\"},\n",
               l, m, n, nnz, hot, trials,
               static_cast<unsigned long long>(seed),
               simd::LevelName(simd::ActiveLevel()));
  std::fprintf(out, "  \"modes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(
        out,
        "    {\"mode\": \"%s\",\n"
        "     \"per_node_seed_ms\": %.3f, \"per_node_simd_ms\": %.3f,\n"
        "     \"compress_accumulate_ms\": %.3f, \"compress_each_ms\": %.3f,\n"
        "     \"speedup_simd_vs_seed\": %.3f,\n"
        "     \"speedup_batched_vs_seed\": %.3f,\n"
        "     \"y_digest\": \"0x%016" PRIx64 "\",\n"
        "     \"bit_identical\": %s}%s\n",
        r.mode, r.seed_ms, r.simd_ms, r.accumulate_ms, r.each_ms,
        r.seed_ms / r.simd_ms, r.seed_ms / r.accumulate_ms, r.digest,
        r.bit_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nWrote %s\n", out_path.c_str());
  return 0;
}
