// Ablation: CS measurements vs traditional linear sketches (Section 7.2).
//
// Both the CS measurement and CountSketch are linear, so both merge
// exactly across nodes — but only CS recovery can separate an *unknown
// non-zero mode* from the outliers. At equal per-node communication
// budgets this harness compares, on mode-dominated production-like data:
//   - k-outlier accuracy: BOMP vs merged-CountSketch estimates,
//   - zero-mode top-k accuracy: BOMP vs CountSketch (the sketch's home
//     turf).
//
// Flags: --n --s --trials --budget-list (tuples per node)

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "dist/cs_protocol.h"
#include "outlier/metrics.h"
#include "sketch/sketch_protocols.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

std::unique_ptr<dist::Cluster> BuildCluster(const std::vector<double>& global,
                                            uint64_t seed) {
  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed;
  auto cluster = std::make_unique<dist::Cluster>(global.size());
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  for (auto& slice : slices) cluster->AddNode(std::move(slice)).Value();
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 4000));
  const size_t s = static_cast<size_t>(flags.GetInt("s", 40));
  const size_t k = 5;
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 2 : 5));
  const std::vector<int64_t> budget_list =
      flags.GetIntList("budget-list", {100, 200, 400, 800});

  bench::Banner("Ablation: CS vs traditional sketches",
                "equal per-node budgets (8-byte tuples), 8 nodes");
  std::printf("N = %zu, s = %zu, k = %zu, trials = %zu\n\n", n, s, k, trials);

  // --- Part 1: mode-dominated outlier detection. ---
  std::printf("Part 1: k-outlier EK on mode-dominated data (b = 5000)\n");
  bench::PrintHeader("budget =", budget_list);
  {
    std::vector<double> cs_ek_avg, sk_ek_avg;
    for (int64_t budget : budget_list) {
      double cs_ek = 0.0;
      double sk_ek = 0.0;
      for (size_t t = 0; t < trials; ++t) {
        workload::MajorityDominatedOptions gen;
        gen.n = n;
        gen.sparsity = s;
        gen.seed = 50 + t;
        auto global = workload::GenerateMajorityDominated(gen).MoveValue();
        const auto truth = outlier::ExactKOutliers(global, k);
        auto cluster = BuildCluster(global, 60 + t);

        dist::CsProtocolOptions cs_options;
        cs_options.m = static_cast<size_t>(budget);
        cs_options.seed = 7000 + t * 13 + budget;
        // Recovery budget past the data's sparsity (values exact once the
        // whole outlier set is absorbed).
        cs_options.iterations = s + 10;
        dist::CsOutlierProtocol cs_protocol(cs_options);
        dist::CommStats cs_comm;
        auto cs_result = cs_protocol.Run(*cluster, k, &cs_comm).MoveValue();
        cs_ek += outlier::ErrorOnKey(truth, cs_result);

        sketch::CountSketchProtocolOptions sk_options;
        sk_options.depth = 5;
        sk_options.width =
            std::max<size_t>(1, static_cast<size_t>(budget) / 5);
        sk_options.seed = 7000 + t * 13 + budget;
        sketch::CountSketchOutlierProtocol sk_protocol(sk_options);
        dist::CommStats sk_comm;
        auto sk_result = sk_protocol.Run(*cluster, k, &sk_comm).MoveValue();
        sk_ek += outlier::ErrorOnKey(truth, sk_result);
      }
      cs_ek_avg.push_back(cs_ek / trials);
      sk_ek_avg.push_back(sk_ek / trials);
    }
    bench::PrintPercentRow("EK BOMP", cs_ek_avg);
    bench::PrintPercentRow("EK CountSketch", sk_ek_avg);
  }

  // --- Part 2: zero-mode top-k (heavy hitters). ---
  std::printf("\nPart 2: top-%zu EK on zero-mode power-law data\n", k);
  bench::PrintHeader("budget =", budget_list);
  {
    std::vector<double> cs_ek_avg, sk_ek_avg;
    for (int64_t budget : budget_list) {
      double cs_ek = 0.0;
      double sk_ek = 0.0;
      for (size_t t = 0; t < trials; ++t) {
        workload::PowerLawOptions gen;
        gen.n = n;
        gen.alpha = 0.8;
        gen.seed = 90 + t;
        auto global = workload::GeneratePowerLaw(gen).MoveValue();
        const auto truth_vec = outlier::TopK(global, k);
        outlier::OutlierSet truth;
        truth.outliers = truth_vec;
        auto cluster = BuildCluster(global, 100 + t);

        dist::CsProtocolOptions cs_options;
        cs_options.m = static_cast<size_t>(budget);
        cs_options.seed = 8800 + t * 17 + budget;
        cs_options.iterations = 3 * k;
        dist::CsOutlierProtocol cs_protocol(cs_options);
        dist::CommStats cs_comm;
        auto cs_run = cs_protocol.Run(*cluster, k, &cs_comm);
        // Rank recovered entries by value for top-k.
        outlier::OutlierSet cs_top;
        if (cs_run.ok()) {
          std::vector<outlier::Outlier> entries;
          for (const auto& e : cs_run.Value().outliers) entries.push_back(e);
          // Recovered "outliers" on zero-mode data are the big values.
          std::sort(entries.begin(), entries.end(),
                    [](const outlier::Outlier& a, const outlier::Outlier& b) {
                      return a.value > b.value;
                    });
          cs_top.outliers = std::move(entries);
        }
        cs_ek += outlier::ErrorOnKey(truth, cs_top);

        sketch::CountSketchProtocolOptions sk_options;
        sk_options.depth = 5;
        sk_options.width =
            std::max<size_t>(1, static_cast<size_t>(budget) / 5);
        sk_options.seed = 8800 + t * 17 + budget;
        dist::CommStats sk_comm;
        auto sk_run =
            sketch::RunCountSketchTopK(*cluster, k, sk_options, &sk_comm)
                .MoveValue();
        outlier::OutlierSet sk_top;
        sk_top.outliers = sk_run.top;
        sk_ek += outlier::ErrorOnKey(truth, sk_top);
      }
      cs_ek_avg.push_back(cs_ek / trials);
      sk_ek_avg.push_back(sk_ek / trials);
    }
    bench::PrintPercentRow("EK BOMP top-k", cs_ek_avg);
    bench::PrintPercentRow("EK CountSketch top-k", sk_ek_avg);
  }

  std::printf(
      "\nExpected: on mode-dominated data only BOMP reaches EK ~ 0 — the "
      "sketch's per-key noise ~ |b|*sqrt(N/width) buries the outliers. On "
      "zero-mode heavy-hitter data both approaches work, with the sketch "
      "competitive (its home turf).\n");
  return 0;
}
