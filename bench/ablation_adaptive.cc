// Ablation: fixed-M vs adaptive-M protocol (DESIGN.md decision 7 /
// THEORY.md §5).
//
// The fixed protocol needs M sized for the data's (unknown) sparsity;
// pick M too small and the answer is wrong, too large and bytes are
// wasted. The adaptive protocol grows M geometrically using the matrix's
// row-prefix property (no retransmission) and stops when the recovery
// certifies itself. This harness sweeps workload sparsities and compares:
//   - fixed-M at a pessimistic worst-case budget,
//   - fixed-M at an oracle budget (sized knowing s),
//   - adaptive (no knowledge of s).
//
// Flags: --n --trials --s-list

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "dist/adaptive_cs_protocol.h"
#include "dist/cs_protocol.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

struct ClusterSetup {
  std::unique_ptr<dist::Cluster> cluster;
  outlier::OutlierSet truth;
};

ClusterSetup MakeCluster(size_t n, size_t s, size_t k, uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  ClusterSetup setup;
  setup.cluster = std::make_unique<dist::Cluster>(n);
  for (auto& slice : slices) setup.cluster->AddNode(std::move(slice)).Value();
  setup.truth = outlier::ExactKOutliers(global, k);
  return setup;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 2000));
  const size_t k = 5;
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 2 : 5));
  const std::vector<int64_t> s_list =
      flags.GetIntList("s-list", {5, 15, 40, 100});

  bench::Banner("Ablation: fixed-M vs adaptive-M",
                "per-node bytes and EK across unknown workload sparsities");
  std::printf("N = %zu, k = %zu, 8 nodes, trials = %zu; worst-case fixed "
              "budget sized for s = 100\n\n",
              n, k, trials);
  std::printf("%-8s %16s %16s %22s %10s\n", "s", "fixed-worst B/node",
              "fixed-oracle B/node", "adaptive B/node (rounds)", "EK adapt");

  for (int64_t s64 : s_list) {
    const size_t s = static_cast<size_t>(s64);
    double adaptive_bytes = 0.0;
    double adaptive_rounds = 0.0;
    double adaptive_ek = 0.0;
    size_t oracle_m = 0;
    size_t worst_m = 0;
    for (size_t t = 0; t < trials; ++t) {
      ClusterSetup setup = MakeCluster(n, s, k, 900 + t * 31 + s);

      // Oracle fixed M: ~4(s+1)log(N) — sized with knowledge of s.
      oracle_m = std::min(
          n, static_cast<size_t>(4.0 * (s + 1) *
                                 std::log(static_cast<double>(n))));
      // Worst-case fixed M: sized for the largest anticipated sparsity.
      worst_m = std::min(
          n, static_cast<size_t>(4.0 * 101 *
                                 std::log(static_cast<double>(n))));

      dist::AdaptiveCsOptions adaptive_options;
      adaptive_options.initial_m = 32;
      adaptive_options.max_m = n;
      adaptive_options.seed = 40 + t;
      adaptive_options.iterations = s + 8;  // Past s: residual certifies.
      dist::AdaptiveCsProtocol adaptive(adaptive_options);
      dist::CommStats comm;
      auto result = adaptive.Run(*setup.cluster, k, &comm).MoveValue();
      // Per-node bytes (8 nodes share the total symmetrically).
      adaptive_bytes += static_cast<double>(comm.bytes_total()) / 8.0;
      adaptive_rounds += static_cast<double>(adaptive.rounds().size());
      adaptive_ek += outlier::ErrorOnKey(setup.truth, result);
    }
    std::printf("%-8zu %16zu %16zu %15.0f (%.1f) %9.1f%%\n", s,
                worst_m * 8, oracle_m * 8, adaptive_bytes / trials,
                adaptive_rounds / trials, 100.0 * adaptive_ek / trials);
  }

  std::printf(
      "\nExpected: adaptive lands near the oracle's budget at every "
      "sparsity without knowing s, while a safe fixed choice pays the "
      "worst case everywhere; EK stays 0.\n");
  return 0;
}
