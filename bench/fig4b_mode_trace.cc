// Figure 4(b): the value of the recovered mode (bias) after each BOMP
// iteration on majority-dominated data. The paper's observation: the
// estimate oscillates while the outliers are being picked up and
// stabilizes at the true mode b once the iteration count passes s + 1,
// matching Theorem 1.
//
// Flags: --n=N --s-list=50,100,200 --m-list=500,700,1000 --iters=300

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace csod;
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000));
  const std::vector<int64_t> s_list =
      flags.GetIntList("s-list", {50, 100, 200});
  // M per s: sizes at which Figure 4(a) reaches 100% exact recovery.
  const std::vector<int64_t> m_list =
      flags.GetIntList("m-list", {500, 700, 1000});
  const size_t iters = static_cast<size_t>(flags.GetInt("iters", 300));

  bench::Banner("Figure 4(b)",
                "mode (bias) estimate per BOMP iteration, majority-dominated"
                " data, b = 5000");
  std::printf("N = %zu; expected: trace locks onto 5000 at iteration s+1\n\n",
              n);

  for (size_t i = 0; i < s_list.size(); ++i) {
    const size_t s = static_cast<size_t>(s_list[i]);
    const size_t m =
        static_cast<size_t>(m_list[std::min(i, m_list.size() - 1)]);

    workload::MajorityDominatedOptions gen;
    gen.n = n;
    gen.sparsity = s;
    gen.mode = 5000.0;
    gen.seed = 11;
    auto x = workload::GenerateMajorityDominated(gen).MoveValue();

    cs::MeasurementMatrix matrix(m, n, 77 + s);
    auto y = matrix.Multiply(x).MoveValue();

    cs::BompOptions options;
    options.max_iterations = std::min(iters, m);
    options.record_mode_trace = true;
    options.stop_on_residual_stagnation = false;
    auto result = cs::RunBomp(matrix, y, options).MoveValue();

    std::printf("s = %zu (M = %zu): mode estimate every 10 iterations\n", s,
                m);
    const auto& trace = result.mode_trace;
    for (size_t it = 0; it < trace.size(); it += 10) {
      std::printf("  iter %4zu: %12.2f%s\n", it + 1, trace[it],
                  it + 1 >= s + 1 ? "   (past s+1)" : "");
    }
    if (!trace.empty()) {
      std::printf("  final (%zu iters): %12.2f — stabilized %s\n\n",
                  trace.size(), trace.back(),
                  std::fabs(trace.back() - 5000.0) < 1.0 ? "at b = 5000"
                                                         : "AWAY FROM b!");
    }
  }
  return 0;
}
