#ifndef CSOD_BENCH_BENCH_UTIL_H_
#define CSOD_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses. Each harness is a
// standalone binary that prints the series of one paper figure; all accept
//   --quick        smaller sweep (default when no flags are given is the
//                  calibrated default below, already laptop-sized)
//   --trials=T     number of random measurement matrices per point
//   --n=N ...      full paper-scale overrides (see each binary's --help).

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"

namespace csod::bench {

/// Prints a table header row: name column + one column per M value.
inline void PrintHeader(const std::string& label,
                        const std::vector<int64_t>& columns) {
  std::printf("%-24s", label.c_str());
  for (int64_t c : columns) std::printf(" %8lld", static_cast<long long>(c));
  std::printf("\n");
}

/// Prints a data row of percentages.
inline void PrintPercentRow(const std::string& label,
                            const std::vector<double>& values) {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf(" %7.1f%%", 100.0 * v);
  std::printf("\n");
}

/// Prints a data row of raw doubles.
inline void PrintDoubleRow(const std::string& label,
                           const std::vector<double>& values,
                           const char* fmt = " %8.2f") {
  std::printf("%-24s", label.c_str());
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

/// Standard banner naming the figure being reproduced.
inline void Banner(const char* figure, const char* description) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================="
              "=\n");
}

}  // namespace csod::bench

#endif  // CSOD_BENCH_BENCH_UTIL_H_
