// Fault sweep: answer quality and retry cost of the CS protocol under an
// unreliable data plane (docs/FAULT_MODEL.md).
//
// Two scenarios, both against the full-cluster ground truth:
//   1. Drop-rate sweep — every node→coordinator message is lost with
//      probability p; the coordinator retries with backoff, so quality
//      only degrades when a node exhausts the retry budget (per-node
//      exclusion probability p^(1+max_retries)).
//   2. Crash scenario — 1 of --nodes crashes before sending and every
//      retry fails; the protocol answers from the partial sum and reports
//      the excluded node. With --by-key partitioning the lost slice is
//      exactly that node's keys, so recall measures the lost data.
//
// Emits BENCH_faults.json (deterministic: no timestamps, every fault seed
// derived arithmetically from --seed; two runs with equal flags produce
// byte-identical files — scripts/run_bench_faults.sh diffs them).
//
// --telemetry-json=FILE additionally attaches one obs::Telemetry sink to
// every protocol run and writes its deterministic snapshot; the JSON's
// "collection_totals" sums retries/exclusions over the same runs so
// scripts/run_telemetry_check.sh can cross-check the snapshot's
// "comm.retries"/"comm.excluded_nodes" counters against the reports.
//
// Flags: --n --s --k --nodes --m --trials --seed --drop-list --out
//        --telemetry-json --quick

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "dist/cs_protocol.h"
#include "obs/telemetry.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

struct ClusterSetup {
  std::unique_ptr<dist::Cluster> cluster;
  outlier::OutlierSet truth;
};

ClusterSetup MakeCluster(size_t n, size_t s, size_t num_nodes, size_t k,
                         uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  // By-key placement: a crashed node's lost slice is exactly its keys,
  // which makes the degraded recall number interpretable.
  part.strategy = workload::PartitionStrategy::kByKey;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  ClusterSetup setup;
  setup.cluster = std::make_unique<dist::Cluster>(n);
  for (auto& slice : slices) setup.cluster->AddNode(std::move(slice)).Value();
  setup.truth = outlier::ExactKOutliers(global, k);
  return setup;
}

// Mean over trials of one scenario's per-trial numbers.
struct SweepPoint {
  double ek = 0.0;
  double ev = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double excluded_fraction = 0.0;
  double retries = 0.0;
  double retry_bytes = 0.0;
  double total_bytes = 0.0;

  void Accumulate(const outlier::DegradedRunStats& stats,
                  const dist::CommStats& comm) {
    ek += stats.error_on_key;
    ev += stats.error_on_value;
    precision += stats.quality.precision;
    recall += stats.quality.recall;
    excluded_fraction += stats.excluded_fraction();
    retries += static_cast<double>(stats.retries);
    const auto& phases = comm.bytes_by_phase();
    auto phase_bytes = [&phases](const char* name) {
      auto it = phases.find(name);
      return it == phases.end() ? 0.0 : static_cast<double>(it->second);
    };
    retry_bytes += phase_bytes("measurements-retry") +
                   phase_bytes("retry-request");
    total_bytes += static_cast<double>(comm.bytes_total());
  }

  SweepPoint Mean(size_t trials) const {
    const double t = static_cast<double>(trials);
    return SweepPoint{ek / t,      ev / t,          precision / t,
                      recall / t,  excluded_fraction / t,
                      retries / t, retry_bytes / t, total_bytes / t};
  }
};

void PrintJsonPoint(std::FILE* out, const SweepPoint& p, const char* indent) {
  std::fprintf(out,
               "%s\"ek\": %.6f, \"ev\": %.6f, \"precision\": %.6f, "
               "\"recall\": %.6f,\n"
               "%s\"excluded_fraction\": %.6f, \"retries\": %.2f, "
               "\"retry_bytes\": %.1f, \"total_bytes\": %.1f",
               indent, p.ek, p.ev, p.precision, p.recall, indent,
               p.excluded_fraction, p.retries, p.retry_bytes, p.total_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const bool quick = flags.GetBool("quick", false);
  const size_t n = static_cast<size_t>(flags.GetInt("n", quick ? 800 : 2000));
  const size_t s = static_cast<size_t>(flags.GetInt("s", 20));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const size_t num_nodes = static_cast<size_t>(flags.GetInt("nodes", 16));
  const size_t trials =
      static_cast<size_t>(flags.GetInt("trials", quick ? 2 : 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  // Default M sized generously: the degraded partial aggregate of a by-key
  // cluster is (s + n/L)-sparse, not s-sparse.
  const size_t default_m = std::min(
      n / 2, static_cast<size_t>(
                 4.0 * static_cast<double>(s + 1 + n / num_nodes) *
                 std::log(static_cast<double>(n))));
  const size_t m = static_cast<size_t>(flags.GetInt("m", static_cast<int64_t>(default_m)));
  const std::vector<int64_t> drop_list =
      flags.GetIntList("drop-list", {0, 5, 10, 20, 40});
  const std::string out_path = flags.GetString("out", "BENCH_faults.json");
  const std::string telemetry_path = flags.GetString("telemetry-json", "");

  // One sink across every protocol run of the sweep; null when the flag is
  // off so the benchmark's hot paths keep the disabled-sink fast path.
  obs::Telemetry telemetry;
  obs::Telemetry* sink = telemetry_path.empty() ? nullptr : &telemetry;
  // Summed CollectionReport numbers over the same runs the sink saw.
  uint64_t total_retries = 0;
  uint64_t total_excluded = 0;
  uint64_t total_runs = 0;

  dist::CsProtocolOptions base;
  base.m = m;
  base.seed = 17;
  base.iterations = s + n / num_nodes + 8;  // Past the degraded sparsity.
  base.retry.max_retries = 3;
  base.retry.timeout_ticks = 4;
  base.retry.backoff = 2.0;

  bench::Banner("Fault sweep",
                "CS-protocol quality and retry cost on a lossy data plane");
  std::printf("N = %zu, s = %zu, k = %zu, L = %zu nodes, M = %zu, trials = "
              "%zu, retry budget = %zu\n\n",
              n, s, k, num_nodes, m, trials, base.retry.max_retries);

  // --- Scenario 0: zero-fault bit-identity -------------------------------
  bool bit_identical = true;
  {
    ClusterSetup setup = MakeCluster(n, s, num_nodes, k, seed * 7919 + 1);
    dist::CsOutlierProtocol plain(base);
    dist::CsProtocolOptions zero = base;
    zero.faults.seed = seed * 1000003;  // Seed set, every rate zero.
    dist::CsOutlierProtocol with_plan(zero);
    plain.set_telemetry(sink);
    with_plan.set_telemetry(sink);
    dist::CommStats comm_a, comm_b;
    auto a = plain.Run(*setup.cluster, k, &comm_a).MoveValue();
    auto b = with_plan.Run(*setup.cluster, k, &comm_b).MoveValue();
    total_retries += plain.last_collection().retries +
                     with_plan.last_collection().retries;
    total_excluded += plain.last_collection().excluded_nodes.size() +
                      with_plan.last_collection().excluded_nodes.size();
    total_runs += 2;
    bit_identical = a.mode == b.mode &&
                    a.outliers.size() == b.outliers.size() &&
                    comm_a.bytes_total() == comm_b.bytes_total() &&
                    comm_a.bytes_by_phase() == comm_b.bytes_by_phase();
    for (size_t i = 0; bit_identical && i < a.outliers.size(); ++i) {
      bit_identical = a.outliers[i].key_index == b.outliers[i].key_index &&
                      a.outliers[i].value == b.outliers[i].value;
    }
    std::printf("zero-fault plan bit-identical to plain protocol: %s\n\n",
                bit_identical ? "yes" : "NO");
  }

  // --- Scenario 1: drop-rate sweep ---------------------------------------
  std::printf("%-8s %8s %8s %10s %8s %10s %9s %12s\n", "drop%", "EK", "EV",
              "precision", "recall", "excluded", "retries", "retry bytes");
  std::vector<SweepPoint> drop_points;
  for (int64_t drop_percent : drop_list) {
    SweepPoint acc;
    for (size_t t = 0; t < trials; ++t) {
      ClusterSetup setup = MakeCluster(n, s, num_nodes, k, seed * 7919 + t);
      dist::CsProtocolOptions options = base;
      options.faults.seed =
          seed * 1000003 + static_cast<uint64_t>(drop_percent) * 101 + t;
      options.faults.drop_rate = static_cast<double>(drop_percent) / 100.0;
      dist::CsOutlierProtocol protocol(options);
      protocol.set_telemetry(sink);
      dist::CommStats comm;
      auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();
      const dist::CollectionReport& report = protocol.last_collection();
      total_retries += report.retries;
      total_excluded += report.excluded_nodes.size();
      ++total_runs;
      acc.Accumulate(
          outlier::EvaluateDegradedRun(setup.truth, result, report.nodes_total,
                                       report.excluded_nodes.size(),
                                       report.retries),
          comm);
    }
    const SweepPoint mean = acc.Mean(trials);
    drop_points.push_back(mean);
    std::printf("%-8lld %7.1f%% %8.4f %10.3f %8.3f %9.1f%% %9.1f %12.0f\n",
                static_cast<long long>(drop_percent), 100.0 * mean.ek,
                mean.ev, mean.precision, mean.recall,
                100.0 * mean.excluded_fraction, mean.retries,
                mean.retry_bytes);
  }

  // --- Scenario 2: 1 crashed node, retries exhausted ---------------------
  SweepPoint crash_acc;
  bool crash_reported = true;
  for (size_t t = 0; t < trials; ++t) {
    ClusterSetup setup = MakeCluster(n, s, num_nodes, k, seed * 7919 + t);
    const std::vector<dist::NodeId> ids = setup.cluster->NodeIds();
    const dist::NodeId crashed = ids[t % ids.size()];
    dist::CsProtocolOptions options = base;
    options.faults.seed = seed * 1000003 + 7000 + t;
    options.faults.crash_nodes = {crashed};
    dist::CsOutlierProtocol protocol(options);
    protocol.set_telemetry(sink);
    dist::CommStats comm;
    auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();
    const dist::CollectionReport& report = protocol.last_collection();
    total_retries += report.retries;
    total_excluded += report.excluded_nodes.size();
    ++total_runs;
    crash_reported = crash_reported && report.excluded_nodes.size() == 1 &&
                     report.excluded_nodes[0] == crashed;
    crash_acc.Accumulate(
        outlier::EvaluateDegradedRun(setup.truth, result, report.nodes_total,
                                     report.excluded_nodes.size(),
                                     report.retries),
        comm);
  }
  const SweepPoint crash = crash_acc.Mean(trials);
  std::printf("\ncrash 1 of %zu (budget exhausted): EK %.1f%%, precision "
              "%.3f, recall %.3f, excluded node reported: %s\n",
              num_nodes, 100.0 * crash.ek, crash.precision, crash.recall,
              crash_reported ? "always" : "NOT ALWAYS");

  // --- Deterministic JSON -------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"fault_sweep\",\n");
  std::fprintf(out,
               "  \"config\": {\"n\": %zu, \"s\": %zu, \"k\": %zu, "
               "\"nodes\": %zu, \"m\": %zu, \"trials\": %zu, \"seed\": %llu,\n"
               "             \"retry\": {\"max_retries\": %zu, "
               "\"timeout_ticks\": %llu, \"backoff\": %.2f}},\n",
               n, s, k, num_nodes, m, trials,
               static_cast<unsigned long long>(seed), base.retry.max_retries,
               static_cast<unsigned long long>(base.retry.timeout_ticks),
               base.retry.backoff);
  std::fprintf(out, "  \"zero_fault_bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  std::fprintf(out, "  \"drop_sweep\": [\n");
  for (size_t i = 0; i < drop_points.size(); ++i) {
    std::fprintf(out, "    {\"drop_percent\": %lld,\n",
                 static_cast<long long>(drop_list[i]));
    PrintJsonPoint(out, drop_points[i], "     ");
    std::fprintf(out, "}%s\n", i + 1 < drop_points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"crash_one_node\": {\"nodes\": %zu, "
               "\"excluded_reported\": %s,\n",
               num_nodes, crash_reported ? "true" : "false");
  PrintJsonPoint(out, crash, "   ");
  std::fprintf(out, "},\n");
  std::fprintf(out,
               "  \"collection_totals\": {\"runs\": %llu, \"retries\": %llu, "
               "\"excluded_nodes\": %llu}\n}\n",
               static_cast<unsigned long long>(total_runs),
               static_cast<unsigned long long>(total_retries),
               static_cast<unsigned long long>(total_excluded));
  std::fclose(out);
  std::printf("\nWrote %s\n", out_path.c_str());

  if (sink != nullptr) {
    const Status written = obs::WriteSnapshotJsonFile(*sink, telemetry_path);
    if (!written.ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", telemetry_path.c_str());
  }
  return 0;
}
