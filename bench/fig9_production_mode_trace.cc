// Figure 9: the recovered mode per BOMP iteration on the three production
// workloads. The paper observes the estimate stabilizing after ~300 / 650
// / 610 iterations (M = 500 / 800 / 800), which reveals the effective
// sparsity of the production data.
//
// Default is quarter scale (the stabilization point scales with s);
// --full runs paper scale. Flags: --full --scale=4

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace csod;
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t scale = flags.GetBool("full", false)
                           ? 1
                           : static_cast<size_t>(flags.GetInt("scale", 4));

  bench::Banner("Figure 9",
                "mode estimate per recovery iteration, production workloads");
  std::printf("scale = 1/%zu of paper key space; the paper's M per workload "
              "is 500/800/800 (scaled alike)\n",
              scale);

  const size_t paper_m[3] = {500, 800, 800};
  const workload::ClickScoreType types[3] = {
      workload::ClickScoreType::kCoreSearch, workload::ClickScoreType::kAds,
      workload::ClickScoreType::kAnswer};

  for (int wi = 0; wi < 3; ++wi) {
    const auto cal = workload::CalibrationFor(types[wi]);
    const size_t n = cal.n / scale;
    const size_t s = cal.sparsity / scale;
    const size_t m = paper_m[wi] / scale * 2;  // Scaled, with headroom.

    workload::ClickLogOptions gen;
    gen.score_type = types[wi];
    gen.n_override = n;
    gen.sparsity_override = s;
    gen.seed = 900 + wi;
    // Mild tail for this figure: with comparable outlier magnitudes the
    // recovery picks them in data-dependent order and the mode estimate
    // keeps moving until all s are absorbed — the effect the paper uses
    // to read the sparsity off the trace.
    gen.divergence_alpha = 2.5;
    auto data = workload::GenerateClickLog(gen).MoveValue();

    cs::MeasurementMatrix matrix(m, n, 31 + wi);
    auto y = matrix.Multiply(data.global).MoveValue();

    cs::BompOptions options;
    options.max_iterations = std::min(m, s + s / 2 + 20);
    options.record_mode_trace = true;
    options.stop_on_residual_stagnation = false;
    auto result = cs::RunBomp(matrix, y, options).MoveValue();
    const auto& trace = result.mode_trace;

    // Stabilization: first iteration after which the estimate stays within
    // 0.2% of its final value.
    size_t stable_at = trace.size();
    if (!trace.empty()) {
      const double final_mode = trace.back();
      for (size_t i = trace.size(); i-- > 0;) {
        if (std::fabs(trace[i] - final_mode) >
            0.002 * std::max(1.0, std::fabs(final_mode))) {
          break;
        }
        stable_at = i;
      }
    }

    std::printf("\n=== %s: N = %zu, planted s = %zu, M = %zu ===\n",
                workload::ClickScoreTypeName(types[wi]), n, s, m);
    const size_t step = std::max<size_t>(1, trace.size() / 12);
    for (size_t it = 0; it < trace.size(); it += step) {
      std::printf("  iter %4zu: %12.2f\n", it + 1, trace[it]);
    }
    std::printf("  mode stabilized at iteration ~%zu (planted sparsity %zu; "
                "final mode %.2f, generator mode %.2f)\n",
                stable_at + 1, s, trace.empty() ? 0.0 : trace.back(),
                data.mode);
  }

  std::printf(
      "\nExpected shape: the stabilization iteration tracks each "
      "workload's sparsity s — the paper reads s = 300/650/610 off these "
      "curves at full scale.\n");
  return 0;
}
