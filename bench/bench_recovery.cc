// Recovery-engine benchmark (BENCH_recovery.json): the ISSUE 8 evidence
// that the AMP engine and the two-phase sensing protocol beat BOMP where
// they claim to.
//
// Four phases:
//
//  (a) Crossover: recovery wall time, AMP vs BOMP, at N = --n (100k) and
//      M = --m (1200) as the planted sparsity k sweeps --k-list
//      {10, 50, 100}. BOMP's budget is sized generously to the sparsity
//      (R = k + 4 — real deployments run the paper's R = f(k) ≈ 3.5k,
//      which only widens the gap); AMP keeps its fixed default budget.
//      Both engines must hit EK = 0, and AMP must be faster at the
//      largest k (per-iteration cost is support-independent — DESIGN.md
//      §14), which the driver script gates.
//
//  (b) Engines: all four `--solver=` engines through the one
//      RecoverBiased dispatch on the same N = 20k workload at a single
//      unified budget R, reporting wall ms / EK / EV / iterations per
//      engine — the apples-to-apples table DESIGN.md §14 cites.
//
//  (c) Determinism: the AMP answer digested (FNV-1a over every output
//      bit: mode, entry indices/values, residual norm, iteration count)
//      across parallelism limits {1,2,8} x {portable, native} SIMD
//      dispatch. All six digests must be identical ("bit_identical") —
//      AMP inherits the kernels' fixed-lane summation trees and keeps
//      every element-wise update serial.
//
//  (d) Distributed: on the Figure 7 production workload (core-search,
//      quarter scale, 8 data centers, zero-sum cancellation noise),
//      sweep the fixed-M protocol and the two-phase protocol down to the
//      cheapest configuration that still answers the top-k exactly
//      (EK = 0, EV <= --ev-target) and compare wire bytes; then run the
//      streaming DAMP protocol at the fixed protocol's operating point
//      and report its thresholded-transfer savings. The script gates the
//      two-phase saving at >= 30%.
//
// Flags: --n --m --k-list --trials --engines-n --engines-m --engines-k
//        --ev-target --cache-mb --out --quick

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "cs/amp.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "cs/solver.h"
#include "dist/adaptive_cs_protocol.h"
#include "dist/amp_protocol.h"
#include "dist/cs_protocol.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

// FNV-1a over raw bytes — the deterministic output digest.
class Fnv1a {
 public:
  void Add(const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void AddU64(uint64_t v) { Add(&v, sizeof(v)); }
  void AddDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AddU64(bits);
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

uint64_t DigestRecovery(const cs::BompResult& result) {
  Fnv1a digest;
  digest.AddDouble(result.mode);
  digest.AddDouble(result.final_residual_norm);
  digest.AddU64(result.iterations);
  for (const cs::RecoveredEntry& entry : result.entries) {
    digest.AddU64(entry.index);
    digest.AddDouble(entry.value);
  }
  return digest.hash();
}

// Outlier divergences planted in [500, 10000]: at the 1-2% undersampling
// ratios swept here, every engine's weak-signal floor is a few hundred
// (θ ≈ λ·σ̂ for AMP, the residual-correlation floor for OMP), and the
// crossover phases measure wall time at EK = 0, not the weak-signal
// floor — ablation_recovery sweeps that axis.
std::vector<double> MakeCentralizedWorkload(size_t n, size_t sparsity,
                                            uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = sparsity;
  gen.min_divergence = 500.0;
  gen.seed = seed;
  return workload::GenerateMajorityDominated(gen).MoveValue();
}

struct DistributedWorkload {
  size_t n = 0;
  size_t sparsity = 0;
  std::unique_ptr<dist::Cluster> cluster;
  std::vector<double> global;
};

// The Figure 7 production stand-in: calibrated core-search click log at
// quarter scale, geo-partitioned over 8 data centers with zero-sum
// cancellation noise (locally, ordinary keys look like huge outliers).
DistributedWorkload MakeDistributedWorkload(uint64_t seed) {
  const auto cal =
      workload::CalibrationFor(workload::ClickScoreType::kCoreSearch);
  DistributedWorkload w;
  w.n = cal.n / 4;
  w.sparsity = cal.sparsity / 4;

  workload::ClickLogOptions gen;
  gen.score_type = workload::ClickScoreType::kCoreSearch;
  gen.n_override = w.n;
  gen.sparsity_override = w.sparsity;
  gen.seed = seed;
  auto data = workload::GenerateClickLog(gen).MoveValue();
  w.global = std::move(data.global);

  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.cancellation_noise = 30000.0;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(w.global, part).MoveValue();
  w.cluster = std::make_unique<dist::Cluster>(w.n);
  for (auto& slice : slices) w.cluster->AddNode(std::move(slice)).Value();
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const bool quick = flags.GetBool("quick", false);
  const size_t n = static_cast<size_t>(flags.GetInt("n", quick ? 20000 : 100000));
  // M sized so the largest swept sparsity stays below the soft-threshold
  // AMP phase transition (s/M <~ 0.09 at these undersampling ratios; the
  // default gives s/M = 0.0625 at the largest k).
  const size_t m = static_cast<size_t>(flags.GetInt("m", quick ? 640 : 1600));
  const std::vector<int64_t> k_list =
      flags.GetIntList("k-list", quick ? std::vector<int64_t>{10, 50}
                                       : std::vector<int64_t>{10, 50, 100});
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 1));
  const size_t engines_n =
      static_cast<size_t>(flags.GetInt("engines-n", quick ? 8000 : 20000));
  const size_t engines_m =
      static_cast<size_t>(flags.GetInt("engines-m", 600));
  const size_t engines_k = static_cast<size_t>(flags.GetInt("engines-k", 20));
  const double ev_target = flags.GetDouble("ev-target", 1e-3);
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 2048)) * (1ull << 20);
  const std::string out_path = flags.GetString("out", "");

  bench::Banner("Recovery engines",
                "AMP vs BOMP crossover, engine table, determinism digests, "
                "two-phase / DAMP wire bytes");
  std::printf("crossover: N = %zu, M = %zu; engines: N = %zu, M = %zu, "
              "k = %zu; trials = %zu\n\n",
              n, m, engines_n, engines_m, engines_k, trials);

  // ---------------------------------------------------------------- (a)
  // Crossover: AMP's per-iteration cost is flat in k; BOMP's budget (and
  // its QR) grows with k. Same matrix across k — only the data changes.
  struct CrossoverPoint {
    size_t k = 0;
    double bomp_ms = 0.0;
    double amp_ms = 0.0;
    double bomp_ek = 0.0;
    double amp_ek = 0.0;
    size_t bomp_iterations = 0;
    size_t amp_iterations = 0;
  };
  std::vector<CrossoverPoint> crossover;
  {
    cs::MeasurementMatrix matrix(m, n, 1234, cache_bytes);
    std::printf("=== crossover (N = %zu, M = %zu, matrix cached = %s) ===\n",
                n, m, matrix.cached() ? "yes" : "no");
    for (int64_t k64 : k_list) {
      const size_t k = static_cast<size_t>(k64);
      const auto global = MakeCentralizedWorkload(n, k, 40 + k);
      const auto truth = outlier::ExactKOutliers(global, k);
      const auto y = matrix.Multiply(global).MoveValue();

      CrossoverPoint point;
      point.k = k;
      for (size_t t = 0; t < trials; ++t) {
        Stopwatch watch;
        cs::BompOptions bomp_options;
        bomp_options.max_iterations = k + 4;
        auto bomp = cs::RunBomp(matrix, y, bomp_options).MoveValue();
        const double ms = watch.ElapsedMillis();
        if (t == 0 || ms < point.bomp_ms) point.bomp_ms = ms;
        point.bomp_iterations = bomp.iterations;
        point.bomp_ek = outlier::ErrorOnKey(
            truth, outlier::KOutliersFromRecovery(bomp, k));
      }
      for (size_t t = 0; t < trials; ++t) {
        Stopwatch watch;
        auto amp = cs::RunBiasedAmp(matrix, y, cs::AmpOptions{}).MoveValue();
        const double ms = watch.ElapsedMillis();
        if (t == 0 || ms < point.amp_ms) point.amp_ms = ms;
        point.amp_iterations = amp.iterations;
        point.amp_ek = outlier::ErrorOnKey(
            truth, outlier::KOutliersFromRecovery(amp, k));
      }
      std::printf("k = %3zu: BOMP %8.1f ms (R = %zu, EK %.2f) | "
                  "AMP %8.1f ms (T = %zu, EK %.2f)\n",
                  k, point.bomp_ms, point.bomp_iterations, point.bomp_ek,
                  point.amp_ms, point.amp_iterations, point.amp_ek);
      crossover.push_back(point);
    }
  }

  // ---------------------------------------------------------------- (b)
  // Engine table: one workload, one unified budget R, four engines.
  struct EngineRow {
    const char* name;
    double wall_ms = 0.0;
    double ek = 0.0;
    double ev = 0.0;
    size_t iterations = 0;
  };
  std::vector<EngineRow> engines;
  uint64_t determinism_baseline = 0;
  bool bit_identical = true;
  struct DigestRow {
    size_t threads;
    const char* simd;
    uint64_t digest;
  };
  std::vector<DigestRow> digests;
  {
    const auto global = MakeCentralizedWorkload(engines_n, engines_k, 77);
    const auto truth = outlier::ExactKOutliers(global, engines_k);
    cs::MeasurementMatrix matrix(engines_m, engines_n, 4321, cache_bytes);
    const auto y = matrix.Multiply(global).MoveValue();

    // The paper's R = f(k) ≈ 3.5k budget, so every engine's mapping from
    // the unified R targets the same outlier count.
    const size_t engines_r = engines_k * 7 / 2;
    std::printf("\n=== engines (N = %zu, M = %zu, k = %zu, R = %zu) ===\n",
                engines_n, engines_m, engines_k, engines_r);
    for (cs::RecoverySolver solver :
         {cs::RecoverySolver::kOmp, cs::RecoverySolver::kCosamp,
          cs::RecoverySolver::kFista, cs::RecoverySolver::kAmp}) {
      EngineRow row;
      row.name = cs::SolverName(solver);
      cs::SolverOptions solve;
      solve.solver = solver;
      solve.iterations = engines_r;
      for (size_t t = 0; t < trials; ++t) {
        Stopwatch watch;
        auto result = cs::RecoverBiased(matrix, y, solve).MoveValue();
        const double ms = watch.ElapsedMillis();
        if (t == 0 || ms < row.wall_ms) row.wall_ms = ms;
        row.iterations = result.iterations;
        const auto topk = outlier::KOutliersFromRecovery(result, engines_k);
        row.ek = outlier::ErrorOnKey(truth, topk);
        row.ev = outlier::ErrorOnValue(truth, topk);
      }
      std::printf("%-8s %10.1f ms  EK %.3f  EV %.2e  iterations %zu\n",
                  row.name, row.wall_ms, row.ek, row.ev, row.iterations);
      engines.push_back(row);
    }

    // -------------------------------------------------------------- (c)
    // Determinism: same solve, every (thread limit, SIMD level) pair.
    std::printf("\n=== determinism (AMP digests) ===\n");
    const simd::Level native = simd::ActiveLevel();
    for (size_t limit : {size_t{1}, size_t{2}, size_t{8}}) {
      for (simd::Level level : {simd::Level::kPortable, native}) {
        const size_t previous_limit = GetParallelismLimit();
        SetParallelismLimit(limit);
        const simd::Level previous_level = simd::SetLevelForTesting(level);
        auto result = cs::RunBiasedAmp(matrix, y, cs::AmpOptions{}).MoveValue();
        simd::SetLevelForTesting(previous_level);
        SetParallelismLimit(previous_limit);

        DigestRow row{limit, simd::LevelName(level), DigestRecovery(result)};
        if (digests.empty()) determinism_baseline = row.digest;
        if (row.digest != determinism_baseline) bit_identical = false;
        std::printf("threads %zu, simd %-8s digest 0x%016" PRIx64 "\n",
                    row.threads, row.simd, row.digest);
        digests.push_back(row);
      }
    }
    std::printf("bit_identical: %s\n", bit_identical ? "true" : "false");
  }

  // ---------------------------------------------------------------- (d)
  // Distributed wire bytes on the Figure 7 production workload.
  const size_t dist_k = 5;
  const size_t dist_trials = 3;
  DistributedWorkload w = MakeDistributedWorkload(300);
  const auto dist_truth = outlier::ExactKOutliers(w.global, dist_k);
  const size_t num_nodes = w.cluster->num_nodes();
  // Budget R sized to the full planted sparsity so the fixed protocol can
  // model every outlier — EV is matrix-limited, not budget-limited.
  const size_t dist_iterations = w.sparsity + 8;

  std::printf("\n=== distributed (core-search/4: N = %zu, s = %zu, L = %zu, "
              "k = %zu, EV target %.0e) ===\n",
              w.n, w.sparsity, num_nodes, dist_k, ev_target);

  // Fixed-M: smallest M on the grid where every trial seed answers the
  // top-k exactly at the EV target.
  uint64_t fixed_m = 0, fixed_bytes = 0;
  double fixed_ev = 0.0;
  for (size_t candidate = 120; candidate <= 520; candidate += 20) {
    bool all_ok = true;
    double worst_ev = 0.0;
    uint64_t bytes = 0;
    for (size_t t = 0; t < dist_trials && all_ok; ++t) {
      dist::CsProtocolOptions options;
      options.m = candidate;
      options.seed = 5000 + t * 977;
      options.iterations = dist_iterations;
      dist::CsOutlierProtocol protocol(options);
      dist::CommStats comm;
      auto estimate = protocol.Run(*w.cluster, dist_k, &comm).MoveValue();
      const double ek = outlier::ErrorOnKey(dist_truth, estimate);
      const double ev = outlier::ErrorOnValue(dist_truth, estimate);
      worst_ev = std::max(worst_ev, ev);
      bytes = comm.bytes_total();
      if (ek != 0.0 || ev > ev_target) all_ok = false;
    }
    if (all_ok) {
      fixed_m = candidate;
      fixed_bytes = bytes;
      fixed_ev = worst_ev;
      break;
    }
  }
  std::printf("fixed-M   : M* = %" PRIu64 "  bytes %" PRIu64
              "  worst EV %.2e\n",
              fixed_m, fixed_bytes, fixed_ev);

  // Two-phase: smallest locate-M on the grid meeting the same target
  // (refine's exact least squares does the EV work).
  uint64_t two_phase_locate_m = 0, two_phase_refine_m = 0,
           two_phase_bytes = 0;
  double two_phase_ev = 0.0;
  for (size_t candidate = 48; candidate <= 400; candidate += 16) {
    bool all_ok = true;
    double worst_ev = 0.0;
    uint64_t bytes = 0, refine_m = 0;
    for (size_t t = 0; t < dist_trials && all_ok; ++t) {
      dist::AdaptiveCsOptions options;
      options.strategy = dist::AdaptiveStrategy::kTwoPhase;
      options.locate_m = candidate;
      options.seed = 7000 + t * 977;
      options.iterations = dist_iterations;
      dist::AdaptiveCsProtocol protocol(options);
      dist::CommStats comm;
      auto estimate = protocol.Run(*w.cluster, dist_k, &comm).MoveValue();
      const double ek = outlier::ErrorOnKey(dist_truth, estimate);
      const double ev = outlier::ErrorOnValue(dist_truth, estimate);
      worst_ev = std::max(worst_ev, ev);
      bytes = comm.bytes_total();
      refine_m = protocol.rounds().back().m;
      if (ek != 0.0 || ev > ev_target) all_ok = false;
    }
    if (all_ok) {
      two_phase_locate_m = candidate;
      two_phase_refine_m = refine_m;
      two_phase_bytes = bytes;
      two_phase_ev = worst_ev;
      break;
    }
  }
  const double two_phase_savings =
      (fixed_bytes > 0 && two_phase_bytes > 0)
          ? 100.0 * (1.0 - static_cast<double>(two_phase_bytes) /
                               static_cast<double>(fixed_bytes))
          : 0.0;
  std::printf("two-phase : locate M = %" PRIu64 ", refine M = %" PRIu64
              "  bytes %" PRIu64 "  worst EV %.2e  savings %.1f%%\n",
              two_phase_locate_m, two_phase_refine_m, two_phase_bytes,
              two_phase_ev, two_phase_savings);

  // DAMP at the fixed protocol's operating point: the streaming transfer
  // ships thresholded (row, value) tuples instead of every measurement
  // component. Measured twice — on the cancellation-noise production
  // partition (where per-node measurement energy is flat, so thresholding
  // cannot skip much and the 12B-vs-8B tuple overhead dominates) and on a
  // clean skewed partition of the same global (where stable-top-k
  // acceptance stops the stream early).
  struct DampRow {
    const char* partition;
    uint64_t bytes = 0, tuples = 0, rounds = 0;
    double ek = 0.0, savings = 0.0;
  };
  std::vector<DampRow> damp_rows;
  if (fixed_m > 0) {
    const uint64_t dense_bytes = num_nodes * fixed_m * dist::kMeasurementBytes;
    auto run_damp = [&](const char* label, dist::Cluster& cluster,
                        const outlier::OutlierSet& truth) {
      dist::DistributedAmpOptions options;
      options.m = fixed_m;
      options.seed = 5000;
      dist::DistributedAmpProtocol protocol(options);
      dist::CommStats comm;
      auto estimate = protocol.Run(cluster, dist_k, &comm).MoveValue();
      DampRow row;
      row.partition = label;
      row.ek = outlier::ErrorOnKey(truth, estimate);
      row.bytes = comm.bytes_total();
      row.tuples = comm.tuples_total();
      row.rounds = comm.rounds();
      row.savings = 100.0 * (1.0 - static_cast<double>(row.bytes) /
                                       static_cast<double>(dense_bytes));
      std::printf("DAMP %-9s M = %" PRIu64 "  bytes %" PRIu64
                  " (tuples %" PRIu64 ", rounds %" PRIu64
                  ")  EK %.2f  savings vs dense %.1f%%\n",
                  label, fixed_m, row.bytes, row.tuples, row.rounds, row.ek,
                  row.savings);
      damp_rows.push_back(row);
    };
    run_damp("noisy", *w.cluster, dist_truth);

    workload::PartitionOptions clean;
    clean.num_nodes = num_nodes;
    clean.strategy = workload::PartitionStrategy::kSkewedSplit;
    clean.seed = 301;
    auto clean_slices =
        workload::PartitionAdditive(w.global, clean).MoveValue();
    dist::Cluster clean_cluster(w.n);
    for (auto& slice : clean_slices) {
      clean_cluster.AddNode(std::move(slice)).Value();
    }
    run_damp("clean", clean_cluster, dist_truth);
  }

  // ------------------------------------------------------------ output
  if (!out_path.empty()) {
    FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"recovery\",\n");
    std::fprintf(out,
                 "  \"config\": {\"n\": %zu, \"m\": %zu, \"engines_n\": %zu, "
                 "\"engines_m\": %zu, \"engines_k\": %zu, \"trials\": %zu, "
                 "\"ev_target\": %g},\n",
                 n, m, engines_n, engines_m, engines_k, trials, ev_target);
    std::fprintf(out, "  \"crossover\": [\n");
    for (size_t i = 0; i < crossover.size(); ++i) {
      const CrossoverPoint& p = crossover[i];
      std::fprintf(out,
                   "    {\"k\": %zu, \"bomp_ms\": %.3f, \"amp_ms\": %.3f, "
                   "\"bomp_ek\": %g, \"amp_ek\": %g, "
                   "\"bomp_iterations\": %zu, \"amp_iterations\": %zu}%s\n",
                   p.k, p.bomp_ms, p.amp_ms, p.bomp_ek, p.amp_ek,
                   p.bomp_iterations, p.amp_iterations,
                   i + 1 < crossover.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"engines\": [\n");
    for (size_t i = 0; i < engines.size(); ++i) {
      const EngineRow& row = engines[i];
      std::fprintf(out,
                   "    {\"solver\": \"%s\", \"wall_ms\": %.3f, \"ek\": %g, "
                   "\"ev\": %g, \"iterations\": %zu}%s\n",
                   row.name, row.wall_ms, row.ek, row.ev, row.iterations,
                   i + 1 < engines.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"determinism\": {\n    \"digests\": [\n");
    for (size_t i = 0; i < digests.size(); ++i) {
      std::fprintf(out,
                   "      {\"threads\": %zu, \"simd\": \"%s\", "
                   "\"output_digest\": \"0x%016" PRIx64 "\"}%s\n",
                   digests[i].threads, digests[i].simd, digests[i].digest,
                   i + 1 < digests.size() ? "," : "");
    }
    std::fprintf(out, "    ],\n    \"bit_identical\": %s\n  },\n",
                 bit_identical ? "true" : "false");
    std::fprintf(out, "  \"distributed\": {\n");
    std::fprintf(out,
                 "    \"workload\": \"core-search/4\", \"n\": %zu, "
                 "\"sparsity\": %zu, \"nodes\": %zu, \"k\": %zu,\n",
                 w.n, w.sparsity, num_nodes, dist_k);
    std::fprintf(out,
                 "    \"fixed\": {\"m\": %" PRIu64 ", \"bytes\": %" PRIu64
                 ", \"worst_ev\": %g},\n",
                 fixed_m, fixed_bytes, fixed_ev);
    std::fprintf(out,
                 "    \"two_phase\": {\"locate_m\": %" PRIu64
                 ", \"refine_m\": %" PRIu64 ", \"bytes\": %" PRIu64
                 ", \"worst_ev\": %g, \"savings_vs_fixed_pct\": %.1f},\n",
                 two_phase_locate_m, two_phase_refine_m, two_phase_bytes,
                 two_phase_ev, two_phase_savings);
    std::fprintf(out, "    \"damp\": [\n");
    for (size_t i = 0; i < damp_rows.size(); ++i) {
      const DampRow& row = damp_rows[i];
      std::fprintf(out,
                   "      {\"partition\": \"%s\", \"m\": %" PRIu64
                   ", \"bytes\": %" PRIu64 ", \"tuples\": %" PRIu64
                   ", \"rounds\": %" PRIu64
                   ", \"ek\": %g, \"savings_vs_dense_pct\": %.1f}%s\n",
                   row.partition, fixed_m, row.bytes, row.tuples, row.rounds,
                   row.ek, row.savings,
                   i + 1 < damp_rows.size() ? "," : "");
    }
    std::fprintf(out, "    ]\n  }\n}\n");
    std::fclose(out);
    std::printf("\nWrote %s\n", out_path.c_str());
  }

  // The bench itself fails on a broken determinism or correctness
  // contract so CI catches it even without the driver script.
  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: AMP output digests differ across limits\n");
    return 1;
  }
  for (const CrossoverPoint& p : crossover) {
    if (p.bomp_ek != 0.0 || p.amp_ek != 0.0) {
      std::fprintf(stderr, "FAIL: nonzero EK at k = %zu\n", p.k);
      return 1;
    }
  }
  return 0;
}
