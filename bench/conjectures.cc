// Numerical verification of the two conjectures behind Theorem 1
// (Sections 4.1 and 4.2), reproducing the paper's "extensive numerical
// experiments":
//
//  Conjecture 1 (Near-Isometric Transformation): for the BOMP extended
//  sub-matrix Φ* = [φ0 | s data columns] (φ0 weakly dependent on the
//  others), any r ∈ span(Φ*) satisfies ||Φ*ᵀ r||₂ ≥ 0.5 ||r||₂ with
//  probability ≥ 1 − e^{−cM}; the paper observes c ≈ 0.4 at s = 2 and "a
//  large margin" for M, s > 10.
//
//  Conjecture 2 (Near-Independent Inner Product): for weakly dependent
//  x, y ~ N(0, 1/M)^M, P[|⟨x, y/||y||⟩| ≤ ε] ≥ 1 − e^{−ε² a M / 2} with
//  a = 1.1; the paper never observed a counter-example.
//
// Flags: --trials

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "cs/dictionary.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace {

using namespace csod;

// One Conjecture-1 trial: returns min over random r in span(Φ*) of
// ||Φ*ᵀ r|| / ||r||.
double Conjecture1Ratio(size_t m, size_t s, size_t n, uint64_t seed) {
  cs::MeasurementMatrix matrix(m, n, seed);
  cs::ExtendedDictionary dictionary(&matrix);

  // Φ* = [φ0, first s data columns].
  std::vector<std::vector<double>> columns;
  columns.push_back(dictionary.bias_column());
  for (size_t j = 0; j < s; ++j) columns.push_back(matrix.Column(j));

  Rng rng(seed ^ 0xabcdef);
  double min_ratio = 1e300;
  for (int rep = 0; rep < 16; ++rep) {
    // Random r in span(Φ*).
    std::vector<double> r(m, 0.0);
    for (const auto& col : columns) {
      la::Axpy(rng.NextGaussian(), col, &r);
    }
    const double r_norm = la::Norm2(r);
    if (r_norm == 0.0) continue;
    double sq = 0.0;
    for (const auto& col : columns) {
      const double d = la::Dot(col, r);
      sq += d * d;
    }
    min_ratio = std::min(min_ratio, std::sqrt(sq) / r_norm);
  }
  return min_ratio;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 100 : 400));

  bench::Banner("Section 4 conjectures",
                "numerical verification of Near-Isometric Transformation "
                "and Near-Independent Inner Product");

  // --- Conjecture 1. ---
  std::printf("\nConjecture 1: P[||Φ*' r|| >= 0.5 ||r||] for r in span(Φ*)\n");
  std::printf("%-18s %10s %12s %12s\n", "(M, s)", "violations",
              "min ratio", "P[holds]");
  struct Case {
    size_t m;
    size_t s;
  };
  const Case cases[] = {{8, 2}, {16, 2}, {16, 8}, {32, 16},
                        {64, 16}, {128, 32}, {256, 64}};
  for (const Case& c : cases) {
    size_t violations = 0;
    double min_ratio = 1e300;
    for (size_t t = 0; t < trials; ++t) {
      const double ratio =
          Conjecture1Ratio(c.m, c.s, /*n=*/std::max<size_t>(4 * c.s, 64),
                           10'000 + t);
      min_ratio = std::min(min_ratio, ratio);
      if (ratio < 0.5) ++violations;
    }
    // Implied constant c from P[fail] ~ e^{-cM} (paper: c ≈ 0.4 at s = 2).
    const double fail_rate =
        std::max(1e-12, static_cast<double>(violations) / trials);
    std::printf("(%4zu, %3zu)%7s %10zu %12.3f %11.1f%%   implied c %s %.2f\n",
                c.m, c.s, "", violations, min_ratio,
                100.0 * (1.0 - static_cast<double>(violations) / trials),
                violations == 0 ? ">" : "~",
                -std::log(fail_rate) / static_cast<double>(c.m));
  }
  std::printf("Expected: zero (or vanishingly few) violations, with the "
              "margin growing in M — matching the paper's observation that "
              "c ~ 0.4 at s = 2 and a large margin for M, s > 10.\n");

  // --- Conjecture 2. ---
  std::printf("\nConjecture 2: P[|<x, y/||y||>| <= eps] >= 1 - "
              "e^{-eps^2 a M / 2}, a = 1.1\n");
  std::printf("%-8s %-8s %-8s %14s %14s %10s\n", "M", "rho", "eps",
              "P[observed]", "bound", "holds");
  bool any_counterexample = false;
  for (size_t m : {32u, 64u, 128u, 256u}) {
    // Weak dependence strength: the BOMP case has covariance ~ 1/sqrt(N),
    // i.e. tiny; the conjecture only claims the bound for |ζ|
    // "sufficiently small".
    for (double rho : {0.0, 0.01, 0.03}) {
      for (double eps : {0.2, 0.35, 0.5}) {
        size_t hits = 0;
        Rng rng(777 + m + static_cast<uint64_t>(rho * 100) +
                static_cast<uint64_t>(eps * 100));
        for (size_t t = 0; t < trials * 4; ++t) {
          std::vector<double> x(m), y(m);
          const double cross = rho;
          const double indep = std::sqrt(1.0 - rho * rho);
          for (size_t i = 0; i < m; ++i) {
            const double g1 = rng.NextGaussian();
            const double g2 = rng.NextGaussian();
            x[i] = g1 / std::sqrt(static_cast<double>(m));
            y[i] = (cross * g1 + indep * g2) /
                   std::sqrt(static_cast<double>(m));
          }
          const double ynorm = la::Norm2(y);
          if (ynorm == 0.0) continue;
          if (std::fabs(la::Dot(x, y)) / ynorm <= eps) ++hits;
        }
        const double observed =
            static_cast<double>(hits) / static_cast<double>(trials * 4);
        const double bound =
            1.0 - std::exp(-eps * eps * 1.1 * static_cast<double>(m) / 2.0);
        // Allow two binomial standard errors of sampling noise.
        const double stderr2 =
            2.0 * std::sqrt(std::max(observed * (1.0 - observed), 1e-6) /
                            static_cast<double>(trials * 4));
        const bool holds = observed >= bound - stderr2;
        if (!holds) any_counterexample = true;
        std::printf("%-8zu %-8.2f %-8.2f %13.2f%% %13.2f%% %10s\n", m, rho,
                    eps, 100.0 * observed, 100.0 * bound,
                    holds ? "yes" : "NO");
      }
    }
  }
  std::printf("Counter-examples found: %s (paper: none, condition satisfied "
              "'by a wide margin')\n",
              any_counterexample ? "YES — investigate!" : "none");
  return 0;
}
