// Ablation: robustness to measurement noise.
//
// Real deployments add imprecision the clean theory ignores: lossy float
// summaries upstream, stragglers dropping some measurement rows, or
// deliberate noise for privacy. This harness injects additive Gaussian
// noise into the aggregated measurement, y' = y + sigma * g, and tracks
// BOMP's EK/EV against the noise-to-signal ratio — quantifying how far
// the Section-5 stagnation stop degrades gracefully rather than failing.
//
// Flags: --n --s --m --trials --k

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace csod;
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 2000));
  const size_t s = static_cast<size_t>(flags.GetInt("s", 30));
  const size_t m = static_cast<size_t>(flags.GetInt("m", 400));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 3 : 8));
  // Noise scale relative to the *outlier signal* energy (the part of y
  // that carries the answer).
  const std::vector<int64_t> noise_permille =
      flags.GetIntList("noise-permille", {0, 1, 5, 10, 50, 100, 300});

  bench::Banner("Ablation: measurement noise",
                "BOMP EK/EV vs noise-to-signal ratio (y' = y + sigma*g)");
  std::printf("N = %zu, s = %zu, M = %zu, k = %zu, trials = %zu\n\n", n, s,
              m, k, trials);
  bench::PrintHeader("noise (permille) =", noise_permille);

  std::vector<double> ek_avg, ev_avg, iter_avg;
  for (int64_t permille : noise_permille) {
    double ek = 0.0;
    double ev = 0.0;
    double iters = 0.0;
    for (size_t t = 0; t < trials; ++t) {
      workload::MajorityDominatedOptions gen;
      gen.n = n;
      gen.sparsity = s;
      gen.seed = 100 + t;
      auto x = workload::GenerateMajorityDominated(gen).MoveValue();
      const auto truth = outlier::ExactKOutliers(x, k);

      cs::MeasurementMatrix matrix(m, n, 5000 + t * 53);
      auto y = matrix.Multiply(x).MoveValue();

      // Signal energy: the measurement of the deviation-from-mode part.
      std::vector<double> deviation(n);
      for (size_t i = 0; i < n; ++i) deviation[i] = x[i] - gen.mode;
      auto y_signal = matrix.Multiply(deviation).MoveValue();
      const double sigma = la::Norm2(y_signal) /
                           std::sqrt(static_cast<double>(m)) *
                           static_cast<double>(permille) / 1000.0;

      Rng noise(900 + t);
      for (double& v : y) v += sigma * noise.NextGaussian();

      cs::BompOptions options;
      options.max_iterations = s + 6;
      auto recovery = cs::RunBomp(matrix, y, options).MoveValue();
      const auto estimate = outlier::KOutliersFromRecovery(recovery, k);
      ek += outlier::ErrorOnKey(truth, estimate);
      ev += outlier::ErrorOnValue(truth, estimate);
      iters += static_cast<double>(recovery.iterations);
    }
    ek_avg.push_back(ek / trials);
    ev_avg.push_back(ev / trials);
    iter_avg.push_back(iters / trials);
  }

  bench::PrintPercentRow("EK BOMP avg", ek_avg);
  bench::PrintPercentRow("EV BOMP avg", ev_avg);
  bench::PrintDoubleRow("iterations avg", iter_avg);

  std::printf(
      "\nExpected: keys stay exact well past 1%% noise (greedy selection "
      "only needs the correlation ranking to survive) and values degrade "
      "smoothly with sigma — graceful degradation, not collapse.\n");
  return 0;
}
