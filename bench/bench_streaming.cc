// Streaming detection service benchmark (BENCH_streaming.json): the
// always-on src/serve data path — sharded batch ingestion, epoch advance,
// snapshot publication, and concurrent snapshot queries.
//
// Three phases:
//
//  (a) Determinism: the same synthetic stream is ingested at every
//      parallelism limit in --threads-list and digested with FNV-1a over
//      the published window measurement bits plus every query answer
//      (top-k keys/values, k-outlier keys/values/mode). The digests must
//      be identical across limits AND equal to a WindowedOutlierDetector
//      reference fed the same per-(batch, shard) slices in shard order —
//      the StreamingDetector determinism contract, checked bit for bit.
//      The binary exits nonzero on any mismatch.
//
//  (b) Throughput: the full stream is replayed at the widest limit while
//      --query-threads analyst threads continuously ask top-k queries
//      against published snapshots. Reports sustained key-updates/sec and
//      the maximum snapshot age any query observed, which the bounded-
//      staleness contract caps at 1 epoch (reading the epoch counter
//      before grabbing the snapshot makes the racy measurement safe).
//      scripts/run_bench_streaming.sh turns updates/sec into a
//      core-count-aware gate (>= 100k/s on an 8-core box).
//
//  (c) Telemetry overhead: the ingest+advance loop timed with a live
//      obs::Telemetry sink vs a null sink (best of --trials each);
//      overhead_pct must stay within the committed budget (<= 2%).
//
// Flags: --n --m --window --shards --epochs --batch --events-per-epoch
//        --k --seed --trials --threads-list --query-threads --out --quick

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/windowed_detector.h"
#include "cs/compressor.h"
#include "obs/telemetry.h"
#include "serve/streaming_detector.h"

namespace {

using namespace csod;

// FNV-1a over raw bytes — the deterministic output digest.
class Fnv1a {
 public:
  void Add(const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void AddU64(uint64_t v) { Add(&v, sizeof(v)); }
  void AddDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AddU64(bits);
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

struct StreamConfig {
  size_t n = 0;
  size_t m = 0;
  size_t window = 0;
  size_t shards = 0;
  size_t epochs = 0;
  size_t batch = 0;
  size_t events_per_epoch = 0;
  size_t k = 0;
  uint64_t seed = 0;
};

// Deterministic synthetic stream: uniform keys with baseline deltas plus
// one planted hot key spiking at the head of every batch. The generator is
// restarted (same seed) for every replay so each phase ingests the exact
// same batches.
class StreamGen {
 public:
  explicit StreamGen(const StreamConfig& config)
      : config_(config),
        rng_(static_cast<std::minstd_rand::result_type>(
            config.seed ? config.seed : 1)) {}

  // Fills keys/deltas with the next batch (at most config.batch events,
  // bounded by what is left in the epoch). Returns the batch size.
  size_t NextBatch(size_t remaining_in_epoch, std::vector<size_t>* keys,
                   std::vector<double>* deltas) {
    const size_t count = std::min(config_.batch, remaining_in_epoch);
    keys->resize(count);
    deltas->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*keys)[i] = static_cast<size_t>(rng_()) % config_.n;
      (*deltas)[i] = 100.0 * (0.5 + static_cast<double>(rng_() % 1000) / 1e3);
    }
    (*keys)[0] = config_.n / 3;
    (*deltas)[0] = 5.0e5;
    return count;
  }

 private:
  StreamConfig config_;
  std::minstd_rand rng_;
};

Result<std::unique_ptr<serve::StreamingDetector>> MakeDetector(
    const StreamConfig& config, obs::Telemetry* telemetry) {
  serve::StreamingDetectorOptions options;
  options.n = config.n;
  options.m = config.m;
  options.seed = config.seed + 7;
  options.window_epochs = config.window;
  options.num_shards = config.shards;
  options.telemetry = telemetry;
  return serve::StreamingDetector::Create(options);
}

// Replays the whole stream into `detector`. Returns ingest+advance wall ms.
Result<double> Replay(const StreamConfig& config,
                      serve::StreamingDetector* detector) {
  StreamGen gen(config);
  std::vector<size_t> keys;
  std::vector<double> deltas;
  Stopwatch watch;
  detector->AdvanceEpoch();  // Open epoch 0.
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    size_t remaining = config.events_per_epoch;
    while (remaining > 0) {
      const size_t count = gen.NextBatch(remaining, &keys, &deltas);
      CSOD_RETURN_NOT_OK(
          detector->IngestBatch(keys.data(), deltas.data(), count));
      remaining -= count;
    }
    detector->AdvanceEpoch();
  }
  return watch.ElapsedMillis();
}

// Digest of every observable output: the published window measurement bits
// plus both query answers.
Result<uint64_t> DigestOutputs(const StreamConfig& config,
                               const serve::StreamingDetector& detector) {
  Fnv1a digest;
  auto snapshot = detector.Snapshot();
  if (!snapshot) return Status::Internal("no snapshot published");
  for (double v : snapshot->y) digest.AddDouble(v);
  digest.AddU64(snapshot->last_epoch);
  digest.AddU64(static_cast<uint64_t>(snapshot->epochs_covered));
  CSOD_ASSIGN_OR_RETURN(auto top, detector.QueryTopK(config.k));
  for (const auto& o : top) {
    digest.AddU64(o.key_index);
    digest.AddDouble(o.value);
  }
  CSOD_ASSIGN_OR_RETURN(auto outliers, detector.QueryOutliers(config.k));
  digest.AddDouble(outliers.mode);
  for (const auto& o : outliers.outliers) {
    digest.AddU64(o.key_index);
    digest.AddDouble(o.value);
    digest.AddDouble(o.divergence);
  }
  return digest.hash();
}

// The reference: a WindowedOutlierDetector (ring one deeper than the
// window, like the service's own) fed the same per-(batch, shard) slices
// in shard order. Returns the FNV digest of its closed-window measurement.
Result<uint64_t> ReferenceDigest(const StreamConfig& config) {
  core::WindowedDetectorOptions options;
  options.n = config.n;
  options.m = config.m;
  options.seed = config.seed + 7;
  options.window_epochs = config.window + 1;
  CSOD_ASSIGN_OR_RETURN(auto window,
                        core::WindowedOutlierDetector::Create(options));

  StreamGen gen(config);
  std::vector<size_t> keys;
  std::vector<double> deltas;
  std::vector<cs::SparseSlice> shard_slices(config.shards);
  window->AdvanceEpoch();
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    size_t remaining = config.events_per_epoch;
    while (remaining > 0) {
      const size_t count = gen.NextBatch(remaining, &keys, &deltas);
      for (auto& slice : shard_slices) {
        slice.indices.clear();
        slice.values.clear();
      }
      for (size_t i = 0; i < count; ++i) {
        const uint32_t shard =
            serve::StreamingDetector::ShardOfKey(keys[i], config.shards);
        shard_slices[shard].indices.push_back(keys[i]);
        shard_slices[shard].values.push_back(deltas[i]);
      }
      for (const auto& slice : shard_slices) {
        CSOD_RETURN_NOT_OK(window->Ingest(slice));
      }
      remaining -= count;
    }
    window->AdvanceEpoch();
  }
  CSOD_ASSIGN_OR_RETURN(auto y, window->ClosedWindowMeasurement());
  Fnv1a digest;
  for (double v : y) digest.AddDouble(v);
  return digest.hash();
}

// Digest of just the snapshot measurement bits (comparable to the
// reference digest above).
uint64_t SnapshotDigest(const serve::SketchSnapshot& snapshot) {
  Fnv1a digest;
  for (double v : snapshot.y) digest.AddDouble(v);
  return digest.hash();
}

void Die(const Status& status) {
  std::fprintf(stderr, "bench_streaming: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const bool quick = flags.GetBool("quick", false);
  StreamConfig config;
  config.n =
      static_cast<size_t>(flags.GetInt("n", quick ? 5000 : 50000));
  config.m = static_cast<size_t>(flags.GetInt("m", quick ? 128 : 256));
  config.window = static_cast<size_t>(flags.GetInt("window", 4));
  config.shards = static_cast<size_t>(flags.GetInt("shards", 8));
  config.epochs = static_cast<size_t>(flags.GetInt("epochs", 8));
  config.batch = static_cast<size_t>(flags.GetInt("batch", 2048));
  config.events_per_epoch = static_cast<size_t>(
      flags.GetInt("events-per-epoch", quick ? 20000 : 250000));
  config.k = static_cast<size_t>(flags.GetInt("k", 5));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const size_t trials =
      static_cast<size_t>(flags.GetInt("trials", quick ? 2 : 3));
  const std::vector<int64_t> threads_list =
      flags.GetIntList("threads-list", std::vector<int64_t>{1, 2, 8});
  const size_t query_threads =
      static_cast<size_t>(flags.GetInt("query-threads", 2));
  const std::string out_path = flags.GetString("out", "BENCH_streaming.json");

  bench::Banner("Streaming service",
                "sharded ingest + snapshot queries (src/serve)");
  const uint64_t total_events =
      static_cast<uint64_t>(config.epochs) * config.events_per_epoch;
  std::printf("N = %zu, M = %zu, window = %zu, %zu shards, %zu epochs x %zu "
              "events (%.2f M updates), batch %zu, k = %zu\n\n",
              config.n, config.m, config.window, config.shards, config.epochs,
              config.events_per_epoch, static_cast<double>(total_events) / 1e6,
              config.batch, config.k);

  const size_t previous_limit = GetParallelismLimit();

  // ---- (a) Determinism across parallelism limits, vs the reference. ----
  struct LimitResult {
    size_t threads = 0;
    double ingest_ms = 0.0;
    uint64_t digest = 0;
    uint64_t snapshot_digest = 0;
  };
  std::vector<LimitResult> limits;
  for (int64_t threads64 : threads_list) {
    LimitResult res;
    res.threads = static_cast<size_t>(threads64);
    SetParallelismLimit(res.threads);
    auto detector = MakeDetector(config, nullptr);
    if (!detector.ok()) Die(detector.status());
    auto wall = Replay(config, detector.Value().get());
    if (!wall.ok()) Die(wall.status());
    res.ingest_ms = wall.Value();
    auto digest = DigestOutputs(config, *detector.Value());
    if (!digest.ok()) Die(digest.status());
    res.digest = digest.Value();
    res.snapshot_digest = SnapshotDigest(*detector.Value()->Snapshot());
    limits.push_back(res);
    std::printf("threads %2zu | ingest %9.2f ms (%9.0f updates/s) | digest "
                "0x%016" PRIx64 "\n",
                res.threads, res.ingest_ms,
                1e3 * static_cast<double>(total_events) /
                    std::max(res.ingest_ms, 1e-9),
                res.digest);
  }
  SetParallelismLimit(previous_limit);

  auto reference = ReferenceDigest(config);
  if (!reference.ok()) Die(reference.status());
  bool bit_identical = true;
  for (const LimitResult& r : limits) {
    bit_identical = bit_identical && r.digest == limits.front().digest &&
                    r.snapshot_digest == reference.Value();
  }
  std::printf("\nreference window digest 0x%016" PRIx64
              ", outputs bit-identical across limits and vs the windowed "
              "reference: %s\n\n",
              reference.Value(), bit_identical ? "yes" : "NO");

  // ---- (b) Throughput at the widest limit with concurrent analysts. ----
  const size_t widest =
      static_cast<size_t>(*std::max_element(threads_list.begin(),
                                            threads_list.end()));
  SetParallelismLimit(widest);
  double best_ingest_ms = 1e300;
  uint64_t queries_answered = 0;
  uint64_t max_staleness = 0;
  bool staleness_ok = true;
  for (size_t trial = 0; trial < trials; ++trial) {
    auto detector = MakeDetector(config, nullptr);
    if (!detector.ok()) Die(detector.status());
    serve::StreamingDetector* raw = detector.Value().get();
    std::atomic<bool> done{false};
    std::atomic<uint64_t> answered{0};
    std::atomic<uint64_t> worst_age{0};
    std::vector<std::thread> analysts;
    for (size_t q = 0; q < query_threads; ++q) {
      analysts.emplace_back([&, raw] {
        while (!done.load(std::memory_order_relaxed)) {
          // Read the epoch counter BEFORE grabbing the snapshot: the
          // snapshot is then at least as new as the counter implies, so
          // the computed age never overstates the true staleness.
          const uint64_t epoch = raw->current_epoch();
          auto snapshot = raw->Snapshot();
          if (snapshot && raw->QueryTopK(config.k).ok()) {
            answered.fetch_add(1, std::memory_order_relaxed);
            const uint64_t age = epoch > snapshot->last_epoch
                                     ? epoch - snapshot->last_epoch
                                     : 0;
            uint64_t seen = worst_age.load(std::memory_order_relaxed);
            while (age > seen &&
                   !worst_age.compare_exchange_weak(
                       seen, age, std::memory_order_relaxed)) {
            }
          }
        }
      });
    }
    auto wall = Replay(config, raw);
    done.store(true, std::memory_order_relaxed);
    for (auto& t : analysts) t.join();
    if (!wall.ok()) Die(wall.status());
    best_ingest_ms = std::min(best_ingest_ms, wall.Value());
    queries_answered += answered.load(std::memory_order_relaxed);
    max_staleness = std::max(max_staleness,
                             worst_age.load(std::memory_order_relaxed));
  }
  SetParallelismLimit(previous_limit);
  staleness_ok = max_staleness <= 1;
  const double updates_per_sec = 1e3 * static_cast<double>(total_events) /
                                 std::max(best_ingest_ms, 1e-9);
  std::printf("throughput (%zu threads, %zu analysts): %.0f updates/s, "
              "%llu queries answered, max snapshot age %llu epoch(s) "
              "(bound: 1)\n\n",
              widest, query_threads, updates_per_sec,
              static_cast<unsigned long long>(queries_answered),
              static_cast<unsigned long long>(max_staleness));

  // ---- (c) Telemetry overhead: live sink vs null sink. ----
  double plain_ms = 1e300;
  double telemetry_ms = 1e300;
  for (size_t trial = 0; trial < trials; ++trial) {
    {
      auto detector = MakeDetector(config, nullptr);
      if (!detector.ok()) Die(detector.status());
      auto wall = Replay(config, detector.Value().get());
      if (!wall.ok()) Die(wall.status());
      plain_ms = std::min(plain_ms, wall.Value());
    }
    {
      obs::Telemetry telemetry;
      auto detector = MakeDetector(config, &telemetry);
      if (!detector.ok()) Die(detector.status());
      auto wall = Replay(config, detector.Value().get());
      if (!wall.ok()) Die(wall.status());
      telemetry_ms = std::min(telemetry_ms, wall.Value());
    }
  }
  const double overhead_pct =
      100.0 * (telemetry_ms - plain_ms) / std::max(plain_ms, 1e-9);
  std::printf("telemetry overhead: %.2f ms with sink vs %.2f ms without "
              "(%.2f%%)\n",
              telemetry_ms, plain_ms, overhead_pct);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"streaming\",\n");
  std::fprintf(out,
               "  \"config\": {\"n\": %zu, \"m\": %zu, \"window\": %zu, "
               "\"shards\": %zu, \"epochs\": %zu, \"events_per_epoch\": %zu, "
               "\"batch\": %zu, \"k\": %zu, \"seed\": %llu, \"trials\": %zu, "
               "\"query_threads\": %zu},\n",
               config.n, config.m, config.window, config.shards, config.epochs,
               config.events_per_epoch, config.batch, config.k,
               static_cast<unsigned long long>(config.seed), trials,
               query_threads);
  std::fprintf(out, "  \"limits\": [\n");
  for (size_t i = 0; i < limits.size(); ++i) {
    const LimitResult& r = limits[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"ingest_wall_ms\": %.3f,\n"
                 "     \"output_digest\": \"0x%016" PRIx64 "\"}%s\n",
                 r.threads, r.ingest_ms, r.digest,
                 i + 1 < limits.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"reference_window_digest\": \"0x%016" PRIx64 "\",\n",
               reference.Value());
  std::fprintf(out, "  \"bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  std::fprintf(out,
               "  \"throughput\": {\"threads\": %zu, \"updates_per_sec\": "
               "%.0f, \"queries_answered\": %llu,\n"
               "                 \"max_snapshot_age_epochs\": %llu, "
               "\"staleness_bound_held\": %s},\n",
               widest, updates_per_sec,
               static_cast<unsigned long long>(queries_answered),
               static_cast<unsigned long long>(max_staleness),
               staleness_ok ? "true" : "false");
  std::fprintf(out,
               "  \"telemetry\": {\"plain_wall_ms\": %.3f, "
               "\"telemetry_wall_ms\": %.3f, \"overhead_pct\": %.3f}\n}\n",
               plain_ms, telemetry_ms, overhead_pct);
  std::fclose(out);
  std::printf("Wrote %s\n", out_path.c_str());
  return (bit_identical && staleness_ok) ? 0 : 1;
}
