// Figure 12: efficiency vs key-space size N at a fixed raw input size —
// traditional top-k against BOMP with M ∈ {50, 100}, k = 5. The paper
// sweeps N = 100K..5M on a 10G input; the traditional job slows down with
// N (it shuffles one tuple per key) while BOMP's shuffle stays L*M and
// only its recovery cost grows mildly with N.
//
// Default N sweep: 50K..500K (laptop-sized; --full adds 1M).
// Flags: --n-list --m-list --events=total_raw_events --full

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "mapreduce/jobs.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

int main(int argc, char** argv) {
  using namespace csod;
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  std::vector<int64_t> n_list =
      flags.GetIntList("n-list", {50000, 100000, 200000, 500000});
  if (flags.GetBool("full", false)) n_list.push_back(1000000);
  if (flags.GetBool("quick", false)) {
    n_list = {50000, 100000, 200000};
  }
  const std::vector<int64_t> m_list = flags.GetIntList("m-list", {50, 100});
  // Fixed raw input volume across the N sweep (the paper fixes 10G).
  const size_t total_events =
      static_cast<size_t>(flags.GetInt("events", 2000000));
  const size_t num_nodes = 10;  // The paper's cluster size.
  const size_t k = 5;

  bench::Banner("Figure 12",
                "efficiency vs number of keys N (fixed input size), "
                "traditional top-k vs BOMP M=50/100");
  std::printf("total raw events fixed at %.1fM, L = %zu nodes, k = %zu\n",
              static_cast<double>(total_events) / 1e6, num_nodes, k);

  std::printf("\n%-10s %14s %14s %14s %12s %12s %12s\n", "N",
              "trad e2e(s)", "trad map(s)", "trad red(s)", "BOMP e2e",
              "BOMP map", "BOMP red");

  for (int64_t n64 : n_list) {
    const size_t n = static_cast<size_t>(n64);

    workload::PowerLawOptions gen;
    gen.n = n;
    gen.alpha = 1.5;
    gen.seed = 3;
    auto global = workload::GeneratePowerLaw(gen).MoveValue();

    workload::PartitionOptions part;
    part.num_nodes = num_nodes;
    part.strategy = workload::PartitionStrategy::kByKey;
    part.seed = 4;
    auto slices = workload::PartitionAdditive(global, part).MoveValue();

    const size_t events_per_key = std::max<size_t>(1, total_events / n);
    auto splits = mr::ExpandSlicesToEvents(slices, events_per_key, 5);

    mr::ClusterCostModel model;
    auto traditional = mr::RunTraditionalTopKJob(splits, k).MoveValue();
    const double trad_map = model.MapPhaseSeconds(traditional.stats);
    const double trad_red = model.ReducePhaseSeconds(traditional.stats);

    std::printf("%-10zu %14.2f %14.2f %14.2f", n, trad_map + trad_red,
                trad_map, trad_red);

    for (int64_t m64 : m_list) {
      mr::CsJobOptions options;
      options.n = n;
      options.m = static_cast<size_t>(m64);
      options.k = k;
      options.seed = 17;
      options.cache_budget_bytes = size_t{2} << 30;
      auto result = mr::RunCsOutlierJob(splits, options).MoveValue();
      const double map_s = model.MapPhaseSeconds(result.stats);
      const double red_s = model.ReducePhaseSeconds(result.stats);
      std::printf("  [M=%-3lld] %5.2f %6.2f %6.2f",
                  static_cast<long long>(m64), map_s + red_s, map_s, red_s);
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape: traditional time grows with N (one shuffled tuple "
      "per key); BOMP stays nearly flat — its recovery overhead grows only "
      "mildly with N and is the better trade at every N (Figure 12).\n");
  return 0;
}
