// Figures 5 and 6: Error on Key (EK) and Error on Value (EV) vs
// measurement size M for BOMP on Power-Law distributed data with skew
// alpha ∈ {0.9, 0.95}, k ∈ {5, 10, 20}. The paper runs N = 10K with
// M = 100..1000 and 100 random matrices per point, reporting MAX/MIN/AVG.
//
// Default here is a proportional scale-down (N = 2K, M = 20..200,
// 10 trials); run the paper scale with
//   --n=10000 --m-list=100,200,...,1000 --trials=100
//
// Flags: --n --trials --alpha-list --k-list --m-list

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace csod;
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 2000));
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 3 : 10));
  const std::vector<int64_t> k_list = flags.GetIntList("k-list", {5, 10, 20});
  const std::vector<int64_t> m_list = flags.GetIntList(
      "m-list", {20, 40, 60, 80, 100, 120, 140, 160, 180, 200});
  std::vector<double> alphas = {0.9, 0.95};
  if (flags.Has("alpha")) alphas = {flags.GetDouble("alpha", 0.9)};

  bench::Banner("Figures 5 & 6",
                "EK / EV vs M on Power-Law data (MAX/MIN/AVG over trials)");
  std::printf("N = %zu, trials/point = %zu\n", n, trials);

  for (int64_t k64 : k_list) {
    const size_t k = static_cast<size_t>(k64);
    std::printf("\n--- k = %zu ---\n", k);
    bench::PrintHeader("M =", m_list);
    for (double alpha : alphas) {
      std::vector<double> ek_max, ek_min, ek_avg;
      std::vector<double> ev_max, ev_min, ev_avg;
      for (int64_t m64 : m_list) {
        const size_t m = static_cast<size_t>(m64);
        std::vector<double> eks;
        std::vector<double> evs;
        for (size_t t = 0; t < trials; ++t) {
          workload::PowerLawOptions gen;
          gen.n = n;
          gen.alpha = alpha;
          gen.seed = 500 + t;  // Same data across M (paper varies matrix).
          auto x = workload::GeneratePowerLaw(gen).MoveValue();
          const auto truth = outlier::ExactKOutliers(x, k);

          cs::MeasurementMatrix matrix(m, n, 9000 + t * 211 + m);
          auto y = matrix.Multiply(x).MoveValue();
          cs::BompOptions options;
          options.max_iterations = cs::DefaultIterationsForK(k);
          auto recovery = cs::RunBomp(matrix, y, options).MoveValue();
          const auto estimate = outlier::KOutliersFromRecovery(recovery, k);

          eks.push_back(outlier::ErrorOnKey(truth, estimate));
          evs.push_back(outlier::ErrorOnValue(truth, estimate));
        }
        const auto ek = outlier::ErrorStats::FromSamples(eks);
        const auto ev = outlier::ErrorStats::FromSamples(evs);
        ek_max.push_back(ek.max);
        ek_min.push_back(ek.min);
        ek_avg.push_back(ek.avg);
        ev_max.push_back(ev.max);
        ev_min.push_back(ev.min);
        ev_avg.push_back(ev.avg);
      }
      char label[64];
      std::snprintf(label, sizeof(label), "EK a=%.2f max", alpha);
      bench::PrintPercentRow(label, ek_max);
      std::snprintf(label, sizeof(label), "EK a=%.2f avg", alpha);
      bench::PrintPercentRow(label, ek_avg);
      std::snprintf(label, sizeof(label), "EK a=%.2f min", alpha);
      bench::PrintPercentRow(label, ek_min);
      std::snprintf(label, sizeof(label), "EV a=%.2f max", alpha);
      bench::PrintPercentRow(label, ev_max);
      std::snprintf(label, sizeof(label), "EV a=%.2f avg", alpha);
      bench::PrintPercentRow(label, ev_avg);
      std::snprintf(label, sizeof(label), "EV a=%.2f min", alpha);
      bench::PrintPercentRow(label, ev_min);
    }
  }

  std::printf(
      "\nExpected shape: average EK/EV fall toward 0 as M grows; larger k "
      "needs larger M for the same accuracy; heavier tails (smaller alpha) "
      "are easier.\n");
  return 0;
}
