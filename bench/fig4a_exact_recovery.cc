// Figure 4(a): probability of exact recovery vs measurement size M on
// majority-dominated data (N = 1K, mode b = 5000), for BOMP (unknown mode)
// and standard OMP with the mode known in advance, s ∈ {50, 100, 200}.
//
// Paper setting: 1000 trials per point. Default here: 12 trials per point
// (laptop-sized); raise with --trials. The recovery iteration budget is
// min(M, s+1), as in the paper.
//
// Flags: --trials=T --n=N --s-list=50,100,200 --m-list=100,...,1000

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"
#include "workload/generators.h"

namespace {

using namespace csod;

// Exact recovery: reconstruction matches the data vector to relative 1e-6
// (EK = EV = 0 in the paper's terms).
bool IsExactRecovery(const cs::BompResult& recovery,
                     const std::vector<double>& x) {
  std::vector<double> xhat = recovery.Materialize(x.size());
  return la::DistanceL2(xhat, x) <= 1e-6 * la::Norm2(x);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000));
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 4 : 12));
  const std::vector<int64_t> s_list = flags.GetIntList("s-list", {50, 100, 200});
  const std::vector<int64_t> m_list = flags.GetIntList(
      "m-list", {100, 200, 300, 400, 500, 600, 700, 800, 900, 1000});

  bench::Banner("Figure 4(a)",
                "probability of exact recovery vs M "
                "(majority-dominated, b = 5000)");
  std::printf("N = %zu, trials/point = %zu\n\n", n, trials);
  bench::PrintHeader("M =", m_list);

  for (int64_t s : s_list) {
    std::vector<double> bomp_prob;
    std::vector<double> omp_prob;
    for (int64_t m64 : m_list) {
      const size_t m = static_cast<size_t>(m64);
      size_t bomp_hits = 0;
      size_t omp_hits = 0;
      for (size_t t = 0; t < trials; ++t) {
        workload::MajorityDominatedOptions gen;
        gen.n = n;
        gen.sparsity = static_cast<size_t>(s);
        gen.mode = 5000.0;
        gen.seed = 1000 + t;
        auto x = workload::GenerateMajorityDominated(gen).MoveValue();

        cs::MeasurementMatrix matrix(m, n, /*seed=*/7000 + t * 131 + m);
        auto y = matrix.Multiply(x).MoveValue();

        cs::BompOptions options;
        options.max_iterations =
            std::min<size_t>(m, static_cast<size_t>(s) + 1);

        auto bomp = cs::RunBomp(matrix, y, options);
        if (bomp.ok() && IsExactRecovery(bomp.Value(), x)) ++bomp_hits;

        // OMP with the mode known in advance (the paper's comparison; it
        // would cost an extra 2s+1 tuples of communication in practice).
        auto omp = cs::RecoverWithKnownMode(matrix, y, gen.mode, options);
        if (omp.ok() && IsExactRecovery(omp.Value(), x)) ++omp_hits;
      }
      bomp_prob.push_back(static_cast<double>(bomp_hits) / trials);
      omp_prob.push_back(static_cast<double>(omp_hits) / trials);
    }
    bench::PrintPercentRow("BOMP s=" + std::to_string(s), bomp_prob);
    bench::PrintPercentRow("OMP+known-mode s=" + std::to_string(s), omp_prob);
  }

  std::printf(
      "\nExpected shape: recovery probability rises to 100%% once M "
      "exceeds ~s log(N/s); BOMP tracks OMP+known-mode without knowing "
      "the mode.\n");
  return 0;
}
