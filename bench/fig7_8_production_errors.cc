// Figures 7 and 8 (and the Section 6.1.2 communication-cost discussion):
// EK / EV vs communication cost (normalized by transmitting ALL) on the
// three production click-score workloads, comparing BOMP against the K+δ
// three-round baseline at equal budgets.
//
// The paper's proprietary Bing logs are replaced by the calibrated
// synthetic click-log generator (see DESIGN.md): same key-space sizes
// (10.4K / 9K / 10K), same sparsities (300 / 650 / 610), geo-partitioned
// over 8 data centers with skew and zero-sum cancellation noise.
//
// Default is a quarter-scale run (N/4, s/4); use --full for paper scale.
// --telemetry-json=FILE attaches one obs::Telemetry sink to every protocol
// run and writes the deterministic snapshot (DESIGN.md §9).
// Flags: --trials --k-list --full --scale=4 --telemetry-json

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/format.h"
#include "dist/all_protocol.h"
#include "dist/cs_protocol.h"
#include "dist/kplusdelta_protocol.h"
#include "obs/telemetry.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

struct Workload {
  workload::ClickScoreType type;
  size_t n;
  size_t sparsity;
  std::unique_ptr<dist::Cluster> cluster;
  outlier::OutlierSet truth5;  // Recomputed per k below.
  std::vector<double> global;
};

Workload MakeWorkload(workload::ClickScoreType type, size_t scale,
                      uint64_t seed) {
  const auto cal = workload::CalibrationFor(type);
  Workload w;
  w.type = type;
  w.n = cal.n / scale;
  w.sparsity = cal.sparsity / scale;

  workload::ClickLogOptions gen;
  gen.score_type = type;
  gen.n_override = w.n;
  gen.sparsity_override = w.sparsity;
  gen.seed = seed;
  auto data = workload::GenerateClickLog(gen).MoveValue();
  w.global = std::move(data.global);

  workload::PartitionOptions part;
  part.num_nodes = 8;  // The paper's 8 geo-distributed data centers.
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  // Zero-sum noise comparable to the outlier scale: locally, ordinary keys
  // look like enormous outliers (the Figure 1 k5 phenomenon), which is
  // what defeats local-ranking baselines on the paper's production data.
  // The CS protocol is immune by linearity — the noise cancels in y.
  part.cancellation_noise = 30000.0;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(w.global, part).MoveValue();

  w.cluster = std::make_unique<dist::Cluster>(w.n);
  for (auto& slice : slices) w.cluster->AddNode(std::move(slice)).Value();
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const size_t scale = flags.GetBool("full", false)
                           ? 1
                           : static_cast<size_t>(flags.GetInt("scale", 4));
  const size_t trials = static_cast<size_t>(
      flags.GetInt("trials", flags.GetBool("quick", false) ? 2 : 5));
  const std::vector<int64_t> k_list = flags.GetIntList("k-list", {5, 10, 20});
  // Communication budget as % of ALL (the Figures' x axis).
  const std::vector<int64_t> percent_list =
      flags.GetIntList("percent-list", {1, 2, 3, 4, 5, 6, 7, 8, 10, 15});
  const std::string telemetry_path = flags.GetString("telemetry-json", "");
  obs::Telemetry telemetry;
  obs::Telemetry* sink = telemetry_path.empty() ? nullptr : &telemetry;

  bench::Banner("Figures 7 & 8",
                "EK / EV vs communication cost (normalized by ALL), "
                "production workloads, BOMP vs K+delta");
  std::printf("scale = 1/%zu of paper key space, trials = %zu, L = 8 data "
              "centers\n",
              scale, trials);

  for (auto type :
       {workload::ClickScoreType::kCoreSearch, workload::ClickScoreType::kAds,
        workload::ClickScoreType::kAnswer}) {
    Workload w = MakeWorkload(type, scale, 300 + static_cast<int>(type));
    const size_t num_nodes = w.cluster->num_nodes();

    // Section 6.1.2 cost comparison: vectorized ALL vs kv-pair ALL.
    dist::AllTransmitProtocol all_vec(dist::AllEncoding::kVectorized);
    dist::AllTransmitProtocol all_kv(dist::AllEncoding::kKeyValue);
    all_vec.set_telemetry(sink);
    all_kv.set_telemetry(sink);
    dist::CommStats vec_comm, kv_comm;
    auto truth_any = all_vec.Run(*w.cluster, 5, &vec_comm).MoveValue();
    all_kv.Run(*w.cluster, 5, &kv_comm).Value();
    (void)truth_any;

    std::printf("\n=== workload: %s (N = %zu, s = %zu) ===\n",
                workload::ClickScoreTypeName(type), w.n, w.sparsity);
    std::printf("ALL(vector) = %s, ALL(kv) = %s (kv/vector = %.2fx)\n",
                FormatBytes(vec_comm.bytes_total()).c_str(),
                FormatBytes(kv_comm.bytes_total()).c_str(),
                static_cast<double>(kv_comm.bytes_total()) /
                    static_cast<double>(vec_comm.bytes_total()));

    for (int64_t k64 : k_list) {
      const size_t k = static_cast<size_t>(k64);
      const auto truth = outlier::ExactKOutliers(w.global, k);

      std::printf("\nk = %zu%50s\n", k, "(columns: %% of ALL cost)");
      bench::PrintHeader("cost =", percent_list);

      std::vector<double> bomp_ek_avg, bomp_ek_max, bomp_ek_min;
      std::vector<double> bomp_ev_avg, bomp_ev_max, bomp_ev_min;
      std::vector<double> kd_ek, kd_ev;

      for (int64_t pct : percent_list) {
        const size_t m = std::max<size_t>(4, w.n * pct / 100);
        std::vector<double> eks, evs;
        for (size_t t = 0; t < trials; ++t) {
          dist::CsProtocolOptions options;
          options.m = m;
          options.seed = 4000 + t * 977 + m;
          dist::CsOutlierProtocol protocol(options);
          protocol.set_telemetry(sink);
          dist::CommStats comm;
          auto estimate = protocol.Run(*w.cluster, k, &comm).MoveValue();
          eks.push_back(outlier::ErrorOnKey(truth, estimate));
          evs.push_back(outlier::ErrorOnValue(truth, estimate));
        }
        const auto ek = outlier::ErrorStats::FromSamples(eks);
        const auto ev = outlier::ErrorStats::FromSamples(evs);
        bomp_ek_avg.push_back(ek.avg);
        bomp_ek_max.push_back(ek.max);
        bomp_ek_min.push_back(ek.min);
        bomp_ev_avg.push_back(ev.avg);
        bomp_ev_max.push_back(ev.max);
        bomp_ev_min.push_back(ev.min);

        // K+δ at the same byte budget: L*(k+δ)*12 ≈ L*N*8*pct/100.
        const size_t budget_tuples =
            std::max<size_t>(k + 1, w.n * pct * 8 / (100 * 12));
        dist::KPlusDeltaOptions kd_options;
        kd_options.delta = budget_tuples - k;
        kd_options.seed = 600 + pct;
        dist::KPlusDeltaProtocol kd(kd_options);
        kd.set_telemetry(sink);
        dist::CommStats kd_comm;
        auto kd_estimate = kd.Run(*w.cluster, k, &kd_comm).MoveValue();
        kd_ek.push_back(outlier::ErrorOnKey(truth, kd_estimate));
        kd_ev.push_back(outlier::ErrorOnValue(truth, kd_estimate));
        (void)num_nodes;
      }

      bench::PrintPercentRow("EK BOMP avg", bomp_ek_avg);
      bench::PrintPercentRow("EK BOMP max", bomp_ek_max);
      bench::PrintPercentRow("EK BOMP min", bomp_ek_min);
      bench::PrintPercentRow("EK K+delta", kd_ek);
      bench::PrintPercentRow("EV BOMP avg", bomp_ev_avg);
      bench::PrintPercentRow("EV BOMP max", bomp_ev_max);
      bench::PrintPercentRow("EV BOMP min", bomp_ev_min);
      bench::PrintPercentRow("EV K+delta", kd_ev);
    }
  }

  std::printf(
      "\nExpected shape: BOMP reaches EK ~ 0 within a few %% of ALL's cost "
      "(k=5 earliest, k=20 needs more); K+delta stays at high error even "
      "with much larger budgets because local rankings on skewed "
      "partitions do not reflect the global aggregate.\n");

  if (sink != nullptr) {
    const Status written = obs::WriteSnapshotJsonFile(*sink, telemetry_path);
    if (!written.ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("Wrote %s\n", telemetry_path.c_str());
  }
  return 0;
}
