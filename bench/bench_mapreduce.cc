// MapReduce engine benchmark: the parallel shuffle-aware executor vs the
// same engine pinned to one thread, on the fig10/11 big-input workload.
//
// For every parallelism limit in --threads-list the bench runs
//   (a) the traditional top-k job (raw-event mappers + the engine's
//       in-mapper combiner — the map phase the ISSUE parallelizes), and
//   (b) the CS outlier job (batched compression + BOMP recovery),
// recording the engine's measured per-phase wall clock
// (JobStats::{map,shuffle,reduce}_wall_sec, best of --trials) and an
// FNV-1a digest over every output bit: traditional top-k keys/values, CS
// outlier keys/values, recovered mode, and the exact shuffle byte counts.
//
// The digest must be identical at every thread limit (the engine's
// bit-determinism contract) — the binary exits nonzero otherwise, and
// scripts/run_bench_mapreduce.sh runs the whole bench twice and diffs the
// digest/bit_identical lines of the two JSON files.
//
// Speedups are wall-clock on *this* machine: on a multi-core box the map
// phase at 8 threads should sit >= 3x over the 1-thread engine; on a
// 1-core container the speedup degenerates to ~1x while the digests still
// pin determinism. scripts/run_bench_mapreduce.sh turns the reported
// map_wall_speedup into a core-count-aware pass/fail gate.
//
// The default (non-quick) config is sized so the 1-thread traditional map
// phase is >= 500 ms: long enough that scheduling jitter is noise and a
// data-path regression (per-tuple allocation, std::function dispatch)
// moves the number by whole milliseconds, not fractions.
//
// Flags: --n --m --splits --events-per-key --k --seed --trials
//        --threads-list --out --quick

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "mapreduce/jobs.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace {

using namespace csod;

// FNV-1a over raw bytes — the deterministic output digest.
class Fnv1a {
 public:
  void Add(const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void AddU64(uint64_t v) { Add(&v, sizeof(v)); }
  void AddDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AddU64(bits);
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

struct LimitResult {
  size_t threads = 0;
  double trad_map_ms = 0.0;
  double trad_shuffle_ms = 0.0;
  double trad_reduce_ms = 0.0;
  double cs_map_ms = 0.0;
  double cs_total_ms = 0.0;
  uint64_t digest = 0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const bool quick = flags.GetBool("quick", false);
  const size_t n = static_cast<size_t>(flags.GetInt("n", quick ? 5000 : 20000));
  const size_t m = static_cast<size_t>(flags.GetInt("m", quick ? 100 : 200));
  const size_t num_splits =
      static_cast<size_t>(flags.GetInt("splits", 8));
  const size_t events_per_key = static_cast<size_t>(
      flags.GetInt("events-per-key", quick ? 5 : 150));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const size_t trials =
      static_cast<size_t>(flags.GetInt("trials", quick ? 2 : 3));
  const std::vector<int64_t> threads_list = flags.GetIntList(
      "threads-list", std::vector<int64_t>{1, 2, 8});
  const std::string out_path = flags.GetString("out", "BENCH_mapreduce.json");

  bench::Banner("MapReduce engine",
                "parallel map/shuffle/reduce executor vs the 1-thread engine");

  // The fig10/11 big-input shape: power-law global vector, uniform
  // additive split, several raw events per (split, key).
  workload::PowerLawOptions gen;
  gen.n = n;
  gen.alpha = 1.5;
  gen.seed = seed;
  auto global = workload::GeneratePowerLaw(gen).MoveValue();
  workload::PartitionOptions part;
  part.num_nodes = num_splits;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  const auto splits = mr::ExpandSlicesToEvents(slices, events_per_key,
                                               seed + 2);
  size_t events = 0;
  for (const auto& split : splits) events += split.size();
  std::printf("N = %zu, %zu map splits, %.2f M raw events, M = %zu, "
              "k = %zu, trials = %zu\n\n",
              n, splits.size(), static_cast<double>(events) / 1e6, m, k,
              trials);

  mr::CsJobOptions cs_options;
  cs_options.n = n;
  cs_options.m = m;
  cs_options.k = k;
  cs_options.seed = 77;

  const size_t previous_limit = GetParallelismLimit();
  std::vector<LimitResult> results;
  for (int64_t threads64 : threads_list) {
    const size_t threads = static_cast<size_t>(threads64);
    SetParallelismLimit(threads);
    LimitResult res;
    res.threads = threads;

    mr::TopKJobResult trad;
    mr::CsJobResult cs;
    double best_trad_map = 1e300, best_trad_shuffle = 1e300,
           best_trad_reduce = 1e300, best_cs_map = 1e300,
           best_cs_total = 1e300;
    for (size_t t = 0; t < trials; ++t) {
      trad = mr::RunTraditionalTopKJob(splits, k).MoveValue();
      best_trad_map = std::min(best_trad_map, trad.stats.map_wall_sec * 1e3);
      best_trad_shuffle =
          std::min(best_trad_shuffle, trad.stats.shuffle_wall_sec * 1e3);
      best_trad_reduce =
          std::min(best_trad_reduce, trad.stats.reduce_wall_sec * 1e3);
      Stopwatch cs_watch;
      cs = mr::RunCsOutlierJob(splits, cs_options).MoveValue();
      best_cs_total = std::min(best_cs_total, cs_watch.ElapsedMillis());
      best_cs_map = std::min(best_cs_map, cs.stats.map_wall_sec * 1e3);
    }
    res.trad_map_ms = best_trad_map;
    res.trad_shuffle_ms = best_trad_shuffle;
    res.trad_reduce_ms = best_trad_reduce;
    res.cs_map_ms = best_cs_map;
    res.cs_total_ms = best_cs_total;

    // Digest every output bit plus the exact byte accounting.
    Fnv1a digest;
    for (const auto& o : trad.top) {
      digest.AddU64(o.key_index);
      digest.AddDouble(o.value);
    }
    digest.AddU64(trad.stats.shuffle_bytes);
    digest.AddU64(trad.stats.shuffle_tuples);
    digest.AddU64(trad.stats.pre_combine_shuffle_bytes);
    for (const auto& o : cs.outliers.outliers) {
      digest.AddU64(o.key_index);
      digest.AddDouble(o.value);
    }
    digest.AddDouble(cs.outliers.mode);
    digest.AddDouble(cs.recovery.mode);
    digest.AddU64(cs.stats.shuffle_bytes);
    res.digest = digest.hash();
    results.push_back(res);

    std::printf("threads %2zu | trad map %9.2f ms shuffle %7.2f ms reduce "
                "%7.2f ms | cs map %7.2f ms total %9.2f ms | digest "
                "0x%016" PRIx64 "\n",
                threads, res.trad_map_ms, res.trad_shuffle_ms,
                res.trad_reduce_ms, res.cs_map_ms, res.cs_total_ms,
                res.digest);
  }
  SetParallelismLimit(previous_limit);

  bool bit_identical = true;
  for (const LimitResult& r : results) {
    bit_identical = bit_identical && r.digest == results.front().digest;
  }
  const LimitResult& seq = results.front();
  const LimitResult& widest = results.back();
  const double map_speedup =
      seq.trad_map_ms / std::max(widest.trad_map_ms, 1e-9);
  const double map_shuffle_speedup =
      (seq.trad_map_ms + seq.trad_shuffle_ms) /
      std::max(widest.trad_map_ms + widest.trad_shuffle_ms, 1e-9);
  std::printf("\nmap-phase wall speedup (%zu vs %zu threads): %.2fx "
              "(map+shuffle: %.2fx), outputs bit-identical across limits: "
              "%s\n",
              widest.threads, seq.threads, map_speedup, map_shuffle_speedup,
              bit_identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"mapreduce\",\n");
  std::fprintf(out,
               "  \"config\": {\"n\": %zu, \"m\": %zu, \"splits\": %zu, "
               "\"events_per_key\": %zu, \"k\": %zu, \"seed\": %llu, "
               "\"trials\": %zu},\n",
               n, m, num_splits, events_per_key, k,
               static_cast<unsigned long long>(seed), trials);
  std::fprintf(out, "  \"limits\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const LimitResult& r = results[i];
    std::fprintf(
        out,
        "    {\"threads\": %zu,\n"
        "     \"trad_map_wall_ms\": %.3f, \"trad_shuffle_wall_ms\": %.3f,\n"
        "     \"trad_reduce_wall_ms\": %.3f,\n"
        "     \"cs_map_wall_ms\": %.3f, \"cs_total_wall_ms\": %.3f,\n"
        "     \"output_digest\": \"0x%016" PRIx64 "\"}%s\n",
        r.threads, r.trad_map_ms, r.trad_shuffle_ms, r.trad_reduce_ms,
        r.cs_map_ms, r.cs_total_ms, r.digest,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"map_wall_speedup\": %.3f,\n", map_speedup);
  std::fprintf(out, "  \"map_shuffle_wall_speedup\": %.3f,\n",
               map_shuffle_speedup);
  std::fprintf(out, "  \"bit_identical\": %s\n}\n",
               bit_identical ? "true" : "false");
  std::fclose(out);
  std::printf("Wrote %s\n", out_path.c_str());
  return bit_identical ? 0 : 1;
}
