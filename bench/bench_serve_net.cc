// Wire-facing deployment benchmark (BENCH_serve_net.json): the framed
// ingest/query path of src/serve/net.h over the in-process loopback
// transport.
//
// Three phases:
//
//  (a) Exactness: the same synthetic stream is replayed twice — once
//      through NetClient frames (encode → checksum → HandleFrame → decode)
//      into a StreamingService tenant, once into a bare StreamingDetector —
//      and every observable output (published window measurement bits,
//      framed Outlier/Top query rows, mode, snapshot provenance) is
//      FNV-1a-digested on both sides. The digests must match bit for bit:
//      the wire surface adds framing, never arithmetic. The binary exits
//      nonzero on any mismatch.
//
//  (b) Checkpoint round trip: the leader's checkpoint frame is fetched
//      over the wire, restored, and the restored detector's published
//      snapshot digested — must equal the leader's (restart ⇒ bit-identical
//      republish).
//
//  (c) Throughput: the stream is replayed again through frames (best of
//      --trials) and sustained framed key-updates/sec reported.
//      scripts/run_bench_serve_net.sh turns this into a core-count-aware
//      gate (>= 100k/s on an 8-core box) and re-runs the whole binary to
//      diff the digest lines across runs.
//
// Flags: --n --m --window --shards --epochs --batch --events-per-epoch
//        --k --seed --trials --out --quick

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "serve/checkpoint.h"
#include "serve/net.h"
#include "serve/service.h"
#include "serve/streaming_detector.h"

namespace {

using namespace csod;

// FNV-1a over raw bytes — the deterministic output digest.
class Fnv1a {
 public:
  void Add(const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void AddU64(uint64_t v) { Add(&v, sizeof(v)); }
  void AddDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AddU64(bits);
  }
  void AddString(const std::string& s) { Add(s.data(), s.size()); }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

struct StreamConfig {
  size_t n = 0;
  size_t m = 0;
  size_t window = 0;
  size_t shards = 0;
  size_t epochs = 0;
  size_t batch = 0;
  size_t events_per_epoch = 0;
  size_t k = 0;
  uint64_t seed = 0;
};

// Deterministic synthetic stream, restarted (same seed) for every replay —
// the same generator shape as bench_streaming so both benches stress the
// same data path, one framed and one direct.
class StreamGen {
 public:
  explicit StreamGen(const StreamConfig& config)
      : config_(config),
        rng_(static_cast<std::minstd_rand::result_type>(
            config.seed ? config.seed : 1)) {}

  size_t NextBatch(size_t remaining_in_epoch, std::vector<size_t>* keys,
                   std::vector<double>* deltas) {
    const size_t count = std::min(config_.batch, remaining_in_epoch);
    keys->resize(count);
    deltas->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*keys)[i] = static_cast<size_t>(rng_()) % config_.n;
      (*deltas)[i] = 100.0 * (0.5 + static_cast<double>(rng_() % 1000) / 1e3);
    }
    (*keys)[0] = config_.n / 3;
    (*deltas)[0] = 5.0e5;
    return count;
  }

 private:
  StreamConfig config_;
  std::minstd_rand rng_;
};

serve::StreamingDetectorOptions DetectorOptions(const StreamConfig& config) {
  serve::StreamingDetectorOptions options;
  options.n = config.n;
  options.m = config.m;
  options.seed = config.seed + 7;
  options.window_epochs = config.window;
  options.num_shards = config.shards;
  return options;
}

// Replays the whole stream through framed ingest/advance calls. Returns
// ingest+advance wall ms.
Result<double> ReplayFramed(const StreamConfig& config,
                            serve::NetClient* client,
                            const std::string& tenant) {
  StreamGen gen(config);
  std::vector<size_t> keys;
  std::vector<double> deltas;
  Stopwatch watch;
  CSOD_RETURN_NOT_OK(client->AdvanceTo(tenant, 0).status());  // Open epoch 0.
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    size_t remaining = config.events_per_epoch;
    while (remaining > 0) {
      const size_t count = gen.NextBatch(remaining, &keys, &deltas);
      CSOD_RETURN_NOT_OK(client->Ingest(tenant, keys, deltas));
      remaining -= count;
    }
    CSOD_RETURN_NOT_OK(client->AdvanceTo(tenant, epoch + 1).status());
  }
  return watch.ElapsedMillis();
}

// Replays the same stream directly into a bare detector (the in-process
// reference the framed path must match bit for bit).
Result<double> ReplayDirect(const StreamConfig& config,
                            serve::StreamingDetector* detector) {
  StreamGen gen(config);
  std::vector<size_t> keys;
  std::vector<double> deltas;
  Stopwatch watch;
  detector->AdvanceEpoch();
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    size_t remaining = config.events_per_epoch;
    while (remaining > 0) {
      const size_t count = gen.NextBatch(remaining, &keys, &deltas);
      CSOD_RETURN_NOT_OK(
          detector->IngestBatch(keys.data(), deltas.data(), count));
      remaining -= count;
    }
    detector->AdvanceEpoch();
  }
  return watch.ElapsedMillis();
}

// Digest of everything the framed surface answers: snapshot measurement
// bits + provenance, then both query kinds' rows/mode/provenance.
Result<uint64_t> DigestFramedOutputs(const StreamConfig& config,
                                     serve::NetClient* client,
                                     const std::string& tenant) {
  Fnv1a digest;
  CSOD_ASSIGN_OR_RETURN(auto snapshot, client->FetchSnapshot(tenant));
  for (double v : snapshot.y) digest.AddDouble(v);
  digest.AddU64(snapshot.version);
  digest.AddU64(snapshot.first_epoch);
  digest.AddU64(snapshot.last_epoch);
  for (const char* mode : {"Outlier", "Top"}) {
    CSOD_ASSIGN_OR_RETURN(
        auto result,
        client->Query(std::string("SELECT ") + mode + " " +
                      std::to_string(config.k) +
                      " SUM(score), key FROM " + tenant + " GROUP BY key"));
    digest.AddDouble(result.mode);
    digest.AddU64(result.snapshot_version);
    for (const auto& row : result.rows) {
      digest.AddString(row.group_key);
      digest.AddDouble(row.value);
      digest.AddDouble(row.rank_score);
    }
  }
  return digest.hash();
}

// The same digest computed against a bare detector through the service
// query path (identical grammar, no frames).
Result<uint64_t> DigestDirectOutputs(const StreamConfig& config,
                                     const serve::StreamingService& service,
                                     const std::string& tenant) {
  Fnv1a digest;
  CSOD_ASSIGN_OR_RETURN(auto detector, service.Tenant(tenant));
  auto snapshot = detector->Snapshot();
  if (!snapshot) return Status::Internal("no snapshot published");
  for (double v : snapshot->y) digest.AddDouble(v);
  digest.AddU64(snapshot->version);
  digest.AddU64(snapshot->first_epoch);
  digest.AddU64(snapshot->last_epoch);
  for (const char* mode : {"Outlier", "Top"}) {
    CSOD_ASSIGN_OR_RETURN(
        auto result,
        service.Query(std::string("SELECT ") + mode + " " +
                      std::to_string(config.k) +
                      " SUM(score), key FROM " + tenant + " GROUP BY key"));
    digest.AddDouble(result.mode);
    digest.AddU64(result.snapshot_version);
    for (const auto& row : result.rows) {
      digest.AddString(row.group_key);
      digest.AddDouble(row.value);
      digest.AddDouble(row.rank_score);
    }
  }
  return digest.hash();
}

uint64_t SnapshotDigest(const serve::SketchSnapshot& snapshot) {
  Fnv1a digest;
  for (double v : snapshot.y) digest.AddDouble(v);
  digest.AddU64(snapshot.version);
  return digest.hash();
}

void Die(const Status& status) {
  std::fprintf(stderr, "bench_serve_net: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  const bool quick = flags.GetBool("quick", false);
  StreamConfig config;
  config.n = static_cast<size_t>(flags.GetInt("n", quick ? 5000 : 50000));
  config.m = static_cast<size_t>(flags.GetInt("m", quick ? 128 : 256));
  config.window = static_cast<size_t>(flags.GetInt("window", 4));
  config.shards = static_cast<size_t>(flags.GetInt("shards", 8));
  config.epochs = static_cast<size_t>(flags.GetInt("epochs", 8));
  config.batch = static_cast<size_t>(flags.GetInt("batch", 2048));
  config.events_per_epoch = static_cast<size_t>(
      flags.GetInt("events-per-epoch", quick ? 20000 : 250000));
  config.k = static_cast<size_t>(flags.GetInt("k", 5));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const size_t trials =
      static_cast<size_t>(flags.GetInt("trials", quick ? 2 : 3));
  const std::string out_path = flags.GetString("out", "BENCH_serve_net.json");
  const std::string tenant = "bench";

  bench::Banner("Wire-facing serve surface",
                "framed ingest/query over loopback (src/serve/net)");
  const uint64_t total_events =
      static_cast<uint64_t>(config.epochs) * config.events_per_epoch;
  std::printf("N = %zu, M = %zu, window = %zu, %zu shards, %zu epochs x %zu "
              "events (%.2f M updates), batch %zu, k = %zu\n\n",
              config.n, config.m, config.window, config.shards, config.epochs,
              config.events_per_epoch, static_cast<double>(total_events) / 1e6,
              config.batch, config.k);

  // ---- (a) Exactness: framed replay vs direct replay, digested. ----
  serve::StreamingService service;
  auto added = service.AddTenant(tenant, DetectorOptions(config));
  if (!added.ok()) Die(added);
  serve::NetServer server(&service);
  serve::LoopbackTransport transport(&server);
  serve::NetClient client(&transport);
  auto framed_wall = ReplayFramed(config, &client, tenant);
  if (!framed_wall.ok()) Die(framed_wall.status());
  auto framed_digest = DigestFramedOutputs(config, &client, tenant);
  if (!framed_digest.ok()) Die(framed_digest.status());

  serve::StreamingService direct_service;
  added = direct_service.AddTenant(tenant, DetectorOptions(config));
  if (!added.ok()) Die(added);
  auto direct_detector = direct_service.Tenant(tenant);
  if (!direct_detector.ok()) Die(direct_detector.status());
  auto direct_wall = ReplayDirect(config, direct_detector.Value().get());
  if (!direct_wall.ok()) Die(direct_wall.status());
  auto direct_digest = DigestDirectOutputs(config, direct_service, tenant);
  if (!direct_digest.ok()) Die(direct_digest.status());

  const bool bit_identical = framed_digest.Value() == direct_digest.Value();
  std::printf("framed digest 0x%016" PRIx64 " vs in-process digest "
              "0x%016" PRIx64 " — bit-identical: %s\n",
              framed_digest.Value(), direct_digest.Value(),
              bit_identical ? "yes" : "NO");

  // ---- (b) Checkpoint round trip over the wire. ----
  auto ckpt_frame = client.FetchCheckpoint(tenant);
  if (!ckpt_frame.ok()) Die(ckpt_frame.status());
  auto restored = serve::RestoreDetector(ckpt_frame.Value(),
                                         DetectorOptions(config));
  if (!restored.ok()) Die(restored.status());
  auto leader_snapshot = direct_detector.Value()->Snapshot();
  auto restored_snapshot = restored.Value()->Snapshot();
  const bool restore_identical =
      leader_snapshot != nullptr && restored_snapshot != nullptr &&
      SnapshotDigest(*leader_snapshot) == SnapshotDigest(*restored_snapshot);
  std::printf("checkpoint %zu bytes over the wire, restored snapshot "
              "bit-identical: %s\n\n",
              ckpt_frame.Value().size(), restore_identical ? "yes" : "NO");

  // ---- (c) Framed throughput, best of trials. ----
  double best_framed_ms = framed_wall.Value();
  uint64_t frames_sent = client.stats().frames_sent;
  uint64_t bytes_sent = client.stats().bytes_sent;
  for (size_t trial = 1; trial < trials; ++trial) {
    serve::StreamingService trial_service;
    auto ok = trial_service.AddTenant(tenant, DetectorOptions(config));
    if (!ok.ok()) Die(ok);
    serve::NetServer trial_server(&trial_service);
    serve::LoopbackTransport trial_transport(&trial_server);
    serve::NetClient trial_client(&trial_transport);
    auto wall = ReplayFramed(config, &trial_client, tenant);
    if (!wall.ok()) Die(wall.status());
    best_framed_ms = std::min(best_framed_ms, wall.Value());
  }
  const double updates_per_sec = 1e3 * static_cast<double>(total_events) /
                                 std::max(best_framed_ms, 1e-9);
  const double direct_updates_per_sec =
      1e3 * static_cast<double>(total_events) /
      std::max(direct_wall.Value(), 1e-9);
  std::printf("framed throughput: %.0f updates/s (best of %zu; direct path "
              "%.0f updates/s), %llu frames, %.1f MB sent, %llu retries\n",
              updates_per_sec, trials, direct_updates_per_sec,
              static_cast<unsigned long long>(frames_sent),
              static_cast<double>(bytes_sent) / 1e6,
              static_cast<unsigned long long>(client.stats().retries));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve_net\",\n");
  std::fprintf(out,
               "  \"config\": {\"n\": %zu, \"m\": %zu, \"window\": %zu, "
               "\"shards\": %zu, \"epochs\": %zu, \"events_per_epoch\": %zu, "
               "\"batch\": %zu, \"k\": %zu, \"seed\": %llu, \"trials\": "
               "%zu},\n",
               config.n, config.m, config.window, config.shards, config.epochs,
               config.events_per_epoch, config.batch, config.k,
               static_cast<unsigned long long>(config.seed), trials);
  std::fprintf(out, "  \"framed_digest\": \"0x%016" PRIx64 "\",\n",
               framed_digest.Value());
  std::fprintf(out, "  \"inprocess_digest\": \"0x%016" PRIx64 "\",\n",
               direct_digest.Value());
  std::fprintf(out, "  \"bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  std::fprintf(out,
               "  \"checkpoint\": {\"bytes\": %zu, "
               "\"restore_bit_identical\": %s},\n",
               ckpt_frame.Value().size(),
               restore_identical ? "true" : "false");
  std::fprintf(out,
               "  \"throughput\": {\"updates_per_sec\": %.0f, "
               "\"direct_updates_per_sec\": %.0f, \"frames_sent\": %llu, "
               "\"bytes_sent\": %llu, \"retries\": %llu}\n}\n",
               updates_per_sec, direct_updates_per_sec,
               static_cast<unsigned long long>(frames_sent),
               static_cast<unsigned long long>(bytes_sent),
               static_cast<unsigned long long>(client.stats().retries));
  std::fclose(out);
  std::printf("Wrote %s\n", out_path.c_str());
  return (bit_identical && restore_identical) ? 0 : 1;
}
