// google-benchmark micro kernels for the hot paths of the CS pipeline:
// column generation, compression, correlation (cached vs implicit), QR
// append, and end-to-end OMP/BOMP recovery. These quantify the design
// decisions called out in DESIGN.md (dense cache vs regeneration) and the
// GPU-offload opportunity the paper leaves as future work.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "cs/basis_pursuit.h"
#include "cs/bomp.h"
#include "cs/compressor.h"
#include "cs/measurement_matrix.h"
#include "la/incremental_qr.h"
#include "sketch/count_sketch.h"
#include "sketch/hyperloglog.h"
#include "workload/generators.h"

namespace {

using namespace csod;

void BM_CounterGaussian(benchmark::State& state) {
  CounterGaussian gen(42);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.At(i++));
  }
}
BENCHMARK(BM_CounterGaussian);

void BM_ColumnGeneration(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  cs::MeasurementMatrix matrix(m, 1024, 7, /*cache_budget_bytes=*/0);
  std::vector<double> col(m);
  size_t j = 0;
  for (auto _ : state) {
    matrix.FillColumn(j++ % 1024, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ColumnGeneration)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressSparseSlice(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t nnz = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, 100000, 3, /*cache_budget_bytes=*/0);
  cs::SparseSlice slice;
  Rng rng(5);
  for (size_t i = 0; i < nnz; ++i) {
    slice.indices.push_back(rng.NextBounded(100000));
    slice.values.push_back(rng.NextGaussian());
  }
  for (auto _ : state) {
    auto y = matrix.MultiplySparse(slice.indices, slice.values);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * m * nnz);
}
BENCHMARK(BM_CompressSparseSlice)->Args({100, 1000})->Args({400, 1000});

void BM_CorrelateCached(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  for (auto _ : state) {
    auto c = matrix.CorrelateAll(r);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateCached)->Args({200, 10000})->Args({400, 20000});

void BM_CorrelateImplicit(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9, /*cache_budget_bytes=*/0);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  for (auto _ : state) {
    auto c = matrix.CorrelateAll(r);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateImplicit)->Args({200, 10000});

void BM_QrAppendColumn(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::vector<double>> columns;
  for (int i = 0; i < 64; ++i) {
    std::vector<double> col(m);
    for (double& v : col) v = rng.NextGaussian();
    columns.push_back(std::move(col));
  }
  for (auto _ : state) {
    la::IncrementalQr qr(m);
    for (const auto& col : columns) {
      benchmark::DoNotOptimize(qr.AppendColumn(col));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QrAppendColumn)->Arg(256)->Arg(1024);

void BM_BompRecovery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t s = static_cast<size_t>(state.range(1));
  const size_t m = static_cast<size_t>(state.range(2));

  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = 13;
  auto x = workload::GenerateMajorityDominated(gen).MoveValue();
  cs::MeasurementMatrix matrix(m, n, 21);
  auto y = matrix.Multiply(x).MoveValue();

  cs::BompOptions options;
  options.max_iterations = s + 2;
  for (auto _ : state) {
    auto result = cs::RunBomp(matrix, y, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BompRecovery)
    ->Args({1000, 10, 100})
    ->Args({1000, 50, 400})
    ->Args({10000, 50, 400});

void BM_CountSketchUpdate(benchmark::State& state) {
  auto sketch = sketch::CountSketch::Create(1024, 5, 3).MoveValue();
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Update(key++, 1.5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_HyperLogLogAdd(benchmark::State& state) {
  auto hll = sketch::HyperLogLog::Create(12).MoveValue();
  uint64_t key = 0;
  for (auto _ : state) {
    hll.Add(key++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_BiasedBasisPursuit(benchmark::State& state) {
  const size_t n = 512;
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = 10;
  gen.seed = 3;
  auto x = workload::GenerateMajorityDominated(gen).MoveValue();
  cs::MeasurementMatrix matrix(128, n, 9);
  auto y = matrix.Multiply(x).MoveValue();
  cs::BasisPursuitOptions options;
  options.max_iterations = 100;
  options.lambda = 2.0;
  for (auto _ : state) {
    auto result = cs::RunBiasedBasisPursuit(matrix, y, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BiasedBasisPursuit);

void BM_MeasurementAggregation(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> measurements(64,
                                                std::vector<double>(m, 1.0));
  for (auto _ : state) {
    auto y = cs::Compressor::AggregateMeasurements(measurements);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * 64 * m);
}
BENCHMARK(BM_MeasurementAggregation)->Arg(400)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
