// google-benchmark micro kernels for the hot paths of the CS pipeline:
// column generation, compression, correlation (cached vs implicit), QR
// append, and end-to-end OMP/BOMP recovery. These quantify the design
// decisions called out in DESIGN.md (dense cache vs regeneration) and the
// GPU-offload opportunity the paper leaves as future work.

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "cs/basis_pursuit.h"
#include "cs/bomp.h"
#include "cs/compressor.h"
#include "cs/measurement_matrix.h"
#include "la/incremental_qr.h"
#include "sim/buggify.h"
#include "sketch/count_sketch.h"
#include "sketch/hyperloglog.h"
#include "workload/generators.h"

namespace {

using namespace csod;

void BM_CounterGaussian(benchmark::State& state) {
  CounterGaussian gen(42);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.At(i++));
  }
}
BENCHMARK(BM_CounterGaussian);

void BM_ColumnGeneration(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  cs::MeasurementMatrix matrix(m, 1024, 7, /*cache_budget_bytes=*/0);
  std::vector<double> col(m);
  size_t j = 0;
  for (auto _ : state) {
    matrix.FillColumn(j++ % 1024, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ColumnGeneration)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressSparseSlice(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t nnz = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, 100000, 3, /*cache_budget_bytes=*/0);
  cs::SparseSlice slice;
  Rng rng(5);
  for (size_t i = 0; i < nnz; ++i) {
    slice.indices.push_back(rng.NextBounded(100000));
    slice.values.push_back(rng.NextGaussian());
  }
  for (auto _ : state) {
    auto y = matrix.MultiplySparse(slice.indices, slice.values);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * m * nnz);
}
BENCHMARK(BM_CompressSparseSlice)->Args({100, 1000})->Args({400, 1000});

void BM_CorrelateCached(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  for (auto _ : state) {
    auto c = matrix.CorrelateAll(r);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateCached)->Args({200, 10000})->Args({400, 20000});

void BM_CorrelateImplicit(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9, /*cache_budget_bytes=*/0);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  for (auto _ : state) {
    auto c = matrix.CorrelateAll(r);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateImplicit)->Args({200, 10000});

void BM_QrAppendColumn(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::vector<double>> columns;
  for (int i = 0; i < 64; ++i) {
    std::vector<double> col(m);
    for (double& v : col) v = rng.NextGaussian();
    columns.push_back(std::move(col));
  }
  for (auto _ : state) {
    la::IncrementalQr qr(m);
    for (const auto& col : columns) {
      benchmark::DoNotOptimize(qr.AppendColumn(col));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QrAppendColumn)->Arg(256)->Arg(1024);

void BM_BompRecovery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t s = static_cast<size_t>(state.range(1));
  const size_t m = static_cast<size_t>(state.range(2));

  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = 13;
  auto x = workload::GenerateMajorityDominated(gen).MoveValue();
  cs::MeasurementMatrix matrix(m, n, 21);
  auto y = matrix.Multiply(x).MoveValue();

  cs::BompOptions options;
  options.max_iterations = s + 2;
  for (auto _ : state) {
    auto result = cs::RunBomp(matrix, y, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BompRecovery)
    ->Args({1000, 10, 100})
    ->Args({1000, 50, 400})
    ->Args({10000, 50, 400})
    ->Args({100000, 50, 512})  // Paper scale; the acceptance target.
    ->Unit(benchmark::kMillisecond);

// The seed's ParallelFor: spawn + join fresh std::threads on every call.
// Kept here as the baseline BM_SpawnJoinOverhead so the pool's dispatch win
// is measurable against it in the same binary.
void SpawnJoinParallelFor(size_t count, size_t min_chunk,
                          const std::function<void(size_t, size_t)>& body) {
  const size_t limit = GetParallelismLimit();
  const size_t chunks =
      std::min(limit, std::max<size_t>(1, count / std::max<size_t>(1, min_chunk)));
  if (chunks <= 1 || count == 0) {
    if (count > 0) body(0, count);
    return;
  }
  const size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(chunks - 1);
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(count, begin + chunk_size);
    if (begin < end) threads.emplace_back(body, begin, end);
  }
  body(0, std::min(count, chunk_size));
  for (auto& t : threads) t.join();
}

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch cost of the persistent pool: trivial body, small range. The
  // pool parks workers between calls, so steady state is one notify_all
  // plus the chunk bookkeeping.
  SetParallelismLimit(4);
  for (auto _ : state) {
    ParallelFor(4096, 1, [](size_t begin, size_t end) {
      benchmark::DoNotOptimize(begin + end);
    });
  }
  state.counters["workers"] =
      static_cast<double>(ThreadPool::Global().worker_count());
  SetParallelismLimit(std::max<size_t>(1, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_ParallelForOverhead);

void BM_SpawnJoinOverhead(benchmark::State& state) {
  // What the seed paid per ParallelFor call: thread creation + join.
  SetParallelismLimit(4);
  for (auto _ : state) {
    SpawnJoinParallelFor(4096, 1, [](size_t begin, size_t end) {
      benchmark::DoNotOptimize(begin + end);
    });
  }
  SetParallelismLimit(std::max<size_t>(1, std::thread::hardware_concurrency()));
}
BENCHMARK(BM_SpawnJoinOverhead);

void BM_CorrelateArgmax(benchmark::State& state) {
  // The fused OMP statement-4 kernel at paper scale: M=512, N=100k, cached
  // (409.6 MB, inside the default 512 MB budget).
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  std::vector<bool> mask(n, false);
  for (size_t j = 0; j < n; j += 997) mask[j] = true;
  for (auto _ : state) {
    auto pick = matrix.CorrelateArgmax(r, &mask);
    benchmark::DoNotOptimize(pick);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateArgmax)->Args({512, 100000})->Unit(benchmark::kMillisecond);

void BM_CorrelateAllPlusScan(benchmark::State& state) {
  // The unfused shape of the same work: materialize the N-vector of
  // correlations, then rescan it for the masked argmax.
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  std::vector<bool> mask(n, false);
  for (size_t j = 0; j < n; j += 997) mask[j] = true;
  for (auto _ : state) {
    auto c = matrix.CorrelateAll(r).MoveValue();
    size_t best = n;
    double best_abs = -1.0;
    for (size_t j = 0; j < n; ++j) {
      if (mask[j]) continue;
      const double a = std::fabs(c[j]);
      if (a > best_abs) {
        best_abs = a;
        best = j;
      }
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateAllPlusScan)
    ->Args({512, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_CorrelateScalarPlusScan(benchmark::State& state) {
  // Seed-equivalent baseline: one scalar accumulator per column over an
  // identical column-major cache, then the argmax rescan. This is the
  // kernel shape the register-blocked CorrelateArgmax replaces.
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  cs::MeasurementMatrix matrix(m, n, 9, /*cache_budget_bytes=*/0);
  std::vector<double> cache(m * n);
  for (size_t j = 0; j < n; ++j) matrix.FillColumn(j, cache.data() + j * m);
  std::vector<double> r(m);
  Rng rng(2);
  for (double& v : r) v = rng.NextGaussian();
  std::vector<bool> mask(n, false);
  for (size_t j = 0; j < n; j += 997) mask[j] = true;
  std::vector<double> c(n);
  for (auto _ : state) {
    for (size_t j = 0; j < n; ++j) {
      const double* col = cache.data() + j * m;
      double acc = 0.0;
      for (size_t i = 0; i < m; ++i) acc += col[i] * r[i];
      c[j] = acc;
    }
    size_t best = n;
    double best_abs = -1.0;
    for (size_t j = 0; j < n; ++j) {
      if (mask[j]) continue;
      const double a = std::fabs(c[j]);
      if (a > best_abs) {
        best_abs = a;
        best = j;
      }
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_CorrelateScalarPlusScan)
    ->Args({512, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_CountSketchUpdate(benchmark::State& state) {
  auto sketch = sketch::CountSketch::Create(1024, 5, 3).MoveValue();
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Update(key++, 1.5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_HyperLogLogAdd(benchmark::State& state) {
  auto hll = sketch::HyperLogLog::Create(12).MoveValue();
  uint64_t key = 0;
  for (auto _ : state) {
    hll.Add(key++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_BiasedBasisPursuit(benchmark::State& state) {
  const size_t n = 512;
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = 10;
  gen.seed = 3;
  auto x = workload::GenerateMajorityDominated(gen).MoveValue();
  cs::MeasurementMatrix matrix(128, n, 9);
  auto y = matrix.Multiply(x).MoveValue();
  cs::BasisPursuitOptions options;
  options.max_iterations = 100;
  options.lambda = 2.0;
  for (auto _ : state) {
    auto result = cs::RunBiasedBasisPursuit(matrix, y, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BiasedBasisPursuit);

void BM_MeasurementAggregation(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> measurements(64,
                                                std::vector<double>(m, 1.0));
  for (auto _ : state) {
    auto y = cs::Compressor::AggregateMeasurements(measurements);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * 64 * m);
}
BENCHMARK(BM_MeasurementAggregation)->Arg(400)->Arg(2000);

// Disabled Buggify sites live in release hot paths (comm sends, map
// tasks, ingest batches — DESIGN.md §15), so their cost must be one
// relaxed load and a never-taken branch. Measured here against an empty
// loop so a regression (say, a mutex sneaking into the fast path) shows
// up as a multiple, not a few lost nanoseconds.
void BM_BuggifyDisabledSite(benchmark::State& state) {
  sim::BuggifyDisable();
  uint64_t fired = 0;
  for (auto _ : state) {
    if (CSOD_BUGGIFY("bench.disabled_site")) ++fired;
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_BuggifyDisabledSite);

void BM_BuggifyEnabledSite(benchmark::State& state) {
  sim::BuggifyOptions options;
  options.activation_probability = 1.0;
  options.fire_probability = 0.25;
  sim::BuggifyEnable(options);
  uint64_t fired = 0;
  for (auto _ : state) {
    if (CSOD_BUGGIFY("bench.enabled_site")) ++fired;
    benchmark::DoNotOptimize(fired);
  }
  sim::BuggifyDisable();
}
BENCHMARK(BM_BuggifyEnabledSite);

}  // namespace

BENCHMARK_MAIN();
