#include "tools/cli_commands.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "core/detector.h"
#include "dist/comm.h"
#include "outlier/outlier.h"
#include "query/executor.h"
#include "query/query.h"
#include "serve/checkpoint.h"
#include "serve/net.h"
#include "serve/service.h"
#include "serve/streaming_detector.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::tools {

namespace {

// Builds per-node sparse slices (with in-node aggregation) from the file.
std::vector<cs::SparseSlice> SlicesFromEvents(const EventFile& events) {
  std::vector<cs::SparseSlice> slices;
  slices.reserve(events.splits.size());
  for (const auto& split : events.splits) {
    std::map<uint64_t, double> sums;
    for (const mr::ScoreEvent& e : split) sums[e.key] += e.score;
    cs::SparseSlice slice;
    for (const auto& [key, value] : sums) {
      slice.indices.push_back(key);
      slice.values.push_back(value);
    }
    slices.push_back(std::move(slice));
  }
  return slices;
}

std::string RenderOutliers(const outlier::OutlierSet& set,
                           const char* header) {
  std::ostringstream out;
  out << header << " (mode " << set.mode << ")\n";
  char line[128];
  for (size_t i = 0; i < set.outliers.size(); ++i) {
    const auto& o = set.outliers[i];
    std::snprintf(line, sizeof(line),
                  "  %2zu. key %-10zu value %14.3f divergence %14.3f\n",
                  i + 1, o.key_index, o.value, o.divergence);
    out << line;
  }
  return out.str();
}

Result<std::unique_ptr<core::DistributedOutlierDetector>> BuildDetector(
    const EventFile& events, const DetectOptions& options) {
  core::DetectorOptions detector_options;
  detector_options.n =
      options.n_override ? options.n_override : events.key_space;
  detector_options.m = options.m;
  detector_options.seed = options.seed;
  detector_options.iterations = options.iterations;
  detector_options.solver = options.solver;
  detector_options.telemetry = options.telemetry;
  CSOD_ASSIGN_OR_RETURN(auto detector,
                        core::DistributedOutlierDetector::Create(
                            detector_options));
  for (const auto& slice : SlicesFromEvents(events)) {
    CSOD_RETURN_NOT_OK(detector->AddSource(slice).status());
  }
  return detector;
}

std::string CommunicationFooter(const EventFile& events,
                                const DetectOptions& options, size_t n) {
  const uint64_t cs_bytes = static_cast<uint64_t>(events.splits.size()) *
                            options.m * dist::kMeasurementBytes;
  const uint64_t all_bytes =
      static_cast<uint64_t>(events.splits.size()) * n * dist::kValueBytes;
  char line[160];
  std::snprintf(line, sizeof(line),
                "communication: %llu bytes (%.2f%% of transmitting all "
                "%zu-key vectors from %zu nodes)\n",
                static_cast<unsigned long long>(cs_bytes),
                all_bytes ? 100.0 * static_cast<double>(cs_bytes) /
                                static_cast<double>(all_bytes)
                          : 0.0,
                n, events.splits.size());
  return line;
}

}  // namespace

Result<size_t> WriteSyntheticEvents(const std::string& path,
                                    const GenerateOptions& options) {
  workload::ClickLogOptions gen;
  gen.n_override = options.n;
  gen.sparsity_override = options.sparsity;
  gen.mode = options.mode;
  gen.seed = options.seed;
  CSOD_ASSIGN_OR_RETURN(workload::ClickLogData data,
                        workload::GenerateClickLog(gen));

  workload::PartitionOptions part;
  part.num_nodes = options.num_nodes;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.cancellation_noise = 2.0 * options.mode;
  part.seed = options.seed + 1;
  CSOD_ASSIGN_OR_RETURN(auto slices,
                        workload::PartitionAdditive(data.global, part));

  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "# csod event file: <node-id> <key-index> <value>\n";
  out << "# N = " << options.n << ", planted outliers = " << options.sparsity
      << ", mode = " << options.mode << "\n";
  out.precision(17);
  size_t records = 0;
  for (size_t node = 0; node < slices.size(); ++node) {
    for (size_t j = 0; j < slices[node].indices.size(); ++j) {
      out << node << ' ' << slices[node].indices[j] << ' '
          << slices[node].values[j] << '\n';
      ++records;
    }
  }
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return records;
}

Result<EventFile> LoadEvents(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  EventFile file;
  std::map<uint64_t, size_t> node_rank;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    uint64_t node = 0;
    uint64_t key = 0;
    double value = 0.0;
    if (!(fields >> node >> key >> value)) {
      return Status::InvalidArgument("malformed record at " + path + ":" +
                                     std::to_string(line_number));
    }
    auto [it, inserted] = node_rank.try_emplace(node, file.splits.size());
    if (inserted) file.splits.emplace_back();
    file.splits[it->second].push_back(mr::ScoreEvent{key, value});
    file.key_space = std::max(file.key_space, static_cast<size_t>(key) + 1);
    ++file.num_records;
  }
  if (file.num_records == 0) {
    return Status::InvalidArgument("no records in: " + path);
  }
  return file;
}

Result<std::string> RunDetect(const EventFile& events,
                              const DetectOptions& options) {
  CSOD_ASSIGN_OR_RETURN(auto detector, BuildDetector(events, options));
  CSOD_ASSIGN_OR_RETURN(outlier::OutlierSet result,
                        detector->Detect(options.k));
  std::string report = RenderOutliers(result, "k-outliers via BOMP");
  report += std::string("solver: ") + cs::SolverName(options.solver) + "\n";
  report += CommunicationFooter(events, options, detector->options().n);
  return report;
}

Result<std::string> RunTopK(const EventFile& events,
                            const DetectOptions& options) {
  CSOD_ASSIGN_OR_RETURN(auto detector, BuildDetector(events, options));
  CSOD_ASSIGN_OR_RETURN(auto top, detector->DetectTopK(options.k));
  outlier::OutlierSet as_set;
  as_set.outliers = std::move(top);
  std::string report = RenderOutliers(as_set, "top-k via CS recovery");
  report += std::string("solver: ") + cs::SolverName(options.solver) + "\n";
  report += CommunicationFooter(events, options, detector->options().n);
  return report;
}

Result<TableFile> LoadCsvTable(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  TableFile table;
  std::map<std::string, size_t> node_rank;
  size_t node_column = 0;
  bool header_seen = false;
  std::string line;
  size_t line_number = 0;

  auto split = [](const std::string& text) {
    std::vector<std::string> cells;
    size_t start = 0;
    while (true) {
      const size_t comma = text.find(',', start);
      cells.push_back(text.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return cells;
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cells = split(line);
    if (!header_seen) {
      header_seen = true;
      bool node_found = false;
      for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == "node") {
          node_column = i;
          node_found = true;
        } else {
          table.columns.push_back(cells[i]);
        }
      }
      if (!node_found) {
        return Status::InvalidArgument("header must contain a 'node' column");
      }
      continue;
    }
    if (cells.size() != table.columns.size() + 1) {
      return Status::InvalidArgument(
          "wrong cell count at " + path + ":" + std::to_string(line_number));
    }
    const std::string& node = cells[node_column];
    auto [it, inserted] = node_rank.try_emplace(node, table.node_rows.size());
    if (inserted) table.node_rows.emplace_back();
    std::vector<std::string> row;
    row.reserve(table.columns.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i != node_column) row.push_back(std::move(cells[i]));
    }
    table.node_rows[it->second].push_back(std::move(row));
  }
  if (!header_seen || table.node_rows.empty()) {
    return Status::InvalidArgument("no data rows in: " + path);
  }
  return table;
}

Result<std::string> RunQuery(const TableFile& table, const std::string& sql,
                             const DetectOptions& options) {
  CSOD_ASSIGN_OR_RETURN(query::Query parsed, query::ParseQuery(sql));

  std::vector<query::LogTable> node_tables;
  node_tables.reserve(table.node_rows.size());
  for (const auto& rows : table.node_rows) {
    query::LogTable log_table;
    log_table.columns = table.columns;
    for (const auto& row : rows) {
      CSOD_RETURN_NOT_OK(log_table.AddRow(row));
    }
    node_tables.push_back(std::move(log_table));
  }

  query::ExecutionOptions exec;
  exec.m = options.m;
  exec.seed = options.seed;
  exec.iterations = options.iterations;
  CSOD_ASSIGN_OR_RETURN(query::QueryResult result,
                        query::ExecuteDistributed(parsed, node_tables, exec));

  std::ostringstream out;
  out << (parsed.kind == query::QueryKind::kOutlier ? "Outlier" : "Top")
      << "-" << parsed.k << " answer over " << result.key_space
      << " group keys (mode " << result.mode << ")\n";
  char line[192];
  for (size_t i = 0; i < result.rows.size(); ++i) {
    std::snprintf(line, sizeof(line), "  %2zu. %-40s value %14.3f\n", i + 1,
                  result.rows[i].group_key.c_str(), result.rows[i].value);
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "communication: %llu bytes (%.2f%% of transmitting all "
                "aggregates)\n",
                static_cast<unsigned long long>(result.bytes_shipped),
                result.bytes_all
                    ? 100.0 * static_cast<double>(result.bytes_shipped) /
                          static_cast<double>(result.bytes_all)
                    : 0.0);
  out << line;
  return out.str();
}

Result<std::string> RunExact(const EventFile& events, size_t k) {
  std::vector<double> global(events.key_space, 0.0);
  for (const auto& slice : SlicesFromEvents(events)) {
    for (size_t j = 0; j < slice.indices.size(); ++j) {
      global[slice.indices[j]] += slice.values[j];
    }
  }
  outlier::OutlierSet truth = outlier::ExactKOutliers(global, k);
  return RenderOutliers(truth, "exact k-outliers (centralized reference)");
}

namespace {

std::string SnapshotProvenance(const serve::StreamingDetector& detector) {
  auto snapshot = detector.Snapshot();
  if (!snapshot) return "snapshot: none published\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "snapshot: v%llu covering epochs %llu..%llu (%zu of window), "
                "staleness %llu epoch(s), %llu events\n",
                static_cast<unsigned long long>(snapshot->version),
                static_cast<unsigned long long>(snapshot->first_epoch),
                static_cast<unsigned long long>(snapshot->last_epoch),
                snapshot->epochs_covered,
                static_cast<unsigned long long>(detector.current_epoch() -
                                                snapshot->last_epoch),
                static_cast<unsigned long long>(snapshot->events));
  return line;
}

}  // namespace

Result<std::string> RunServe(const EventFile& events,
                             const ServeOptions& options) {
  if (options.epochs == 0) {
    return Status::InvalidArgument("serve: --epochs must be > 0");
  }
  if (options.batch_events == 0) {
    return Status::InvalidArgument("serve: --batch must be > 0");
  }
  serve::StreamingDetectorOptions stream;
  stream.n = options.n_override ? options.n_override : events.key_space;
  stream.m = options.m;
  stream.seed = options.seed;
  stream.iterations = options.iterations;
  stream.window_epochs = options.window_epochs;
  stream.num_shards = options.num_shards;
  stream.telemetry = options.telemetry;
  CSOD_ASSIGN_OR_RETURN(auto detector,
                        serve::StreamingDetector::Create(stream));

  // Flatten the file into one replay stream: node-major, file order within
  // a node — a deterministic stand-in for arrival order.
  std::vector<size_t> keys;
  std::vector<double> deltas;
  keys.reserve(events.num_records);
  deltas.reserve(events.num_records);
  for (const auto& split : events.splits) {
    for (const mr::ScoreEvent& e : split) {
      keys.push_back(static_cast<size_t>(e.key));
      deltas.push_back(e.score);
    }
  }

  detector->AdvanceEpoch();  // Open epoch 0.
  const size_t total = keys.size();
  const size_t per_epoch = (total + options.epochs - 1) / options.epochs;
  size_t batches = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const size_t begin = std::min(epoch * per_epoch, total);
    const size_t end = std::min(begin + per_epoch, total);
    for (size_t at = begin; at < end; at += options.batch_events) {
      const size_t count = std::min(options.batch_events, end - at);
      CSOD_RETURN_NOT_OK(
          detector->IngestBatch(keys.data() + at, deltas.data() + at, count));
      ++batches;
    }
    detector->AdvanceEpoch();  // Close the epoch; publish the snapshot.
  }

  CSOD_ASSIGN_OR_RETURN(outlier::OutlierSet result,
                        detector->QueryOutliers(options.k));

  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "replayed %zu events as %zu epochs (%zu batches of <= %zu, "
                "%zu shards, window %zu)\n",
                total, options.epochs, batches, options.batch_events,
                options.num_shards, options.window_epochs);
  out << line;
  out << SnapshotProvenance(*detector);
  out << RenderOutliers(result, "window k-outliers via BOMP");
  return out.str();
}

namespace {

// Everything between transport construction and teardown: drives the whole
// replay through the NetClient so RunServeNet can join the server thread on
// every exit path.
Result<std::string> DriveServeNet(
    serve::StreamingService* service, serve::NetServer* server,
    serve::FrameTransport* transport, const EventFile& events,
    const ServeNetOptions& options,
    const serve::StreamingDetectorOptions& stream) {
  constexpr char kTenant[] = "stream";
  serve::NetClient client(transport);

  // Flatten the file into one replay stream: node-major, file order within
  // a node — the same deterministic arrival order as `serve`.
  std::vector<size_t> keys;
  std::vector<double> deltas;
  keys.reserve(events.num_records);
  deltas.reserve(events.num_records);
  for (const auto& split : events.splits) {
    for (const mr::ScoreEvent& e : split) {
      keys.push_back(static_cast<size_t>(e.key));
      deltas.push_back(e.score);
    }
  }

  CSOD_RETURN_NOT_OK(client.AdvanceTo(kTenant, 0).status());  // Open epoch 0.
  const size_t total = keys.size();
  const size_t per_epoch = (total + options.epochs - 1) / options.epochs;
  size_t batches = 0;
  std::vector<size_t> batch_keys;
  std::vector<double> batch_deltas;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const size_t begin = std::min(epoch * per_epoch, total);
    const size_t end = std::min(begin + per_epoch, total);
    for (size_t at = begin; at < end; at += options.batch_events) {
      const size_t count = std::min(options.batch_events, end - at);
      batch_keys.assign(keys.begin() + at, keys.begin() + at + count);
      batch_deltas.assign(deltas.begin() + at, deltas.begin() + at + count);
      CSOD_RETURN_NOT_OK(client.Ingest(kTenant, batch_keys, batch_deltas));
      ++batches;
    }
    CSOD_RETURN_NOT_OK(client.AdvanceTo(kTenant, epoch + 1).status());
  }

  // The framed query, and the same query asked in-process: the deployment
  // surface must not perturb a single bit of the answer.
  char query_text[160];
  std::snprintf(query_text, sizeof(query_text),
                "SELECT Outlier %zu SUM(score), key FROM %s GROUP BY key",
                options.k, kTenant);
  CSOD_ASSIGN_OR_RETURN(serve::StreamingQueryResult framed,
                        client.Query(query_text));
  CSOD_ASSIGN_OR_RETURN(serve::StreamingQueryResult direct,
                        service->Query(query_text));
  bool exact = framed.rows.size() == direct.rows.size() &&
               framed.mode == direct.mode &&
               framed.snapshot_version == direct.snapshot_version;
  for (size_t i = 0; exact && i < framed.rows.size(); ++i) {
    exact = framed.rows[i].group_key == direct.rows[i].group_key &&
            framed.rows[i].value == direct.rows[i].value &&
            framed.rows[i].rank_score == direct.rows[i].rank_score;
  }
  if (!exact) {
    return Status::Internal(
        "serve-net: framed query diverged from the in-process answer");
  }

  // Checkpoint → restore: the restored detector must republish the
  // leader's snapshot bit-identically (version, epoch range, y bytes).
  CSOD_ASSIGN_OR_RETURN(std::string ckpt_frame,
                        client.FetchCheckpoint(kTenant));
  CSOD_ASSIGN_OR_RETURN(auto restored,
                        serve::RestoreDetector(ckpt_frame, stream));
  CSOD_ASSIGN_OR_RETURN(std::shared_ptr<serve::StreamingDetector> leader,
                        service->Tenant(kTenant));
  auto leader_snap = leader->Snapshot();
  auto restored_snap = restored->Snapshot();
  if (leader_snap == nullptr || restored_snap == nullptr ||
      restored_snap->version != leader_snap->version ||
      restored_snap->first_epoch != leader_snap->first_epoch ||
      restored_snap->last_epoch != leader_snap->last_epoch ||
      restored_snap->y != leader_snap->y) {
    return Status::Internal(
        "serve-net: restored checkpoint snapshot is not bit-identical");
  }

  // Follower replication: a replica fed only the published snapshot must
  // answer the window query bit-identically to the leader.
  serve::SnapshotFollowerOptions follower_options;
  follower_options.n = stream.n;
  follower_options.m = stream.m;
  follower_options.seed = stream.seed;
  follower_options.iterations = stream.iterations;
  follower_options.solver = stream.solver;
  CSOD_ASSIGN_OR_RETURN(auto follower,
                        serve::SnapshotFollower::Create(follower_options));
  CSOD_RETURN_NOT_OK(follower->ReplicateOnce(&client, kTenant));
  CSOD_ASSIGN_OR_RETURN(outlier::OutlierSet follower_set,
                        follower->QueryOutliers(options.k));
  CSOD_ASSIGN_OR_RETURN(outlier::OutlierSet leader_set,
                        leader->QueryOutliers(options.k));
  bool replica_exact = follower_set.mode == leader_set.mode &&
                       follower_set.outliers.size() ==
                           leader_set.outliers.size();
  for (size_t i = 0; replica_exact && i < follower_set.outliers.size(); ++i) {
    replica_exact =
        follower_set.outliers[i].key_index ==
            leader_set.outliers[i].key_index &&
        follower_set.outliers[i].value == leader_set.outliers[i].value &&
        follower_set.outliers[i].divergence ==
            leader_set.outliers[i].divergence;
  }
  if (!replica_exact) {
    return Status::Internal(
        "serve-net: follower answer diverged from the leader");
  }

  std::ostringstream out;
  char line[224];
  std::snprintf(line, sizeof(line),
                "replayed %zu events as %zu epochs over %s transport "
                "(%zu ingest frames of <= %zu events, %zu shards, "
                "window %zu)\n",
                total, options.epochs, options.socket ? "socket" : "loopback",
                batches, options.batch_events, options.num_shards,
                options.window_epochs);
  out << line;
  const serve::NetClient::Stats& cs = client.stats();
  std::snprintf(line, sizeof(line),
                "client: %llu frames sent (%llu B out, %llu B in), "
                "%llu retries, %llu pushbacks\n",
                static_cast<unsigned long long>(cs.frames_sent),
                static_cast<unsigned long long>(cs.bytes_sent),
                static_cast<unsigned long long>(cs.bytes_received),
                static_cast<unsigned long long>(cs.retries),
                static_cast<unsigned long long>(cs.pushbacks));
  out << line;
  std::snprintf(line, sizeof(line),
                "server: %llu frames handled, %llu rejected, "
                "%llu pushbacks\n",
                static_cast<unsigned long long>(server->frames_handled()),
                static_cast<unsigned long long>(server->frames_rejected()),
                static_cast<unsigned long long>(server->pushbacks()));
  out << line;
  std::snprintf(line, sizeof(line),
                "checkpoint: %zu B frame, restore republishes v%llu "
                "bit-identically\n",
                ckpt_frame.size(),
                static_cast<unsigned long long>(restored_snap->version));
  out << line;
  std::snprintf(line, sizeof(line),
                "follower: replicated v%llu, answers bit-identical to the "
                "leader\n",
                static_cast<unsigned long long>(
                    follower->Snapshot()->version));
  out << line;
  out << SnapshotProvenance(*leader);
  std::snprintf(line, sizeof(line),
                "window k-outliers via framed query (mode %.3f)\n",
                framed.mode);
  out << line;
  for (size_t i = 0; i < framed.rows.size(); ++i) {
    const query::ResultRow& row = framed.rows[i];
    std::snprintf(line, sizeof(line),
                  "  %2zu. key %-10s value %14.3f divergence %14.3f\n",
                  i + 1, row.group_key.c_str(), row.value, row.rank_score);
    out << line;
  }
  return out.str();
}

}  // namespace

Result<std::string> RunServeNet(const EventFile& events,
                                const ServeNetOptions& options) {
  if (options.epochs == 0) {
    return Status::InvalidArgument("serve-net: --epochs must be > 0");
  }
  if (options.batch_events == 0) {
    return Status::InvalidArgument("serve-net: --batch must be > 0");
  }
  serve::StreamingDetectorOptions stream;
  stream.n = options.n_override ? options.n_override : events.key_space;
  stream.m = options.m;
  stream.seed = options.seed;
  stream.iterations = options.iterations;
  stream.window_epochs = options.window_epochs;
  stream.num_shards = options.num_shards;
  stream.telemetry = options.telemetry;

  serve::StreamingService service(options.telemetry);
  CSOD_RETURN_NOT_OK(service.AddTenant("stream", stream));
  serve::NetServerOptions net;
  net.max_tenant_backlog_bytes = options.max_backlog_bytes;
  serve::NetServer server(&service, net);

  std::unique_ptr<serve::FrameTransport> transport;
  std::thread server_thread;
  if (options.socket) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return Status::Internal("serve-net: socketpair failed");
    }
    server_thread = std::thread([fd = fds[1], &server] {
      Status served = serve::ServeConnection(fd, &server);
      (void)served;  // Clean EOF; a transport error only ends the replay.
      ::close(fd);
    });
    transport = std::make_unique<serve::SocketTransport>(fds[0]);
  } else {
    transport = std::make_unique<serve::LoopbackTransport>(&server);
  }

  Result<std::string> report =
      DriveServeNet(&service, &server, transport.get(), events, options,
                    stream);
  // Destroying the transport closes the client fd; the server thread sees
  // clean EOF and exits.
  transport.reset();
  if (server_thread.joinable()) server_thread.join();
  return report;
}

Result<std::string> RunStreamDemo(const StreamDemoOptions& options) {
  if (options.n == 0 || options.epochs == 0 || options.events_per_epoch == 0) {
    return Status::InvalidArgument(
        "stream-demo: --n, --epochs, --events-per-epoch must be > 0");
  }
  serve::StreamingDetectorOptions stream;
  stream.n = options.n;
  stream.m = options.m;
  stream.seed = options.seed;
  stream.iterations = options.iterations;
  stream.window_epochs = options.window_epochs;
  stream.num_shards = options.num_shards;
  stream.telemetry = options.telemetry;
  CSOD_ASSIGN_OR_RETURN(auto detector,
                        serve::StreamingDetector::Create(stream));

  // One planted hot key receives a large spike at the head of every batch;
  // every other event is baseline noise around the mode.
  const size_t hot_key = options.n / 3;
  std::minstd_rand rng(
      static_cast<std::minstd_rand::result_type>(options.seed ? options.seed
                                                              : 1));
  detector->AdvanceEpoch();  // Open epoch 0.

  // The analyst thread: asks top-k queries against whatever snapshot is
  // published while ingestion runs. Queries before the first publication
  // fail by contract and are not counted.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries_answered{0};
  std::thread analyst([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (detector->QueryTopK(options.k).ok()) {
        queries_answered.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr size_t kBatchEvents = 512;
  std::vector<size_t> keys(kBatchEvents);
  std::vector<double> deltas(kBatchEvents);
  uint64_t events = 0;
  Status ingest_status;
  const auto start = std::chrono::steady_clock::now();
  for (size_t epoch = 0; epoch < options.epochs && ingest_status.ok();
       ++epoch) {
    size_t remaining = options.events_per_epoch;
    while (remaining > 0 && ingest_status.ok()) {
      const size_t count = std::min(kBatchEvents, remaining);
      for (size_t i = 0; i < count; ++i) {
        keys[i] = static_cast<size_t>(rng()) % options.n;
        deltas[i] =
            options.mode * (0.5 + static_cast<double>(rng() % 1000) / 1000.0);
      }
      keys[0] = hot_key;
      deltas[0] = options.mode * 50.0;
      ingest_status = detector->IngestBatch(keys.data(), deltas.data(), count);
      events += count;
      remaining -= count;
    }
    detector->AdvanceEpoch();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  done.store(true, std::memory_order_relaxed);
  analyst.join();
  CSOD_RETURN_NOT_OK(ingest_status);

  CSOD_ASSIGN_OR_RETURN(auto top, detector->QueryTopK(options.k));

  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "stream demo: N=%zu M=%zu window=%zu shards=%zu hot key %zu\n",
                options.n, options.m, options.window_epochs,
                options.num_shards, hot_key);
  out << line;
  std::snprintf(line, sizeof(line),
                "ingested %llu events over %zu epochs in %.3f s "
                "(%.0f events/sec)\n",
                static_cast<unsigned long long>(events), options.epochs,
                seconds,
                seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0);
  out << line;
  std::snprintf(line, sizeof(line),
                "concurrent queries answered: %llu\n",
                static_cast<unsigned long long>(
                    queries_answered.load(std::memory_order_relaxed)));
  out << line;
  out << SnapshotProvenance(*detector);
  outlier::OutlierSet as_set;
  as_set.outliers = std::move(top);
  out << RenderOutliers(as_set, "window top-k via CS recovery");
  return out.str();
}

}  // namespace csod::tools
