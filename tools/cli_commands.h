#ifndef CSOD_TOOLS_CLI_COMMANDS_H_
#define CSOD_TOOLS_CLI_COMMANDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cs/solver.h"
#include "mapreduce/jobs.h"
#include "obs/telemetry.h"

namespace csod::tools {

/// \brief The testable core of the `csod` command-line tool.
///
/// Event files are plain text, one record per line:
///     <node-id> <key-index> <value>
/// with `#`-prefixed comment lines ignored. This is the thinnest
/// interchange format that exercises the full pipeline (per-node slices →
/// compression → aggregation → recovery) from the shell.

/// Options for the `generate` subcommand.
struct GenerateOptions {
  size_t n = 4000;
  size_t sparsity = 50;
  size_t num_nodes = 8;
  double mode = 1800.0;
  uint64_t seed = 1;
};

/// Generates a synthetic click-log workload, partitions it over
/// `num_nodes` with the skewed partitioner, and writes the event file.
/// Returns the number of records written.
Result<size_t> WriteSyntheticEvents(const std::string& path,
                                    const GenerateOptions& options);

/// Parsed event file: per-node event lists (index = dense node rank) and
/// the smallest key space that contains every key.
struct EventFile {
  std::vector<std::vector<mr::ScoreEvent>> splits;
  size_t key_space = 0;
  size_t num_records = 0;
};

/// Loads an event file; malformed lines yield InvalidArgument with the
/// line number.
Result<EventFile> LoadEvents(const std::string& path);

/// Options for the `detect` / `topk` subcommands.
struct DetectOptions {
  size_t m = 400;
  size_t k = 5;
  uint64_t seed = 42;
  size_t iterations = 0;  ///< 0 = the paper's f(k).
  /// Recovery engine (`--solver={omp,cosamp,fista,amp}`); reported in the
  /// provenance block of the detect / topk reports.
  cs::RecoverySolver solver = cs::RecoverySolver::kOmp;
  /// Override the key space (0 = infer from the file).
  size_t n_override = 0;
  /// Telemetry sink threaded into the detector (sketch + recovery
  /// instrumentation; `--telemetry-json`). Null or disabled is free.
  obs::Telemetry* telemetry = nullptr;
};

/// Runs CS-based k-outlier detection over the event file's nodes and
/// renders a human-readable report (outliers, mode, communication).
Result<std::string> RunDetect(const EventFile& events,
                              const DetectOptions& options);

/// Runs CS-based top-k (zero-mode extension) and renders a report.
Result<std::string> RunTopK(const EventFile& events,
                            const DetectOptions& options);

/// Runs the exact centralized reference and renders the same report shape
/// (ground truth for eyeballing `detect` output).
Result<std::string> RunExact(const EventFile& events, size_t k);

/// Loads a CSV table file for the `query` subcommand. Format: a header
/// line naming the columns, one of which must be `node` (the owning
/// node); remaining columns become the LogTable. Cells must not contain
/// commas; `#` lines are ignored.
struct TableFile {
  std::vector<std::string> columns;  ///< Without the node column.
  /// One LogTable per node, dense node ranks in first-seen order.
  std::vector<std::vector<std::vector<std::string>>> node_rows;
};

Result<TableFile> LoadCsvTable(const std::string& path);

/// Parses and executes the paper's query template over the CSV table,
/// rendering a report (answer rows, mode, communication).
Result<std::string> RunQuery(const TableFile& table, const std::string& sql,
                             const DetectOptions& options);

/// Options for the `serve` subcommand: replay an event file through the
/// streaming detection service (src/serve) as an epoched stream and answer
/// a window outlier query from the final published snapshot.
struct ServeOptions {
  size_t m = 400;
  size_t k = 5;
  uint64_t seed = 42;
  size_t iterations = 0;   ///< 0 = the paper's f(k).
  size_t n_override = 0;   ///< 0 = infer the key space from the file.
  size_t window_epochs = 4;
  size_t epochs = 8;       ///< Epochs the replay is spread over.
  size_t num_shards = 8;
  size_t batch_events = 512;  ///< Events per ingest batch.
  obs::Telemetry* telemetry = nullptr;
};

/// Replays the event file as a stream (node-major, file order) and renders
/// a report: replay shape, snapshot provenance/staleness, and the window's
/// k-outliers recovered from the published sketch.
Result<std::string> RunServe(const EventFile& events,
                             const ServeOptions& options);

/// Options for the `serve-net` subcommand: the same replay as `serve`, but
/// driven end-to-end through the wire-facing deployment surface
/// (serve/net.h) — every ingest/advance/query travels as a checksummed
/// binary frame through a transport and back.
struct ServeNetOptions {
  size_t m = 400;
  size_t k = 5;
  uint64_t seed = 42;
  size_t iterations = 0;   ///< 0 = the paper's f(k).
  size_t n_override = 0;   ///< 0 = infer the key space from the file.
  size_t window_epochs = 4;
  size_t epochs = 8;       ///< Epochs the replay is spread over.
  size_t num_shards = 8;
  size_t batch_events = 512;  ///< Events per ingest frame.
  /// `--transport=socket` serves frames over a socketpair with a server
  /// thread; the default loopback calls the server in-process.
  bool socket = false;
  /// Per-tenant admission bound on deferred-backlog bytes (serve/net.h).
  size_t max_backlog_bytes = 64u << 20;
  obs::Telemetry* telemetry = nullptr;
};

/// Replays the event file through StreamingService behind a NetServer:
/// framed ingest/advance per epoch, a framed window-outlier query, a
/// checkpoint fetch → restore → republish bit-identity check, and a
/// snapshot-replicated follower answering the same query. Renders a report
/// with client/server frame counters and both verification verdicts; fails
/// if either bit-identity check does not hold.
Result<std::string> RunServeNet(const EventFile& events,
                                const ServeNetOptions& options);

/// Options for the `stream-demo` subcommand: a self-generating synthetic
/// stream with one planted hot key, ingested while a concurrent analyst
/// thread asks top-k queries against published snapshots.
struct StreamDemoOptions {
  size_t n = 4000;  ///< Key space of the synthetic stream.
  double mode = 1800.0;
  size_t m = 400;
  size_t k = 5;
  uint64_t seed = 42;
  size_t iterations = 0;
  size_t window_epochs = 4;
  size_t epochs = 12;
  size_t num_shards = 8;
  size_t events_per_epoch = 20000;
  obs::Telemetry* telemetry = nullptr;
};

/// Runs the demo and renders a report: ingest throughput, concurrent
/// queries answered, snapshot staleness, and the final window top-k (which
/// must surface the planted hot key).
Result<std::string> RunStreamDemo(const StreamDemoOptions& options);

}  // namespace csod::tools

#endif  // CSOD_TOOLS_CLI_COMMANDS_H_
