// csod — command-line front end for the CSOD library.
//
// Run `csod` with no arguments for the subcommand table; every verb, its
// flags, and its one-line summary are generated from kSubcommands below —
// add new verbs there, never to hand-maintained usage strings.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "obs/telemetry.h"
#include "sim/runner.h"
#include "tools/cli_commands.h"

namespace {

using namespace csod;

// The single source of truth for the CLI surface: name, flag synopsis, and
// one-line summary per verb. Usage() and command validation both read this
// table, so a verb cannot exist without being documented (and vice versa).
struct Subcommand {
  const char* name;
  const char* args;
  const char* summary;
};

constexpr Subcommand kSubcommands[] = {
    {"generate", "--out=FILE [--n= --sparsity= --nodes= --mode= --seed=]",
     "write a synthetic distributed click-log event file"},
    {"detect",
     "--in=FILE [--m= --k= --seed= --iterations= --n= "
     "--solver={omp|cosamp|fista|amp} --telemetry-json=FILE]",
     "CS-based distributed k-outlier detection over the file's nodes"},
    {"topk",
     "--in=FILE [--m= --k= --seed= --iterations= --n= "
     "--solver={omp|cosamp|fista|amp} --telemetry-json=FILE]",
     "zero-mode top-k extension via CS recovery"},
    {"exact", "--in=FILE [--k=]",
     "centralized exact reference answer"},
    {"query", "--in=CSV --sql=QUERY [--m= --seed= --iterations=]",
     "run the paper's query template over a CSV table"},
    {"serve",
     "--in=FILE [--epochs= --window= --shards= --batch= --m= --k= --seed= "
     "--iterations= --n= --telemetry-json=FILE]",
     "replay the event file through the streaming service and answer a "
     "window outlier query"},
    {"serve-net",
     "--in=FILE [--transport={loopback|socket} --epochs= --window= --shards= "
     "--batch= --m= --k= --seed= --iterations= --n= --backlog-bytes= "
     "--telemetry-json=FILE]",
     "replay the event file through the wire-facing deployment surface "
     "(framed ingest/query, checkpoint restore, follower replication)"},
    {"stream-demo",
     "[--n= --mode= --epochs= --events-per-epoch= --window= --shards= --m= "
     "--k= --seed= --iterations= --telemetry-json=FILE]",
     "self-generating stream with a concurrent top-k analyst thread"},
    {"sim", "[--scenarios= --seed0= --replay=SEED --verbose]",
     "seeded randomized simulation sweep (or bit-identical single-seed "
     "replay) with invariant checking"},
};

int Usage() {
  std::string verbs;
  for (const Subcommand& sub : kSubcommands) {
    if (!verbs.empty()) verbs += '|';
    verbs += sub.name;
  }
  std::fprintf(stderr, "usage: csod <%s> [flags]\n", verbs.c_str());
  for (const Subcommand& sub : kSubcommands) {
    std::fprintf(stderr, "  %-12s %s\n", sub.name, sub.args);
    std::fprintf(stderr, "  %-12s   %s\n", "", sub.summary);
  }
  return 2;
}

bool KnownCommand(const std::string& name) {
  for (const Subcommand& sub : kSubcommands) {
    if (name == sub.name) return true;
  }
  return false;
}

Result<tools::DetectOptions> DetectOptionsFromFlags(const FlagParser& flags) {
  tools::DetectOptions options;
  options.m = static_cast<size_t>(flags.GetInt("m", 400));
  options.k = static_cast<size_t>(flags.GetInt("k", 5));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.iterations = static_cast<size_t>(flags.GetInt("iterations", 0));
  options.n_override = static_cast<size_t>(flags.GetInt("n", 0));
  CSOD_ASSIGN_OR_RETURN(
      options.solver, cs::ParseSolverName(flags.GetString("solver", "omp")));
  return options;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "csod: %s\n", status.ToString().c_str());
  return 1;
}

// Prints the report, then writes the telemetry snapshot if a live sink was
// attached (`--telemetry-json=FILE`).
int Finish(const Result<std::string>& report, const std::string& telemetry_path,
           const obs::Telemetry& telemetry) {
  if (!report.ok()) return Fail(report.status());
  std::fputs(report.Value().c_str(), stdout);
  if (!telemetry_path.empty()) {
    const Status written =
        obs::WriteSnapshotJsonFile(telemetry, telemetry_path);
    if (!written.ok()) return Fail(written);
    std::printf("telemetry: %s\n", telemetry_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional().front();
  if (!KnownCommand(command)) return Usage();

  // --telemetry-json=FILE attaches a live sink to the run and writes the
  // deterministic snapshot (DESIGN.md §9) after the report.
  const std::string telemetry_path = flags.GetString("telemetry-json", "");
  obs::Telemetry telemetry;
  obs::Telemetry* sink = telemetry_path.empty() ? nullptr : &telemetry;

  if (command == "generate") {
    const std::string out = flags.GetString("out", "");
    if (out.empty()) return Usage();
    tools::GenerateOptions options;
    options.n = static_cast<size_t>(flags.GetInt("n", 4000));
    options.sparsity = static_cast<size_t>(flags.GetInt("sparsity", 50));
    options.num_nodes = static_cast<size_t>(flags.GetInt("nodes", 8));
    options.mode = flags.GetDouble("mode", 1800.0);
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    auto written = tools::WriteSyntheticEvents(out, options);
    if (!written.ok()) return Fail(written.status());
    std::printf("wrote %zu records to %s (%zu keys, %zu nodes, %zu planted "
                "outliers)\n",
                written.Value(), out.c_str(), options.n, options.num_nodes,
                options.sparsity);
    return 0;
  }

  if (command == "sim") {
    if (flags.Has("replay")) {
      const uint64_t seed = static_cast<uint64_t>(flags.GetInt("replay", 0));
      std::string line;
      const sim::ScenarioOutcome outcome = sim::ReplaySeed(seed, &line);
      std::printf("seed=%llu %s\n", static_cast<unsigned long long>(seed),
                  line.c_str());
      std::printf("digest=%016llx %s\n",
                  static_cast<unsigned long long>(outcome.digest),
                  outcome.ok() ? "ok" : "FAIL");
      for (const std::string& violation : outcome.violations) {
        std::printf("  violation: %s\n", violation.c_str());
      }
      return outcome.ok() ? 0 : 1;
    }
    sim::SweepOptions options;
    options.seed0 = static_cast<uint64_t>(flags.GetInt("seed0", 1));
    options.scenarios = static_cast<size_t>(flags.GetInt("scenarios", 200));
    options.verbose = flags.GetBool("verbose", false);
    const sim::SweepResult result = sim::RunSweep(options);
    std::fputs(result.report.c_str(), stdout);
    for (const std::string& failure : result.failures) {
      std::printf("%s\n", failure.c_str());
    }
    std::printf("combined-digest=%016llx\n",
                static_cast<unsigned long long>(result.combined_digest));
    return result.ok() ? 0 : 1;
  }

  if (command == "stream-demo") {
    tools::StreamDemoOptions options;
    options.n = static_cast<size_t>(flags.GetInt("n", 4000));
    options.mode = flags.GetDouble("mode", 1800.0);
    options.m = static_cast<size_t>(flags.GetInt("m", 400));
    options.k = static_cast<size_t>(flags.GetInt("k", 5));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.iterations = static_cast<size_t>(flags.GetInt("iterations", 0));
    options.window_epochs = static_cast<size_t>(flags.GetInt("window", 4));
    options.epochs = static_cast<size_t>(flags.GetInt("epochs", 12));
    options.num_shards = static_cast<size_t>(flags.GetInt("shards", 8));
    options.events_per_epoch =
        static_cast<size_t>(flags.GetInt("events-per-epoch", 20000));
    options.telemetry = sink;
    return Finish(tools::RunStreamDemo(options), telemetry_path, telemetry);
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Usage();

  if (command == "query") {
    const std::string sql = flags.GetString("sql", "");
    if (sql.empty()) return Usage();
    auto table = tools::LoadCsvTable(in);
    if (!table.ok()) return Fail(table.status());
    auto options = DetectOptionsFromFlags(flags);
    if (!options.ok()) return Fail(options.status());
    auto report = tools::RunQuery(table.Value(), sql, options.Value());
    return Finish(report, telemetry_path, telemetry);
  }

  auto events = tools::LoadEvents(in);
  if (!events.ok()) return Fail(events.status());

  Result<std::string> report = Status::Unimplemented("unknown command");
  if (command == "detect" || command == "topk") {
    auto parsed = DetectOptionsFromFlags(flags);
    if (!parsed.ok()) return Fail(parsed.status());
    tools::DetectOptions options = parsed.Value();
    options.telemetry = sink;
    report = command == "detect" ? tools::RunDetect(events.Value(), options)
                                 : tools::RunTopK(events.Value(), options);
  } else if (command == "exact") {
    report = tools::RunExact(events.Value(),
                             static_cast<size_t>(flags.GetInt("k", 5)));
  } else if (command == "serve") {
    tools::ServeOptions options;
    options.m = static_cast<size_t>(flags.GetInt("m", 400));
    options.k = static_cast<size_t>(flags.GetInt("k", 5));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.iterations = static_cast<size_t>(flags.GetInt("iterations", 0));
    options.n_override = static_cast<size_t>(flags.GetInt("n", 0));
    options.window_epochs = static_cast<size_t>(flags.GetInt("window", 4));
    options.epochs = static_cast<size_t>(flags.GetInt("epochs", 8));
    options.num_shards = static_cast<size_t>(flags.GetInt("shards", 8));
    options.batch_events = static_cast<size_t>(flags.GetInt("batch", 512));
    options.telemetry = sink;
    report = tools::RunServe(events.Value(), options);
  } else if (command == "serve-net") {
    tools::ServeNetOptions options;
    options.m = static_cast<size_t>(flags.GetInt("m", 400));
    options.k = static_cast<size_t>(flags.GetInt("k", 5));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    options.iterations = static_cast<size_t>(flags.GetInt("iterations", 0));
    options.n_override = static_cast<size_t>(flags.GetInt("n", 0));
    options.window_epochs = static_cast<size_t>(flags.GetInt("window", 4));
    options.epochs = static_cast<size_t>(flags.GetInt("epochs", 8));
    options.num_shards = static_cast<size_t>(flags.GetInt("shards", 8));
    options.batch_events = static_cast<size_t>(flags.GetInt("batch", 512));
    options.max_backlog_bytes = static_cast<size_t>(
        flags.GetInt("backlog-bytes", 64 << 20));
    const std::string transport = flags.GetString("transport", "loopback");
    if (transport != "loopback" && transport != "socket") {
      return Fail(Status::InvalidArgument(
          "serve-net: --transport must be loopback or socket"));
    }
    options.socket = transport == "socket";
    options.telemetry = sink;
    report = tools::RunServeNet(events.Value(), options);
  }
  return Finish(report, telemetry_path, telemetry);
}
